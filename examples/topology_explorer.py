"""Topology explorer: sweep every symmetric (x:y:z) configuration.

Enumerates all legal symmetric topologies of the 16-core machine, runs one
workload mix under each, and ranks them — then shows where MorphCache and
the per-epoch-best (ideal offline) land.  This reproduces the spirit of the
paper's Figure 2/15 analysis for any mix.

Run:  python examples/topology_explorer.py [mix-number]
"""

import sys

from repro import Workload, config, mix_by_name, run_scheme
from repro.baselines import ideal_offline


def symmetric_labels(cores: int = 16):
    """All (x:y:z) with x*y*z == cores, powers of two."""
    labels = []
    x = 1
    while x <= cores:
        y = 1
        while x * y <= cores:
            z = cores // (x * y)
            if x * y * z == cores:
                labels.append(f"({x}:{y}:{z})")
            y *= 2
        x *= 2
    return labels


def main(mix_name: str = "8") -> None:
    machine = config.preset("small").with_(accesses_per_core_per_epoch=2000)
    workload = Workload.from_mix(mix_by_name(mix_name))
    labels = symmetric_labels(machine.cores)
    print(f"{workload.name}: sweeping {len(labels)} symmetric topologies\n")

    runs = {}
    for label in labels:
        runs[label] = run_scheme(label, workload, machine, seed=4, epochs=3)
    morph = run_scheme("morphcache", workload, machine, seed=4, epochs=3)
    ideal = ideal_offline(list(runs.values()))

    base = runs["(16:1:1)"].mean_throughput
    ranking = sorted(runs.items(), key=lambda kv: -kv[1].mean_throughput)
    print(f"{'topology':12} {'throughput':>10} {'vs shared':>10}")
    for label, result in ranking:
        print(f"{label:12} {result.mean_throughput:10.3f} "
              f"{result.mean_throughput / base:10.3f}")
    print("-" * 34)
    print(f"{'morphcache':12} {morph.mean_throughput:10.3f} "
          f"{morph.mean_throughput / base:10.3f}")
    print(f"{'ideal':12} {ideal.mean_throughput:10.3f} "
          f"{ideal.mean_throughput / base:10.3f}")
    print(f"\nideal's per-epoch choices: "
          f"{[e.topology_label for e in ideal.epochs]}")
    print(f"morphcache reaches {morph.mean_throughput / ideal.mean_throughput:.1%} "
          "of the ideal offline scheme (paper: ~97%)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "8")
