"""Observability tour: trace a run, render its reconfiguration timeline.

Runs one workload mix under MorphCache with the structured trace recorder
attached, then walks the three ways to look at what happened:

1. the rendered timeline — which cores merged/split at which epoch and the
   ACFV inputs that triggered each decision, plus injected faults;
2. the raw JSONL records the timeline is built from (grep-able, diff-able,
   byte-identical across the event and batch engines);
3. the metrics registry — Prometheus-style counters/gauges accumulated by
   the same run.

Run:  python examples/trace_tour.py
      (or with PYTHONPATH=src from the repository root)
"""

import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import Workload, config, mix_by_name, parse_fault_spec, run_scheme  # noqa: E402
from repro.obs import REGISTRY, load_trace  # noqa: E402
from repro.obs.timeline import render_timeline  # noqa: E402

FAULTS = "disable-slice:every=4:level=l3:duration=1,seed=11"


def main() -> None:
    machine = config.preset("small")
    workload = Workload.from_mix(mix_by_name("MIX 08"))

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = pathlib.Path(tmp) / "trace.jsonl"

        print("1. Traced run (MorphCache on MIX 08, L3 slice faults)\n")
        REGISTRY.reset()
        REGISTRY.enable()
        try:
            result = run_scheme(
                "morphcache", workload, machine, seed=1, epochs=8,
                fault_plan=parse_fault_spec(FAULTS),
                trace_path=trace_path)
        finally:
            REGISTRY.disable()
        print(f"   mean throughput {result.mean_throughput:.3f}, trace at "
              f"{trace_path.name} "
              f"({trace_path.stat().st_size} bytes)\n")

        records = load_trace(trace_path)

        print("2. Reconfiguration timeline (repro trace <path>)\n")
        print(render_timeline(records))

        print("\n3. Raw records (first epoch record, truncated)\n")
        epoch = next(r for r in records if r["kind"] == "epoch")
        shown = {k: epoch[k] for k in ("kind", "epoch", "label", "misses")}
        print(f"   {shown}")
        kinds = {}
        for record in records:
            kinds[record["kind"]] = kinds.get(record["kind"], 0) + 1
        print(f"   record counts: {kinds}")

    print("\n4. Metrics registry (Prometheus exposition, excerpt)\n")
    text = REGISTRY.expose_text()
    for line in text.splitlines():
        if "repro_reconfig" in line or "repro_topology" in line \
                or "repro_faulted" in line:
            print(f"   {line}")


if __name__ == "__main__":
    main()
