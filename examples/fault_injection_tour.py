"""Fault-injection tour: break the machine on purpose, watch it cope.

Runs one workload mix under MorphCache three times — fault-free, with soft
errors in the footprint-tracking SRAM, and with periodic hard L3 slice
failures plus controller-state corruption — then demonstrates the invariant
guard's degradation ladder and a verified checkpoint/resume round trip.

Run:  python examples/fault_injection_tour.py
"""

import tempfile
from pathlib import Path

from repro import Workload, config, mix_by_name, parse_fault_spec, run_scheme
from repro.sim.experiment import build_system


def run_with_plan(title, workload, machine, spec):
    plan = parse_fault_spec(spec) if spec else None
    result = run_scheme("morphcache", workload, machine, seed=1, epochs=6,
                        fault_plan=plan)
    print(f"{title:24} mean throughput {result.mean_throughput:.3f}")
    return result


def main() -> None:
    machine = config.preset("small")
    workload = Workload.from_mix(mix_by_name("MIX 08"))
    print(f"Workload: {workload.name}\n")

    print("1. Throughput under increasingly hostile fault plans")
    clean = run_with_plan("fault-free", workload, machine, None)
    run_with_plan("ACFV soft errors", workload, machine,
                  "flip-acfv:every=2:bits=8,seed=7")
    faulted = run_with_plan(
        "slice failures + corruption", workload, machine,
        "disable-slice:every=3:level=l3:duration=1,"
        "corrupt-topology:every=4,seed=7")
    ratio = faulted.mean_throughput / clean.mean_throughput
    print(f"{'':24} kept {100 * ratio:.1f} % of fault-free throughput\n")

    print("2. The invariant guard catching corrupted topology state")
    system = build_system("morphcache", machine, workload, seed=1)
    controller = system.controller
    # Scribble over the controller's topology the way an SRAM fault would:
    # duplicate slice 1 into slice 0's group.
    controller.topology._groups["l2"][0] = (0, 1)
    controller.end_epoch()
    event = controller.guard.events[-1]
    print(f"  guard action: {event.action} (mode now {event.mode_after})")
    print(f"  violation:    {event.violation}")
    print(f"  hierarchy topology is valid again: "
          f"{sorted(system.hierarchy.l2_groups)[:4]}...\n")

    print("3. Verified checkpoint/resume")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "checkpoint.json"
        first = run_scheme("morphcache", workload, machine, seed=1, epochs=4,
                           checkpoint_path=path, checkpoint_every=2)
        print(f"  checkpoint written: {path.stat().st_size} bytes")
        resumed = run_scheme("morphcache", workload, machine, seed=1,
                             epochs=4, checkpoint_path=path, resume=True)
        identical = ([e.ipcs for e in resumed.epochs]
                     == [e.ipcs for e in first.epochs])
        print(f"  resumed run bit-identical to original: {identical}")


if __name__ == "__main__":
    main()
