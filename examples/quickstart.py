"""Quickstart: MorphCache vs the shared baseline on one workload mix.

Builds the Table 3 machine at example scale, runs MIX 08 (a balanced mix
with all four application classes) under the all-shared static topology and
under MorphCache, and prints the headline comparison.

Run:  python examples/quickstart.py
"""

from repro import Workload, config, mix_by_name, run_scheme
from repro.config import format_table3


def main() -> None:
    machine = config.preset("small")
    print("Machine (Table 3 at 1/32 scale)")
    print(format_table3(machine))
    print()

    workload = Workload.from_mix(mix_by_name("MIX 08"))
    print(f"Workload: {workload.name} — "
          f"{', '.join(m.name for m in workload.models[:4])}, ...")
    print()

    baseline = run_scheme("(16:1:1)", workload, machine, seed=1, epochs=3)
    private = run_scheme("(1:1:16)", workload, machine, seed=1, epochs=3)
    morph = run_scheme("morphcache", workload, machine, seed=1, epochs=3)

    base = baseline.mean_throughput
    print(f"{'scheme':12} {'throughput':>10} {'vs shared':>10}")
    for result in (baseline, private, morph):
        print(f"{result.scheme_name:12} {result.mean_throughput:10.3f} "
              f"{result.mean_throughput / base:10.3f}")
    print()
    print("Per-epoch topology chosen by MorphCache:")
    for epoch in morph.epochs:
        print(f"  epoch {epoch.epoch}: throughput {epoch.throughput:.3f}  "
              f"topology {epoch.topology_label}")


if __name__ == "__main__":
    main()
