"""Deep dive on a multiprogrammed mix: reconfiguration and fairness.

Runs MIX 11 (streaming-heavy, the kind of mix where topology matters most)
under MorphCache, dumps the reconfiguration event log, and computes the
paper's three metrics — throughput, weighted speedup and fair speedup —
against per-application alone runs.

Run:  python examples/multiprogrammed_mix.py
"""

from repro import (
    Workload,
    config,
    fair_speedup,
    mix_by_name,
    run_scheme,
    weighted_speedup,
)
from repro.sim.engine import simulate
from repro.sim.experiment import alone_ipcs, build_system


def main() -> None:
    machine = config.preset("small")
    mix = mix_by_name("MIX 11")
    workload = Workload.from_mix(mix)

    system = build_system("morphcache", machine, workload, seed=3)
    result = simulate(system, workload, machine, seed=3, epochs=4)
    controller = system.controller

    print(f"{workload.name}: {controller.reconfigurations} reconfigurations, "
          f"{controller.asymmetric_fraction:.0%} leaving an asymmetric "
          "topology")
    print("\nEvent log (first 12):")
    for event in controller.events[:12]:
        groups = " + ".join(str(g) for g in event.groups)
        print(f"  epoch {event.epoch}: {event.kind:5} {event.level} "
              f"{groups:24} reason={event.reason}")

    print(f"\nFinal topology: {controller.current_label()}")

    baseline = run_scheme("(16:1:1)", workload, machine, seed=3, epochs=4)
    alone = alone_ipcs(mix.benchmark_names, machine, seed=3, epochs=1)
    morph_ipcs = [result.mean_ipcs()[c] for c in range(16)]
    base_ipcs = [baseline.mean_ipcs()[c] for c in range(16)]

    print(f"\n{'metric':18} {'shared':>8} {'morph':>8}")
    print(f"{'throughput':18} {sum(base_ipcs):8.3f} {sum(morph_ipcs):8.3f}")
    print(f"{'weighted speedup':18} "
          f"{weighted_speedup(base_ipcs, alone):8.3f} "
          f"{weighted_speedup(morph_ipcs, alone):8.3f}")
    print(f"{'fair speedup':18} "
          f"{fair_speedup(base_ipcs, alone):8.3f} "
          f"{fair_speedup(morph_ipcs, alone):8.3f}")

    print("\nPer-application speedup over alone run (morph):")
    for core, name in enumerate(mix.benchmark_names):
        print(f"  core {core:2d} {name:12} {morph_ipcs[core] / alone[core]:.3f}")


if __name__ == "__main__":
    main()
