"""Multithreaded workloads: data sharing and the sharing merge condition.

Runs a PARSEC application as 16 threads sharing an address space.  The
interesting MorphCache behaviour here is condition (ii): slices whose ACFVs
overlap (threads touching the same data) merge even when both are highly
utilised, eliminating replication and repeated transfers.

Run:  python examples/multithreaded_parsec.py [benchmark]
"""

import sys

from repro import Workload, config
from repro.sim.engine import simulate
from repro.sim.experiment import build_system, run_scheme
from repro.workloads import PARSEC_BENCHMARKS, parsec_benchmark


def main(benchmark_name: str = "dedup") -> None:
    machine = config.preset("small")
    bench = parsec_benchmark(benchmark_name)
    workload = Workload.from_parsec(bench)

    print(f"{bench.name}: Table 4 row — L2 ACF {bench.model.l2_acf} "
          f"(sigma_t {bench.model.l2_sigma_t}, sigma_s {bench.l2_sigma_s}), "
          f"L3 ACF {bench.model.l3_acf} "
          f"(sigma_t {bench.model.l3_sigma_t}, sigma_s {bench.l3_sigma_s})")
    print(f"modelled sharing fraction: {bench.model.shared_fraction:.0%}\n")

    system = build_system("morphcache", machine, workload, seed=2)
    result = simulate(system, workload, machine, seed=2, epochs=4)
    controller = system.controller

    sharing_merges = [e for e in controller.events
                      if e.kind == "merge" and e.reason == "sharing"]
    capacity_merges = [e for e in controller.events
                       if e.kind == "merge" and e.reason == "capacity"]
    print(f"merges for sharing:  {len(sharing_merges)}")
    print(f"merges for capacity: {len(capacity_merges)}")
    print(f"final topology: {controller.current_label()}\n")

    print(f"{'scheme':12} {'throughput':>10}")
    for label in ["(16:1:1)", "(1:1:16)", "(4:4:1)"]:
        static = run_scheme(label, workload, machine, seed=2, epochs=4)
        print(f"{label:12} {static.mean_throughput:10.3f}")
    print(f"{'morphcache':12} {result.mean_throughput:10.3f}")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "dedup"
    if name not in PARSEC_BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from {sorted(PARSEC_BENCHMARKS)}")
    main(name)
