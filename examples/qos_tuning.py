"""QoS tuning (Section 5.3): MSAT throttling from miss feedback.

Compares plain merge-aggressive MorphCache against the QoS-aware variant on
a streaming-heavy mix, reporting each application's performance relative to
its fair share (the private configuration).

Run:  python examples/qos_tuning.py
"""

from repro import MorphConfig, Workload, config, mix_by_name
from repro.sim.engine import simulate
from repro.sim.experiment import build_system


def run_variant(machine, workload, morph):
    system = build_system("morphcache", machine, workload, seed=6, morph=morph)
    result = simulate(system, workload, machine, seed=6, epochs=4)
    return system.controller, result


def main() -> None:
    machine = config.preset("small")
    mix = mix_by_name("MIX 11")
    workload = Workload.from_mix(mix)

    private_system = build_system("(1:1:16)", machine, workload, seed=6)
    private = simulate(private_system, workload, machine, seed=6, epochs=4)
    plain_controller, plain = run_variant(machine, workload, MorphConfig())
    qos_controller, qos = run_variant(machine, workload, MorphConfig(qos=True))

    print(f"plain: MSAT stayed at ({plain_controller.throttler.high:.0f}, "
          f"{plain_controller.throttler.low:.0f})")
    print(f"QoS:   MSAT ended at  ({qos_controller.throttler.high:.0f}, "
          f"{qos_controller.throttler.low:.0f}) after "
          f"{qos_controller.throttler.throttle_ups} up / "
          f"{qos_controller.throttler.throttle_downs} down steps\n")

    private_ipcs = private.mean_ipcs()
    print(f"{'benchmark':14} {'plain/fair':>10} {'QoS/fair':>10}")
    worst_plain, worst_qos = 10.0, 10.0
    for core, name in enumerate(mix.benchmark_names):
        rel_plain = plain.mean_ipcs()[core] / private_ipcs[core]
        rel_qos = qos.mean_ipcs()[core] / private_ipcs[core]
        worst_plain = min(worst_plain, rel_plain)
        worst_qos = min(worst_qos, rel_qos)
        print(f"{name:14} {rel_plain:10.3f} {rel_qos:10.3f}")
    print(f"\nworst application: plain {worst_plain:.3f}, QoS {worst_qos:.3f} "
          "(the paper's QoS goal: no application below its fair share)")
    print(f"throughput: plain {plain.mean_throughput:.3f}, "
          f"QoS {qos.mean_throughput:.3f}")


if __name__ == "__main__":
    main()
