"""Extensions tour: tile-based scaling and segmented-bus energy.

Two of the paper's forward-looking points, implemented:

1. Section 5.5: beyond 16 cores, build tiles of at-most-16-core MorphCache
   islands — run a 32-core workload on a 2-tile system and watch each tile
   reconfigure independently.
2. The conclusion's future work: quantify the segmented bus's power
   advantage — compare per-transaction energy against a monolithic bus for
   the traffic a MorphCache run actually generated.

Run:  python examples/scaling_and_power.py
"""

from repro import Workload, config, mix_by_name
from repro.core.tiles import TiledMorphCache
from repro.interconnect.power import SegmentedBusPowerModel
from repro.render import render_topology
from repro.sim.experiment import build_system


def tiled_demo() -> None:
    print("=== 32 cores as two 16-core MorphCache tiles ===")
    machine = config.preset("tiny")
    tiled = TiledMorphCache(machine, n_tiles=2)
    mix_a = mix_by_name("MIX 08")
    mix_b = mix_by_name("MIX 11")
    models = tuple(b.model for b in mix_a.benchmarks) \
        + tuple(b.model for b in mix_b.benchmarks)

    threads = []
    from repro.workloads.synthetic import SyntheticThread
    for core, model in enumerate(models):
        threads.append(SyntheticThread(model, core, machine.l2_slice,
                                       machine.l3_slice, seed=4))
    for epoch in range(3):
        traces = [t.generate(500) for t in threads]
        for i in range(500):
            for core in range(32):
                tiled.access(core, int(traces[core].lines[i]),
                             bool(traces[core].writes[i]))
        tiled.end_epoch()
    for index, label in enumerate(tiled.tile_labels()):
        print(f"tile {index}: {label[:70]}")
    print(f"total reconfigurations across tiles: {tiled.reconfigurations}")
    tiled.check_inclusion()
    print("inclusion holds in every tile\n")


def _remote(system, level, core):
    stats = system.hierarchy.stats.cores[core]
    return stats.l2_remote_hits if level == "l2" else stats.l3_remote_hits


def power_demo() -> None:
    print("=== Segmented-bus energy vs a monolithic bus ===")
    machine = config.preset("small")
    # An adversarial layout that reliably exercises merging: capacity-
    # starved cactusADM threads alternating with near-idle libquantum.
    from repro.workloads import spec_benchmark
    models = tuple(
        spec_benchmark("cactusADM" if i % 2 == 0 else "libquantum").model
        for i in range(16)
    )
    workload = Workload(name="cactus/libquantum alternating", models=models)
    system = build_system("morphcache", machine, workload, seed=4)
    threads = workload.build_threads(machine, seed=4)

    # Accumulate per-group bus traffic epoch by epoch: the topology (and
    # hence the electrical domains) changes at every boundary.
    model = SegmentedBusPowerModel(16)
    traffic = {}
    last_remote = {(level, c): 0 for level in ("l2", "l3")
                   for c in range(16)}
    for _ in range(5):
        traces = [t.generate(2000) for t in threads]
        for i in range(2000):
            for core in range(16):
                system.access(core, int(traces[core].lines[i]),
                              bool(traces[core].writes[i]))
        for level, groups in (("l2", system.hierarchy.l2_groups),
                              ("l3", system.hierarchy.l3_groups)):
            for group in groups:
                if len(group) < 2:
                    continue
                remote = sum(_remote(system, level, c) - last_remote[(level, c)]
                             for c in group)
                traffic[group] = traffic.get(group, 0) + remote
        for core in range(16):
            for level in ("l2", "l3"):
                last_remote[(level, core)] = _remote(system, level, core)
        system.end_epoch()

    print("final topology:")
    print(render_topology(system.hierarchy.l2_groups,
                          system.hierarchy.l3_groups))
    groups = list(traffic)
    segmented = model.report(groups, traffic)
    monolithic = model.monolithic_report(sum(traffic.values()) or 1)
    print(f"\nbus transactions observed: {sum(traffic.values())}")
    print(f"segmented:  {segmented.total_pj:.2f} pJ/transaction "
          f"(mean domain span {segmented.mean_domain_span_mm:.1f} mm)")
    print(f"monolithic: {monolithic.total_pj:.2f} pJ/transaction "
          f"(span {monolithic.mean_domain_span_mm:.1f} mm)")
    if sum(traffic.values()):
        print(f"savings: {model.savings_vs_monolithic(groups, traffic):.0%}")


if __name__ == "__main__":
    tiled_demo()
    power_demo()
