"""Chaos drill: SIGKILL a fault-injected supervised sweep, resume, verify.

Launches a supervised (scheme x workload) sweep — every run injecting
deterministic faults (an L3 slice failure every 2 epochs plus ACFV soft
errors) — in a child process writing a crash-safe run journal, SIGKILLs the
child as soon as the journal holds at least one completed run, resumes the
sweep from the journal, and asserts the resumed results are bit-identical
to an uninterrupted serial sweep.  Exits non-zero on any mismatch, so CI
can run it as a chaos job.

Run:  python examples/chaos_resume.py
      (or with PYTHONPATH=src from the repository root)
"""

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.baselines.static_topologies import STATIC_LABELS  # noqa: E402
from repro.config import preset  # noqa: E402
from repro.resilience import parse_fault_spec  # noqa: E402
from repro.sim.parallel import RunSpec, run_many  # noqa: E402
from repro.sim.supervisor import run_supervised  # noqa: E402
from repro.sim.workload import Workload  # noqa: E402
from repro.workloads import MIXES  # noqa: E402

FAULTS = "disable-slice:every=2:level=l3,flip-acfv:at=1:bits=4,seed=13"


def sweep_specs():
    """The sweep under test: Figure 13's scheme set, faults injected."""
    workload = Workload.from_mix(MIXES[4])
    plan = parse_fault_spec(FAULTS)
    return [RunSpec(scheme=scheme, workload=workload, config=preset("tiny"),
                    seed=7, epochs=4, fault_plan=plan)
            for scheme in STATIC_LABELS + ["morphcache"]]


def series(result):
    """Full-precision per-epoch series, for exact comparison."""
    return [({c: repr(v) for c, v in e.ipcs.items()}, e.misses)
            for e in result.epochs]


def child_main(journal: str) -> int:
    run_supervised(sweep_specs(), jobs=2, journal=journal)
    return 0


def main() -> int:
    if len(sys.argv) > 2 and sys.argv[1] == "--child":
        return child_main(sys.argv[2])

    with tempfile.TemporaryDirectory() as tmp:
        journal = pathlib.Path(tmp) / "chaos.jsonl"
        print(f"[chaos] launching fault-injected sweep (journal {journal})")
        child = subprocess.Popen(
            [sys.executable, __file__, "--child", str(journal)],
            start_new_session=True)

        # SIGKILL the moment the journal holds a completed run — no
        # graceful anything, exactly like an OOM kill or a power cut.
        deadline = time.monotonic() + 300
        while time.monotonic() < deadline:
            if journal.exists() and '"kind":"run"' in journal.read_text():
                break
            if child.poll() is not None:
                break
            time.sleep(0.05)
        try:
            os.killpg(child.pid, signal.SIGKILL)
            print("[chaos] SIGKILLed the sweep mid-run")
        except ProcessLookupError:
            print("[chaos] sweep finished before the kill; resuming anyway")
        child.wait()

        report = run_supervised(sweep_specs(), jobs=2, journal=journal,
                                resume=True)
        assert report.ok, f"resumed sweep not clean: {report.summary()}"
        print(f"[chaos] resumed: {report.summary()}")

        reference = run_many(sweep_specs(), jobs=1)
        for index, (ref, got) in enumerate(zip(reference, report.results)):
            assert series(ref) == series(got), (
                f"run {index} ({ref.scheme_name}) diverged after resume")
        print(f"[chaos] ok: {len(reference)} runs bit-identical to an "
              "uninterrupted serial sweep")
    return 0


if __name__ == "__main__":
    sys.exit(main())
