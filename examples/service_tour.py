"""Tour of the simulation service: submit, stream, shed, drain — and chaos.

Boots ``repro serve`` as a subprocess on an OS-assigned port, then walks
the whole operational surface with two tenants:

1. admission — a valid sweep is queued, an invalid one is a typed 400;
2. quotas and shedding — a burst past the per-tenant quota is a typed
   429, and nothing shed is ever stored (queue depth stays bounded);
3. live progress — the job's SSE stream prints per-epoch records while
   the sweep runs;
4. results — fetched with floats JSON-exact, plus latency percentiles;
5. metrics — an excerpt of the Prometheus exposition;
6. drain — SIGTERM, observe the documented exit code.

With ``--chaos`` the tour instead SIGKILLs the whole service tree while
tenant A's sweep is provably mid-flight, restarts on the same state
directory, and verifies the resumed results are bit-identical to a fresh
in-process run — the restart-time recovery acceptance drill, suitable as
a CI chaos job (exits non-zero on any mismatch).

Run:  python examples/service_tour.py [--chaos]
      (or with PYTHONPATH=src from the repository root)
"""

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.config import preset  # noqa: E402
from repro.serve.client import ServiceClient, ServiceHTTPError  # noqa: E402
from repro.sim.experiment import run_scheme  # noqa: E402
from repro.sim.supervisor import result_to_json  # noqa: E402
from repro.sim.workload import Workload  # noqa: E402

SWEEP = dict(workload="MIX 01", schemes=["morphcache", "(16:1:1)", "(4:4:1)"],
             preset="tiny", epochs=3, seed=7, trace=True)
QUICK = dict(workload="MIX 01", scheme="morphcache", preset="tiny",
             epochs=2, seed=3, trace=False)


def start_service(state_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--state-dir",
         str(state_dir), "--port", "0", *extra],
        env=env, start_new_session=True)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(f"service exited {proc.returncode} during boot")
        try:
            client = ServiceClient.from_state_dir(state_dir, timeout=10.0)
            if client.readyz().get("ready"):
                return proc, client
        except Exception:
            time.sleep(0.05)
    raise SystemExit("service never became ready")


def kill_tree(proc):
    """SIGKILL service + job children + pool workers, like a machine loss."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait()


def wait_mid_sweep(job_dir, timeout=60.0):
    journal = pathlib.Path(job_dir) / "journal.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists() and '"kind":"run"' in journal.read_text():
            return
        time.sleep(0.05)
    raise SystemExit("sweep never got mid-flight")


def check(label, ok):
    print(f"  {'ok' if ok else 'MISMATCH'}: {label}")
    if not ok:
        raise SystemExit(f"FAILED: {label}")


def tour(state_dir):
    proc, client = start_service(state_dir, "--max-jobs", "1",
                                 "--max-queued-per-tenant", "2")
    try:
        print("== admission")
        job = client.submit(tenant="alice", **SWEEP)["job"]
        print(f"  queued {job['id']} for alice")
        try:
            client.submit(tenant="alice", workload="quake3")
        except ServiceHTTPError as exc:
            check("invalid spec is a typed 400",
                  exc.status == 400 and exc.error_type == "ConfigError")

        print("== quotas and shedding")
        client.submit(tenant="bob", **QUICK)
        client.submit(tenant="bob", **dict(QUICK, seed=4))
        try:
            client.submit(tenant="bob", **dict(QUICK, seed=5))
        except ServiceHTTPError as exc:
            check("burst past bob's quota is a typed 429",
                  exc.status == 429
                  and exc.error_type == "QuotaExceededError")
        depth = client.queue()["depth"]
        print(f"  queue depth {depth} (the shed job was never stored)")

        print("== live SSE progress for", job["id"])
        shown = 0
        for kind, payload in client.events(job["id"]):
            if kind == "epoch" and shown < 4:
                shown += 1
                print(f"  epoch {payload.get('epoch')} "
                      f"[{payload.get('stream')}]")
            if kind == "end":
                print(f"  end: {payload['state']}")

        print("== results")
        status = client.job(job["id"])
        lat = status["latency"]
        print(f"  latency: total {lat['total']:.2f}s, "
              f"p50/p90/max {lat['p50']:.2f}/{lat['p90']:.2f}/"
              f"{lat['max']:.2f}s")
        result = client.result(job["id"])
        reference = run_scheme("morphcache", Workload.from_name("MIX 01"),
                               preset("tiny"), seed=7, epochs=3)
        got = next(r["result"] for r in result["runs"]
                   if r["scheme"] == "morphcache")
        check("service result bit-identical to the library",
              got == result_to_json(reference))

        print("== metrics excerpt")
        for line in client.metrics_text().splitlines():
            if line.startswith(("repro_serve_jobs_total",
                                "repro_serve_queue_depth",
                                "repro_serve_shed_total")):
                print("  " + line)

        print("== drain")
        for queued in client.jobs():
            if queued["state"] not in ("done", "partial", "failed",
                                       "cancelled"):
                client.wait_for_state(queued["id"],
                                      ("done", "partial", "failed"),
                                      timeout=240)
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=120)
        check("idle drain exits 0", code == 0)
    finally:
        kill_tree(proc)


def chaos(state_dir):
    print("== chaos: SIGKILL mid-sweep, restart, verify bit-identical")
    proc, client = start_service(state_dir, "--max-jobs", "1")
    job_id = bob_id = None
    try:
        job_id = client.submit(tenant="alice", **SWEEP)["job"]["id"]
        bob_id = client.submit(tenant="bob", **QUICK)["job"]["id"]
        wait_mid_sweep(pathlib.Path(state_dir) / "jobs" / job_id)
        print("  mid-sweep: killing the whole service tree")
    finally:
        kill_tree(proc)

    proc2, client2 = start_service(state_dir)
    try:
        status = client2.wait_for_state(job_id,
                                        ("done", "partial", "failed"),
                                        timeout=240)
        check("interrupted sweep resumed to done",
              status["state"] == "done" and status["resume"] is True)
        result = client2.result(job_id)
        workload = Workload.from_name("MIX 01")
        for run in result["runs"]:
            reference = run_scheme(run["scheme"], workload, preset("tiny"),
                                   seed=7, epochs=3)
            check(f"{run['scheme']} bit-identical after resume",
                  run["result"] == result_to_json(reference))
        check("bob's queued job survived the crash",
              client2.wait_for_state(bob_id, ("done",),
                                     timeout=240)["state"] == "done")
    finally:
        kill_tree(proc2)
    print("chaos drill passed")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chaos", action="store_true",
                        help="kill -9 the service mid-sweep, restart, verify")
    args = parser.parse_args()
    with tempfile.TemporaryDirectory(prefix="repro-serve-tour-") as tmp:
        if args.chaos:
            chaos(tmp)
        else:
            tour(tmp)
    print("service tour complete")


if __name__ == "__main__":
    main()
