"""Tour of the MorphCache interconnect (Section 3).

Walks through the segmented bus, the hierarchical arbiter tree and the
Table 1/2 timing model: configure a (4,2,2) bus formation, race four slices
for the bus, and print the synthesised area/delay table.

Run:  python examples/interconnect_tour.py
"""

from repro.interconnect import (
    ArbiterTimingModel,
    ArbiterTree,
    Floorplan,
    SegmentedBus,
)


def main() -> None:
    print("1. Segmented bus (Figure 7) — a (4,2,2) formation")
    bus = SegmentedBus(8)
    bus.configure_groups([(0, 1, 2, 3), (4, 5), (6, 7)])
    print(f"   switch states: {['on' if s else 'OFF' for s in bus.switch_states()]}")
    print(f"   electrical domains: {bus.domains()}")
    print(f"   slices 0,2,4,6 request simultaneously -> granted in parallel: "
          f"{bus.grant_parallel([0, 2, 4, 6])}\n")

    print("2. Arbiter tree (Figures 9-11) — 3 levels over 8 slices")
    tree = ArbiterTree(8)
    tree.configure_groups([(0, 1, 2, 3), (4, 5), (6, 7)])
    print(f"   arbiters per level: {[len(level) for level in tree.arbiters]}")
    print(f"   share level per slice: {tree.share_level}")
    done = tree.simulate_transactions({0: 0, 2: 0, 4: 0, 6: 0})
    for slice_id in sorted(done):
        grant, transfer = done[slice_id]
        print(f"   slice {slice_id}: grant at bus cycle {grant}, "
              f"transfer done at {transfer}")
    print("   (request -> grant takes 2 cycles, transfer 1 — the paper's "
          "3-cycle transaction)\n")

    print("3. Floorplan and synthesis model (Figure 12, Tables 1-2)")
    plan = Floorplan()
    print(f"   die: {plan.chip_width_mm:g} x {plan.chip_height_mm:g} mm, "
          f"L2 arbiters {plan.l2_arbiters_per_side}/side, "
          f"L3 arbiters {plan.l3_arbiters}")
    model = ArbiterTimingModel()
    print(model.format_table2())
    print(f"\n   max arbiter frequency: {model.max_frequency_ghz():.2f} GHz "
          "(paper: 1.12 GHz)")


if __name__ == "__main__":
    main()
