"""Setup shim so editable installs work without the ``wheel`` package.

The environment has setuptools but no ``wheel`` distribution, so PEP 660
editable installs fail with ``invalid command 'bdist_wheel'``.  Keeping a
setup.py lets ``pip install -e . --no-use-pep517 --no-build-isolation`` use
the legacy develop path.
"""
from setuptools import setup

setup()
