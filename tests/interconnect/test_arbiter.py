"""Tests for the hierarchical segmented-bus arbitration (Figures 9-11)."""

import pytest

from repro.interconnect.arbiter import Arbiter, ArbiterTree


def configure(tree, groups):
    tree.configure_groups(groups)
    return tree


class TestArbiter:
    def test_single_request_granted(self):
        arbiter = Arbiter()
        arbiter.latch(True, False)
        assert arbiter.arbitrate() == (True, False)

    def test_no_request_no_grant(self):
        arbiter = Arbiter()
        arbiter.latch(False, False)
        assert arbiter.arbitrate() == (False, False)

    def test_round_robin_alternates(self):
        arbiter = Arbiter()
        winners = []
        for _ in range(4):
            arbiter.latch(True, True)
            g0, g1 = arbiter.arbitrate()
            winners.append(0 if g0 else 1)
        assert winners == [0, 1, 0, 1]

    def test_req_out_requires_forward(self):
        arbiter = Arbiter()
        arbiter.latch(True, False)
        assert not arbiter.req_out
        arbiter.forward = True
        assert arbiter.req_out


class TestArbiterTree:
    def test_structure_matches_figure9(self):
        tree = ArbiterTree(8)
        assert tree.levels == 3
        assert tree.n_arbiters == 7
        assert [len(level) for level in tree.arbiters] == [4, 2, 1]

    def test_share_levels_from_groups(self):
        tree = configure(ArbiterTree(8), [(0, 1, 2, 3), (4, 5), (6,), (7,)])
        assert tree.share_level[:4] == [2, 2, 2, 2]
        assert tree.share_level[4:6] == [1, 1]
        assert tree.share_level[6:] == [0, 0]

    def test_private_slices_never_acquire(self):
        tree = configure(ArbiterTree(8), [(i,) for i in range(8)])
        acq = tree.resolve([True] * 8)
        assert acq == [False] * 8

    def test_one_grant_per_domain(self):
        tree = configure(ArbiterTree(8), [(0, 1, 2, 3), (4, 5), (6, 7)])
        acq = tree.resolve([True, True, True, True, True, True, True, True])
        assert sum(acq[:4]) == 1
        assert sum(acq[4:6]) == 1
        assert sum(acq[6:8]) == 1

    def test_disjoint_domains_grant_in_parallel(self):
        tree = configure(ArbiterTree(8), [(0, 1), (2, 3), (4, 5), (6, 7)])
        acq = tree.resolve([True, False, True, False, True, False, True, False])
        assert acq == [True, False, True, False, True, False, True, False]

    def test_rejects_unaligned_group(self):
        tree = ArbiterTree(8)
        with pytest.raises(ValueError):
            tree.configure_groups([(1, 2)] + [(i,) for i in (0, 3, 4, 5, 6, 7)])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            ArbiterTree(6)


class TestTransactions:
    def test_grant_two_cycles_transfer_one(self):
        """The paper's protocol: request at t, grant at t+2, data at t+3."""
        tree = configure(ArbiterTree(8), [(0, 1), (2, 3), (4, 5), (6, 7)])
        done = tree.simulate_transactions({0: 0})
        assert done[0] == (2, 3)

    def test_same_domain_serialises(self):
        tree = configure(ArbiterTree(8), [(0, 1), (2, 3), (4, 5), (6, 7)])
        done = tree.simulate_transactions({0: 0, 1: 0})
        finish_times = sorted(t for _, t in done.values())
        assert finish_times[0] < finish_times[1]

    def test_different_domains_finish_together(self):
        tree = configure(ArbiterTree(8), [(0, 1), (2, 3), (4, 5), (6, 7)])
        done = tree.simulate_transactions({0: 0, 2: 0, 4: 0, 6: 0})
        assert len({t for _, t in done.values()}) == 1

    def test_fairness_under_contention(self):
        """Round-robin arbitration lets every requester through."""
        tree = configure(ArbiterTree(8), [(0, 1, 2, 3), (4, 5, 6, 7)])
        done = tree.simulate_transactions({i: 0 for i in range(8)})
        assert len(done) == 8

    def test_unservable_request_raises(self):
        tree = configure(ArbiterTree(8), [(i,) for i in range(8)])
        with pytest.raises(RuntimeError):
            tree.simulate_transactions({0: 0}, max_cycles=10)


class TestStalledPorts:
    def test_stalled_port_never_granted(self):
        tree = configure(ArbiterTree(8), [(0, 1, 2, 3), (4, 5, 6, 7)])
        tree.stall_ports([0])
        acquired = tree.resolve([True] * 8)
        assert not acquired[0]

    def test_healthy_ports_keep_winning(self):
        tree = configure(ArbiterTree(8), [(0, 1, 2, 3), (4, 5, 6, 7)])
        tree.stall_ports([0, 1])
        acquired = tree.resolve([True] * 8)
        assert sum(acquired[s] for s in (2, 3)) == 1
        assert sum(acquired[s] for s in (4, 5, 6, 7)) == 1

    def test_clearing_stall_restores_port(self):
        tree = configure(ArbiterTree(8), [(0, 1, 2, 3), (4, 5, 6, 7)])
        tree.stall_ports([0])
        tree.stall_ports([])
        done = tree.simulate_transactions({0: 0})
        assert 0 in done

    def test_out_of_range_port_rejected(self):
        tree = configure(ArbiterTree(8), [(i,) for i in range(8)])
        with pytest.raises(ValueError):
            tree.stall_ports([99])
