"""Tests for the segmented-bus energy model (the paper's future work)."""

import pytest

from repro.caches.hierarchy import CacheHierarchy
from repro.config import TINY
from repro.interconnect.power import (
    SegmentedBusPowerModel,
    traffic_from_hierarchy_stats,
)


class TestTransactionEnergy:
    def test_smaller_domain_costs_less(self):
        model = SegmentedBusPowerModel()
        assert model.transaction_energy((0, 1)) < model.transaction_energy(
            (0, 1, 2, 3)
        )

    def test_non_neighbour_group_pays_for_its_span(self):
        model = SegmentedBusPowerModel()
        assert model.transaction_energy((0, 7)) > model.transaction_energy(
            (0, 1)
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SegmentedBusPowerModel(n_slices=0)
        with pytest.raises(ValueError):
            SegmentedBusPowerModel(segment_length_mm=-1.0)


class TestReports:
    def test_segmented_beats_monolithic_for_pair_traffic(self):
        model = SegmentedBusPowerModel(16)
        groups = [(0, 1), (2, 3)] + [(i,) for i in range(4, 16)]
        traffic = {(0, 1): 100, (2, 3): 50}
        savings = model.savings_vs_monolithic(groups, traffic)
        assert savings > 0.5

    def test_all_shared_group_saves_nothing(self):
        model = SegmentedBusPowerModel(16)
        groups = [tuple(range(16))]
        traffic = {tuple(range(16)): 10}
        assert model.savings_vs_monolithic(groups, traffic) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_empty_traffic(self):
        model = SegmentedBusPowerModel(16)
        report = model.report([(0, 1)], {})
        assert report.total_pj == 0.0
        assert model.savings_vs_monolithic([(0, 1)], {}) == 0.0

    def test_report_averages_per_transaction(self):
        model = SegmentedBusPowerModel(16)
        groups = [(0, 1)] + [(i,) for i in range(2, 16)]
        single = model.report(groups, {(0, 1): 1})
        many = model.report(groups, {(0, 1): 100})
        assert single.total_pj == pytest.approx(many.total_pj)

    def test_monolithic_reference_levels(self):
        model = SegmentedBusPowerModel(16)
        report = model.monolithic_report(10)
        assert report.mean_arbiter_levels == 4.0


class TestTrafficExtraction:
    def test_counts_remote_hits_of_merged_groups_only(self):
        hierarchy = CacheHierarchy(TINY)
        topo = [(0, 1)] + [(i,) for i in range(2, 16)]
        hierarchy.set_topology(topo, topo)
        hierarchy.access(1, 0x100)
        hierarchy.l1s[0].flush()
        hierarchy.access(0, 0x100)  # remote hit in the merged pair
        traffic = traffic_from_hierarchy_stats(hierarchy)
        assert traffic.get((0, 1), 0) >= 1
        assert all(len(group) >= 2 for group in traffic)
