"""Tests reproducing Tables 1 and 2 from the interconnect timing model."""

import pytest

from repro.interconnect.floorplan import ArbiterTreeLayout, Floorplan
from repro.interconnect.timing import (
    AREA_PER_ARBITER_UM2,
    WIRE_NS_PER_MM,
    ArbiterTimingModel,
)


class TestFloorplan:
    def test_figure12_dimensions(self):
        plan = Floorplan()
        assert plan.chip_width_mm == 15.0
        assert plan.chip_height_mm == 20.0

    def test_arbiter_counts_match_table2(self):
        plan = Floorplan()
        assert plan.l2_arbiters_per_side == 7
        assert plan.l3_arbiters == 15

    def test_levels(self):
        plan = Floorplan()
        assert plan.l2_levels == 3
        assert plan.l3_levels == 4

    def test_wire_lengths_close_to_paper(self):
        """Geometry-derived paths within 20 % of the paper's wire delays."""
        plan = Floorplan()
        assert plan.l2_max_wire_mm() == pytest.approx(0.31 / WIRE_NS_PER_MM,
                                                      rel=0.20)
        assert plan.l3_max_wire_mm() == pytest.approx(0.40 / WIRE_NS_PER_MM,
                                                      rel=0.20)

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            Floorplan(cores=6)

    def test_tree_layout_path_monotonic_in_depth(self):
        layout = ArbiterTreeLayout([(0.0, float(i)) for i in range(8)])
        assert layout.levels == 3
        assert layout.max_request_path() >= layout.request_path_length(3)

    def test_tree_layout_rejects_odd_leaves(self):
        with pytest.raises(ValueError):
            ArbiterTreeLayout([(0.0, 0.0)] * 3)


class TestTable2:
    def setup_method(self):
        self.model = ArbiterTimingModel()

    def test_l2_area(self):
        assert self.model.l2_bus().total_area_um2 == pytest.approx(160.5, abs=0.1)

    def test_l3_area(self):
        assert self.model.l3_bus().total_area_um2 == pytest.approx(343.9, abs=0.1)

    def test_area_per_arbiter_consistent(self):
        assert AREA_PER_ARBITER_UM2 == pytest.approx(343.9 / 15, abs=0.05)

    def test_l2_request_delay(self):
        l2 = self.model.l2_bus()
        assert l2.request_wire_ns == pytest.approx(0.31, abs=0.005)
        assert l2.request_logic_ns == pytest.approx(0.38, abs=0.005)

    def test_l3_request_delay(self):
        l3 = self.model.l3_bus()
        assert l3.request_wire_ns == pytest.approx(0.40, abs=0.005)
        assert l3.request_logic_ns == pytest.approx(0.49, abs=0.005)

    def test_grant_delays(self):
        for bus in (self.model.l2_bus(), self.model.l3_bus()):
            assert bus.grant_logic_ns == pytest.approx(0.32, abs=0.005)

    def test_max_frequency_is_1_12_ghz(self):
        """The paper: the 0.89 ns worst path sets a 1.12 GHz ceiling."""
        assert self.model.max_frequency_ghz() == pytest.approx(1.12, abs=0.01)

    def test_critical_path_is_l3_request(self):
        l3 = self.model.l3_bus()
        assert l3.critical_path_ns == pytest.approx(0.89, abs=0.01)


class TestBusOverhead:
    def test_15_cpu_cycles_unpipelined(self):
        assert ArbiterTimingModel().transaction_cpu_cycles() == 15

    def test_10_cpu_cycles_pipelined(self):
        assert ArbiterTimingModel().transaction_cpu_cycles(pipelined=True) == 10

    def test_scales_with_cpu_frequency(self):
        model = ArbiterTimingModel(cpu_ghz=3.0)
        assert model.transaction_cpu_cycles() == 9

    def test_geometry_mode_changes_wire_delay_only(self):
        calibrated = ArbiterTimingModel()
        geometric = ArbiterTimingModel(use_paper_wire_lengths=False)
        assert (geometric.l2_bus().request_logic_ns
                == calibrated.l2_bus().request_logic_ns)
        assert (geometric.l2_bus().request_wire_ns
                != calibrated.l2_bus().request_wire_ns)

    def test_rejects_bad_frequencies(self):
        with pytest.raises(ValueError):
            ArbiterTimingModel(bus_ghz=0)
        with pytest.raises(ValueError):
            ArbiterTimingModel(bus_ghz=6.0, cpu_ghz=5.0)

    def test_format_table2_mentions_key_figures(self):
        text = ArbiterTimingModel().format_table2()
        assert "160.5" in text
        assert "343.9" in text
        assert "15 CPU cycles" in text
