"""Tests for the segmented bus (Figures 7 and 8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect.segmented_bus import SegmentedBus


class TestConfiguration:
    def test_figure7_formation(self):
        """The paper's (4, 2, 2) formation disables S3 and S5."""
        bus = SegmentedBus(8)
        bus.configure_groups([(0, 1, 2, 3), (4, 5), (6, 7)])
        assert bus.formation() == (4, 2, 2)
        states = bus.switch_states()
        assert states[3] is False
        assert states[5] is False
        assert all(states[i] for i in (0, 1, 2, 4, 6))

    def test_all_private(self):
        bus = SegmentedBus(4)
        bus.configure_groups([(i,) for i in range(4)])
        assert bus.formation() == (1, 1, 1, 1)

    def test_all_shared(self):
        bus = SegmentedBus(4)
        bus.configure_groups([(0, 1, 2, 3)])
        assert bus.formation() == (4,)

    def test_rejects_non_partition(self):
        bus = SegmentedBus(4)
        with pytest.raises(ValueError):
            bus.configure_groups([(0, 1)])

    def test_non_contiguous_group_spans_superset(self):
        """Section 5.5: group {0, 2} physically joins segments 0..2."""
        bus = SegmentedBus(4)
        bus.configure_groups([(0, 2), (1,), (3,)])
        assert bus.domain_of(0) == (0, 1, 2)

    def test_manual_switch(self):
        bus = SegmentedBus(3)
        bus.set_switch(0, True)
        assert bus.domains() == [(0, 1), (2,)]


class TestParallelism:
    def test_isolated_domains_grant_in_parallel(self):
        bus = SegmentedBus(8)
        bus.configure_groups([(0, 1, 2, 3), (4, 5), (6, 7)])
        granted = bus.grant_parallel([0, 2, 4, 6])
        assert granted == [0, 4, 6]

    def test_conflict_within_domain(self):
        bus = SegmentedBus(4)
        bus.configure_groups([(0, 1, 2, 3)])
        assert bus.conflict(0, 3)
        assert bus.grant_parallel([0, 1, 2, 3]) == [0]

    def test_no_conflict_across_domains(self):
        bus = SegmentedBus(4)
        bus.configure_groups([(0, 1), (2, 3)])
        assert not bus.conflict(0, 2)

    def test_domain_of_out_of_range(self):
        bus = SegmentedBus(2)
        bus.configure_groups([(0,), (1,)])
        with pytest.raises(ValueError):
            bus.domain_of(5)


@given(st.integers(2, 6))
@settings(max_examples=10, deadline=None)
def test_property_domains_partition_segments(k):
    """Domains always partition the segments for aligned group sizes."""
    n = 1 << k
    bus = SegmentedBus(n)
    bus.configure_groups([tuple(range(i, i + 2)) for i in range(0, n, 2)])
    flattened = [s for domain in bus.domains() for s in domain]
    assert flattened == list(range(n))


class TestDroppedGrants:
    def test_dropped_requester_loses_grant(self):
        bus = SegmentedBus(8)
        bus.configure_groups([(0, 1, 2, 3), (4, 5, 6, 7)])
        bus.drop_grants([0])
        assert bus.grant_parallel([0, 1, 4]) == [1, 4]

    def test_domain_stays_free_for_next_requester(self):
        bus = SegmentedBus(8)
        bus.configure_groups([(0, 1, 2, 3), (4, 5, 6, 7)])
        bus.drop_grants([0, 1])
        assert bus.grant_parallel([0, 1, 2]) == [2]

    def test_healing_restores_grants(self):
        bus = SegmentedBus(8)
        bus.configure_groups([(0, 1, 2, 3), (4, 5, 6, 7)])
        bus.drop_grants([0])
        bus.drop_grants([])
        assert bus.grant_parallel([0, 4]) == [0, 4]

    def test_out_of_range_segment_rejected(self):
        bus = SegmentedBus(8)
        with pytest.raises(ValueError):
            bus.drop_grants([42])
