"""Tests for throughput, weighted/fair speedup and correlation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import fair_speedup, pearson, throughput, weighted_speedup


class TestThroughput:
    def test_sum_of_ipc(self):
        assert throughput([0.5, 1.0, 0.25]) == pytest.approx(1.75)

    def test_empty_is_zero(self):
        assert throughput([]) == 0.0


class TestWeightedSpeedup:
    def test_equal_ipcs_gives_core_count(self):
        assert weighted_speedup([1.0] * 4, [1.0] * 4) == pytest.approx(4.0)

    def test_slowdown_counts_fractionally(self):
        assert weighted_speedup([0.5], [1.0]) == pytest.approx(0.5)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])


class TestFairSpeedup:
    def test_harmonic_mean_of_speedups(self):
        # Speedups 2 and 0.5 -> harmonic mean = 2/(0.5 + 2) = 0.8.
        assert fair_speedup([2.0, 0.5], [1.0, 1.0]) == pytest.approx(0.8)

    def test_punishes_imbalance_more_than_ws(self):
        balanced_ws = weighted_speedup([1.0, 1.0], [1.0, 1.0])
        skewed_ws = weighted_speedup([1.9, 0.1], [1.0, 1.0])
        balanced_fs = fair_speedup([1.0, 1.0], [1.0, 1.0])
        skewed_fs = fair_speedup([1.9, 0.1], [1.0, 1.0])
        assert skewed_ws == pytest.approx(balanced_ws)
        assert skewed_fs < balanced_fs

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fair_speedup([], [])


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            pearson([1], [1])

    def test_uncorrelated_near_zero(self):
        xs = [1, 2, 3, 4, 5, 6, 7, 8]
        ys = [5, 1, 8, 2, 7, 3, 6, 4]
        assert abs(pearson(xs, ys)) < 0.5

    _series = st.lists(
        st.floats(min_value=-1e4, max_value=1e4,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=25)

    @given(data=st.data())
    def test_bounded_and_symmetric(self, data):
        xs = data.draw(self._series)
        ys = data.draw(st.lists(
            st.floats(min_value=-1e4, max_value=1e4,
                      allow_nan=False, allow_infinity=False),
            min_size=len(xs), max_size=len(xs)))
        r = pearson(xs, ys)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
        assert pearson(ys, xs) == pytest.approx(r, abs=1e-9)

    @given(xs=_series,
           scale=st.floats(min_value=0.01, max_value=100),
           shift=st.floats(min_value=-100, max_value=100))
    def test_invariant_under_positive_affine_transform(self, xs, scale,
                                                       shift):
        if max(xs) - min(xs) < 1e-3:
            # (near-)constant series: correlation is undefined; the
            # implementation pins exactly-constant input to 0.0 and tiny
            # spreads are numerically meaningless either way.
            assert pearson(xs, xs) in (0.0, pytest.approx(1.0))
            return
        ys = [scale * x + shift for x in xs]
        assert pearson(xs, ys) == pytest.approx(1.0)
        assert pearson(xs, [-y for y in ys]) == pytest.approx(-1.0)
