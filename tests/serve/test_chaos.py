"""Chaos: SIGKILL the whole service mid-sweep, restart, resume bit-exact.

The acceptance scenario for restart-time recovery: two tenants, tenant
A's sweep provably mid-flight, then the entire process tree dies the way
a machine does — SIGKILL, no warning, no cleanup.  A restarted service
on the same state directory must (a) keep tenant B's queued job (losing
an admitted job is data loss), (b) resume A's sweep from its journal
without recomputing durable runs, and (c) land on results bit-identical
to an uninterrupted run — proven against the repo's golden fixture, the
same floats the determinism suite pins.
"""

import json
import pathlib

from repro.sim.supervisor import inspect_journal, result_from_json

from tests.serve.conftest import (
    kill_group,
    start_service,
    wait_for_journal_run,
)

GOLDEN = json.loads(
    (pathlib.Path(__file__).parents[1] / "sim"
     / "golden_tiny_mix01.json").read_text())

#: The golden sweep: the exact spec the fixture's floats were captured
#: from (MIX 01, tiny preset, 3 epochs, seed 7) over six schemes, two of
#: which — morphcache and (16:1:1) — are pinned in the fixture.
GOLDEN_JOB = dict(workload="MIX 01",
                  schemes=["morphcache", "(16:1:1)", "(1:1:16)", "(4:4:1)",
                           "(8:2:1)", "(1:16:1)"],
                  preset="tiny", epochs=3, seed=7, jobs=2, trace=False)
FAST_JOB = dict(workload="MIX 01", scheme="morphcache", preset="tiny",
                epochs=2, seed=3, trace=False)


def test_sigkill_restart_resumes_bit_identically(tmp_path):
    proc, client = start_service(tmp_path, "--max-jobs", "1")
    sweep_id = queued_id = None
    try:
        sweep = client.submit(tenant="alice", **GOLDEN_JOB)
        sweep_id = sweep["job"]["id"]
        queued = client.submit(tenant="bob", **FAST_JOB)
        queued_id = queued["job"]["id"]
        assert client.job(queued_id)["state"] == "queued"

        # Provably mid-sweep: >= 1 durable run record, more runs missing.
        job_dir = tmp_path / "jobs" / sweep_id
        wait_for_journal_run(job_dir)
    finally:
        # The machine dies: service, job child and its pool workers, all
        # SIGKILLed in one shot.  No journals flushed, no statuses written.
        kill_group(proc)

    assert not (job_dir / "status.json").exists()
    before = inspect_journal(job_dir / "journal.jsonl")
    assert 0 < len(before.completed) < len(GOLDEN_JOB["schemes"])

    proc2, client2 = start_service(tmp_path)
    try:
        # Queue position survives: recovery re-admits in admission order,
        # so the interrupted sweep dispatches first and bob's job second.
        done = client2.wait_for_state(sweep_id, ("done", "partial", "failed"),
                                      timeout=240)
        assert done["state"] == "done"
        assert done["resume"] is True
        assert done["started_order"] == 1
        fast = client2.wait_for_state(queued_id, ("done",), timeout=240)
        assert fast["started_order"] == 2

        # The journal proves a resume happened and nothing was recomputed.
        after = inspect_journal(job_dir / "journal.jsonl")
        assert after.resumes >= 1
        assert after.complete
        assert set(before.completed) <= set(after.completed)

        # Bit-identical to an uninterrupted run: the fixture's floats.
        result = client2.result(sweep_id)
        assert len(result["runs"]) == len(GOLDEN_JOB["schemes"])
        by_scheme = {run["scheme"]: run for run in result["runs"]}
        for scheme, expected in GOLDEN.items():
            got = result_from_json(by_scheme[scheme]["result"])
            assert len(got.epochs) == len(expected["epochs"])
            for got_epoch, want in zip(got.epochs, expected["epochs"]):
                assert got_epoch.epoch == want["epoch"]
                assert got_epoch.topology_label == want["topology_label"]
                assert ({str(c): repr(v) for c, v in got_epoch.ipcs.items()}
                        == want["ipcs"])
                assert ({str(c): v for c, v in got_epoch.misses.items()}
                        == want["misses"])
    finally:
        kill_group(proc2)


def test_restart_preserves_terminal_results_without_rerunning(tmp_path):
    proc, client = start_service(tmp_path)
    try:
        done = client.submit(tenant="alice", **FAST_JOB)
        done_id = done["job"]["id"]
        first = client.wait_for_state(done_id, ("done",), timeout=120)
    finally:
        kill_group(proc)

    journal = tmp_path / "jobs" / done_id / "journal.jsonl"
    stamp = journal.stat().st_mtime_ns

    proc2, client2 = start_service(tmp_path)
    try:
        status = client2.job(done_id)
        assert status["state"] == "done"
        assert status["latency"] == first["latency"]
        # Results are served straight from the recovered journal.
        result = client2.result(done_id)
        assert result["runs"][0]["scheme"] == "morphcache"
        assert journal.stat().st_mtime_ns == stamp  # nothing re-ran
    finally:
        kill_group(proc2)
