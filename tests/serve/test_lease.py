"""Unit tests for the fenced lease protocol (repro.serve.lease).

Everything here drives the protocol in-process — the two-process chaos
suite (test_pool_chaos.py) proves the same properties against real
SIGKILL/SIGSTOP; these tests pin the state machine precisely: CAS claims,
fence monotonicity, expiry, zombie rejection, torn-file self-healing.
"""

import concurrent.futures
import json
import os
import time

import pytest

from repro.resilience.errors import LeaseLostError, PoolCorruptError
from repro.serve.lease import (
    LEASE_DIR,
    LeaseHandle,
    acquire,
    lease_token,
    read_lease,
)

TTL = 0.3


def test_acquire_fresh_job(tmp_path):
    handle = acquire(tmp_path, "w0", ttl=TTL)
    assert handle is not None
    assert handle.fence == 1
    assert handle.token == "1:w0"
    state = read_lease(tmp_path)
    assert state.fence == 1
    assert state.owner == "w0"
    assert not state.released
    assert state.reclaims == 0
    assert not state.expired(TTL)


def test_held_lease_is_not_reacquirable(tmp_path):
    assert acquire(tmp_path, "w0", ttl=TTL) is not None
    assert acquire(tmp_path, "w1", ttl=TTL) is None


def test_released_lease_is_immediately_claimable(tmp_path):
    first = acquire(tmp_path, "w0", ttl=TTL)
    first.release()
    second = acquire(tmp_path, "w1", ttl=TTL)
    assert second is not None
    assert second.fence == 2
    assert read_lease(tmp_path).owner == "w1"


def test_expired_lease_is_reclaimed_with_higher_fence(tmp_path):
    assert acquire(tmp_path, "dead", ttl=TTL) is not None
    time.sleep(TTL * 1.5)
    adopter = acquire(tmp_path, "peer", ttl=TTL)
    assert adopter is not None
    assert adopter.fence == 2
    state = read_lease(tmp_path)
    assert state.owner == "peer"
    assert state.reclaims == 1


def test_renew_keeps_lease_alive_past_ttl(tmp_path):
    holder = acquire(tmp_path, "w0", ttl=TTL)
    for _ in range(4):
        time.sleep(TTL / 2)
        holder.renew()
    assert acquire(tmp_path, "w1", ttl=TTL) is None
    assert read_lease(tmp_path).beats >= 4


def test_zombie_check_and_renew_raise_after_reclaim(tmp_path):
    zombie = acquire(tmp_path, "zombie", ttl=TTL)
    time.sleep(TTL * 1.5)
    assert acquire(tmp_path, "adopter", ttl=TTL) is not None
    with pytest.raises(LeaseLostError):
        zombie.check()
    with pytest.raises(LeaseLostError):
        zombie.renew()
    # The zombie's release is a silent no-op: it must not mark the
    # adopter's live fence as released.
    zombie.release()
    state = read_lease(tmp_path)
    assert state.owner == "adopter"
    assert not state.released


def test_claim_cas_exactly_one_winner(tmp_path):
    (tmp_path / LEASE_DIR).mkdir()
    workers = 8
    with concurrent.futures.ThreadPoolExecutor(workers) as pool:
        handles = list(pool.map(
            lambda i: acquire(tmp_path, f"w{i}", ttl=30.0), range(workers)))
    winners = [h for h in handles if h is not None]
    assert len(winners) == 1
    assert winners[0].fence == 1


def test_torn_claim_file_still_fences_and_self_heals(tmp_path):
    # A claimant that died between O_EXCL-create and writing its owner
    # record: the empty file fences (owner "?"), and after one TTL (from
    # its mtime) the job is adoptable.
    lease_dir = tmp_path / LEASE_DIR
    lease_dir.mkdir()
    (lease_dir / "claim-000001").write_bytes(b"")
    state = read_lease(tmp_path)
    assert state.fence == 1
    assert state.owner == "?"
    assert acquire(tmp_path, "w0", ttl=30.0) is None  # still fencing
    time.sleep(TTL * 1.5)
    adopter = acquire(tmp_path, "w0", ttl=TTL)
    assert adopter is not None
    assert adopter.fence == 2


def test_half_written_claim_json_is_tolerated(tmp_path):
    lease_dir = tmp_path / LEASE_DIR
    lease_dir.mkdir()
    (lease_dir / "claim-000001").write_text('{"owner": "w0", "acq')
    state = read_lease(tmp_path)
    assert state.fence == 1
    assert state.owner == "?"


def test_read_lease_ignores_heartbeat_and_released_suffixes(tmp_path):
    handle = acquire(tmp_path, "w0", ttl=TTL)
    handle.renew()
    handle.release()
    # .hb/.released files must not be parsed as claims.
    state = read_lease(tmp_path)
    assert state.fence == 1
    assert state.released


def test_lease_state_to_json_shape(tmp_path):
    acquire(tmp_path, "w0", ttl=TTL)
    payload = read_lease(tmp_path).to_json()
    assert payload["fence"] == 1
    assert payload["owner"] == "w0"
    assert payload["token"] == lease_token(1, "w0")
    assert payload["reclaims"] == 0
    assert payload["age"] >= 0.0
    assert payload["heartbeat_age"] >= 0.0
    assert json.loads(json.dumps(payload)) == payload


def test_read_lease_none_without_claims(tmp_path):
    assert read_lease(tmp_path) is None
    (tmp_path / LEASE_DIR).mkdir()
    assert read_lease(tmp_path) is None


def test_acquire_rejects_nonpositive_ttl(tmp_path):
    with pytest.raises(PoolCorruptError):
        acquire(tmp_path, "w0", ttl=0)


def test_acquire_unwritable_lease_dir_is_pool_corrupt(tmp_path):
    if os.geteuid() == 0:
        pytest.skip("root ignores directory permissions")
    job_dir = tmp_path / "job"
    job_dir.mkdir()
    os.chmod(job_dir, 0o500)
    try:
        with pytest.raises(PoolCorruptError):
            acquire(job_dir, "w0", ttl=TTL)
    finally:
        os.chmod(job_dir, 0o700)


def test_handle_check_passes_while_owner(tmp_path):
    handle = acquire(tmp_path, "w0", ttl=TTL)
    handle.check()  # no raise
    assert isinstance(handle, LeaseHandle)
