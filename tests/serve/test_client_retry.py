"""Client retry policy: bounded, deterministic, idempotency-aware.

A scripted socket server plays the hostile side — shedding 429s (with and
without ``Retry-After``), dropping connections mid-handshake — and the
tests pin the client contract: 429 retries for every method (the request
was rejected, not half-done), connection loss retries only for idempotent
methods (a lost POST /jobs may have been admitted), and every schedule is
deterministic so test runs never flake on jitter.
"""

import json
import socket
import threading

import pytest

import repro.serve.client as client_module
from repro.serve.client import RetryPolicy, ServiceClient, ServiceHTTPError


class ScriptedServer:
    """Serve a fixed sequence of canned actions, one per connection.

    An action is ``"reset"`` (accept then slam the connection shut) or
    ``(status, headers, payload)``.  Connections beyond the script get a
    500 so an over-retrying client fails loudly instead of hanging.
    """

    def __init__(self, script):
        self.script = list(script)
        self.hits = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # closed
            action = (self.script[self.hits] if self.hits < len(self.script)
                      else (500, {}, {"error": {"message": "script over"}}))
            self.hits += 1
            try:
                if action == "reset":
                    conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                    b"\x01\x00\x00\x00\x00\x00\x00\x00")
                    conn.close()
                    continue
                self._drain_request(conn)
                status, headers, payload = action
                body = json.dumps(payload).encode("utf-8")
                lines = [f"HTTP/1.1 {status} X",
                         "Content-Type: application/json",
                         f"Content-Length: {len(body)}",
                         "Connection: close"]
                lines += [f"{k}: {v}" for k, v in headers.items()]
                conn.sendall("\r\n".join(lines).encode("utf-8")
                             + b"\r\n\r\n" + body)
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _drain_request(conn):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return
            data += chunk
        head = data.split(b"\r\n\r\n", 1)[0].lower()
        for line in head.split(b"\r\n"):
            if line.startswith(b"content-length:"):
                want = int(line.split(b":", 1)[1])
                body = data.split(b"\r\n\r\n", 1)[1]
                while len(body) < want:
                    chunk = conn.recv(65536)
                    if not chunk:
                        return
                    body += chunk

    def close(self):
        self._sock.close()


@pytest.fixture
def fast_sleep(monkeypatch):
    """Record the client's backoff sleeps instead of actually waiting."""
    slept = []
    monkeypatch.setattr(client_module.time, "sleep",
                        lambda s: slept.append(s))
    return slept


def scripted(script):
    return ScriptedServer(script)


OK = (200, {}, {"ready": True})
SHED = (429, {}, {"error": {"type": "ServiceSaturatedError",
                            "message": "queue full"}})
SHED_AFTER = (429, {"Retry-After": "0.125"},
              {"error": {"type": "ServiceSaturatedError",
                         "message": "queue full"}})
POLICY = RetryPolicy(retries=3, base=0.01, cap=0.5)


class TestRetryPolicy:
    def test_schedule_is_deterministic(self):
        a = [POLICY.delay(i) for i in range(4)]
        b = [POLICY.delay(i) for i in range(4)]
        assert a == b

    def test_seeds_decorrelate_clients(self):
        a = RetryPolicy(seed=1)
        b = RetryPolicy(seed=2)
        assert [a.delay(i) for i in range(4)] != [b.delay(i)
                                                 for i in range(4)]

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(retries=10, base=0.1, cap=1.0)
        delays = [policy.delay(i) for i in range(10)]
        assert all(0.05 <= d <= 1.0 for d in delays)
        assert delays[-1] == 1.0  # 0.1 * 2**9 is far past the cap

    def test_retry_after_wins_but_is_capped(self):
        assert POLICY.delay(0, retry_after=0.125) == 0.125
        assert POLICY.delay(0, retry_after=60.0) == 0.5
        # A negative header is nonsense: fall back to computed backoff.
        assert POLICY.delay(0, retry_after=-1) == POLICY.delay(0)


class TestShedRetry:
    def test_429_then_success_retries_post(self, fast_sleep):
        server = scripted([SHED, SHED, OK])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=10.0,
                                   retry=POLICY)
            assert client._request("POST", "/jobs", body={}) == {"ready": True}
            assert server.hits == 3
            assert len(fast_sleep) == 2
        finally:
            server.close()

    def test_retry_after_header_sets_the_delay(self, fast_sleep):
        server = scripted([SHED_AFTER, OK])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=10.0,
                                   retry=POLICY)
            client._request("GET", "/queue")
            assert fast_sleep == [0.125]
        finally:
            server.close()

    def test_retries_exhausted_raises_the_429(self, fast_sleep):
        server = scripted([SHED] * 10)
        try:
            client = ServiceClient(
                "127.0.0.1", server.port, timeout=10.0,
                retry=RetryPolicy(retries=2, base=0.01, cap=0.5))
            with pytest.raises(ServiceHTTPError) as info:
                client._request("GET", "/queue")
            assert info.value.status == 429
            assert server.hits == 3  # 1 try + 2 retries, then give up
        finally:
            server.close()

    def test_no_policy_means_fail_fast(self):
        server = scripted([SHED, OK])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=10.0)
            with pytest.raises(ServiceHTTPError):
                client._request("GET", "/queue")
            assert server.hits == 1
        finally:
            server.close()

    def test_non_429_errors_are_never_retried(self, fast_sleep):
        server = scripted([(404, {}, {"error": {"message": "nope"}}), OK])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=10.0,
                                   retry=POLICY)
            with pytest.raises(ServiceHTTPError) as info:
                client._request("GET", "/jobs/000001-x")
            assert info.value.status == 404
            assert server.hits == 1
        finally:
            server.close()


class TestConnectionLoss:
    def test_reset_retried_for_get(self, fast_sleep):
        server = scripted(["reset", "reset", OK])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=10.0,
                                   retry=POLICY)
            assert client._request("GET", "/readyz") == {"ready": True}
            assert server.hits == 3
        finally:
            server.close()

    def test_reset_not_retried_for_post(self, fast_sleep):
        # The lost POST may have been admitted server-side; a blind
        # resubmit would duplicate the job.  The client must surface the
        # failure to the caller instead.
        server = scripted(["reset", OK])
        try:
            client = ServiceClient("127.0.0.1", server.port, timeout=10.0,
                                   retry=POLICY)
            with pytest.raises((ConnectionError, OSError,
                                client_module.http.client.HTTPException)):
                client._request("POST", "/jobs", body={"tenant": "a"})
            assert server.hits == 1
        finally:
            server.close()
