"""End-to-end tests against a live ``repro serve`` subprocess.

A module-scoped service instance carries the cheap smoke/API tests (CI's
gating ``service-smoke`` job runs this file); behavioral tests that need
their own admission limits, watchdog or drain semantics boot short-lived
instances.  Every simulation here is the ``tiny`` preset — real runs, not
mocks, in a second or two each.
"""

import http.client
import json
import signal
import time

import pytest

from repro.serve.client import ServiceHTTPError
from repro.sim.experiment import run_scheme
from repro.sim.supervisor import result_to_json
from repro.sim.workload import Workload
from repro.config import preset
from repro.resilience.errors import SweepInterrupted

from tests.serve.conftest import (
    drain,
    kill_group,
    start_service,
    wait_for_journal_run,
)

FAST_JOB = dict(workload="MIX 01", scheme="morphcache", preset="tiny",
                epochs=2, seed=3)
#: ~4 tiny runs: long enough to observe "running", queued backlogs, drains.
SLOW_JOB = dict(workload="MIX 01",
                schemes=["morphcache", "pipp", "dsr", "ucp"],
                preset="tiny", epochs=3, seed=5, trace=False)


@pytest.fixture(scope="module")
def svc(tmp_path_factory):
    state = tmp_path_factory.mktemp("svc-state")
    proc, client = start_service(state, "--max-jobs", "2")
    yield type("Svc", (), {"proc": proc, "client": client, "state": state})
    kill_group(proc)


class TestSmoke:
    def test_healthz_readyz_metrics(self, svc):
        assert svc.client.healthz()["status"] == "ok"
        assert svc.client.readyz()["ready"] is True
        text = svc.client.metrics_text()
        assert "repro_serve_queue_depth" in text
        assert "# TYPE repro_serve_jobs_total counter" in text

    def test_root_and_queue(self, svc):
        assert svc.client.queue()["depth"] >= 0
        conn = http.client.HTTPConnection(svc.client.host, svc.client.port,
                                          timeout=10)
        conn.request("GET", "/")
        body = json.loads(conn.getresponse().read())
        conn.close()
        assert body["service"] == "repro.serve"


class TestJobs:
    def test_submit_run_result_bit_identical_to_library(self, svc):
        submitted = svc.client.submit(tenant="alice", **FAST_JOB)
        job_id = submitted["job"]["id"]
        status = svc.client.wait_for_state(
            job_id, ("done", "partial", "failed"), timeout=120)
        assert status["state"] == "done"
        assert status["completed_runs"] == 1
        assert status["latency"]["total"] > 0
        assert {"p50", "p90", "max"} <= set(status["latency"])

        result = svc.client.result(job_id)
        assert len(result["runs"]) == 1
        run = result["runs"][0]
        assert run["scheme"] == "morphcache"
        # The service's answer is bit-identical to calling the library:
        # same spec -> same JSON, floats round-tripped exactly.
        reference = run_scheme("morphcache", Workload.from_name("MIX 01"),
                               preset("tiny"), seed=3, epochs=2)
        assert run["result"] == result_to_json(reference)
        assert run["mean_throughput"] == reference.mean_throughput

    def test_unknown_job_is_typed_404(self, svc):
        with pytest.raises(ServiceHTTPError) as excinfo:
            svc.client.job("000999-nobody")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "JobNotFoundError"
        assert excinfo.value.exit_code == 9

    def test_invalid_spec_is_typed_400(self, svc):
        with pytest.raises(ServiceHTTPError) as excinfo:
            svc.client.submit(tenant="alice", workload="quake3")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "ConfigError"

    def test_malformed_body_is_400(self, svc):
        conn = http.client.HTTPConnection(svc.client.host, svc.client.port,
                                          timeout=10)
        conn.request("POST", "/jobs", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["error"]["type"] == "ConfigError"

    def test_sse_stream_reports_progress_then_end(self, svc):
        submitted = svc.client.submit(tenant="alice", **dict(FAST_JOB, seed=4))
        job_id = submitted["job"]["id"]
        events = list(svc.client.events(job_id, timeout=120))
        kinds = [kind for kind, _ in events]
        assert kinds[0] == "job-status"
        assert "epoch" in kinds      # live per-epoch progress from the trace
        assert "run" in kinds        # the journal's completed-run envelope
        assert kinds[-1] == "end"
        assert events[-1][1]["state"] == "done"
        # Result payloads are fetched via /result, not pushed to the stream.
        for kind, payload in events:
            if kind == "run":
                assert "result" not in payload

    def test_cancel_queued_job(self, svc):
        running = svc.client.submit(tenant="carol", **SLOW_JOB)
        queued = svc.client.submit(tenant="carol", **dict(SLOW_JOB, seed=6))
        cancelled = svc.client.cancel(queued["job"]["id"])
        assert cancelled["state"] == "cancelled"
        # Idempotent: cancelling again reports the same terminal state.
        assert svc.client.cancel(queued["job"]["id"])["state"] == "cancelled"
        done = svc.client.wait_for_state(
            running["job"]["id"], ("done", "partial", "failed"), timeout=120)
        assert done["state"] == "done"


class TestAdmissionControl:
    def test_shedding_and_drain_interrupt(self, tmp_path):
        proc, client = start_service(
            tmp_path, "--max-jobs", "1", "--max-queued", "2",
            "--max-queued-per-tenant", "1")
        try:
            hog = client.submit(tenant="hog", **SLOW_JOB)
            job_dir = tmp_path / "jobs" / hog["job"]["id"]
            client.wait_for_state(hog["job"]["id"], ("running",), timeout=60)
            wait_for_journal_run(job_dir)  # provably mid-sweep

            client.submit(tenant="a", **FAST_JOB)
            with pytest.raises(ServiceHTTPError) as quota:
                client.submit(tenant="a", **FAST_JOB)
            assert quota.value.status == 429
            assert quota.value.error_type == "QuotaExceededError"

            client.submit(tenant="b", **FAST_JOB)  # queue now at its cap
            with pytest.raises(ServiceHTTPError) as saturated:
                client.submit(tenant="c", **FAST_JOB)
            assert saturated.value.status == 429
            assert saturated.value.error_type == "ServiceSaturatedError"
            assert client.queue()["depth"] == 2  # bounded: sheds not stored

            metrics = client.metrics_text()
            assert 'repro_serve_shed_total{reason="quota"} 1' in metrics
            assert 'repro_serve_shed_total{reason="saturated"} 1' in metrics

            # Drain with a job mid-flight: SIGTERM forwards to the job,
            # whose supervisor flushes its journal and exits resumable; the
            # service exits with the documented interrupted code.
            code = drain(proc)
            assert code == SweepInterrupted.exit_code
            assert (job_dir / "journal.jsonl").exists()
            assert not (job_dir / "status.json").exists()  # not terminal
        finally:
            kill_group(proc)

    def test_draining_service_sheds_with_503(self, tmp_path):
        proc, client = start_service(tmp_path, "--max-jobs", "1")
        try:
            hog = client.submit(tenant="hog", **SLOW_JOB)
            client.wait_for_state(hog["job"]["id"], ("running",), timeout=60)
            wait_for_journal_run(tmp_path / "jobs" / hog["job"]["id"])
            proc.send_signal(signal.SIGTERM)
            for _ in range(200):  # wait until the drain flips readiness
                try:
                    client.readyz()
                except ServiceHTTPError as exc:
                    assert exc.status == 503
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("readyz never reported draining")
            with pytest.raises(ServiceHTTPError) as shed:
                client.submit(tenant="late", **FAST_JOB)
            assert shed.value.status == 503
            assert shed.value.error_type == "ServiceDrainingError"
            assert proc.wait(timeout=120) == SweepInterrupted.exit_code
        finally:
            kill_group(proc)


class TestWatchdogAndDrain:
    def test_watchdog_kills_overdue_job(self, tmp_path):
        proc, client = start_service(tmp_path)
        try:
            submitted = client.submit(tenant="alice", max_seconds=0.2,
                                      **SLOW_JOB)
            status = client.wait_for_state(
                submitted["job"]["id"], ("done", "partial", "failed"),
                timeout=120)
            assert status["state"] == "failed"
            assert status["error"]["type"] == "JobTimeoutError"
            assert "watchdog" in status["error"]["message"]
            # Idle again after the kill: a clean drain exits 0.
            assert drain(proc) == 0
        finally:
            kill_group(proc)

    def test_idle_drain_exits_zero(self, tmp_path):
        proc, client = start_service(tmp_path)
        try:
            assert drain(proc) == 0
        finally:
            kill_group(proc)


class TestFairness:
    def test_equal_tenants_share_the_service(self, tmp_path):
        # Acceptance: two equal-quota tenants submitting simultaneously
        # each complete >= 40% of all finished jobs.  With one executor
        # slot, stride scheduling makes the dispatch order alternate.
        proc, client = start_service(
            tmp_path, "--max-jobs", "1", "--max-queued-per-tenant", "4")
        try:
            job = dict(FAST_JOB, epochs=1, trace=False)
            ids = []
            for seed in range(3):
                ids.append(client.submit(tenant="alice",
                                         **dict(job, seed=seed))["job"]["id"])
            for seed in range(3):
                ids.append(client.submit(tenant="bob",
                                         **dict(job, seed=seed))["job"]["id"])
            finished = [client.wait_for_state(job_id, ("done",), timeout=240)
                        for job_id in ids]
            by_order = sorted(finished, key=lambda s: s["started_order"])
            dispatched = [s["tenant"] for s in by_order]
            assert dispatched == ["alice", "bob"] * 3  # perfect alternation
            for window in (2, 4, 6):
                share = dispatched[:window].count("alice") / window
                assert share >= 0.4
            assert drain(proc) == 0
        finally:
            kill_group(proc)
