"""Tests for restart-time recovery: classifying the service's state dir.

Job directories are fabricated on disk exactly as the service writes them
(durable spec.json, real sweep journals via SweepJournal, durable
status.json), then classified — no service process needed to prove the
recovery contract.
"""

import json

import pytest

from repro.serve.jobs import (
    Job,
    JobSpec,
    job_id,
    spec_record,
    write_json_durable,
)
from repro.serve.recovery import recover_job_dir, recover_state
from repro.sim.engine import EpochResult, RunResult
from repro.sim.supervisor import SweepJournal

PAYLOAD = {"tenant": "alice", "workload": "MIX 01",
           "schemes": ["morphcache", "pipp"], "epochs": 2, "seed": 3}


def _result(seed=1.0):
    return RunResult(workload_name="MIX 01", scheme_name="morphcache",
                     epochs=[EpochResult(epoch=0, ipcs={0: seed},
                                         misses={0: 1},
                                         topology_label=None)])


def _make_job_dir(root, seq=1, payload=PAYLOAD, tenant="alice"):
    payload = {**payload, "tenant": tenant}
    spec = JobSpec.from_payload(payload)
    job = Job(id=job_id(seq, tenant), seq=seq, spec=spec,
              job_dir=root / "jobs" / job_id(seq, tenant))
    job.job_dir.mkdir(parents=True)
    write_json_durable(job.job_dir / "spec.json", spec_record(job))
    return job


def _write_journal(job, completed=(), close=True):
    keys = job.spec.journal_keys(job.job_dir)
    journal = SweepJournal.create(job.journal_path, keys)
    for index in completed:
        journal.record_run(index, keys[index], attempts=1, elapsed=0.5,
                           result=_result(float(index + 1)))
    if close:
        journal.close()
    return journal


class TestClassification:
    def test_admitted_but_never_started_is_queued(self, tmp_path):
        job = _make_job_dir(tmp_path)
        entry = recover_job_dir(job.job_dir)
        assert entry.phase == "queued"
        assert entry.job.resume is False
        assert entry.job.spec == job.spec

    def test_partial_journal_is_interrupted_and_resumable(self, tmp_path):
        job = _make_job_dir(tmp_path)
        _write_journal(job, completed=[0])
        entry = recover_job_dir(job.job_dir)
        assert entry.phase == "interrupted"
        assert entry.job.resume is True
        assert entry.summary.completed == [0]
        assert entry.summary.missing == 1

    def test_torn_journal_tail_still_resumable(self, tmp_path):
        # A SIGKILL mid-write leaves a truncated final line; every durable
        # record before it is still good.
        job = _make_job_dir(tmp_path)
        _write_journal(job, completed=[0])
        with open(job.journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"kind":"run","index":1,"key"')
        entry = recover_job_dir(job.job_dir)
        assert entry.phase == "interrupted"
        assert entry.summary.truncated_tail
        assert entry.summary.completed == [0]

    def test_foreign_journal_restarts_fresh(self, tmp_path):
        # A journal whose header does not match this job's spec keys is
        # untrustworthy: requeue from scratch rather than resume wrong data.
        job = _make_job_dir(tmp_path)
        SweepJournal.create(job.journal_path, ["bogus-key"]).close()
        entry = recover_job_dir(job.job_dir)
        assert entry.phase == "queued"
        assert entry.job.resume is False

    def test_terminal_status_wins(self, tmp_path):
        job = _make_job_dir(tmp_path)
        _write_journal(job, completed=[0, 1])
        job.state = "done"
        job.exit_code = 0
        job.completed_runs = 2
        job.latency = {"total": 1.25, "p50": 0.5, "p90": 0.6, "max": 0.6}
        job.write_status()
        entry = recover_job_dir(job.job_dir)
        assert entry.phase == "terminal"
        assert entry.job.state == "done"
        assert entry.job.completed_runs == 2
        assert entry.job.latency["total"] == 1.25

    @pytest.mark.parametrize("torn", [
        b"",                       # crash before the first byte landed
        b'{"state": "done", "ex',  # classic torn tail
        b"null",                   # valid JSON, not an object
        b"[1, 2]",                 # valid JSON, wrong shape
        b"\x00\xff garbage",       # not JSON at all
    ], ids=["empty", "truncated", "null", "list", "binary"])
    def test_torn_status_is_interrupted_not_a_crash(self, tmp_path, torn):
        # status.json is written durably (tmp + fsync + rename), so a torn
        # or non-object file means completion never became durable: the
        # journal decides, and a partial journal resumes.  Before this
        # tolerance, recovery died with JSONDecodeError and took the whole
        # restart down with it.
        job = _make_job_dir(tmp_path)
        _write_journal(job, completed=[0])
        (job.job_dir / "status.json").write_bytes(torn)
        entry = recover_job_dir(job.job_dir)
        assert entry.phase == "interrupted"
        assert entry.job.resume is True
        assert entry.summary.completed == [0]

    def test_torn_status_without_journal_is_queued(self, tmp_path):
        job = _make_job_dir(tmp_path)
        (job.job_dir / "status.json").write_text('{"sta')
        entry = recover_job_dir(job.job_dir)
        assert entry.phase == "queued"
        assert entry.job.resume is False

    def test_status_lease_provenance_is_recovered(self, tmp_path):
        # Pool workers stamp the raw fencing token plus a worker field
        # into the terminal status; recovery must normalise it to the
        # dict shape the service keeps in memory.
        job = _make_job_dir(tmp_path)
        _write_journal(job, completed=[0, 1])
        job.state = "done"
        job.exit_code = 0
        job.write_status()
        status = json.loads((job.job_dir / "status.json").read_text())
        status["lease"] = "2:bravo"
        status["worker"] = "bravo"
        write_json_durable(job.job_dir / "status.json", status)
        entry = recover_job_dir(job.job_dir)
        assert entry.phase == "terminal"
        assert entry.job.lease == {"token": "2:bravo", "worker": "bravo"}

    def test_torn_spec_is_skipped_not_guessed(self, tmp_path):
        job_dir = tmp_path / "jobs" / "000009-evil"
        job_dir.mkdir(parents=True)
        (job_dir / "spec.json").write_text('{"id": "000009-ev')
        assert recover_job_dir(job_dir) is None
        report = recover_state(tmp_path)
        assert report.jobs == []
        assert report.skipped == ["000009-evil"]


class TestStateScan:
    def test_seq_order_and_next_seq(self, tmp_path):
        for seq, tenant in ((3, "bob"), (1, "alice"), (2, "alice")):
            _make_job_dir(tmp_path, seq=seq, tenant=tenant)
        report = recover_state(tmp_path)
        assert [e.job.seq for e in report.jobs] == [1, 2, 3]
        assert report.next_seq == 4

    def test_mixed_phases(self, tmp_path):
        done = _make_job_dir(tmp_path, seq=1)
        _write_journal(done, completed=[0, 1])
        done.state = "done"
        done.write_status()
        crashed = _make_job_dir(tmp_path, seq=2, tenant="bob")
        _write_journal(crashed, completed=[0])
        _make_job_dir(tmp_path, seq=3, tenant="carol")

        report = recover_state(tmp_path)
        assert [e.phase for e in report.jobs] == ["terminal", "interrupted",
                                                 "queued"]
        assert len(report.terminal) == 1
        assert len(report.interrupted) == 1
        assert len(report.queued) == 1

    def test_empty_or_missing_dir(self, tmp_path):
        report = recover_state(tmp_path / "nothing-here")
        assert report.jobs == [] and report.next_seq == 1
