"""Pool chaos: SIGKILL'd and SIGSTOP'd workers, adoption, fencing.

The acceptance scenario for the horizontal pool: kill a worker holding a
lease mid-sweep, watch a peer claim the next fence after the heartbeat
TTL, and prove the adopted job's per-epoch results are byte-identical to
the golden fixture captured from an uninterrupted run.  The SIGSTOP
variant revives the original holder as a zombie and proves its stale
writes are rejected (exit code 10) instead of corrupting the adopter's
output.

Slow (multi-process, real TTL waits); CI runs this as the non-gating
`pool-chaos` job.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

from repro.serve.jobs import JOURNAL_FILE, JobSpec, STATUS_FILE
from repro.serve.lease import read_lease
from repro.serve.pool import SharedPool, pool_status
from repro.sim.supervisor import (
    SweepJournal,
    inspect_journal,
    result_from_json,
)

from tests.serve.conftest import REPO, wait_for_journal_run

#: Same fixture the service chaos suite pins against (tests/serve/test_chaos.py).
GOLDEN = json.loads((pathlib.Path(__file__).parents[1] / "sim"
                     / "golden_tiny_mix01.json").read_text())

#: The golden sweep, serialised (jobs=1) so the kill window spans the whole
#: ~2s sweep instead of a fraction of it.  Determinism makes the results
#: independent of the jobs count, so the jobs=2 fixture still applies.
SCHEMES = ["morphcache", "(16:1:1)", "(1:1:16)", "(4:4:1)", "(8:2:1)",
           "(1:16:1)"]
GOLDEN_SPEC = dict(workload="MIX 01", schemes=SCHEMES, preset="tiny",
                   epochs=3, seed=7, jobs=1, trace=False, tenant="alice")

#: Fast heartbeats so the suite waits ~0.6s for expiry, not the default 3s.
HEARTBEAT, MISSES = 0.2, 3


def start_worker(pool_dir, worker_id, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env.pop("REPRO_JOBS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--pool", str(pool_dir),
         "--worker-id", worker_id, *extra],
        env=env, cwd=str(REPO), start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def kill_worker(proc):
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait()


def make_golden_pool(tmp_path):
    pool = SharedPool.ensure(tmp_path / "pool", heartbeat=HEARTBEAT,
                             misses=MISSES)
    job = pool.admit(JobSpec.from_payload(dict(GOLDEN_SPEC)))
    return pool, job


def assert_golden(job):
    """Every run completed; the fixture-pinned schemes match it exactly."""
    records = SweepJournal.load_completed(
        job.job_dir / JOURNAL_FILE, job.spec.journal_keys(job.job_dir))
    assert sorted(records) == list(range(len(SCHEMES)))
    for index, scheme in enumerate(SCHEMES):
        if scheme not in GOLDEN:
            continue  # the fixture pins a representative subset
        got = result_from_json(records[index]["result"])
        expected = GOLDEN[scheme]
        assert len(got.epochs) == len(expected["epochs"])
        for got_epoch, want in zip(got.epochs, expected["epochs"]):
            assert got_epoch.epoch == want["epoch"]
            assert got_epoch.topology_label == want["topology_label"]
            assert ({str(c): repr(v) for c, v in got_epoch.ipcs.items()}
                    == want["ipcs"])
            assert ({str(c): v for c, v in got_epoch.misses.items()}
                    == want["misses"])


def test_sigkill_holder_peer_adopts_bit_identically(tmp_path):
    pool, job = make_golden_pool(tmp_path)

    alpha = start_worker(pool.root, "alpha")
    try:
        wait_for_journal_run(job.job_dir, timeout=120)
    finally:
        kill_worker(alpha)  # mid-sweep: journal has >=1 run, no status

    assert not (job.job_dir / STATUS_FILE).exists()
    before = inspect_journal(job.job_dir / JOURNAL_FILE)
    assert before.leases == ["1:alpha"]

    bravo = start_worker(pool.root, "bravo", "--drain")
    out, err = bravo.communicate(timeout=300)
    assert bravo.returncode == 0, f"adopter failed: {err}"

    # The adopter waited out the TTL, won fence 2, resumed the journal.
    status = json.loads((job.job_dir / STATUS_FILE).read_text())
    assert status["state"] == "done"
    assert status["worker"] == "bravo"
    assert status["lease"] == "2:bravo"
    lease = read_lease(job.job_dir)
    assert lease.fence == 2
    assert lease.released
    assert lease.reclaims == 1

    after = inspect_journal(job.job_dir / JOURNAL_FILE)
    assert after.leases == ["1:alpha", "2:bravo"]
    assert after.adoptions == 1
    assert after.resumes >= 1
    assert after.complete
    # Nothing alpha completed was recomputed.
    assert set(before.completed) <= set(after.completed)

    assert pool_status(pool.root)["reclaims"] == 1
    assert_golden(job)


def test_sigstop_zombie_writes_rejected_after_adoption(tmp_path):
    pool, job = make_golden_pool(tmp_path)

    zombie = start_worker(pool.root, "zombie")
    try:
        wait_for_journal_run(job.job_dir, timeout=120)
        os.killpg(zombie.pid, signal.SIGSTOP)  # freeze mid-sweep

        adopter = start_worker(pool.root, "adopter", "--drain")
        out, err = adopter.communicate(timeout=300)
        assert adopter.returncode == 0, f"adopter failed: {err}"
        status = json.loads((job.job_dir / STATUS_FILE).read_text())
        assert status["worker"] == "adopter"

        # Revive the zombie: its very next fenced write (journal guard or
        # heartbeat renew) must see fence 2 and abort with exit code 10 —
        # LeaseLostError — never append stale records.
        os.killpg(zombie.pid, signal.SIGCONT)
        assert zombie.wait(timeout=120) == 10
    finally:
        kill_worker(zombie)

    after = inspect_journal(job.job_dir / JOURNAL_FILE)
    assert after.leases == ["1:zombie", "2:adopter"]  # no third entry: the
    assert after.adoptions == 1                       # zombie wrote nothing
    status = json.loads((job.job_dir / STATUS_FILE).read_text())
    assert status["state"] == "done"
    assert status["lease"] == "2:adopter"
    assert_golden(job)


def test_serial_worker_baseline_matches_golden(tmp_path):
    """Control: one worker, no chaos, same fixture — pins that the golden
    comparison itself is sound before the two kill variants rely on it."""
    pool, job = make_golden_pool(tmp_path)
    solo = start_worker(pool.root, "solo", "--drain")
    out, err = solo.communicate(timeout=300)
    assert solo.returncode == 0, f"worker failed: {err}"
    status = json.loads((job.job_dir / STATUS_FILE).read_text())
    assert status["state"] == "done"
    summary = inspect_journal(job.job_dir / JOURNAL_FILE)
    assert summary.leases == ["1:solo"]
    assert summary.adoptions == 0
    assert_golden(job)
