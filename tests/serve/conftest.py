"""Shared harness for service tests: boot, discover, drain, kill.

The service under test always runs as a real subprocess in its own session
(``start_new_session=True``) so chaos tests can SIGKILL the whole process
group — service *and* its spawned job processes — exactly like a machine
loss, without orphaning workers into the test run.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).parents[2]


def start_service(state_dir, *extra, wait_ready=True, timeout=60.0):
    """Boot ``repro serve`` on an OS-assigned port; returns (proc, client)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env.pop("REPRO_JOBS", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir), "--port", "0", *extra],
        env=env, cwd=str(REPO), start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    if not wait_ready:
        return proc, None
    return proc, wait_for_ready(state_dir, proc, timeout=timeout)


def wait_for_ready(state_dir, proc=None, timeout=60.0):
    """Poll until ``readyz`` says ready; returns a connected client."""
    from repro.serve.client import ServiceClient

    info = pathlib.Path(state_dir) / "serve.json"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc is not None and proc.poll() is not None:
            raise AssertionError(
                f"service exited {proc.returncode} during startup:\n"
                f"{proc.stderr.read()}")
        if info.exists():
            try:
                client = ServiceClient.from_state_dir(state_dir, timeout=10.0)
                if client.readyz().get("ready"):
                    return client
            except Exception:
                pass  # stale serve.json from a previous boot, or not bound yet
        time.sleep(0.05)
    raise AssertionError(f"service not ready within {timeout:g}s")


def wait_for_journal_run(job_dir, timeout=60.0):
    """Block until the job's journal holds >= 1 completed-run record.

    The definition of "mid-sweep": the spawned job process is past its
    bootstrap, the journal header is durable, and at least one run result
    landed — so a kill/drain now provably interrupts in-flight work.
    """
    journal = pathlib.Path(job_dir) / "journal.jsonl"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists() and '"kind":"run"' in journal.read_text():
            return
        time.sleep(0.05)
    raise AssertionError(f"no run record in {journal} within {timeout:g}s")


def drain(proc, timeout=120.0):
    """SIGTERM the service and return its exit code."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        return proc.wait(timeout=timeout)
    finally:
        if proc.poll() is None:
            kill_group(proc)


def kill_group(proc):
    """SIGKILL the service's whole process group (service + job children)."""
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except ProcessLookupError:
        pass
    proc.wait()
