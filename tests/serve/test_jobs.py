"""Tests for the service's job model: validation, round-trips, layout."""

import pathlib

import pytest

from repro.resilience.errors import ConfigError
from repro.serve.jobs import (
    Job,
    JobSpec,
    job_id,
    known_schemes,
    read_json,
    spec_record,
    write_json_durable,
)

GOOD = {"tenant": "alice", "workload": "MIX 01"}


def _spec(**overrides):
    return JobSpec.from_payload({**GOOD, **overrides})


class TestValidation:
    def test_minimal_payload_defaults(self):
        spec = _spec()
        assert spec.tenant == "alice"
        assert spec.schemes == ("morphcache",)
        assert spec.preset == "tiny"
        assert spec.seed == 1 and spec.engine == "event"

    def test_not_an_object(self):
        with pytest.raises(ConfigError):
            JobSpec.from_payload([1, 2])
        with pytest.raises(ConfigError):
            JobSpec.from_payload(None)

    def test_unknown_field_named_in_error(self):
        with pytest.raises(ConfigError, match="bogus"):
            _spec(bogus=1)

    @pytest.mark.parametrize("tenant", ["", "a b", "x" * 33, 7, None,
                                        "-leading"])
    def test_bad_tenant(self, tenant):
        with pytest.raises(ConfigError, match="tenant"):
            JobSpec.from_payload({"tenant": tenant, "workload": "MIX 01"})

    def test_bad_workload(self):
        with pytest.raises(ConfigError, match="workload"):
            _spec(workload="quake3")

    def test_scheme_and_schemes_conflict(self):
        with pytest.raises(ConfigError, match="schemes"):
            _spec(scheme="morphcache", schemes=["pipp"])

    def test_unknown_scheme(self):
        with pytest.raises(ConfigError, match="schemes"):
            _spec(schemes=["morphcache", "nope"])

    def test_scheme_string_becomes_singleton(self):
        assert _spec(scheme="pipp").schemes == ("pipp",)

    @pytest.mark.parametrize("field,value", [
        ("preset", "galactic"), ("epochs", 0), ("epochs", "three"),
        ("seed", 1.5), ("engine", "quantum"), ("jobs", 0), ("retries", -1),
        ("run_timeout", 0), ("max_seconds", -3), ("trace", "yes"),
    ])
    def test_bad_field_values(self, field, value):
        with pytest.raises(ConfigError, match=field):
            _spec(**{field: value})

    def test_known_schemes_cover_paper_set(self):
        legal = known_schemes()
        for scheme in ("morphcache", "pipp", "dsr", "ucp", "(16:1:1)"):
            assert scheme in legal


class TestRoundTrip:
    def test_payload_round_trips(self):
        spec = _spec(schemes=["morphcache", "pipp"], epochs=5, seed=9,
                     engine="batch", jobs=2, run_timeout=1.5, retries=2,
                     max_seconds=60.0, trace=False)
        assert JobSpec.from_payload(spec.payload()) == spec

    def test_to_runspecs_and_keys(self, tmp_path):
        spec = _spec(schemes=["morphcache", "pipp"], epochs=2, seed=4)
        specs = spec.to_runspecs(tmp_path)
        assert [s.scheme for s in specs] == ["morphcache", "pipp"]
        assert specs[0].trace_path == str(tmp_path / "trace_0.jsonl")
        # Trace paths are not part of the journal key: recovery rebuilds
        # specs in a (possibly different) job dir and must match the
        # crashed run's journal.
        assert spec.journal_keys(tmp_path) == spec.journal_keys(None)

    def test_trace_off_means_no_trace_paths(self, tmp_path):
        specs = _spec(trace=False).to_runspecs(tmp_path)
        assert all(s.trace_path is None for s in specs)


class TestDurableLayout:
    def test_job_id_sorts_by_seq(self):
        ids = [job_id(seq, "t") for seq in (1, 2, 10, 100)]
        assert ids == sorted(ids)

    def test_write_json_durable_round_trips(self, tmp_path):
        path = tmp_path / "x.json"
        write_json_durable(path, {"a": 1})
        write_json_durable(path, {"a": 2})  # atomic replace
        assert read_json(path) == {"a": 2}
        assert not path.with_suffix(".json.tmp").exists()

    def test_spec_record_and_status_payload(self, tmp_path):
        spec = _spec()
        job = Job(id=job_id(3, "alice"), seq=3, spec=spec,
                  job_dir=tmp_path)
        record = spec_record(job)
        assert record["id"] == "000003-alice"
        assert JobSpec.from_payload(record["spec"]) == spec
        job.write_status()
        assert read_json(tmp_path / "status.json")["state"] == "queued"
