"""Tests for multi-tenant admission control and weighted-fair dispatch.

Pure unit tests against stub items — the queue is deliberately duck-typed
(anything with ``id``/``tenant``/``seq``), so fairness, shedding and
determinism are provable without a service, a process or a socket.
"""

from dataclasses import dataclass

import pytest

from repro.resilience.errors import (
    ConfigError,
    QuotaExceededError,
    ServiceSaturatedError,
)
from repro.serve.queue import FairQueue, TenantQuota


@dataclass
class Item:
    id: str
    tenant: str
    seq: int


def _items(tenant, count, start=1):
    return [Item(id=f"{seq:06d}-{tenant}", tenant=tenant, seq=seq)
            for seq in range(start, start + count)]


def _drain(queue, releases=True):
    """Dispatch everything, releasing each slot immediately; tenant order."""
    order = []
    while True:
        item = queue.next_runnable()
        if item is None:
            return order
        order.append(item.tenant)
        if releases:
            queue.release(item.tenant)


class TestQuotaValidation:
    def test_bad_weight(self):
        with pytest.raises(ConfigError):
            TenantQuota(weight=0)

    def test_bad_caps(self):
        with pytest.raises(ConfigError):
            TenantQuota(max_queued=0)
        with pytest.raises(ConfigError):
            TenantQuota(max_running=0)

    def test_bad_global_bound(self):
        with pytest.raises(ConfigError):
            FairQueue(max_queued=0)


class TestAdmission:
    def test_global_saturation_sheds_typed_429(self):
        queue = FairQueue(max_queued=2,
                          default_quota=TenantQuota(max_queued=10))
        for item in _items("a", 2):
            queue.submit(item)
        with pytest.raises(ServiceSaturatedError) as excinfo:
            queue.submit(Item("x", "b", 3))
        assert excinfo.value.http_status == 429
        assert queue.depth == 2  # the shed submission was never stored

    def test_tenant_quota_sheds_typed_429(self):
        queue = FairQueue(max_queued=10,
                          default_quota=TenantQuota(max_queued=1))
        queue.submit(Item("a1", "a", 1))
        with pytest.raises(QuotaExceededError) as excinfo:
            queue.submit(Item("a2", "a", 2))
        assert excinfo.value.http_status == 429
        # Another tenant is unaffected by a's quota.
        queue.submit(Item("b1", "b", 3))
        assert queue.tenant_depth("a") == 1
        assert queue.tenant_depth("b") == 1

    def test_burst_memory_is_bounded_by_the_cap(self):
        queue = FairQueue(max_queued=4,
                          default_quota=TenantQuota(max_queued=100))
        shed = 0
        for item in _items("a", 1000):
            try:
                queue.submit(item)
            except ServiceSaturatedError:
                shed += 1
        assert queue.depth == 4
        assert shed == 996

    def test_restore_bypasses_caps(self):
        # Recovery re-admits jobs that were already admitted pre-crash;
        # bouncing them would turn a restart into data loss.
        queue = FairQueue(max_queued=1)
        for item in _items("a", 5):
            queue.restore(item)
        assert queue.tenant_depth("a") == 5


class TestFairness:
    def test_equal_weights_alternate(self):
        queue = FairQueue()
        for item in _items("a", 4, start=1):
            queue.submit(item)
        for item in _items("b", 4, start=10):
            queue.submit(item)
        order = _drain(queue)
        assert order == ["a", "b", "a", "b", "a", "b", "a", "b"]
        # Acceptance bar: each equal-quota tenant gets >= 40% of any window.
        for window in (2, 4, 6, 8):
            share_a = order[:window].count("a") / window
            assert 0.4 <= share_a <= 0.6

    def test_double_weight_gets_double_share(self):
        queue = FairQueue(quotas={"heavy": TenantQuota(weight=2.0)})
        for item in _items("heavy", 8, start=1):
            queue.submit(item)
        for item in _items("light", 8, start=100):
            queue.submit(item)
        order = _drain(queue)
        assert order[:6].count("heavy") == 4  # 2:1 in every window
        assert order[:6].count("light") == 2

    def test_late_arrival_cannot_bank_idle_credit(self):
        queue = FairQueue()
        for item in _items("a", 6, start=1):
            queue.submit(item)
        # a runs alone for a while...
        for _ in range(3):
            item = queue.next_runnable()
            assert item.tenant == "a"
            queue.release(item.tenant)
        # ...then b arrives: it must share from *now*, not claim the past.
        for item in _items("b", 6, start=100):
            queue.submit(item)
        order = _drain(queue)
        assert order[0] == "b"  # b starts at the current virtual time
        assert order[1] == "a"  # and then they alternate
        assert order[:6].count("a") >= 2

    def test_flood_cannot_starve_a_backlogged_tenant(self):
        queue = FairQueue(max_queued=1000,
                          default_quota=TenantQuota(max_queued=1000))
        for item in _items("quiet", 2, start=1):
            queue.submit(item)
        for item in _items("flood", 500, start=1000):
            queue.submit(item)
        order = _drain(queue)
        # The quiet tenant's two jobs both dispatch within the first four.
        assert order[:4].count("quiet") == 2


class TestDispatchMechanics:
    def test_within_tenant_fifo_by_seq(self):
        queue = FairQueue()
        queue.submit(Item("a2", "a", 2))
        queue.submit(Item("a5", "a", 5))
        queue.submit(Item("a7", "a", 7))
        ids = []
        while True:
            item = queue.next_runnable()
            if item is None:
                break
            ids.append(item.id)
            queue.release("a")
        assert ids == ["a2", "a5", "a7"]

    def test_max_running_gates_dispatch_until_release(self):
        queue = FairQueue(default_quota=TenantQuota(max_running=1))
        queue.submit(Item("a1", "a", 1))
        queue.submit(Item("a2", "a", 2))
        first = queue.next_runnable()
        assert first.id == "a1"
        assert queue.next_runnable() is None  # a is at its running cap
        queue.release("a")
        assert queue.next_runnable().id == "a2"

    def test_requeue_front_preserves_priority(self):
        queue = FairQueue()
        queue.submit(Item("a1", "a", 1))
        queue.submit(Item("a2", "a", 2))
        first = queue.next_runnable()
        queue.release("a")
        queue.requeue_front(first)  # e.g. the job's process crashed
        assert queue.next_runnable().id == "a1"

    def test_cancel_removes_only_the_target(self):
        queue = FairQueue()
        for item in _items("a", 3):
            queue.submit(item)
        cancelled = queue.cancel("000002-a")
        assert cancelled.seq == 2
        assert queue.cancel("000002-a") is None
        ids = []
        while True:
            item = queue.next_runnable()
            if item is None:
                break
            ids.append(item.seq)
            queue.release("a")
        assert ids == [1, 3]

    def test_deterministic_tie_break(self):
        # Same submissions -> same dispatch order, every time.
        def build():
            queue = FairQueue()
            queue.submit(Item("b1", "b", 4))
            queue.submit(Item("a1", "a", 2))
            queue.submit(Item("c1", "c", 9))
            return _drain(queue)

        assert build() == build() == ["a", "b", "c"]

    def test_snapshot_and_position(self):
        queue = FairQueue()
        for item in _items("a", 2):
            queue.submit(item)
        snap = queue.snapshot()
        assert snap["depth"] == 2
        assert snap["tenants"]["a"]["queued"] == ["000001-a", "000002-a"]
        assert queue.position("000002-a") == 1
        assert queue.position("nope") is None
