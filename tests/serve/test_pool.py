"""Shared worker pool tests: admission, claiming, draining, smoke.

The capstone here is the pool-smoke scenario (also a gating CI job): two
real worker processes drain a 20-job queue cooperatively and every job's
results are identical to computing the same spec serially in-process —
horizontal scale must be a pure wall-clock optimisation, never a results
change.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

from repro.resilience.errors import PoolCorruptError
from repro.serve.jobs import JOURNAL_FILE, JobSpec, STATUS_FILE
from repro.serve.lease import acquire, read_lease
from repro.serve.pool import (
    POOL_FILE,
    PoolConfig,
    SharedPool,
    pool_status,
    run_worker,
)

REPO = pathlib.Path(__file__).parents[2]

TINY = dict(workload="MIX 01", schemes=["morphcache"], preset="tiny",
            epochs=2, seed=7, trace=False)


def make_spec(**over):
    payload = dict(TINY, tenant="t1")
    payload.update(over)
    return JobSpec.from_payload(payload)


def make_pool(tmp_path, heartbeat=0.2, misses=3):
    return SharedPool.ensure(tmp_path / "pool", heartbeat=heartbeat,
                             misses=misses)


# -- pool creation -----------------------------------------------------------

def test_ensure_creates_layout_and_config(tmp_path):
    pool = make_pool(tmp_path, heartbeat=0.5, misses=4)
    assert (pool.root / POOL_FILE).exists()
    assert (pool.root / "jobs").is_dir()
    assert (pool.root / "staging").is_dir()
    assert (pool.root / "workers").is_dir()
    assert pool.config.ttl == pytest.approx(2.0)


def test_existing_pool_config_wins_over_flags(tmp_path):
    make_pool(tmp_path, heartbeat=0.5, misses=4)
    reopened = SharedPool.ensure(tmp_path / "pool", heartbeat=9.0, misses=9)
    assert reopened.config.heartbeat == pytest.approx(0.5)
    assert reopened.config.misses == 4


def test_torn_pool_file_is_pool_corrupt(tmp_path):
    pool = make_pool(tmp_path)
    (pool.root / POOL_FILE).write_text('{"version": 1, "heart')
    with pytest.raises(PoolCorruptError):
        SharedPool.open(pool.root)


def test_open_requires_existing_pool(tmp_path):
    with pytest.raises(PoolCorruptError):
        SharedPool.open(tmp_path / "nope")


def test_pool_config_validation():
    with pytest.raises(PoolCorruptError):
        PoolConfig(heartbeat=0.0)
    with pytest.raises(PoolCorruptError):
        PoolConfig(misses=0)


# -- admission ---------------------------------------------------------------

def test_admit_is_atomic_and_sequential(tmp_path):
    pool = make_pool(tmp_path)
    a = pool.admit(make_spec())
    b = pool.admit(make_spec(tenant="t2"))
    assert (a.seq, b.seq) == (1, 2)
    assert a.id == "000001-t1"
    assert (a.job_dir / "spec.json").exists()
    # Nothing half-admitted lingers in staging.
    assert os.listdir(pool.root / "staging") == []


def test_admit_seq_survives_restart_scan(tmp_path):
    pool = make_pool(tmp_path)
    pool.admit(make_spec())
    again = SharedPool.open(tmp_path / "pool")
    assert again.admit(make_spec()).seq == 2


# -- claiming ----------------------------------------------------------------

def test_claim_next_in_seq_order(tmp_path):
    pool = make_pool(tmp_path)
    first = pool.admit(make_spec())
    pool.admit(make_spec(tenant="t2"))
    job, handle, resume = pool.claim_next("w0")
    assert job.id == first.id
    assert handle.fence == 1
    assert resume is False
    # The claimed job is skipped; the next claim gets job 2.
    job2, handle2, _ = pool.claim_next("w0")
    assert job2.seq == 2
    handle.release()
    handle2.release()


def test_claim_next_skips_terminal_and_empty(tmp_path):
    pool = make_pool(tmp_path)
    assert pool.claim_next("w0") is None
    job = pool.admit(make_spec())
    (job.job_dir / STATUS_FILE).write_text(json.dumps({"state": "done"}))
    assert pool.claim_next("w0") is None
    assert pool.all_terminal()


def test_claim_next_releases_on_cancel_race(tmp_path):
    # A cancelled status landing between the scan and the claim must not
    # leave the job leased.
    pool = make_pool(tmp_path)
    job = pool.admit(make_spec())
    real_acquire = acquire

    def racing_acquire(job_dir, owner, ttl):
        handle = real_acquire(job_dir, owner, ttl)
        (pathlib.Path(job_dir) / STATUS_FILE).write_text(
            json.dumps({"state": "cancelled"}))
        return handle

    import repro.serve.pool as pool_mod
    original = pool_mod.acquire
    pool_mod.acquire = racing_acquire
    try:
        assert pool.claim_next("w0") is None
    finally:
        pool_mod.acquire = original
    state = read_lease(job.job_dir)
    assert state.released  # claimed, noticed the status, released


def test_claim_adopts_interrupted_job_with_resume(tmp_path):
    pool = make_pool(tmp_path)
    job = pool.admit(make_spec())
    # A real partial journal: run the sweep once, keep the journal,
    # delete the status — exactly the disk state a crashed worker leaves.
    assert run_worker(pool.root, "first", drain=True) == 1
    (job.job_dir / STATUS_FILE).unlink()
    claimed, handle, resume = pool.claim_next("adopter")
    assert claimed.id == job.id
    assert resume is True
    assert handle.fence == 2  # first's released fence is history
    handle.release()


# -- the worker loop ---------------------------------------------------------

def test_run_worker_drains_and_writes_fenced_status(tmp_path):
    pool = make_pool(tmp_path)
    jobs = [pool.admit(make_spec(seed=seed)) for seed in (7, 8)]
    assert run_worker(pool.root, "w0", drain=True) == 2
    for job in jobs:
        status = json.loads((job.job_dir / STATUS_FILE).read_text())
        assert status["state"] == "done"
        assert status["worker"] == "w0"
        assert status["lease"] == "1:w0"
        state = read_lease(job.job_dir)
        assert state.released
    # Worker liveness landed too.
    heartbeat = json.loads(
        (pool.root / "workers" / "w0.json").read_text())
    assert heartbeat["jobs_done"] == 2
    assert heartbeat["running"] is None


def test_run_worker_drain_on_empty_pool(tmp_path):
    pool = make_pool(tmp_path)
    assert run_worker(pool.root, "w0", drain=True) == 0


def test_run_worker_max_jobs(tmp_path):
    pool = make_pool(tmp_path)
    for seed in (1, 2, 3):
        pool.admit(make_spec(seed=seed))
    assert run_worker(pool.root, "w0", max_jobs=1) == 1
    assert not pool.all_terminal()


def test_failed_job_gets_fenced_failure_status(tmp_path):
    # An unopenable journal path (a directory squatting on the name) makes
    # the supervisor raise CheckpointError — a typed ReproError the worker
    # must convert into a durable, fenced `failed` status instead of
    # crashing the loop.
    pool = make_pool(tmp_path)
    job = pool.admit(make_spec())
    (job.job_dir / JOURNAL_FILE).mkdir()
    assert run_worker(pool.root, "w0", drain=True) == 1
    status = json.loads((job.job_dir / STATUS_FILE).read_text())
    assert status["state"] == "failed"
    assert status["worker"] == "w0"
    assert status["error"]["type"] == "CheckpointError"
    assert (job.job_dir / "error.json").exists()
    assert read_lease(job.job_dir).released
    assert pool.all_terminal()


def test_pool_status_shape(tmp_path):
    pool = make_pool(tmp_path)
    job = pool.admit(make_spec())
    run_worker(pool.root, "w0", drain=True)
    status = pool_status(pool.root)
    assert status["counts"] == {"done": 1}
    assert status["reclaims"] == 0
    assert status["config"]["ttl"] == pytest.approx(pool.config.ttl)
    (entry,) = status["jobs"]
    assert entry["id"] == job.id
    assert entry["state"] == "done"
    assert entry["worker"] == "w0"
    assert entry["lease"]["released"] is True
    (worker,) = status["workers"]
    assert worker["worker"] == "w0"
    assert worker["jobs_done"] == 1


# -- pool smoke: two real workers, serial-identical results ------------------

def _start_worker(pool_dir, worker_id):
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO / "src") + os.pathsep
                         + env.get("PYTHONPATH", ""))
    env.pop("REPRO_JOBS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--pool", str(pool_dir),
         "--worker-id", worker_id, "--drain"],
        env=env, cwd=str(REPO), start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def test_pool_smoke_two_workers_match_serial(tmp_path):
    """Two worker processes drain 20 jobs; every result is bit-identical
    to the same spec computed serially in this process."""
    from repro.config import preset
    from repro.sim.experiment import run_scheme
    from repro.sim.supervisor import (
        SweepJournal,
        inspect_journal,
        result_from_json,
    )
    from repro.sim.workload import Workload

    pool = make_pool(tmp_path, heartbeat=0.5, misses=4)
    seeds = [1 + (i % 4) for i in range(20)]
    jobs = [pool.admit(make_spec(seed=seed)) for seed in seeds]

    workers = [_start_worker(pool.root, f"smoke-{i}") for i in range(2)]
    for proc in workers:
        out, err = proc.communicate(timeout=420)
        assert proc.returncode == 0, f"worker failed: {err}"
    assert pool.all_terminal()

    # Serial references, one per distinct seed.
    machine = preset("tiny")
    workload = Workload.from_name("MIX 01")
    reference = {
        seed: run_scheme("morphcache", workload, machine, seed=seed,
                         epochs=2)
        for seed in sorted(set(seeds))
    }

    executed_by = set()
    for job, seed in zip(jobs, seeds):
        status = json.loads((job.job_dir / STATUS_FILE).read_text())
        assert status["state"] == "done"
        executed_by.add(status["worker"])
        records = SweepJournal.load_completed(
            job.job_dir / JOURNAL_FILE, job.spec.journal_keys(job.job_dir))
        (record,) = records.values()
        want = reference[seed]
        got = result_from_json(record["result"])
        assert len(got.epochs) == len(want.epochs)
        for got_epoch, want_epoch in zip(got.epochs, want.epochs):
            assert got_epoch.topology_label == want_epoch.topology_label
            assert got_epoch.ipcs == want_epoch.ipcs
            assert got_epoch.misses == want_epoch.misses
        summary = inspect_journal(job.job_dir / JOURNAL_FILE)
        assert summary.adoptions == 0  # nobody crashed in the smoke run

    # Both workers actually participated (20 jobs, 2 pullers).
    assert len(executed_by) == 2, f"only {executed_by} executed jobs"


# -- serve --workers: the service as a pool observer -------------------------

def test_serve_workers_mode_end_to_end(tmp_path):
    """`repro serve --workers 2`: HTTP admission into the pool, spawned
    workers drain it, the service reports worker provenance, and a
    SIGTERM drain exits clean."""
    from tests.serve.conftest import drain, kill_group, start_service

    proc, client = start_service(tmp_path, "--workers", "2",
                                 "--worker-heartbeat", "0.2")
    try:
        submitted = client.submit(tenant="alice", workload="MIX 01",
                                  schemes=["morphcache"], preset="tiny",
                                  epochs=2, seed=4, trace=False)
        jid = submitted["job"]["id"]
        done = client.wait_for_state(jid, ("done",), timeout=240)
        assert done["state"] == "done"
        assert done["exit_code"] == 0
        # Worker provenance flows HTTP-side: which worker, which fence.
        assert done["lease"]["worker"].startswith("svc-")
        result = client.result(jid)
        assert len(result["runs"]) == 1
        # The job dir on disk is the standard pool contract.
        job_dir = tmp_path / "jobs" / jid
        status = json.loads((job_dir / STATUS_FILE).read_text())
        assert status["worker"].startswith("svc-")
        assert read_lease(job_dir).released
    finally:
        code = drain(proc)
    assert code == 0
    kill_group(proc)
