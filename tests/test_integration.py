"""End-to-end integration tests: full runs at tiny scale."""

import pytest

from repro import (
    MorphConfig,
    Workload,
    fair_speedup,
    mix_by_name,
    run_scheme,
    throughput,
    weighted_speedup,
)
from repro.baselines import ideal_offline
from repro.sim.experiment import alone_ipcs, build_system
from repro.sim.engine import simulate


@pytest.fixture
def fast(tiny_config):
    return tiny_config.with_(accesses_per_core_per_epoch=250)


class TestMultiprogrammed:
    def test_all_schemes_complete_a_mix(self, fast):
        workload = Workload.from_mix(mix_by_name("MIX 08"))
        for scheme in ["(16:1:1)", "(1:1:16)", "(4:4:1)", "(8:2:1)",
                       "(1:16:1)", "morphcache", "pipp", "dsr"]:
            result = run_scheme(scheme, workload, fast, seed=1, epochs=2)
            assert result.mean_throughput > 0
            assert len(result.epochs) == 2

    def test_morphcache_reconfigures_during_run(self, fast):
        workload = Workload.from_mix(mix_by_name("MIX 11"))
        system = build_system("morphcache", fast, workload, seed=1)
        simulate(system, workload, fast, seed=1, epochs=3)
        assert system.controller.reconfigurations > 0
        system.hierarchy.check_inclusion()

    def test_runs_are_reproducible(self, fast):
        workload = Workload.from_mix(mix_by_name("MIX 05"))
        a = run_scheme("morphcache", workload, fast, seed=9, epochs=2)
        b = run_scheme("morphcache", workload, fast, seed=9, epochs=2)
        assert a.throughput_series() == b.throughput_series()

    def test_speedup_metrics_computable(self, fast):
        mix = mix_by_name("MIX 08")
        workload = Workload.from_mix(mix)
        result = run_scheme("(16:1:1)", workload, fast, seed=1, epochs=2)
        ipcs = [result.mean_ipcs()[c] for c in range(16)]
        alone = alone_ipcs(mix.benchmark_names, fast, seed=1, epochs=1)
        ws = weighted_speedup(ipcs, alone)
        fs = fair_speedup(ipcs, alone)
        assert 0 < fs <= ws <= 16
        assert throughput(ipcs) > 0


class TestMultithreaded:
    def test_parsec_runs_with_sharing(self, fast):
        workload = Workload.from_parsec("dedup")
        result = run_scheme("morphcache", workload, fast, seed=1, epochs=2)
        assert result.mean_throughput > 0

    def test_sharing_merges_possible(self, fast):
        workload = Workload.from_parsec("canneal")
        system = build_system("morphcache", fast, workload, seed=1)
        simulate(system, workload, fast, seed=1, epochs=3)
        assert system.controller.shared_address_space


class TestIdealOffline:
    def test_composable_from_static_runs(self, fast):
        workload = Workload.from_mix(mix_by_name("MIX 08"))
        runs = [run_scheme(label, workload, fast, seed=1, epochs=2)
                for label in ["(16:1:1)", "(1:1:16)"]]
        ideal = ideal_offline(runs)
        assert ideal.mean_throughput >= max(r.mean_throughput for r in runs)


class TestQos:
    def test_qos_run_completes_and_throttles_are_recorded(self, fast):
        workload = Workload.from_mix(mix_by_name("MIX 11"))
        system = build_system("morphcache", fast, workload, seed=1,
                              morph=MorphConfig(qos=True))
        simulate(system, workload, fast, seed=1, epochs=3)
        throttler = system.controller.throttler
        assert throttler.msat.high >= 60.0

    def test_split_aggressive_policy_runs(self, fast):
        workload = Workload.from_mix(mix_by_name("MIX 11"))
        result = run_scheme("morphcache", workload, fast, seed=1, epochs=2,
                            morph=MorphConfig(conflict_policy="split"))
        assert result.mean_throughput > 0


class TestExtensions:
    def test_section55_policies_run(self, fast):
        workload = Workload.from_mix(mix_by_name("MIX 11"))
        for morph in [MorphConfig(allow_arbitrary_sizes=True),
                      MorphConfig(allow_arbitrary_sizes=True,
                                  allow_non_neighbors=True)]:
            result = run_scheme("morphcache", workload, fast, seed=1,
                                epochs=2, morph=morph)
            assert result.mean_throughput > 0

    def test_plru_replacement_machine_runs(self, fast):
        config = fast.with_(replacement="plru")
        workload = Workload.from_mix(mix_by_name("MIX 08"))
        result = run_scheme("morphcache", workload, config, seed=1, epochs=2)
        assert result.mean_throughput > 0

    def test_eight_core_machine_runs(self, fast):
        config = fast.with_(cores=8)
        mix = mix_by_name("MIX 08")
        workload = Workload(
            name="8-core mix",
            models=tuple(b.model for b in mix.benchmarks[:8]),
        )
        result = run_scheme("morphcache", workload, config, seed=1, epochs=2)
        assert result.mean_throughput > 0
