"""Tests for the three-level inclusive hierarchy with merged groups."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.hierarchy import CacheHierarchy, HierarchyObserver
from repro.config import TINY


def private_topology(n=16):
    return [(i,) for i in range(n)]


def make_hierarchy(**kwargs):
    return CacheHierarchy(TINY, **kwargs)


class RecordingObserver(HierarchyObserver):
    def __init__(self):
        self.events = []

    def on_hit(self, level, slice_id, core, tag):
        self.events.append(("hit", level, slice_id, core, tag))

    def on_fill(self, level, slice_id, core, tag):
        self.events.append(("fill", level, slice_id, core, tag))

    def on_evict(self, level, slice_id, tag, owner=-1):
        self.events.append(("evict", level, slice_id, owner, tag))


class TestAccessPath:
    def test_cold_access_goes_to_memory(self):
        h = make_hierarchy()
        result = h.access(0, 0x1000)
        assert result.level == "mem"
        assert result.latency == TINY.latency.memory

    def test_second_access_hits_l1(self):
        h = make_hierarchy()
        h.access(0, 0x1000)
        result = h.access(0, 0x1000)
        assert result.level == "l1"
        assert result.latency == TINY.latency.l1_hit

    def test_l2_hit_after_l1_invalidation(self):
        h = make_hierarchy()
        h.access(0, 0x1000)
        h.l1s[0].invalidate(0x1000)
        result = h.access(0, 0x1000)
        assert result.level == "l2"
        assert result.latency == TINY.latency.l2_local_hit

    def test_l3_hit_after_l2_invalidation(self):
        h = make_hierarchy()
        h.access(0, 0x1000)
        h.l1s[0].invalidate(0x1000)
        h.l2s[0].invalidate(0x1000)
        result = h.access(0, 0x1000)
        assert result.level == "l3"
        assert result.latency == TINY.latency.l3_local_hit

    def test_fill_installs_at_all_levels(self):
        h = make_hierarchy()
        h.access(3, 0x2000)
        assert 0x2000 in h.l1s[3]
        assert 0x2000 in h.l2s[3]
        assert 0x2000 in h.l3s[3]

    def test_stats_count_accesses(self):
        h = make_hierarchy()
        for _ in range(3):
            h.access(5, 0x42)
        stats = h.stats.cores[5]
        assert stats.accesses == 3
        assert stats.memory_accesses == 1
        assert stats.l1_hits == 2


class TestMergedGroups:
    def merged_pair(self):
        h = make_hierarchy()
        l2 = [(0, 1)] + private_topology()[2:]
        l3 = [(0, 1)] + private_topology()[2:]
        h.set_topology(l2, l3)
        return h

    def test_remote_hit_pays_merged_latency(self):
        h = self.merged_pair()
        h.access(1, 0x3000)  # fills slice 1
        h.l1s[0].flush()
        result = h.access(0, 0x3000)
        assert result.level == "l2"
        assert result.remote
        assert result.latency == TINY.latency.l2_merged_hit

    def test_static_mode_charges_local_latency_for_remote_hit(self):
        h = CacheHierarchy(TINY, charge_remote_latency=False)
        h.set_topology([(0, 1)] + private_topology()[2:],
                       [(0, 1)] + private_topology()[2:])
        h.access(1, 0x3000)
        result = h.access(0, 0x3000)
        assert result.remote
        assert result.latency == TINY.latency.l2_local_hit

    def test_group_capacity_is_summed(self):
        """A merged pair holds twice the lines of one slice in a set."""
        h = self.merged_pair()
        ways = TINY.l2_slice.ways
        sets = TINY.l2_slice.sets
        # Fill 2*ways lines of the same L2 set from core 0.
        lines = [s * sets for s in range(2 * ways)]
        for line in lines:
            h.access(0, line)
        resident = set(h.l2s[0].resident_lines()) | set(h.l2s[1].resident_lines())
        assert set(lines) <= resident

    def test_private_slice_cannot_hold_group_capacity(self):
        h = make_hierarchy()
        ways = TINY.l2_slice.ways
        sets = TINY.l2_slice.sets
        lines = [s * sets for s in range(2 * ways)]
        for line in lines:
            h.access(0, line)
        assert h.l2s[0].occupancy() <= TINY.l2_slice.lines

    def test_topology_must_partition(self):
        h = make_hierarchy()
        with pytest.raises(ValueError):
            h.set_topology([(0,)], private_topology())

    def test_l2_group_must_be_inside_l3_group(self):
        h = make_hierarchy()
        bad_l2 = [(0, 1)] + private_topology()[2:]
        with pytest.raises(ValueError):
            h.set_topology(bad_l2, private_topology())


class TestLazyInvalidation:
    def test_duplicates_resolved_on_hit(self):
        """After a merge, duplicate copies collapse to one on first touch."""
        h = make_hierarchy()
        # Same line cached privately by both cores (different address
        # spaces would never do this, but threads sharing memory do).
        h.access(0, 0x5000)
        h.access(1, 0x5000)
        # Merge the two slices; both L2 slices may hold a copy.
        h.set_topology([(0, 1)] + private_topology()[2:],
                       [(0, 1)] + private_topology()[2:])
        copies = int(0x5000 in h.l2s[0]) + int(0x5000 in h.l2s[1])
        if copies == 2:
            h.l1s[0].flush()
            h.access(0, 0x5000)
            copies_after = int(0x5000 in h.l2s[0]) + int(0x5000 in h.l2s[1])
            assert copies_after == 1
            total_lazy = sum(s.lazy_invalidations
                             for s in h.stats.l2_slices.values())
            assert total_lazy >= 1


class TestInclusion:
    def test_l3_eviction_back_invalidates_l2_and_l1(self):
        h = make_hierarchy()
        sets3 = TINY.l3_slice.sets
        ways3 = TINY.l3_slice.ways
        # Fill one L3 set beyond capacity from core 0.
        lines = [s * sets3 for s in range(ways3 + 1)]
        for line in lines:
            h.access(0, line)
        h.check_inclusion()

    def test_inclusion_after_random_traffic(self):
        import random
        rng = random.Random(7)
        h = make_hierarchy()
        for _ in range(3000):
            h.access(rng.randrange(16), rng.randrange(2000), rng.random() < 0.3)
        h.check_inclusion()

    def test_inclusion_after_merges_and_splits(self):
        import random
        rng = random.Random(9)
        h = make_hierarchy()
        topologies = [
            (private_topology(), private_topology()),
            ([(0, 1)] + private_topology()[2:], [(0, 1)] + private_topology()[2:]),
            ([(0, 1), (2, 3)] + private_topology()[4:],
             [(0, 1, 2, 3)] + private_topology()[4:]),
            (private_topology(), [(0, 1)] + private_topology()[2:]),
            (private_topology(), private_topology()),
        ]
        for l2, l3 in topologies:
            for _ in range(800):
                h.access(rng.randrange(16), rng.randrange(1500), rng.random() < 0.3)
            h.set_topology(l2, l3)
            h.check_inclusion()

    def test_repair_evicts_orphans_on_split(self):
        h = make_hierarchy()
        h.set_topology([(0, 1)] + private_topology()[2:],
                       [(0, 1)] + private_topology()[2:])
        # Force core 0 to overflow into slice 1.
        sets = TINY.l2_slice.sets
        ways = TINY.l2_slice.ways
        for s in range(2 * ways):
            h.access(0, s * sets)
        # Split back to private: core 0's lines in slice 1 are orphans.
        h.set_topology(private_topology(), private_topology())
        h.check_inclusion()
        for entry in h.l2s[1].entries():
            assert entry.owner == 1


class TestCoherence:
    def test_write_invalidates_other_l1_copies(self):
        h = make_hierarchy()
        h.set_topology([(0, 1)] + private_topology()[2:],
                       [(0, 1)] + private_topology()[2:])
        h.access(0, 0x7000)
        h.access(1, 0x7000)  # now both L1s hold it
        assert 0x7000 in h.l1s[0]
        assert 0x7000 in h.l1s[1]
        h.access(0, 0x7000, write=True)
        assert 0x7000 not in h.l1s[1]
        assert h.stats.cores[0].coherence_invalidations >= 1

    def test_dirty_l1_eviction_marks_l2_copy(self):
        h = make_hierarchy()
        h.access(0, 0x100, write=True)
        l1 = h.l1s[0]
        # Evict the dirty line from L1 by filling its set.
        sets1 = TINY.l1.sets
        line = 0x100
        for k in range(1, TINY.l1.ways + 1):
            h.access(0, line + k * sets1)
        if line not in l1:
            entry = h.l2s[0].lookup(line)
            assert entry is not None and entry.dirty


class TestObserver:
    def test_events_fire_in_order(self):
        observer = RecordingObserver()
        h = CacheHierarchy(TINY, observer=observer)
        h.access(0, 0x123)
        kinds = [e[0] for e in observer.events]
        assert kinds.count("fill") == 2  # l3 then l2
        h.l1s[0].flush()
        observer.events.clear()
        h.access(0, 0x123)
        assert ("hit", "l2", 0, 0, 0x123) in observer.events


@given(st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 500), st.booleans()),
    min_size=50, max_size=400,
))
@settings(max_examples=20, deadline=None)
def test_property_inclusion_invariant(accesses):
    """Inclusion holds under arbitrary interleaved traffic."""
    h = CacheHierarchy(TINY)
    h.set_topology(
        [(0, 1), (2, 3)] + [(i,) for i in range(4, 16)],
        [(0, 1, 2, 3)] + [(i,) for i in range(4, 16)],
    )
    for core, line, write in accesses:
        h.access(core, line, write)
    h.check_inclusion()
