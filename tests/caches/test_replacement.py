"""Tests for the LRU and tree-PLRU replacement policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.replacement import LruPolicy, TreePlruPolicy, make_policy


class TestLruPolicy:
    def test_victim_is_oldest_stamp(self):
        policy = LruPolicy(sets=4, ways=4)
        assert policy.victim(0, [7, 3, 9, 5]) == 1

    def test_victim_with_single_way(self):
        policy = LruPolicy(sets=1, ways=1)
        assert policy.victim(0, [42]) == 0

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            LruPolicy(sets=0, ways=4)


class TestTreePlruPolicy:
    def test_untouched_tree_victims_way_zero(self):
        policy = TreePlruPolicy(sets=2, ways=4)
        assert policy.victim(0, [0] * 4) == 0

    def test_touch_protects_accessed_way(self):
        policy = TreePlruPolicy(sets=1, ways=4)
        policy.touch(0, 0)
        assert policy.victim(0, [0] * 4) != 0

    def test_round_trip_all_ways(self):
        """Touching ways in order leaves the first way as victim again."""
        policy = TreePlruPolicy(sets=1, ways=8)
        for way in range(8):
            policy.touch(0, way)
        # After touching everything ending at way 7, the victim must be in
        # the opposite (left) half.
        assert policy.victim(0, [0] * 8) < 4

    def test_victim_never_most_recently_touched(self):
        policy = TreePlruPolicy(sets=1, ways=8)
        for way in [3, 7, 1, 5, 0, 2]:
            policy.touch(0, way)
            assert policy.victim(0, [0] * 8) != way

    def test_sets_are_independent(self):
        policy = TreePlruPolicy(sets=2, ways=4)
        policy.touch(0, 0)
        assert policy.victim(1, [0] * 4) == 0

    def test_single_way_degenerate(self):
        policy = TreePlruPolicy(sets=1, ways=1)
        policy.touch(0, 0)
        assert policy.victim(0, [0]) == 0

    def test_rejects_non_power_of_two_ways(self):
        with pytest.raises(ValueError):
            TreePlruPolicy(sets=2, ways=3)

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_victim_always_in_range_and_not_mru(self, touches):
        policy = TreePlruPolicy(sets=1, ways=8)
        for way in touches:
            policy.touch(0, way)
        victim = policy.victim(0, [0] * 8)
        assert 0 <= victim < 8
        assert victim != touches[-1]


class TestMakePolicy:
    def test_builds_both(self):
        assert isinstance(make_policy("lru", 2, 2), LruPolicy)
        assert isinstance(make_policy("plru", 2, 2), TreePlruPolicy)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_policy("fifo", 2, 2)
