"""Tests for the statistics containers."""

from repro.caches.stats import CoreStats, HierarchyStats, SliceStats


class TestCoreStats:
    def test_derived_counters(self):
        stats = CoreStats(l2_local_hits=3, l2_remote_hits=2,
                          l3_local_hits=1, l3_remote_hits=4,
                          memory_accesses=7)
        assert stats.l2_hits == 5
        assert stats.l3_hits == 5
        assert stats.misses == 7

    def test_ipc(self):
        stats = CoreStats(instructions=100, cycles=50.0)
        assert stats.ipc == 2.0

    def test_ipc_zero_cycles(self):
        assert CoreStats().ipc == 0.0

    def test_reset_window(self):
        stats = CoreStats(accesses=5, l1_hits=3, cycles=10.0, instructions=8)
        stats.reset_window()
        assert stats.accesses == 0
        assert stats.l1_hits == 0
        assert stats.cycles == 0.0
        assert stats.instructions == 0


class TestSliceStats:
    def test_reset_window(self):
        stats = SliceStats(hits=1, misses=2, insertions=3, evictions=4,
                           lazy_invalidations=5)
        stats.reset_window()
        assert (stats.hits, stats.misses, stats.insertions,
                stats.evictions, stats.lazy_invalidations) == (0, 0, 0, 0, 0)


class TestHierarchyStats:
    def test_for_machine_builds_all_counters(self):
        stats = HierarchyStats.for_machine(4)
        assert set(stats.cores) == {0, 1, 2, 3}
        assert set(stats.l2_slices) == {0, 1, 2, 3}
        assert set(stats.l3_slices) == {0, 1, 2, 3}

    def test_reset_window_cascades(self):
        stats = HierarchyStats.for_machine(2)
        stats.cores[0].accesses = 9
        stats.l2_slices[1].hits = 4
        stats.reset_window()
        assert stats.cores[0].accesses == 0
        assert stats.l2_slices[1].hits == 0
