"""Tests for latency accounting details of the hierarchy."""


from repro.caches.hierarchy import CacheHierarchy
from repro.config import TINY


def merged_topology(group, n=16):
    rest = [(i,) for i in range(n) if i not in group]
    return sorted([tuple(group)] + rest, key=min)


class TestDistancePenalty:
    def _remote_hit_latency(self, group, requester, holder):
        hierarchy = CacheHierarchy(TINY)
        topo = merged_topology(group)
        hierarchy.set_topology(topo, topo)
        hierarchy.access(holder, 0x9000)
        hierarchy.l1s[requester].flush()
        result = hierarchy.access(requester, 0x9000)
        assert result.remote
        return result.latency

    def test_neighbour_remote_hit_is_flat_merged_latency(self):
        latency = self._remote_hit_latency((0, 1), requester=0, holder=1)
        assert latency == TINY.latency.l2_merged_hit

    def test_distant_slice_pays_span_cost(self):
        latency = self._remote_hit_latency((0, 1, 2, 3), requester=0, holder=3)
        expected = (TINY.latency.l2_merged_hit
                    + 2 * TINY.latency.distance_cycles_per_hop)
        assert latency == expected

    def test_static_mode_has_no_distance_penalty(self):
        hierarchy = CacheHierarchy(TINY, charge_remote_latency=False)
        topo = merged_topology((0, 1, 2, 3))
        hierarchy.set_topology(topo, topo)
        hierarchy.access(3, 0x9000)
        hierarchy.l1s[0].flush()
        result = hierarchy.access(0, 0x9000)
        assert result.latency == TINY.latency.l2_local_hit


class TestLevelLatencies:
    def test_l3_merged_hit_latency(self):
        hierarchy = CacheHierarchy(TINY)
        l3_topo = merged_topology((0, 1))
        hierarchy.set_topology([(i,) for i in range(16)], l3_topo)
        hierarchy.access(1, 0xA000)
        hierarchy.l1s[0].flush()
        # Remove the L2 copy so the hit happens at L3 in slice 1.
        hierarchy.l2s[1].invalidate(0xA000)
        result = hierarchy.access(0, 0xA000)
        assert result.level == "l3"
        assert result.latency == TINY.latency.l3_merged_hit

    def test_memory_latency_with_write_coherence(self):
        hierarchy = CacheHierarchy(TINY)
        result = hierarchy.access(0, 0xB000, write=True)
        assert result.latency == TINY.latency.memory
