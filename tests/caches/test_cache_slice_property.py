"""Property test: the dict-backed CacheSlice equals a naive reference.

The reference model below is the obvious O(ways) implementation the slice
had before the hot-path rewrite: a list of entries per set, linear-scan
lookup, and LRU victim chosen by ``min`` over stamps.  Hypothesis drives
both models through the same random operation sequence (lookup+touch,
insert, invalidate, flush) with **strictly increasing stamps** — the
invariant the hierarchy guarantees and the recency-ordered dict relies on —
and demands identical observable behaviour at every step:

- same hit/miss answer and same evicted line for every operation,
- same ``entries()`` iteration order (the checkpoint digest hashes it),
- same ``victim_candidate`` at every point.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.cache import CacheSlice


class ReferenceSlice:
    """Naive list-scan LRU slice: the pre-rewrite semantics, unoptimised."""

    def __init__(self, sets, ways):
        self.sets = sets
        self.ways = ways
        self._data = [[] for _ in range(sets)]

    def _set(self, line):
        return self._data[line & (self.sets - 1)]

    def lookup(self, line):
        for entry in self._set(line):
            if entry[0] == line:
                return entry
        return None

    def touch(self, entry, stamp):
        entry[3] = stamp

    def insert(self, line, owner, dirty, stamp):
        ways = self._set(line)
        victim = None
        if len(ways) >= self.ways:
            victim = min(ways, key=lambda e: e[3])
            ways.remove(victim)
        ways.append([line, owner, dirty, stamp])
        return victim

    def victim_candidate(self, line):
        ways = self._set(line)
        if len(ways) < self.ways:
            return None
        return min(ways, key=lambda e: e[3])

    def invalidate(self, line):
        entry = self.lookup(line)
        if entry is not None:
            self._set(line).remove(entry)
        return entry

    def flush(self):
        removed = [entry for ways in self._data for entry in ways]
        self._data = [[] for _ in range(self.sets)]
        return removed

    def entries(self):
        return [entry for ways in self._data for entry in ways]


def _op_strategy():
    line = st.integers(0, 63)
    return st.lists(
        st.one_of(
            st.tuples(st.just("access"), line, st.booleans()),
            st.tuples(st.just("invalidate"), line, st.just(False)),
            st.tuples(st.just("flush"), st.just(0), st.just(False)),
        ),
        min_size=1, max_size=200,
    )


def _as_tuple(entry):
    """(line, owner, dirty, stamp) for either model's entry, or None."""
    if entry is None:
        return None
    if isinstance(entry, list):
        return tuple(entry)
    return (entry.line, entry.owner, entry.dirty, entry.stamp)


@given(sets=st.sampled_from([1, 2, 4, 8]), ways=st.integers(1, 4),
       ops=_op_strategy())
@settings(max_examples=200, deadline=None)
def test_dict_slice_matches_reference(sets, ways, ops):
    slice_ = CacheSlice(sets, ways, replacement="lru")
    ref = ReferenceSlice(sets, ways)
    stamp = 0  # strictly increasing, as the hierarchy guarantees

    for op, line, write in ops:
        stamp += 1
        if op == "access":
            got = slice_.lookup(line)
            want = ref.lookup(line)
            assert (got is None) == (want is None)
            assert _as_tuple(slice_.victim_candidate(line)) \
                == _as_tuple(ref.victim_candidate(line))
            if got is not None:
                if write:
                    got.dirty = True
                    want[2] = True
                slice_.touch(got, stamp)
                ref.touch(want, stamp)
            else:
                evicted = slice_.insert(line, owner=0, dirty=write, stamp=stamp)
                ref_evicted = ref.insert(line, owner=0, dirty=write, stamp=stamp)
                assert _as_tuple(evicted) == _as_tuple(ref_evicted)
        elif op == "invalidate":
            assert _as_tuple(slice_.invalidate(line)) \
                == _as_tuple(ref.invalidate(line))
        else:  # flush
            assert [_as_tuple(e) for e in slice_.flush()] \
                == [_as_tuple(e) for e in ref.flush()]

        # Observable state identical after every operation, including the
        # entries() iteration order the checkpoint digest depends on.
        assert [_as_tuple(e) for e in slice_.entries()] \
            == [_as_tuple(e) for e in ref.entries()]
        assert slice_.occupancy() == len(ref.entries())
        for probe in range(64):
            assert (probe in slice_) == (ref.lookup(probe) is not None)
