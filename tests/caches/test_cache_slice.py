"""Tests for a single set-associative cache slice."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.cache import CacheSlice


def make_slice(sets=4, ways=2, replacement="lru"):
    return CacheSlice(sets=sets, ways=ways, replacement=replacement)


class TestAddressing:
    def test_set_index_uses_low_bits(self):
        slice_ = make_slice(sets=4)
        assert slice_.set_index(0b1011) == 0b11
        assert slice_.set_index(0b1000) == 0b00

    def test_tag_strips_index_bits(self):
        slice_ = make_slice(sets=4)
        assert slice_.tag(0b10110) == 0b101

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheSlice(sets=6, ways=2)


class TestLookupInsert:
    def test_miss_on_empty(self):
        assert make_slice().lookup(0x10) is None

    def test_hit_after_insert(self):
        slice_ = make_slice()
        slice_.insert(0x10, owner=0, dirty=False, stamp=1)
        entry = slice_.lookup(0x10)
        assert entry is not None
        assert entry.line == 0x10
        assert entry.owner == 0

    def test_contains_protocol(self):
        slice_ = make_slice()
        slice_.insert(0x10, 0, False, 1)
        assert 0x10 in slice_
        assert 0x20 not in slice_

    def test_no_eviction_with_room(self):
        slice_ = make_slice(sets=1, ways=2)
        assert slice_.insert(0, 0, False, 1) is None
        assert slice_.insert(1, 0, False, 2) is None

    def test_eviction_when_set_full(self):
        slice_ = make_slice(sets=1, ways=2)
        slice_.insert(0, 0, False, 1)
        slice_.insert(1, 0, False, 2)
        victim = slice_.insert(2, 0, False, 3)
        assert victim is not None
        assert victim.line == 0  # LRU

    def test_lru_respects_touch(self):
        slice_ = make_slice(sets=1, ways=2)
        slice_.insert(0, 0, False, 1)
        slice_.insert(1, 0, False, 2)
        slice_.touch(slice_.lookup(0), stamp=3)
        victim = slice_.insert(2, 0, False, 4)
        assert victim.line == 1

    def test_different_sets_do_not_conflict(self):
        slice_ = make_slice(sets=2, ways=1)
        assert slice_.insert(0, 0, False, 1) is None
        assert slice_.insert(1, 0, False, 2) is None  # other set

    def test_victim_candidate_matches_actual_victim(self):
        slice_ = make_slice(sets=1, ways=2)
        slice_.insert(0, 0, False, 1)
        slice_.insert(1, 0, False, 2)
        candidate = slice_.victim_candidate(2)
        victim = slice_.insert(2, 0, False, 3)
        assert candidate is victim

    def test_victim_candidate_none_with_room(self):
        slice_ = make_slice(sets=1, ways=2)
        slice_.insert(0, 0, False, 1)
        assert slice_.victim_candidate(2) is None

    def test_has_room(self):
        slice_ = make_slice(sets=1, ways=1)
        assert slice_.has_room(0)
        slice_.insert(0, 0, False, 1)
        assert not slice_.has_room(1)


class TestInvalidate:
    def test_invalidate_removes(self):
        slice_ = make_slice()
        slice_.insert(0x10, 0, False, 1)
        removed = slice_.invalidate(0x10)
        assert removed.line == 0x10
        assert slice_.lookup(0x10) is None

    def test_invalidate_missing_returns_none(self):
        assert make_slice().invalidate(0x99) is None

    def test_invalidate_entry_object(self):
        slice_ = make_slice()
        slice_.insert(0x10, 0, False, 1)
        entry = slice_.lookup(0x10)
        assert slice_.invalidate_entry(entry)
        assert not slice_.invalidate_entry(entry)

    def test_flush_empties_and_returns_everything(self):
        slice_ = make_slice(sets=2, ways=2)
        for line in range(4):
            slice_.insert(line, 0, False, line)
        removed = slice_.flush()
        assert len(removed) == 4
        assert slice_.occupancy() == 0


class TestIntrospection:
    def test_occupancy_counts_valid_lines(self):
        slice_ = make_slice(sets=2, ways=2)
        slice_.insert(0, 0, False, 1)
        slice_.insert(1, 0, False, 2)
        assert slice_.occupancy() == 2

    def test_resident_lines(self):
        slice_ = make_slice(sets=2, ways=2)
        slice_.insert(5, 0, False, 1)
        assert slice_.resident_lines() == [5]

    def test_entries_snapshot(self):
        slice_ = make_slice()
        slice_.insert(7, 1, True, 3)
        (entry,) = slice_.entries()
        assert (entry.line, entry.owner, entry.dirty) == (7, 1, True)

    def test_repr_mentions_occupancy(self):
        slice_ = make_slice()
        assert "occupancy=0" in repr(slice_)


class TestPlruSlice:
    def test_plru_slice_never_evicts_mru(self):
        slice_ = make_slice(sets=1, ways=4, replacement="plru")
        for line in range(4):
            slice_.insert(line, 0, False, line)
        slice_.touch(slice_.lookup(2), stamp=10)
        victim = slice_.insert(9, 0, False, 11)
        assert victim.line != 2


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), min_size=1,
                max_size=300))
@settings(max_examples=50, deadline=None)
def test_occupancy_never_exceeds_capacity(operations):
    """Property: occupancy is bounded and per-set size never exceeds ways."""
    slice_ = CacheSlice(sets=4, ways=2)
    stamp = 0
    for line, is_write in operations:
        stamp += 1
        entry = slice_.lookup(line)
        if entry is None:
            slice_.insert(line, 0, is_write, stamp)
        else:
            slice_.touch(entry, stamp)
    assert slice_.occupancy() <= 8
    for set_lines in range(4):
        in_set = [l for l in slice_.resident_lines()
                  if slice_.set_index(l) == set_lines]
        assert len(in_set) <= 2
        assert len(set(in_set)) == len(in_set)  # no duplicates
