"""Tests for tile-based scaling (Section 5.5)."""

import pytest

from repro.config import TINY
from repro.core.tiles import TiledMorphCache

TILE = TINY.with_(cores=8)


class TestConstruction:
    def test_builds_independent_tiles(self):
        tiled = TiledMorphCache(TILE, n_tiles=4)
        assert tiled.total_cores == 32
        assert len(tiled.hierarchies) == 4
        assert len({id(h) for h in tiled.hierarchies}) == 4

    def test_rejects_oversized_tile(self):
        with pytest.raises(ValueError):
            TiledMorphCache(TINY.with_(cores=32), n_tiles=2)

    def test_rejects_zero_tiles(self):
        with pytest.raises(ValueError):
            TiledMorphCache(TILE, n_tiles=0)

    def test_block_placement(self):
        tiled = TiledMorphCache(TILE, n_tiles=2)
        assert tiled.placement(0) == (0, 0)
        assert tiled.placement(7) == (0, 7)
        assert tiled.placement(8) == (1, 0)
        assert tiled.placement(15) == (1, 7)

    def test_custom_scheduler(self):
        # Round-robin across tiles.
        tiled = TiledMorphCache(TILE, n_tiles=2, scheduler=lambda c: c % 2)
        assert tiled.placement(0)[0] == 0
        assert tiled.placement(1)[0] == 1
        assert tiled.placement(2) == (0, 1)

    def test_overfilling_scheduler_rejected(self):
        with pytest.raises(ValueError):
            TiledMorphCache(TILE, n_tiles=2, scheduler=lambda c: 0)

    def test_out_of_range_core(self):
        tiled = TiledMorphCache(TILE, n_tiles=2)
        with pytest.raises(ValueError):
            tiled.placement(99)


class TestIsolation:
    def test_tiles_do_not_share_cache_state(self):
        tiled = TiledMorphCache(TILE, n_tiles=2)
        tiled.access(0, 0x500, False)          # tile 0
        latency = tiled.access(8, 0x500, False)  # tile 1: must miss
        assert latency == TILE.latency.memory

    def test_within_tile_caching_works(self):
        tiled = TiledMorphCache(TILE, n_tiles=2)
        tiled.access(8, 0x600, False)
        assert tiled.access(8, 0x600, False) == TILE.latency.l1_hit

    def test_miss_counts_global_ids(self):
        tiled = TiledMorphCache(TILE, n_tiles=2)
        tiled.access(12, 0x700, False)
        counts = tiled.miss_counts()
        assert counts[12] == 1
        assert counts[0] == 0

    def test_end_epoch_reports_per_tile_labels(self):
        tiled = TiledMorphCache(TILE, n_tiles=2)
        label = tiled.end_epoch()
        assert label.count("|") == 1

    def test_reconfigurations_aggregate(self):
        tiled = TiledMorphCache(TILE, n_tiles=2)
        tiled.end_epoch()
        assert tiled.reconfigurations >= 0
        tiled.check_inclusion()
