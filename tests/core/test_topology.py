"""Tests for the buddy topology state (Sections 2.2-2.3, 5.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topology import (
    TopologyState,
    aligned_power_of_two,
    parse_config_label,
)


class TestAlignment:
    def test_aligned_groups(self):
        assert aligned_power_of_two((0,))
        assert aligned_power_of_two((2, 3))
        assert aligned_power_of_two((4, 5, 6, 7))

    def test_unaligned_groups(self):
        assert not aligned_power_of_two((1, 2))
        assert not aligned_power_of_two((0, 1, 2))
        assert not aligned_power_of_two((0, 2))


class TestBuddyOperations:
    def test_initial_state_is_private(self):
        topo = TopologyState(16)
        assert topo.config_label() == "(1:1:16)"

    def test_merge_buddies(self):
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        assert (0, 1) in topo.groups("l3")

    def test_merge_non_buddies_rejected(self):
        topo = TopologyState(16)
        with pytest.raises(ValueError):
            topo.merge("l3", (1,), (2,))  # adjacent but not buddies

    def test_merge_requires_current_groups(self):
        topo = TopologyState(16)
        with pytest.raises(ValueError):
            topo.merge("l3", (0, 1), (2, 3))

    def test_hierarchical_merge_to_all_shared(self):
        topo = TopologyState(4)
        topo.merge("l3", (0,), (1,))
        topo.merge("l3", (2,), (3,))
        topo.merge("l3", (0, 1), (2, 3))
        topo.merge("l2", (0,), (1,))
        topo.merge("l2", (2,), (3,))
        topo.merge("l2", (0, 1), (2, 3))
        assert topo.config_label() == "(4:1:1)"

    def test_split_halves(self):
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        left, right = topo.split("l3", (0, 1))
        assert left == (0,)
        assert right == (1,)

    def test_split_single_rejected(self):
        topo = TopologyState(16)
        with pytest.raises(ValueError):
            topo.split("l3", (0,))

    def test_l2_merge_requires_l3_coverage(self):
        """Merging L2 under split L3 slices must be rejected (inclusion)."""
        topo = TopologyState(16)
        with pytest.raises(ValueError):
            topo.merge("l2", (0,), (1,))

    def test_l2_merge_allowed_after_l3_merge(self):
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        merged = topo.merge("l2", (0,), (1,))
        assert merged == (0, 1)

    def test_l3_split_under_merged_l2_rejected(self):
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        topo.merge("l2", (0,), (1,))
        with pytest.raises(ValueError):
            topo.split("l3", (0, 1))

    def test_l3_split_after_l2_split(self):
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        topo.merge("l2", (0,), (1,))
        topo.split("l2", (0, 1))
        topo.split("l3", (0, 1))
        assert topo.config_label() == "(1:1:16)"


class TestSymmetry:
    def test_symmetric_labels(self):
        topo = TopologyState(16)
        for base in range(0, 16, 2):
            topo.merge("l3", (base,), (base + 1,))
        assert topo.config_label() == "(1:2:8)"

    def test_asymmetric_returns_none(self):
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        assert topo.config_label() is None
        assert not topo.is_symmetric()

    def test_group_of(self):
        topo = TopologyState(16)
        topo.merge("l3", (2,), (3,))
        assert topo.group_of("l3", 2) == (2, 3)
        assert topo.group_of("l3", 0) == (0,)


class TestExtensions:
    def test_arbitrary_size_merge(self):
        """Section 5.5: adjacent groups of unequal size."""
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        merged = topo.merge("l3", (0, 1), (2,), allow_arbitrary_sizes=True)
        assert merged == (0, 1, 2)

    def test_non_neighbor_merge(self):
        topo = TopologyState(16)
        merged = topo.merge("l3", (0,), (7,), allow_non_neighbors=True)
        assert merged == (0, 7)

    def test_max_span_reflects_distance(self):
        topo = TopologyState(16)
        topo.merge("l3", (0,), (7,), allow_non_neighbors=True)
        assert topo.max_span("l3") == 7

    def test_split_arbitrary_group(self):
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        topo.merge("l3", (0, 1), (2,), allow_arbitrary_sizes=True)
        left, right = topo.split("l3", (0, 1, 2))
        assert left == (0,)
        assert right == (1, 2)

    def test_set_groups_direct(self):
        topo = TopologyState(4)
        topo.set_groups("l3", [(0, 1), (2, 3)])
        assert topo.groups("l3") == [(0, 1), (2, 3)]

    def test_set_groups_rejects_inclusion_violation(self):
        topo = TopologyState(4)
        topo.set_groups("l3", [(0, 1), (2, 3)])
        topo.set_groups("l2", [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            topo.set_groups("l3", [(0,), (1,), (2, 3)])


class TestParseConfigLabel:
    def test_all_shared(self):
        l2, l3 = parse_config_label("(16:1:1)")
        assert l2 == [tuple(range(16))]
        assert l3 == [tuple(range(16))]

    def test_all_private(self):
        l2, l3 = parse_config_label("(1:1:16)")
        assert len(l2) == 16
        assert len(l3) == 16

    def test_4_4_1(self):
        l2, l3 = parse_config_label("(4:4:1)")
        assert len(l2) == 4
        assert all(len(g) == 4 for g in l2)
        assert l3 == [tuple(range(16))]

    def test_1_16_1(self):
        """Private L2, one shared L3 (the Nehalem shape)."""
        l2, l3 = parse_config_label("(1:16:1)")
        assert len(l2) == 16
        assert l3 == [tuple(range(16))]

    def test_8_2_1(self):
        l2, l3 = parse_config_label("(8:2:1)")
        assert [len(g) for g in l2] == [8, 8]

    def test_inclusion_always_holds(self):
        for label in ["(16:1:1)", "(1:1:16)", "(4:4:1)", "(8:2:1)",
                      "(1:16:1)", "(2:2:4)", "(4:2:2)"]:
            l2_groups, l3_groups = parse_config_label(label)
            l3_of = {}
            for group in l3_groups:
                for slice_id in group:
                    l3_of[slice_id] = group
            for group in l2_groups:
                assert len({l3_of[s] for s in group}) == 1

    def test_rejects_wrong_product(self):
        with pytest.raises(ValueError):
            parse_config_label("(4:4:4)")

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_config_label("(4:4)")


@given(st.lists(st.integers(0, 2), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_property_random_buddy_ops_preserve_partition(ops):
    """Random merges/splits always leave a valid partition + inclusion."""
    topo = TopologyState(8)
    for op in ops:
        l3_groups = topo.groups("l3")
        if op == 0:  # try an L3 merge
            for a in l3_groups:
                for b in l3_groups:
                    if a != b and topo.are_buddies(a, b):
                        topo.merge("l3", a, b)
                        break
                else:
                    continue
                break
        elif op == 1:  # try an L2 merge (may fail on inclusion)
            for a in topo.groups("l2"):
                for b in topo.groups("l2"):
                    if a != b and topo.are_buddies(a, b):
                        try:
                            topo.merge("l2", a, b)
                        except ValueError:
                            pass
                        break
                else:
                    continue
                break
        else:  # try a split
            for group in topo.groups("l2"):
                if len(group) >= 2:
                    topo.split("l2", group)
                    break
    # Invariants.
    for level in ("l2", "l3"):
        slices = sorted(s for g in topo.groups(level) for s in g)
        assert slices == list(range(8))
    topo.check_inclusion()
