"""Tests for the MorphCache controller (the epoch boundary)."""

import pytest

from repro.caches.hierarchy import CacheHierarchy
from repro.config import TINY, MorphConfig
from repro.core.controller import MorphCacheController
from repro.workloads import interleave_round_robin, spec_benchmark
from repro.workloads.synthetic import SyntheticThread


def build_attached(morph=None, shared=False):
    controller = MorphCacheController(TINY, morph, shared_address_space=shared)
    hierarchy = CacheHierarchy(TINY)
    controller.attach(hierarchy)
    return controller, hierarchy


def run_epochs(controller, hierarchy, benchmarks, epochs=3, accesses=400, seed=11):
    threads = [
        SyntheticThread(spec_benchmark(name).model, i, TINY.l2_slice,
                        TINY.l3_slice, seed=seed)
        for i, name in enumerate(benchmarks)
    ]
    for _ in range(epochs):
        traces = [t.generate(accesses) for t in threads]
        for tid, line, write, _gap in interleave_round_robin(traces):
            hierarchy.access(tid, line, write)
        controller.end_epoch()


class TestWiring:
    def test_attach_installs_private_topology(self):
        controller, hierarchy = build_attached()
        assert hierarchy.l2_groups == [(i,) for i in range(16)]
        assert hierarchy.observer is controller.bank

    def test_attach_rejects_core_mismatch(self):
        controller = MorphCacheController(TINY)
        with pytest.raises(ValueError):
            controller.attach(CacheHierarchy(TINY.with_(cores=8)))

    def test_end_epoch_requires_attachment(self):
        with pytest.raises(RuntimeError):
            MorphCacheController(TINY).end_epoch()

    def test_acfv_bits_default_tracks_slice_size(self):
        controller = MorphCacheController(TINY)
        assert controller.bank.l2_bits == max(32, TINY.l2_slice.lines // 2)
        assert controller.bank.l3_bits == max(32, TINY.l3_slice.lines // 2)

    def test_acfv_bits_override(self):
        controller = MorphCacheController(TINY, MorphConfig(acfv_bits=64))
        assert controller.bank.l2_bits == 64
        assert controller.bank.l3_bits == 64


class TestReconfiguration:
    def test_contrasting_workload_triggers_merges(self):
        controller, hierarchy = build_attached()
        benchmarks = ["cactusADM" if i % 2 == 0 else "libquantum"
                      for i in range(16)]
        run_epochs(controller, hierarchy, benchmarks, epochs=4)
        assert controller.reconfigurations > 0
        hierarchy.check_inclusion()

    def test_events_record_epoch_and_level(self):
        controller, hierarchy = build_attached()
        benchmarks = ["gromacs" if i % 2 == 0 else "libquantum"
                      for i in range(16)]
        run_epochs(controller, hierarchy, benchmarks, epochs=4)
        for event in controller.events:
            assert event.kind in ("merge", "split")
            assert event.level in ("l2", "l3")
            assert event.epoch >= 0

    def test_acfvs_reset_each_epoch(self):
        controller, hierarchy = build_attached()
        run_epochs(controller, hierarchy, ["gcc"] * 16, epochs=1)
        assert all(controller.bank.acfv("l2", c).ones == 0 for c in range(16))

    def test_topology_synchronised_with_hierarchy(self):
        controller, hierarchy = build_attached()
        benchmarks = ["cactusADM" if i % 2 == 0 else "libquantum"
                      for i in range(16)]
        run_epochs(controller, hierarchy, benchmarks, epochs=4)
        assert hierarchy.l2_groups == controller.topology.groups("l2")
        assert hierarchy.l3_groups == controller.topology.groups("l3")

    def test_asymmetric_fraction_in_unit_range(self):
        controller, hierarchy = build_attached()
        benchmarks = ["cactusADM" if i % 2 == 0 else "libquantum"
                      for i in range(16)]
        run_epochs(controller, hierarchy, benchmarks, epochs=4)
        assert 0.0 <= controller.asymmetric_fraction <= 1.0

    def test_current_label_private_initially(self):
        controller, _ = build_attached()
        assert controller.current_label() == "(1:1:16)"


class TestQosIntegration:
    def test_qos_controller_throttles_on_feedback(self):
        controller, hierarchy = build_attached(MorphConfig(qos=True))
        benchmarks = ["cactusADM" if i % 2 == 0 else "libquantum"
                      for i in range(16)]
        run_epochs(controller, hierarchy, benchmarks, epochs=5)
        throttler = controller.throttler
        assert throttler.enabled
        # Some feedback must have been observed once merges happened.
        if any(e.kind == "merge" for e in controller.events[:-1]):
            assert throttler.throttle_ups + throttler.throttle_downs >= 1

    def test_qos_disabled_by_default(self):
        controller, _ = build_attached()
        assert not controller.throttler.enabled
