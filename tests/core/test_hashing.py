"""Tests for the ACFV hash functions (Section 2.1, Figure 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashing import ModuloHash, XorFoldHash, make_hash


class TestXorFoldHash:
    def test_range(self):
        hash_ = XorFoldHash(64)
        for tag in [0, 1, 63, 64, 12345, 2**40 + 17]:
            assert 0 <= hash_(tag) < 64

    def test_deterministic(self):
        hash_ = XorFoldHash(128)
        assert hash_(0xDEADBEEF) == hash_(0xDEADBEEF)

    def test_mixes_high_bits(self):
        """Tags differing only in high bits map to different indices."""
        hash_ = XorFoldHash(64)
        indices = {hash_(base << 20) for base in range(1, 33)}
        assert len(indices) > 16

    def test_non_power_of_two_bits(self):
        hash_ = XorFoldHash(100)
        assert all(0 <= hash_(t) < 100 for t in range(1000))

    def test_spreads_sequential_tags(self):
        hash_ = XorFoldHash(64)
        covered = {hash_(t) for t in range(64)}
        assert len(covered) >= 48

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            XorFoldHash(0)


class TestModuloHash:
    def test_is_modulo(self):
        hash_ = ModuloHash(32)
        assert hash_(37) == 5
        assert hash_(32) == 0

    def test_aliases_strided_tags(self):
        """The weakness Figure 5 exposes: stride == bits collapses to one
        index."""
        hash_ = ModuloHash(16)
        indices = {hash_(base * 16) for base in range(100)}
        assert indices == {0}

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ModuloHash(-1)


class TestMakeHash:
    def test_builds_both(self):
        assert isinstance(make_hash("xor", 8), XorFoldHash)
        assert isinstance(make_hash("modulo", 8), ModuloHash)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_hash("sha", 8)


@given(st.integers(min_value=0, max_value=2**48), st.sampled_from([2, 8, 32, 128, 512]))
@settings(max_examples=100, deadline=None)
def test_property_both_hashes_in_range(tag, bits):
    assert 0 <= XorFoldHash(bits)(tag) < bits
    assert 0 <= ModuloHash(bits)(tag) < bits
