"""Tests for the QoS-aware MSAT throttler (Section 5.3)."""

from repro.config import MsatConfig
from repro.core.qos import MsatThrottler


def make_throttler(enabled=True):
    return MsatThrottler(MsatConfig(), enabled=enabled)


class TestThrottling:
    def test_starts_at_base(self):
        throttler = make_throttler()
        assert throttler.msat.high == 60.0
        assert throttler.msat.low == 30.0

    def test_throttle_up_widens_bounds(self):
        throttler = make_throttler()
        throttler.throttle_up()
        assert throttler.msat.high == 65.0
        assert throttler.msat.low == 25.0

    def test_throttle_up_saturates(self):
        throttler = make_throttler()
        for _ in range(50):
            throttler.throttle_up()
        assert throttler.msat.high == throttler.base.high_max
        assert throttler.msat.low == throttler.base.low_min

    def test_throttle_down_never_crosses_base(self):
        throttler = make_throttler()
        for _ in range(5):
            throttler.throttle_down()
        assert throttler.msat.high == 60.0
        assert throttler.msat.low == 30.0

    def test_round_trip(self):
        throttler = make_throttler()
        throttler.throttle_up()
        throttler.throttle_down()
        assert throttler.msat.high == 60.0
        assert throttler.msat.low == 30.0


class TestMergeOutcomeFeedback:
    def test_increased_misses_throttle_up(self):
        throttler = make_throttler()
        throttler.observe_merge_outcome([0, 1], {0: 100, 1: 100},
                                        {0: 150, 1: 90})
        assert throttler.throttle_ups == 1
        assert throttler.msat.high > 60.0

    def test_flat_misses_throttle_down(self):
        throttler = make_throttler()
        throttler.throttle_up()
        throttler.observe_merge_outcome([0, 1], {0: 100, 1: 100},
                                        {0: 100, 1: 80})
        assert throttler.throttle_downs == 1
        assert throttler.msat.high == 60.0

    def test_disabled_throttler_ignores_feedback(self):
        throttler = make_throttler(enabled=False)
        throttler.observe_merge_outcome([0], {0: 1}, {0: 100})
        assert throttler.msat.high == 60.0
        assert throttler.throttle_ups == 0

    def test_empty_core_set_is_ignored(self):
        throttler = make_throttler()
        throttler.observe_merge_outcome([], {}, {})
        assert throttler.throttle_ups == 0
        assert throttler.throttle_downs == 0
