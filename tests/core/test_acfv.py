"""Tests for Active Cache Footprint Vectors and the per-core bank."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.acfv import Acfv, AcfvBank


class TestAcfv:
    def test_set_and_count(self):
        acfv = Acfv(64)
        acfv.set(1)
        acfv.set(2)
        assert acfv.ones >= 1  # collisions possible

    def test_clear_removes_bit(self):
        acfv = Acfv(64)
        acfv.set(5)
        acfv.clear(5)
        assert acfv.ones == 0

    def test_reset(self):
        acfv = Acfv(64)
        for tag in range(30):
            acfv.set(tag)
        acfv.reset()
        assert acfv.ones == 0

    def test_fraction(self):
        acfv = Acfv(4, hash_name="modulo")
        acfv.set(0)
        acfv.set(1)
        assert acfv.fraction == 0.5

    def test_estimated_lines_small_footprint_is_accurate(self):
        acfv = Acfv(256)
        for tag in range(20):
            acfv.set(tag)
        assert acfv.estimated_lines() == pytest.approx(20, rel=0.35)

    def test_estimated_lines_saturates_at_3x_bits(self):
        acfv = Acfv(8, hash_name="modulo")
        for tag in range(8):
            acfv.set(tag)
        assert acfv.estimated_lines() == 24.0

    def test_estimation_inverts_expected_population(self):
        """E[ones] = n(1 - (1 - 1/n)^F) and the inverse recovers F."""
        n, footprint = 128, 60
        expected_ones = n * (1 - (1 - 1 / n) ** footprint)
        acfv = Acfv(n)
        # Simulate the expectation directly through the math.
        estimate = -n * math.log(1 - expected_ones / n)
        assert estimate == pytest.approx(footprint, rel=0.05)

    def test_overlap_of_identical_sets(self):
        a, b = Acfv(64), Acfv(64)
        for tag in range(10):
            a.set(tag)
            b.set(tag)
        assert a.overlap_fraction(b) == 1.0

    def test_overlap_of_disjoint_sets_is_low(self):
        a, b = Acfv(512), Acfv(512)
        for tag in range(20):
            a.set(tag)
            b.set(1000 + tag)
        assert a.overlap_fraction(b) < 0.4

    def test_overlap_corrects_for_hash_collisions(self):
        """Two large independent footprints must not read as sharing."""
        a, b = Acfv(64), Acfv(64)
        for tag in range(40):
            a.set(tag * 7919)
            b.set((1 << 30) + tag * 104729)
        assert a.overlap_fraction(b) < 0.5

    def test_overlap_of_fully_saturated_vectors_is_uninformative(self):
        """All-ones vectors overlap with *anything*; the corrected measure
        reports 0 rather than fabricating sharing evidence."""
        a, b = Acfv(32), Acfv(32)
        for tag in range(100):
            a.set(tag)
            b.set(tag)
        assert a.overlap_fraction(b) == 0.0

    def test_overlap_with_empty_is_zero(self):
        a, b = Acfv(64), Acfv(64)
        a.set(1)
        assert a.overlap_fraction(b) == 0.0

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            Acfv(0)


class TestAcfvBank:
    def make_bank(self, **kwargs):
        return AcfvBank(n_cores=4, l2_bits=64, l3_bits=128, **kwargs)

    def test_hit_sets_both_levels_for_l2(self):
        bank = self.make_bank()
        bank.on_hit("l2", 0, 1, 42)
        assert bank.acfv("l2", 1).ones == 1
        assert bank.acfv("l3", 1).ones == 1

    def test_l3_hit_sets_only_l3(self):
        bank = self.make_bank()
        bank.on_hit("l3", 0, 2, 42)
        assert bank.acfv("l2", 2).ones == 0
        assert bank.acfv("l3", 2).ones == 1

    def test_fill_does_not_count(self):
        bank = self.make_bank()
        bank.on_fill("l2", 0, 0, 42)
        assert bank.acfv("l2", 0).ones == 0

    def test_evict_ignored_by_default(self):
        bank = self.make_bank()
        bank.on_hit("l2", 0, 0, 42)
        bank.on_evict("l2", 0, 42, owner=0)
        assert bank.acfv("l2", 0).ones == 1

    def test_evict_clears_when_level_configured(self):
        bank = self.make_bank(clear_levels=("l2",))
        bank.on_hit("l2", 0, 0, 42)
        bank.on_evict("l2", 0, 42, owner=0)
        assert bank.acfv("l2", 0).ones == 0

    def test_group_utilization_saturating_scale(self):
        bank = self.make_bank()
        # ~32 distinct tags into core 0's 64-bit L2 vector.
        for tag in range(32):
            bank.on_hit("l2", 0, 0, tag)
        util = bank.group_utilization("l2", (0,), slice_lines=64)
        # Demand ~= 32 lines over 64 -> u = 1 - exp(-0.5) ~= 39 %.
        assert util == pytest.approx(39.0, abs=12.0)

    def test_group_utilization_juxtaposes(self):
        bank = self.make_bank()
        for tag in range(32):
            bank.on_hit("l2", 0, 0, tag)
        alone = bank.group_utilization("l2", (0,), slice_lines=64)
        paired = bank.group_utilization("l2", (0, 1), slice_lines=64)
        assert paired < alone

    def test_group_utilization_requires_cores(self):
        with pytest.raises(ValueError):
            self.make_bank().group_utilization("l2", (), 64)

    def test_overlap_peak_pairwise(self):
        bank = self.make_bank()
        for tag in range(16):
            bank.on_hit("l3", 0, 0, tag)
            bank.on_hit("l3", 1, 1, tag)
        assert bank.overlap("l3", (0,), (1,)) == 1.0

    def test_reset_all(self):
        bank = self.make_bank()
        bank.on_hit("l2", 0, 0, 1)
        bank.on_hit("l3", 0, 3, 2)
        bank.reset_all()
        assert bank.acfv("l2", 0).ones == 0
        assert bank.acfv("l3", 3).ones == 0

    def test_rejects_non_positive_cores(self):
        with pytest.raises(ValueError):
            AcfvBank(0, 8, 8)


@given(st.sets(st.integers(0, 10_000), min_size=1, max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_ones_bounded_by_distinct_tags(tags):
    acfv = Acfv(256)
    for tag in tags:
        acfv.set(tag)
    assert acfv.ones <= len(tags)
    assert acfv.ones >= 1
