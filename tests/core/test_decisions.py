"""Tests for the merge/split decision engine (Sections 2.2-2.4)."""


from repro.config import MorphConfig, MsatConfig
from repro.core.acfv import AcfvBank
from repro.core.decisions import DecisionEngine
from repro.core.topology import TopologyState

L2_LINES = 64
L3_LINES = 256
MSAT = MsatConfig()  # (60, 30)


def make_engine(shared=False, **morph_kwargs):
    morph = MorphConfig(**morph_kwargs)
    return DecisionEngine(morph, L2_LINES, L3_LINES, shared_address_space=shared)


def make_bank():
    return AcfvBank(n_cores=16, l2_bits=L2_LINES // 2, l3_bits=L3_LINES // 2)


def feed_demand(bank, level, core, lines):
    """Make core's footprint at ``level`` read roughly ``lines`` lines."""
    for tag in range(lines):
        bank.on_hit(level, core, core, (core << 32) + tag * 7919)


def util(bank, level, cores):
    lines = L2_LINES if level == "l2" else L3_LINES
    return bank.group_utilization(level, cores, lines)


class TestMergeReason:
    def test_high_low_pair_merges_for_capacity(self):
        engine, bank = make_engine(), make_bank()
        feed_demand(bank, "l3", 0, 300)   # starved: > capacity
        feed_demand(bank, "l3", 1, 20)    # donor: well under
        assert util(bank, "l3", (0,)) > MSAT.high
        assert util(bank, "l3", (1,)) < MSAT.low
        assert engine.merge_reason("l3", (0,), (1,), bank, MSAT) == "capacity"

    def test_symmetric_in_arguments(self):
        engine, bank = make_engine(), make_bank()
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 20)
        assert engine.merge_reason("l3", (1,), (0,), bank, MSAT) == "capacity"

    def test_high_moderate_pair_does_not_merge(self):
        engine, bank = make_engine(), make_bank()
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 150)   # moderate, would get hurt
        assert engine.merge_reason("l3", (0,), (1,), bank, MSAT) is None

    def test_low_low_pair_does_not_merge(self):
        engine, bank = make_engine(), make_bank()
        feed_demand(bank, "l3", 0, 20)
        feed_demand(bank, "l3", 1, 20)
        assert engine.merge_reason("l3", (0,), (1,), bank, MSAT) is None

    def test_high_high_without_sharing_does_not_merge(self):
        engine, bank = make_engine(shared=False), make_bank()
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 300)
        assert engine.merge_reason("l3", (0,), (1,), bank, MSAT) is None

    def test_high_high_with_shared_data_merges(self):
        engine, bank = make_engine(shared=True), make_bank()
        # Both cores reuse the SAME tags -> full ACFV overlap.
        for tag in range(300):
            bank.on_hit("l3", 0, 0, tag * 7919)
            bank.on_hit("l3", 1, 1, tag * 7919)
        assert engine.merge_reason("l3", (0,), (1,), bank, MSAT) == "sharing"

    def test_high_high_disjoint_data_does_not_merge_even_shared(self):
        engine, bank = make_engine(shared=True), make_bank()
        feed_demand(bank, "l3", 0, 300)
        for tag in range(300):
            bank.on_hit("l3", 1, 1, (99 << 40) + tag * 104729)
        reason = engine.merge_reason("l3", (0,), (1,), bank, MSAT)
        assert reason != "capacity"

    def test_polluting_donor_is_vetoed(self):
        engine, bank = make_engine(), make_bank()
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 20)
        engine.set_miss_feedback({1: 1000, 0: 100, 2: 100, 3: 100})
        assert engine.merge_reason("l3", (0,), (1,), bank, MSAT) is None

    def test_miss_feedback_cleared(self):
        engine = make_engine()
        engine.set_miss_feedback({0: 1000, 1: 10})
        assert 0 in engine.polluters
        engine.set_miss_feedback(None)
        assert not engine.polluters


class TestShouldSplit:
    def test_split_when_justification_gone(self):
        engine, bank = make_engine(), make_bank()
        feed_demand(bank, "l3", 0, 20)
        feed_demand(bank, "l3", 1, 20)
        assert engine.should_split("l3", (0, 1), bank, MSAT)

    def test_no_split_while_condition_holds(self):
        engine, bank = make_engine(), make_bank()
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 20)
        assert not engine.should_split("l3", (0, 1), bank, MSAT)

    def test_singleton_never_splits(self):
        engine, bank = make_engine(), make_bank()
        assert not engine.should_split("l3", (0,), bank, MSAT)


class TestDecide:
    def test_capacity_merge_applied(self):
        engine, bank = make_engine(), make_bank()
        topo = TopologyState(16)
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 20)
        actions = engine.decide(topo, bank, MSAT)
        assert any(kind == "merge" and proposal.level == "l3"
                   for kind, proposal in actions)
        assert (0, 1) in topo.groups("l3")

    def test_l2_merge_pulls_l3_along(self):
        """Inclusion coupling: an L2 merge forces the covering L3 merge."""
        engine, bank = make_engine(), make_bank()
        topo = TopologyState(16)
        feed_demand(bank, "l2", 2, 150)
        feed_demand(bank, "l2", 3, 8)
        actions = engine.decide(topo, bank, MSAT)
        merged_levels = {p.level for kind, p in actions if kind == "merge"}
        if "l2" in merged_levels:
            assert (2, 3) in topo.groups("l2")
            assert (2, 3) in topo.groups("l3")
            topo.check_inclusion()

    def test_split_applied_after_hysteresis(self):
        engine, bank = make_engine(), make_bank()
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        # Both idle -> split condition true, but age gate delays it.
        for _ in range(engine.min_group_age + 1):
            actions = engine.decide(topo, bank, MSAT)
        assert (0,) in topo.groups("l3")
        assert (1,) in topo.groups("l3")

    def test_l3_split_blocked_by_merged_l2(self):
        engine, bank = make_engine(shared=True), make_bank()
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        topo.merge("l2", (0,), (1,))
        # L2 pair shares heavily -> its merge condition still holds, so the
        # L3 group cannot split (inclusion) even though its own reason is
        # gone.
        for tag in range(200):
            bank.on_hit("l2", 0, 0, tag * 7919)
            bank.on_hit("l2", 1, 1, tag * 7919)
        for _ in range(engine.min_group_age + 2):
            engine.decide(topo, bank, MSAT)
        assert (0, 1) in topo.groups("l3")
        topo.check_inclusion()

    def test_remerge_cooldown(self):
        engine, bank = make_engine(), make_bank()
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        # The manually merged group has no birth record, so the idle pair
        # splits on the first decision pass.
        engine.decide(topo, bank, MSAT)
        assert (0,) in topo.groups("l3")
        # Immediately presenting merge conditions must not re-merge.
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 20)
        engine.decide(topo, bank, MSAT)
        assert (0,) in topo.groups("l3")  # still cooling down
        engine.decide(topo, bank, MSAT)
        assert (0, 1) in topo.groups("l3")  # cooldown expired


class TestConflictPolicies:
    def build_fig6_scenario(self):
        """Two dual-shared pairs: first both-high, second both-low."""
        bank = make_bank()
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        topo.merge("l3", (2,), (3,))
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 300)
        feed_demand(bank, "l3", 2, 10)
        feed_demand(bank, "l3", 3, 10)
        return bank, topo

    def test_merge_aggressive_merges_the_pairs(self):
        engine = make_engine(conflict_policy="merge")
        engine.min_group_age = 0
        bank, topo = self.build_fig6_scenario()
        engine.decide(topo, bank, MSAT)
        assert (0, 1, 2, 3) in topo.groups("l3")

    def test_split_aggressive_splits_first(self):
        engine = make_engine(conflict_policy="split")
        engine.min_group_age = 0
        bank, topo = self.build_fig6_scenario()
        engine.decide(topo, bank, MSAT)
        groups = topo.groups("l3")
        assert (0, 1, 2, 3) not in groups
        assert (0,) in groups and (1,) in groups


class TestExtensions:
    def test_arbitrary_sizes_allows_unequal_merge(self):
        engine = make_engine(allow_arbitrary_sizes=True)
        engine.min_group_age = 0
        bank = make_bank()
        topo = TopologyState(16)
        topo.merge("l3", (0,), (1,))
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 1, 300)
        feed_demand(bank, "l3", 2, 10)
        engine.decide(topo, bank, MSAT)
        assert (0, 1, 2) in topo.groups("l3")

    def test_non_neighbors_allows_distant_merge(self):
        engine = make_engine(allow_non_neighbors=True)
        bank = make_bank()
        topo = TopologyState(16)
        feed_demand(bank, "l3", 0, 300)
        feed_demand(bank, "l3", 9, 10)
        engine.decide(topo, bank, MSAT)
        merged = [g for g in topo.groups("l3") if len(g) > 1]
        assert any(0 in g for g in merged)
