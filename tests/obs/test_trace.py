"""Unit + property tests for the trace recorder (repro.obs.trace).

The recorder's load-bearing promise is canonical encoding: the same record
always serialises to the same bytes, regardless of dict insertion order —
that is what lets two engines produce byte-identical trace files.  The
Hypothesis test drives JSONL round-tripping with arbitrary nested records.
"""

import json

from hypothesis import given
from hypothesis import strategies as st

from repro.obs.trace import (
    SCHEMA_VERSION,
    TraceRecorder,
    canonical_line,
    hierarchy_delta,
    load_trace,
)


# -- canonical encoding ------------------------------------------------------

def test_canonical_line_is_insertion_order_independent():
    a = {"epoch": 3, "kind": "epoch", "label": "(1:1:16)"}
    b = {"label": "(1:1:16)", "kind": "epoch", "epoch": 3}
    assert canonical_line(a) == canonical_line(b)
    assert canonical_line(a) == '{"epoch":3,"kind":"epoch","label":"(1:1:16)"}'


def test_canonical_line_is_ascii_only():
    line = canonical_line({"reason": "merge — capacity"})
    assert line == line.encode("ascii").decode("ascii")


json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(min_value=-2**53, max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=20))
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4)),
    max_leaves=12)


@given(records=st.lists(
    st.dictionaries(st.text(min_size=1, max_size=10), json_values,
                    max_size=5),
    max_size=8))
def test_jsonl_round_trip(tmp_path_factory, records):
    # Arbitrary records written through the recorder parse back equal, in
    # order, with their kind field attached — and re-encoding each parsed
    # record is byte-stable (a second pass changes nothing).
    path = tmp_path_factory.mktemp("trace") / "t.jsonl"
    with TraceRecorder(path) as tracer:
        for record in records:
            fields = {k: v for k, v in record.items() if k != "kind"}
            tracer.emit("prop", **fields)
    loaded = load_trace(path)
    assert len(loaded) == len(records)
    for got, sent in zip(loaded, records):
        expected = {k: v for k, v in sent.items() if k != "kind"}
        expected["kind"] = "prop"
        assert got == expected
        assert canonical_line(json.loads(canonical_line(got))) \
            == canonical_line(got)


# -- recorder mechanics ------------------------------------------------------

def test_ring_buffer_keeps_newest(tmp_path):
    tracer = TraceRecorder(ring_size=4)
    for i in range(10):
        tracer.emit("tick", i=i)
    assert [r["i"] for r in tracer.records()] == [6, 7, 8, 9]


def test_records_filter_by_kind():
    tracer = TraceRecorder()
    tracer.emit("a", x=1)
    tracer.emit("b", x=2)
    tracer.emit("a", x=3)
    assert [r["x"] for r in tracer.records("a")] == [1, 3]
    assert [r["x"] for r in tracer.records()] == [1, 2, 3]


def test_suspended_silences_emit(tmp_path):
    path = tmp_path / "t.jsonl"
    with TraceRecorder(path) as tracer:
        tracer.emit("kept", i=0)
        tracer.suspended = True
        tracer.emit("dropped", i=1)
        tracer.suspended = False
        tracer.emit("kept", i=2)
    assert [r["i"] for r in load_trace(path)] == [0, 2]


def test_memory_only_recorder_has_no_file():
    tracer = TraceRecorder()
    tracer.emit("tick")
    tracer.flush()  # no-ops without a file
    tracer.close()
    assert tracer.path is None
    assert len(tracer.records()) == 1


def test_file_truncated_on_open(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("stale\n")
    with TraceRecorder(path) as tracer:
        tracer.emit("fresh")
    assert [r["kind"] for r in load_trace(path)] == ["fresh"]


def test_schema_version_is_an_int():
    assert isinstance(SCHEMA_VERSION, int) and SCHEMA_VERSION >= 1


# -- hierarchy deltas --------------------------------------------------------

def test_hierarchy_delta_reports_only_changes():
    before = {"cores": {0: (10, 5, 0, 0, 0, 0, 2, 0)},
              "l2": {0: (3, 1, 1, 0, 0)}, "l3": {}}
    after = {"cores": {0: (15, 7, 0, 0, 0, 0, 2, 0)},
             "l2": {0: (3, 1, 1, 0, 0)}, "l3": {}}
    delta = hierarchy_delta(before, after)
    assert delta["cores"] == {"0": {"accesses": 5, "l1_hits": 2}}
    assert delta["l2"] == {}  # unchanged slice omitted entirely
    assert delta["l3"] == {}
