"""Differential suite: the two engines emit byte-identical trace files.

The trace recorder's contract (see :mod:`repro.obs.trace`) is that tracing
is a pure observation: for the same ``RunSpec`` the event and batch engines
write the *same JSONL file, byte for byte*.  Every test here runs one
(scheme, workload, seed) twice — once per engine — each writing a trace,
and compares raw file bytes (never parsed records, so a formatting or
key-ordering regression cannot hide).  Coverage mirrors the batch dispatch
tiers of ``tests/sim/test_batch_equivalence.py``:

- ``batch-private-percore`` — all-private topology on a multiprogrammed mix;
- ``batch-private`` — all-private with shared lines (multithreaded PARSEC);
- ``batch-general`` — merged/shared topologies, plus morphcache across
  live reconfigurations (the ``reconfig`` records carry ACFV inputs);
- ``event`` fallback — baseline schemes without a batchable hierarchy;

plus fault injection (``fault`` records interleave identically) and a
checkpoint kill + resume (the resumed trace contains exactly the run header
plus the post-resume records, and those bytes match the uninterrupted
golden trace line for line).
"""

import json

import pytest

from repro.baselines.static_topologies import STATIC_LABELS
from repro.config import TINY
from repro.obs.trace import TraceRecorder
from repro.resilience import parse_fault_spec
from repro.sim.engine import simulate
from repro.sim.experiment import build_system
from repro.sim.workload import Workload
from repro.workloads import MIXES, PARSEC_BENCHMARKS

CONFIG = TINY.with_(epochs=4)
SEED = 3


def _traced_run(scheme, workload, engine, path, config=CONFIG, seed=SEED,
                epoch_digests=False, **kwargs):
    system = build_system(scheme, config, workload, seed=seed)
    with TraceRecorder(path, epoch_digests=epoch_digests) as tracer:
        simulate(system, workload, config, seed=seed, engine=engine,
                 tracer=tracer, **kwargs)
    return path


def _assert_traces_identical(scheme, workload, tmp_path, **kwargs):
    event = _traced_run(scheme, workload, "event",
                        tmp_path / "event.jsonl", **kwargs)
    batch = _traced_run(scheme, workload, "batch",
                        tmp_path / "batch.jsonl", **kwargs)
    event_bytes = event.read_bytes()
    assert event_bytes  # a trace was actually written
    assert event_bytes == batch.read_bytes()
    return event_bytes


@pytest.mark.parametrize("scheme", STATIC_LABELS)
def test_static_topologies_trace_identical(scheme, tmp_path):
    _assert_traces_identical(scheme, Workload.from_mix(MIXES[0]), tmp_path)


def test_morphcache_trace_identical_across_reconfigurations(tmp_path):
    raw = _assert_traces_identical("morphcache", Workload.from_mix(MIXES[0]),
                                   tmp_path)
    kinds = [json.loads(line)["kind"] for line in raw.decode().splitlines()]
    assert kinds[0] == "run-start"
    assert kinds[-1] == "run-end"
    assert kinds.count("epoch") == CONFIG.epochs + 1  # +1 warmup


def test_multithreaded_shared_lines_trace_identical(tmp_path):
    name = sorted(PARSEC_BENCHMARKS)[0]
    for scheme in ("(1:1:16)", "morphcache"):
        subdir = tmp_path / scheme.strip("()").replace(":", "-")
        subdir.mkdir()
        _assert_traces_identical(scheme, Workload.from_parsec(name), subdir)


@pytest.mark.parametrize("scheme", ["pipp", "dsr", "ucp"])
def test_event_fallback_trace_identical(scheme, tmp_path):
    # Baselines have no hierarchy/controller: the trace degrades gracefully
    # (no stats/topology fields) but stays byte-identical.
    raw = _assert_traces_identical(scheme, Workload.from_mix(MIXES[0]),
                                   tmp_path)
    epoch = next(r for r in map(json.loads, raw.decode().splitlines())
                 if r["kind"] == "epoch")
    assert "stats" not in epoch and "topology" not in epoch


def test_fault_injected_trace_identical(tmp_path):
    plan = parse_fault_spec(
        "disable-slice:every=2:level=l3,flip-acfv:at=3:bits=4,seed=7")
    raw = _assert_traces_identical("morphcache", Workload.from_mix(MIXES[1]),
                                   tmp_path, fault_plan=plan)
    kinds = [json.loads(line)["kind"] for line in raw.decode().splitlines()]
    assert "fault" in kinds  # the plan actually fired, identically


def test_epoch_digests_trace_identical(tmp_path):
    # With per-epoch state digests switched on, even the full cache-state
    # hash sequence matches — this is what localises a mid-run divergence.
    raw = _assert_traces_identical("morphcache", Workload.from_mix(MIXES[0]),
                                   tmp_path, epoch_digests=True)
    epochs = [r for r in map(json.loads, raw.decode().splitlines())
              if r["kind"] == "epoch"]
    assert all("digest" in r for r in epochs)


class _Killed(Exception):
    pass


def test_checkpoint_resume_trace_is_golden_tail(tmp_path, monkeypatch):
    # A resumed run's trace must contain exactly the run header plus the
    # post-resume records: fast-forward replay is silenced (suspended), so
    # no epoch is double-recorded, and the recorded tail is byte-identical
    # to the uninterrupted run's — under either engine.
    from repro.sim import engine as engine_module

    workload = Workload.from_mix(MIXES[0])
    golden = _traced_run("morphcache", workload, "event",
                         tmp_path / "golden.jsonl")
    golden_lines = golden.read_text().splitlines()

    original = engine_module.save_checkpoint
    kill_at = 3

    def save_then_kill(p, fingerprint, next_epoch, *args, **kwargs):
        original(p, fingerprint, next_epoch, *args, **kwargs)
        if next_epoch >= kill_at:
            raise _Killed()

    for writer, resumer in (("event", "batch"), ("batch", "event")):
        ckpt = tmp_path / f"{writer}-{resumer}.ckpt"
        monkeypatch.setattr(engine_module, "save_checkpoint", save_then_kill)
        system = build_system("morphcache", CONFIG, workload, seed=SEED)
        with pytest.raises(_Killed):
            simulate(system, workload, CONFIG, seed=SEED, engine=writer,
                     checkpoint_path=ckpt, checkpoint_every=1)
        monkeypatch.setattr(engine_module, "save_checkpoint", original)

        resumed = _traced_run("morphcache", workload, resumer,
                              tmp_path / f"{writer}-{resumer}.jsonl",
                              checkpoint_path=ckpt, resume=True)
        resumed_lines = resumed.read_text().splitlines()
        expected = [golden_lines[0]] + [
            line for line in golden_lines[1:]
            if json.loads(line).get("epoch", -1) >= kill_at
            or json.loads(line)["kind"] == "run-end"]
        assert resumed_lines == expected
