"""Unit tests for the metrics registry (repro.obs.metrics).

The property-based half lives in ``test_metrics_properties.py``; this file
pins the exact exposition formats and the API's failure modes.
"""

import json

import pytest

from repro.obs.metrics import (
    REGISTRY,
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture
def reg():
    return MetricsRegistry(enabled=True)


# -- counters / gauges -------------------------------------------------------

def test_counter_increments_and_reads_back(reg):
    c = reg.counter("repro_test_total", "help")
    assert c.value == 0.0
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_counter_rejects_negative_increment(reg):
    c = reg.counter("repro_test_total")
    with pytest.raises(MetricError):
        c.inc(-1)
    assert c.value == 0.0


def test_gauge_moves_both_ways(reg):
    g = reg.gauge("repro_test_level")
    g.set(4)
    g.inc()
    g.dec(2.0)
    assert g.value == 3.0


def test_labelled_series_are_independent(reg):
    c = reg.counter("repro_test_total", labels=("engine",))
    c.labels(engine="event").inc(2)
    c.labels(engine="batch").inc(5)
    assert c.labels(engine="event").value == 2
    assert c.labels(engine="batch").value == 5


def test_wrong_label_set_rejected(reg):
    c = reg.counter("repro_test_total", labels=("engine",))
    with pytest.raises(MetricError):
        c.labels(motor="event")
    with pytest.raises(MetricError):
        c.labels()  # label-less shorthand invalid on a labelled metric
    with pytest.raises(MetricError):
        c.labels(engine="event", extra="x")


# -- registration ------------------------------------------------------------

def test_registration_is_idempotent(reg):
    a = reg.counter("repro_test_total", "help")
    b = reg.counter("repro_test_total", "different help ignored")
    assert a is b


def test_type_clash_rejected(reg):
    reg.counter("repro_test_total")
    with pytest.raises(MetricError):
        reg.gauge("repro_test_total")


def test_label_clash_rejected(reg):
    reg.counter("repro_test_total", labels=("engine",))
    with pytest.raises(MetricError):
        reg.counter("repro_test_total", labels=("scheme",))


def test_invalid_names_rejected(reg):
    with pytest.raises(MetricError):
        reg.counter("0starts_with_digit")
    with pytest.raises(MetricError):
        reg.counter("has space")
    with pytest.raises(MetricError):
        reg.counter("repro_ok_total", labels=("0bad",))


def test_histogram_bucket_validation(reg):
    with pytest.raises(MetricError):
        reg.histogram("repro_h_seconds", buckets=())
    with pytest.raises(MetricError):
        reg.histogram("repro_h_seconds", buckets=(1.0, 1.0, 2.0))
    with pytest.raises(MetricError):
        reg.histogram("repro_h_seconds", buckets=(2.0, 1.0))


def test_cardinality_cap_is_a_typed_error():
    reg = MetricsRegistry(enabled=True, max_label_sets=2)
    c = reg.counter("repro_test_total", labels=("k",))
    c.labels(k="a").inc()
    c.labels(k="b").inc()
    with pytest.raises(CardinalityError):
        c.labels(k="c")
    # existing series still usable after the rejection
    c.labels(k="a").inc()
    assert c.labels(k="a").value == 2


# -- lifecycle ---------------------------------------------------------------

def test_enable_disable_reset(reg):
    assert reg.enabled
    reg.disable()
    assert not reg.enabled
    reg.enable()
    reg.counter("repro_test_total").inc()
    reg.reset()
    assert reg.get("repro_test_total") is None
    assert reg.expose_text() == ""


def test_global_registry_disabled_by_default():
    # The zero-overhead contract: instrumented sites all gate on this flag,
    # and the process-wide default must start off.
    assert isinstance(REGISTRY, MetricsRegistry)
    assert REGISTRY.enabled is False


# -- exposition --------------------------------------------------------------

def test_expose_text_counter_and_gauge(reg):
    reg.counter("repro_runs_total", "Total runs").inc(3)
    reg.gauge("repro_groups", "Installed groups", labels=("level",)) \
        .labels(level="l2").set(4)
    text = reg.expose_text()
    assert "# HELP repro_runs_total Total runs\n" in text
    assert "# TYPE repro_runs_total counter\n" in text
    assert "repro_runs_total 3\n" in text
    assert "# TYPE repro_groups gauge\n" in text
    assert 'repro_groups{level="l2"} 4\n' in text
    assert text.endswith("\n")


def test_expose_text_histogram_cumulative(reg):
    h = reg.histogram("repro_run_seconds", "Run wall clock",
                      buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    text = reg.expose_text()
    assert 'repro_run_seconds_bucket{le="0.1"} 1\n' in text
    assert 'repro_run_seconds_bucket{le="1.0"} 3\n' in text
    assert 'repro_run_seconds_bucket{le="10.0"} 4\n' in text
    assert 'repro_run_seconds_bucket{le="+Inf"} 5\n' in text
    assert "repro_run_seconds_sum 56.05\n" in text
    assert "repro_run_seconds_count 5\n" in text


def test_expose_text_escapes_label_values(reg):
    c = reg.counter("repro_test_total", labels=("name",))
    c.labels(name='quo"te\\back\nline').inc()
    text = reg.expose_text()
    assert 'name="quo\\"te\\\\back\\nline"' in text


def test_boundary_value_lands_in_its_bucket(reg):
    # le semantics: an observation exactly on a boundary counts in that
    # bucket (v <= le), which is what bisect_left gives us.
    h = reg.histogram("repro_h_seconds", buckets=(1.0, 2.0))
    h.observe(1.0)
    text = reg.expose_text()
    assert 'repro_h_seconds_bucket{le="1.0"} 1\n' in text


def test_dump_json_round_trips(reg):
    reg.counter("repro_runs_total", "Total runs", labels=("engine",)) \
        .labels(engine="event").inc(2)
    reg.histogram("repro_run_seconds", buckets=(1.0,)).observe(0.5)
    dump = json.loads(json.dumps(reg.dump_json()))  # JSON-serialisable
    runs = dump["repro_runs_total"]
    assert runs["type"] == "counter"
    assert runs["series"] == [{"labels": {"engine": "event"}, "value": 2.0}]
    hist = dump["repro_run_seconds"]
    assert hist["series"][0]["count"] == 1
    assert hist["series"][0]["buckets"] == {"1.0": 1}


def test_instrumented_run_populates_expected_metrics():
    # End to end: a real (tiny) simulation under an enabled registry must
    # hit the engine/controller/hierarchy hook sites.
    from repro.config import TINY
    from repro.sim.experiment import run_scheme
    from repro.sim.workload import Workload
    from repro.workloads import MIXES

    REGISTRY.reset()
    REGISTRY.enable()
    try:
        run_scheme("morphcache", Workload.from_mix(MIXES[0]),
                   TINY.with_(epochs=3), seed=7)
    finally:
        REGISTRY.disable()
        text = REGISTRY.expose_text()
        REGISTRY.reset()
    assert 'repro_sim_runs_total{engine="event"} 1' in text
    assert "repro_sim_epochs_total 4" in text  # 3 measured + 1 warmup
    assert "repro_topology_changes_total" in text
    assert "repro_batch_epochs_total" not in text  # event engine run
