"""The timeline renderer turns a recorded trace into the story of the run."""

from repro.config import TINY
from repro.obs.timeline import render_timeline
from repro.obs.trace import TraceRecorder
from repro.resilience import parse_fault_spec
from repro.sim.engine import simulate
from repro.sim.experiment import build_system
from repro.sim.workload import Workload
from repro.workloads import MIXES

CONFIG = TINY.with_(epochs=6)
SEED = 3


def _traced_records(scheme="morphcache", **kwargs):
    workload = Workload.from_mix(MIXES[0])
    system = build_system(scheme, CONFIG, workload, seed=SEED)
    tracer = TraceRecorder()
    simulate(system, workload, CONFIG, seed=SEED, tracer=tracer, **kwargs)
    return tracer.records()


def test_timeline_of_a_real_run():
    plan = parse_fault_spec("disable-slice:every=3:level=l3,seed=11")
    records = _traced_records(fault_plan=plan)
    text = render_timeline(records)

    lines = text.splitlines()
    assert lines[0].startswith("morphcache on MIX 01 — seed 3, 6 epochs")
    assert any("fault plan:" in line for line in lines)
    assert any("fault    disable-slice" in line for line in lines)
    # the tiny preset reconfigures under this seed: merges/splits show with
    # their ACFV inputs, and each change prints a topology picture
    assert any("|ACFV|=" in line for line in lines)
    assert any("topology now" in line for line in lines)
    assert any(line.lstrip().startswith("cores") for line in lines)
    assert any(line.startswith("run end:") for line in lines)
    assert any(line.startswith("throughput") for line in lines)  # sparkline


def test_timeline_without_hierarchy_scheme():
    # Baselines emit no topology/stats fields; the renderer must not crash
    # and still reports the header and the run summary.
    text = render_timeline(_traced_records("pipp"))
    assert text.splitlines()[0].startswith("pipp on MIX 01")
    assert "run end:" in text
    assert "topology now" not in text


def test_timeline_guard_line():
    # Guard interventions render from their record fields alone.
    records = [
        {"kind": "run-start", "scheme": "morphcache", "workload": "W",
         "seed": 1, "epochs": 2, "warmup_epochs": 1,
         "accesses_per_core": 10, "cores": [0, 1], "faults": None},
        {"kind": "guard", "epoch": 1, "action": "rollback",
         "violation": "overlapping groups", "mode_after": "frozen"},
    ]
    text = render_timeline(records)
    assert "guard    rollback (overlapping groups) -> mode frozen" in text


def test_timeline_empty_trace():
    assert render_timeline([]) == ""
