"""Property tests for the metrics registry (Hypothesis).

Three invariants the exposition consumers rely on, driven far outside the
hand-picked unit-test values:

- a counter is exactly the sum of its (non-negative) increments, and any
  negative increment is rejected without corrupting the value;
- a histogram's cumulative bucket counts are non-decreasing, its ``+Inf``
  bucket equals ``count``, each ``le`` bucket counts exactly the
  observations ``<= le``, and ``sum`` matches the observations;
- the label-cardinality cap admits exactly ``max_label_sets`` distinct
  label sets, rejects the rest with the typed error, and never disturbs the
  admitted series.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.obs.metrics import CardinalityError, MetricError, MetricsRegistry

finite = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)
non_negative = st.floats(min_value=0, max_value=1e9,
                         allow_nan=False, allow_infinity=False)


@given(amounts=st.lists(non_negative, max_size=50))
def test_counter_is_sum_of_increments(amounts):
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("repro_prop_total")
    for amount in amounts:
        c.inc(amount)
    # identical accumulation order => exact float equality, not approx
    expected = 0.0
    for amount in amounts:
        expected += amount
    assert c.value == expected


@given(amounts=st.lists(non_negative, max_size=20),
       bad=st.floats(max_value=-1e-9, min_value=-1e9, allow_nan=False))
def test_counter_rejects_negatives_without_corruption(amounts, bad):
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("repro_prop_total")
    for amount in amounts:
        c.inc(amount)
    before = c.value
    with pytest.raises(MetricError):
        c.inc(bad)
    assert c.value == before


@settings(max_examples=60)
@given(observations=st.lists(finite, max_size=60),
       buckets=st.lists(finite, min_size=1, max_size=8, unique=True))
def test_histogram_invariants(observations, buckets):
    buckets = sorted(buckets)
    reg = MetricsRegistry(enabled=True)
    h = reg.histogram("repro_prop_seconds", buckets=buckets)
    for value in observations:
        h.observe(value)
    series = h.labels()
    cumulative = series.cumulative()

    assert series.count == len(observations)
    assert cumulative[-1] == series.count  # +Inf bucket is everything
    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
    for le, cum in zip(buckets, cumulative):
        assert cum == sum(1 for v in observations if v <= le)
    expected_sum = 0.0
    for value in observations:
        expected_sum += value
    assert series.sum == expected_sum


@given(cap=st.integers(min_value=1, max_value=10),
       extra=st.integers(min_value=1, max_value=5))
def test_cardinality_cap_exact(cap, extra):
    reg = MetricsRegistry(enabled=True, max_label_sets=cap)
    c = reg.counter("repro_prop_total", labels=("k",))
    for i in range(cap):
        c.labels(k=f"v{i}").inc()
    for i in range(cap, cap + extra):
        with pytest.raises(CardinalityError):
            c.labels(k=f"v{i}")
    # every admitted series still intact and addressable
    for i in range(cap):
        assert c.labels(k=f"v{i}").value == 1
