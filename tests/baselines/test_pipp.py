"""Tests for the PIPP baseline (Xie & Loh, extended to L2+L3)."""

import pytest

from repro.baselines.pipp import (
    PippCache,
    PippSystem,
    UtilityMonitor,
    lookahead_partition,
)
from repro.config import TINY


class TestUtilityMonitor:
    def test_records_stack_distance_hits(self):
        monitor = UtilityMonitor(sets=4, ways=4, sample_every=1)
        monitor.observe(0)
        monitor.observe(0)  # MRU hit -> distance 0
        assert monitor.position_hits[0] == 1

    def test_deeper_reuse_hits_deeper_position(self):
        monitor = UtilityMonitor(sets=1, ways=4, sample_every=1)
        monitor.observe(0)
        monitor.observe(1)
        monitor.observe(0)  # distance 1
        assert monitor.position_hits[1] == 1

    def test_utility_curve_is_cumulative(self):
        monitor = UtilityMonitor(sets=1, ways=4, sample_every=1)
        monitor.position_hits = [3, 2, 1, 0]
        assert monitor.utility_curve() == [3, 5, 6, 6]

    def test_streaming_detection(self):
        monitor = UtilityMonitor(sets=1, ways=4, sample_every=1)
        for line in range(200):
            monitor.observe(line)
        assert monitor.is_streaming

    def test_reuse_is_not_streaming(self):
        monitor = UtilityMonitor(sets=1, ways=4, sample_every=1)
        for _ in range(100):
            monitor.observe(0)
        assert not monitor.is_streaming

    def test_unsampled_sets_ignored(self):
        monitor = UtilityMonitor(sets=4, ways=4, sample_every=4)
        monitor.observe(1)  # set 1 is not sampled
        assert monitor.accesses == 0

    def test_reset(self):
        monitor = UtilityMonitor(sets=1, ways=2, sample_every=1)
        monitor.observe(0)
        monitor.reset()
        assert monitor.accesses == 0
        assert monitor.position_hits == [0, 0]


class TestLookaheadPartition:
    def test_splits_by_marginal_utility(self):
        curves = [[10, 20, 30, 40], [1, 1, 1, 1]]
        allocation = lookahead_partition(curves, total_ways=4)
        assert allocation[0] > allocation[1]
        assert sum(allocation) == 4

    def test_minimum_allocation_honoured(self):
        curves = [[100, 200], [0, 0], [0, 0]]
        allocation = lookahead_partition(curves, total_ways=4, minimum=1)
        assert all(a >= 1 for a in allocation)

    def test_flat_curves_spread_round_robin(self):
        curves = [[0, 0, 0, 0]] * 2
        allocation = lookahead_partition(curves, total_ways=6)
        assert sum(allocation) == 6

    def test_rejects_insufficient_ways(self):
        with pytest.raises(ValueError):
            lookahead_partition([[1], [1]], total_ways=1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            lookahead_partition([], total_ways=4)


class TestPippCache:
    def make_cache(self):
        return PippCache(sets=4, ways=8, n_cores=2, seed=1)

    def test_insert_at_partition_position(self):
        cache = self.make_cache()
        cache.partitions = [2, 6]
        # Fill the set with core 1's lines, then insert one for core 0.
        for k in range(8):
            cache.fill(1, k * 4)
        cache.fill(0, 999 * 4 )
        entries = cache._data[0]
        lines = [line for line, _ in entries]
        assert lines.index(999 * 4) == 2

    def test_victim_is_lowest_priority(self):
        cache = self.make_cache()
        for k in range(9):
            victim = cache.fill(0, k * 4)
        assert victim is not None

    def test_lookup_hit_and_miss_counted(self):
        cache = self.make_cache()
        cache.fill(0, 16)
        assert cache.lookup(0, 16)
        assert not cache.lookup(0, 20)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_promotion_moves_at_most_one_position(self):
        cache = self.make_cache()
        cache.fill(0, 0)
        for k in range(1, 8):
            cache.fill(1, k * 4)
        before = [line for line, _ in cache._data[0]]
        cache.lookup(0, 0)
        after = [line for line, _ in cache._data[0]]
        moved = before.index(0), after.index(0)
        assert moved[1] - moved[0] in (0, 1)

    def test_repartition_resets_monitors(self):
        cache = self.make_cache()
        for line in range(32):
            cache.lookup(0, line)
        partitions = cache.repartition()
        assert sum(partitions) <= cache.ways
        assert cache.monitors[0].accesses == 0


class TestPippSystem:
    def test_protocol(self):
        system = PippSystem(TINY, seed=3)
        latency = system.access(0, 0x100, False)
        assert latency == TINY.latency.memory
        assert system.access(0, 0x100, False) == TINY.latency.l1_hit
        assert system.end_epoch() == "pipp"
        assert system.miss_counts()[0] == 1

    def test_shared_cache_visible_to_all_cores(self):
        system = PippSystem(TINY, seed=3)
        system.access(0, 0x200, False)
        latency = system.access(1, 0x200, False)
        assert latency == TINY.latency.l2_local_hit

    def test_repartitions_on_epoch(self):
        system = PippSystem(TINY, seed=3)
        for line in range(50):
            system.access(0, line, False)
            system.access(1, 0, False)
        system.end_epoch()
        assert sum(system.l2.partitions) <= system.l2.ways
