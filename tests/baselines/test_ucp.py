"""Tests for the UCP baseline (strict utility-based partitioning)."""

import pytest

from repro.baselines.ucp import UcpCache, UcpSystem
from repro.config import TINY


class TestUcpCache:
    def make_cache(self):
        return UcpCache(sets=4, ways=8, n_cores=2)

    def test_lookup_promotes_to_mru(self):
        cache = self.make_cache()
        cache.fill(0, 0)
        cache.fill(0, 4)
        assert cache.lookup(0, 0)
        entries = cache._data[0]
        assert entries[-1][0] == 0

    def test_eviction_targets_over_quota_core(self):
        cache = self.make_cache()
        cache.allocations = [6, 2]
        # Core 1 floods the set beyond its 2-way quota.
        for k in range(5):
            cache.fill(1, k * 4)
        cache.fill(0, 100 * 4)
        cache.fill(0, 101 * 4)
        cache.fill(0, 102 * 4)
        victim = cache.fill(0, 103 * 4)
        # The set was full; the victim must be one of core 1's lines.
        assert victim in {k * 4 for k in range(5)}
        assert cache.occupancy_of(1) < 5

    def test_falls_back_to_global_lru(self):
        cache = self.make_cache()
        cache.allocations = [8, 8]  # nobody can be over quota
        for k in range(8):
            cache.fill(0, k * 4)
        victim = cache.fill(0, 99 * 4)
        assert victim == 0  # global LRU

    def test_repartition_from_monitors(self):
        cache = self.make_cache()
        # Core 0 reuses heavily; core 1 streams.
        for _ in range(30):
            cache.lookup(0, 0)
        for line in range(60):
            cache.lookup(1, line * 4)
        allocations = cache.repartition()
        assert allocations[0] >= 1
        assert sum(allocations) <= cache.ways

    def test_rejects_bad_sets(self):
        with pytest.raises(ValueError):
            UcpCache(sets=3, ways=4, n_cores=2)


class TestUcpSystem:
    def test_protocol(self):
        system = UcpSystem(TINY)
        assert system.access(0, 0x10, False) == TINY.latency.memory
        assert system.access(0, 0x10, False) == TINY.latency.l1_hit
        assert system.end_epoch() == "ucp"
        assert system.miss_counts()[0] == 1

    def test_shared_visibility(self):
        system = UcpSystem(TINY)
        system.access(0, 0x20, False)
        assert system.access(1, 0x20, False) == TINY.latency.l2_local_hit

    def test_registered_as_scheme(self):
        from repro.sim.experiment import SCHEME_BUILDERS
        assert "ucp" in SCHEME_BUILDERS
