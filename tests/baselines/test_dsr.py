"""Tests for the DSR baseline (Qureshi, extended to L2+L3)."""


from repro.baselines.dsr import PSEL_MAX, DsrLevel, DsrSystem
from repro.config import TINY


def make_level(sets=8, ways=2, n_slices=4):
    return DsrLevel(sets=sets, ways=ways, n_slices=n_slices, seed=1)


class TestSetDueling:
    def test_sample_roles_fixed(self):
        level = make_level()
        assert level._set_role(0, 0) == "spill"
        assert level._set_role(0, 1) == "receive"

    def test_follower_sets_follow_psel(self):
        level = make_level()
        level.psel[0] = PSEL_MAX
        assert level._set_role(0, 2) == "spill"
        level.psel[0] = 0
        assert level._set_role(0, 2) == "receive"

    def test_miss_in_spill_sample_decrements(self):
        level = make_level()
        before = level.psel[0]
        level.lookup(0, 0, stamp=1)  # set 0 = spill sample, miss
        assert level.psel[0] == before - 1

    def test_miss_in_receive_sample_increments(self):
        level = make_level()
        before = level.psel[0]
        level.lookup(0, 1, stamp=1)  # set 1 = receive sample, miss
        assert level.psel[0] == before + 1

    def test_psel_saturates(self):
        level = make_level()
        level.psel[0] = 0
        level.lookup(0, 0, stamp=1)
        assert level.psel[0] == 0


class TestSpillReceive:
    def test_local_hit(self):
        level = make_level()
        level.fill(0, 16, False, stamp=1)
        assert level.lookup(0, 16, stamp=2) == "local"

    def test_remote_hit_on_spilled_line(self):
        level = make_level(sets=8, ways=1, n_slices=2)
        level.psel[0] = PSEL_MAX      # slice 0 spills
        level.psel[1] = 0             # slice 1 receives
        # Fill a follower set (set 2) and overflow it to force a spill.
        level.fill(0, 2, False, stamp=1)
        level.fill(0, 2 + 8, False, stamp=2)  # same set, evicts line 2
        if level.spills:
            assert level.lookup(0, 2, stamp=3) == "remote"

    def test_no_spill_without_receivers(self):
        level = make_level(n_slices=2)
        level.psel = [PSEL_MAX, PSEL_MAX]  # everyone spills
        level.fill(0, 0, False, stamp=1)
        level.fill(0, 8, False, stamp=2)
        level.fill(0, 16, False, stamp=3)  # overflow, but nowhere to go
        assert level.spills == 0

    def test_receiver_never_spills(self):
        level = make_level(sets=8, ways=1, n_slices=2)
        level.psel[0] = 0  # receiver
        level.fill(0, 2, False, stamp=1)
        level.fill(0, 10, False, stamp=2)
        assert level.spills == 0

    def test_miss_everywhere_returns_none(self):
        level = make_level()
        assert level.lookup(0, 99, stamp=1) is None


class TestDsrSystem:
    def test_protocol(self):
        system = DsrSystem(TINY, seed=2)
        assert system.access(0, 0x50, False) == TINY.latency.memory
        assert system.access(0, 0x50, False) == TINY.latency.l1_hit
        assert system.end_epoch() == "dsr"
        assert system.miss_counts()[0] == 1

    def test_private_slices_do_not_share_by_default(self):
        system = DsrSystem(TINY, seed=2)
        system.access(0, 0x60, False)
        # Core 1 misses L1/L2 locally; the line is only in core 0's slices,
        # so it can only be found via a remote (spilled) probe - but the
        # line was never spilled, it lives in core 0's slice, which IS
        # probed remotely.  DSR always snoops peers, so this is a remote
        # hit at merged latency.
        latency = system.access(1, 0x60, False)
        assert latency in (TINY.latency.l2_merged_hit, TINY.latency.l3_merged_hit)

    def test_remote_hits_counted(self):
        system = DsrSystem(TINY, seed=2)
        system.access(0, 0x70, False)
        system.access(1, 0x70, False)
        assert system.l2.remote_hits + system.l3.remote_hits >= 1
