"""Tests for the ideal offline scheme (Figure 15)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.offline_ideal import ideal_offline
from repro.sim.engine import EpochResult, RunResult


def make_run(scheme, series):
    return RunResult(
        workload_name="w",
        scheme_name=scheme,
        epochs=[EpochResult(i, {0: value}, {0: 0}, scheme)
                for i, value in enumerate(series)],
    )


class TestIdealOffline:
    def test_pointwise_maximum(self):
        runs = [make_run("a", [1.0, 3.0]), make_run("b", [2.0, 1.0])]
        ideal = ideal_offline(runs)
        assert ideal.throughput_series() == [2.0, 3.0]

    def test_labels_winning_scheme(self):
        runs = [make_run("a", [1.0, 3.0]), make_run("b", [2.0, 1.0])]
        ideal = ideal_offline(runs)
        assert [e.topology_label for e in ideal.epochs] == ["b", "a"]

    def test_ideal_at_least_best_static(self):
        runs = [make_run("a", [1.0, 3.0, 2.0]), make_run("b", [2.0, 1.0, 2.5])]
        ideal = ideal_offline(runs)
        assert ideal.mean_throughput >= max(r.mean_throughput for r in runs)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ideal_offline([])

    def test_rejects_mixed_workloads(self):
        a = make_run("a", [1.0])
        b = make_run("b", [1.0])
        b.workload_name = "other"
        with pytest.raises(ValueError):
            ideal_offline([a, b])

    def test_rejects_mismatched_epochs(self):
        with pytest.raises(ValueError):
            ideal_offline([make_run("a", [1.0]), make_run("b", [1.0, 2.0])])

    def test_scheme_name(self):
        assert ideal_offline([make_run("a", [1.0])]).scheme_name == "ideal-offline"

    def test_single_run_reproduces_its_series(self):
        only = make_run("a", [1.5, 0.5, 2.0])
        ideal = ideal_offline([only])
        assert ideal.throughput_series() == only.throughput_series()
        assert [e.topology_label for e in ideal.epochs] == ["a", "a", "a"]

    def test_epoch_indices_are_sequential(self):
        ideal = ideal_offline([make_run("a", [1.0, 2.0, 3.0])])
        assert [e.epoch for e in ideal.epochs] == [0, 1, 2]

    def test_copies_do_not_alias_source_epochs(self):
        # The oracle copies the winning epoch's dicts; mutating the ideal
        # result must not corrupt the static run it was built from.
        source = make_run("a", [1.0])
        ideal = ideal_offline([source])
        ideal.epochs[0].ipcs[0] = 99.0
        ideal.epochs[0].misses[0] = 99
        assert source.epochs[0].ipcs[0] == 1.0
        assert source.epochs[0].misses[0] == 0

    def test_ties_keep_first_run(self):
        # max() is stable on ties: the earlier run in the input wins, so
        # the oracle's labelling is deterministic in the input order.
        runs = [make_run("a", [1.0]), make_run("b", [1.0])]
        assert ideal_offline(runs).epochs[0].topology_label == "a"

    @given(series=st.lists(
        st.lists(st.floats(min_value=0.01, max_value=100,
                           allow_nan=False, allow_infinity=False),
                 min_size=3, max_size=3),
        min_size=1, max_size=6))
    def test_pointwise_maximum_property(self, series):
        runs = [make_run(f"s{i}", values) for i, values in enumerate(series)]
        ideal = ideal_offline(runs)
        for index, value in enumerate(ideal.throughput_series()):
            assert value == max(values[index] for values in series)
