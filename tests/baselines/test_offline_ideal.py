"""Tests for the ideal offline scheme (Figure 15)."""

import pytest

from repro.baselines.offline_ideal import ideal_offline
from repro.sim.engine import EpochResult, RunResult


def make_run(scheme, series):
    return RunResult(
        workload_name="w",
        scheme_name=scheme,
        epochs=[EpochResult(i, {0: value}, {0: 0}, scheme)
                for i, value in enumerate(series)],
    )


class TestIdealOffline:
    def test_pointwise_maximum(self):
        runs = [make_run("a", [1.0, 3.0]), make_run("b", [2.0, 1.0])]
        ideal = ideal_offline(runs)
        assert ideal.throughput_series() == [2.0, 3.0]

    def test_labels_winning_scheme(self):
        runs = [make_run("a", [1.0, 3.0]), make_run("b", [2.0, 1.0])]
        ideal = ideal_offline(runs)
        assert [e.topology_label for e in ideal.epochs] == ["b", "a"]

    def test_ideal_at_least_best_static(self):
        runs = [make_run("a", [1.0, 3.0, 2.0]), make_run("b", [2.0, 1.0, 2.5])]
        ideal = ideal_offline(runs)
        assert ideal.mean_throughput >= max(r.mean_throughput for r in runs)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ideal_offline([])

    def test_rejects_mixed_workloads(self):
        a = make_run("a", [1.0])
        b = make_run("b", [1.0])
        b.workload_name = "other"
        with pytest.raises(ValueError):
            ideal_offline([a, b])

    def test_rejects_mismatched_epochs(self):
        with pytest.raises(ValueError):
            ideal_offline([make_run("a", [1.0]), make_run("b", [1.0, 2.0])])

    def test_scheme_name(self):
        assert ideal_offline([make_run("a", [1.0])]).scheme_name == "ideal-offline"
