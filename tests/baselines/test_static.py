"""Tests for the static topology catalogue and CmpSystem assembly."""

import pytest

from repro.baselines.static_topologies import (
    BASELINE_LABEL,
    EXTENDED_STATIC_LABELS,
    STATIC_LABELS,
)
from repro.config import TINY
from repro.core.topology import parse_config_label
from repro.cpu.cmp import CmpSystem


class TestCatalogue:
    def test_baseline_is_all_shared(self):
        assert BASELINE_LABEL == "(16:1:1)"
        assert BASELINE_LABEL in STATIC_LABELS

    def test_five_figure13_configurations(self):
        assert len(STATIC_LABELS) == 5

    def test_all_labels_parse(self):
        for label in EXTENDED_STATIC_LABELS:
            l2, l3 = parse_config_label(label)
            assert sorted(s for g in l2 for s in g) == list(range(16))

    def test_best_ws_static_included(self):
        """The paper's best-WS static (2:2:4) is in the extended sweep."""
        assert "(2:2:4)" in EXTENDED_STATIC_LABELS


class TestCmpSystem:
    def test_static_topology_installed(self):
        system = CmpSystem(TINY, static_label="(4:4:1)")
        assert len(system.hierarchy.l2_groups) == 4
        assert len(system.hierarchy.l3_groups) == 1
        assert system.label == "(4:4:1)"

    def test_static_does_not_charge_remote(self):
        system = CmpSystem(TINY, static_label="(16:1:1)")
        assert not system.hierarchy.charge_remote_latency

    def test_morph_charges_remote(self):
        system = CmpSystem(TINY)
        assert system.hierarchy.charge_remote_latency
        assert system.label == "morphcache"

    def test_cannot_mix_static_and_morph(self):
        from repro.config import MorphConfig
        with pytest.raises(ValueError):
            CmpSystem(TINY, static_label="(4:4:1)", morph=MorphConfig())

    def test_end_epoch_returns_label(self):
        system = CmpSystem(TINY, static_label="(8:2:1)")
        assert system.end_epoch() == "(8:2:1)"

    def test_miss_counts_protocol(self):
        system = CmpSystem(TINY, static_label="(16:1:1)")
        system.access(0, 0x10, False)
        assert system.miss_counts()[0] == 1
