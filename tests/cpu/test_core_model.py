"""Tests for the analytic core timing model."""

import pytest

from repro.cpu.core_model import CoreTimingModel


class TestAccounting:
    def test_simple_hit(self):
        core = CoreTimingModel(issue_width=4)
        core.account(gap=4, latency=3)
        assert core.instructions == 5
        assert core.cycles == pytest.approx(4.0)
        assert core.ipc == pytest.approx(1.25)

    def test_zero_gap(self):
        core = CoreTimingModel(issue_width=4)
        core.account(gap=0, latency=10)
        assert core.instructions == 1
        assert core.cycles == pytest.approx(10.0)

    def test_memory_overlap_hides_latency(self):
        """A 300-cycle miss charges only (1 - overlap) of the off-chip part."""
        core = CoreTimingModel(issue_width=4, memory_latency=300,
                               memory_overlap=0.65)
        core.account(gap=0, latency=300)
        assert core.cycles == pytest.approx(300 - 0.65 * 300)

    def test_overlap_applies_only_to_misses(self):
        core = CoreTimingModel(issue_width=4, memory_latency=300,
                               memory_overlap=0.65)
        core.account(gap=0, latency=45)  # merged L3 hit: fully exposed
        assert core.cycles == pytest.approx(45.0)

    def test_latency_above_memory_keeps_surplus(self):
        core = CoreTimingModel(issue_width=4, memory_latency=300,
                               memory_overlap=0.5)
        core.account(gap=0, latency=305)  # miss + coherence
        assert core.cycles == pytest.approx(305 - 150)

    def test_ipc_zero_before_any_accounting(self):
        assert CoreTimingModel(4).ipc == 0.0

    def test_reset(self):
        core = CoreTimingModel(4)
        core.account(10, 10)
        core.reset()
        assert core.cycles == 0.0
        assert core.instructions == 0

    def test_faster_cache_means_higher_ipc(self):
        fast, slow = CoreTimingModel(4), CoreTimingModel(4)
        for _ in range(100):
            fast.account(3, 10)
            slow.account(3, 30)
        assert fast.ipc > slow.ipc

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CoreTimingModel(0)
        with pytest.raises(ValueError):
            CoreTimingModel(4, memory_overlap=1.0)


class TestBatchedAccounting:
    """The batch engine's reductions must be bit-identical to the loop."""

    def _scalar(self, pairs, **kwargs):
        core = CoreTimingModel(4, **kwargs)
        for gap, lat in pairs:
            core.account(gap, lat)
        return core

    def test_account_batch_bit_identical_exact_path(self):
        import numpy as np
        rng = np.random.default_rng(11)
        gaps = rng.integers(0, 50, 500)
        lats = rng.choice([1, 8, 20, 300, 310], size=500)
        scalar = self._scalar(zip(gaps.tolist(), lats.tolist()))
        batched = CoreTimingModel(4)
        assert batched.batch_summation_exact(10 ** 6)
        batched.account_batch(gaps, lats)
        assert repr(batched.cycles) == repr(scalar.cycles)
        assert batched.instructions == scalar.instructions

    def test_account_batch_fallback_preserves_rounding_order(self):
        # A non-power-of-two issue width defeats the exact decomposition;
        # account_batch must then reproduce the scalar loop's rounding
        # sequence (same order, same floats).
        import numpy as np
        rng = np.random.default_rng(12)
        gaps = rng.integers(0, 9, 200)
        lats = rng.choice([3, 300, 351], size=200)
        scalar = CoreTimingModel(3)
        for gap, lat in zip(gaps.tolist(), lats.tolist()):
            scalar.account(gap, lat)
        batched = CoreTimingModel(3)
        assert not batched.batch_summation_exact(1.0)
        batched.account_batch(gaps, lats)
        assert repr(batched.cycles) == repr(scalar.cycles)
        assert batched.instructions == scalar.instructions

    def test_account_summary_matches_scalar(self):
        pairs = [(3, 8), (0, 300), (7, 1), (2, 310), (5, 300)]
        scalar = self._scalar(pairs)
        summed = CoreTimingModel(4)
        summed.account_summary(
            n=len(pairs),
            gap_sum=sum(g for g, _ in pairs),
            latency_sum=sum(l for _, l in pairs),
            offchip_count=sum(1 for _, l in pairs if l >= 300))
        assert repr(summed.cycles) == repr(scalar.cycles)
        assert summed.instructions == scalar.instructions

    def test_batch_summation_exact_envelope(self):
        core = CoreTimingModel(4)  # power-of-two width, 0.65 overlap
        assert core.batch_summation_exact(10 ** 9)
        assert not core.batch_summation_exact(float(2 ** 55))
        odd = CoreTimingModel(3)  # non-power-of-two issue width
        assert not odd.batch_summation_exact(10.0)

    def test_account_batch_empty_is_noop(self):
        core = CoreTimingModel(4)
        core.account_batch([], [])
        assert core.cycles == 0.0
        assert core.instructions == 0
