"""Tests for the analytic core timing model."""

import pytest

from repro.cpu.core_model import CoreTimingModel


class TestAccounting:
    def test_simple_hit(self):
        core = CoreTimingModel(issue_width=4)
        core.account(gap=4, latency=3)
        assert core.instructions == 5
        assert core.cycles == pytest.approx(4.0)
        assert core.ipc == pytest.approx(1.25)

    def test_zero_gap(self):
        core = CoreTimingModel(issue_width=4)
        core.account(gap=0, latency=10)
        assert core.instructions == 1
        assert core.cycles == pytest.approx(10.0)

    def test_memory_overlap_hides_latency(self):
        """A 300-cycle miss charges only (1 - overlap) of the off-chip part."""
        core = CoreTimingModel(issue_width=4, memory_latency=300,
                               memory_overlap=0.65)
        core.account(gap=0, latency=300)
        assert core.cycles == pytest.approx(300 - 0.65 * 300)

    def test_overlap_applies_only_to_misses(self):
        core = CoreTimingModel(issue_width=4, memory_latency=300,
                               memory_overlap=0.65)
        core.account(gap=0, latency=45)  # merged L3 hit: fully exposed
        assert core.cycles == pytest.approx(45.0)

    def test_latency_above_memory_keeps_surplus(self):
        core = CoreTimingModel(issue_width=4, memory_latency=300,
                               memory_overlap=0.5)
        core.account(gap=0, latency=305)  # miss + coherence
        assert core.cycles == pytest.approx(305 - 150)

    def test_ipc_zero_before_any_accounting(self):
        assert CoreTimingModel(4).ipc == 0.0

    def test_reset(self):
        core = CoreTimingModel(4)
        core.account(10, 10)
        core.reset()
        assert core.cycles == 0.0
        assert core.instructions == 0

    def test_faster_cache_means_higher_ipc(self):
        fast, slow = CoreTimingModel(4), CoreTimingModel(4)
        for _ in range(100):
            fast.account(3, 10)
            slow.account(3, 30)
        assert fast.ipc > slow.ipc

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CoreTimingModel(0)
        with pytest.raises(ValueError):
            CoreTimingModel(4, memory_overlap=1.0)
