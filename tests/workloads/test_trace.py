"""Tests for the trace representation."""

import numpy as np
import pytest

from repro.workloads.trace import EpochTrace, interleave_round_robin


def make_trace(lines):
    n = len(lines)
    return EpochTrace(
        lines=np.asarray(lines, dtype=np.int64),
        writes=np.zeros(n, dtype=bool),
        gaps=np.full(n, 2, dtype=np.int32),
    )


class TestEpochTrace:
    def test_length(self):
        assert len(make_trace([1, 2, 3])) == 3

    def test_instructions_counts_gaps_plus_references(self):
        trace = make_trace([1, 2, 3])
        assert trace.instructions == 3 * 2 + 3

    def test_unique_lines(self):
        assert make_trace([1, 1, 2]).unique_lines == 2

    def test_iteration_yields_python_types(self):
        for line, write, gap in make_trace([5]):
            assert isinstance(line, int)
            assert isinstance(write, bool)
            assert isinstance(gap, int)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            EpochTrace(
                lines=np.zeros(3, dtype=np.int64),
                writes=np.zeros(2, dtype=bool),
                gaps=np.zeros(3, dtype=np.int32),
            )

    def test_concatenate(self):
        joined = EpochTrace.concatenate([make_trace([1]), make_trace([2, 3])])
        assert list(joined.lines) == [1, 2, 3]

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            EpochTrace.concatenate([])


class TestInterleave:
    def test_round_robin_order(self):
        merged = interleave_round_robin([make_trace([1, 2]), make_trace([10, 20])])
        assert [(tid, line) for tid, line, _, _ in merged] == [
            (0, 1), (1, 10), (0, 2), (1, 20)
        ]

    def test_uneven_lengths(self):
        merged = interleave_round_robin([make_trace([1]), make_trace([10, 20])])
        assert [(tid, line) for tid, line, _, _ in merged] == [
            (0, 1), (1, 10), (1, 20)
        ]

    def test_empty_input(self):
        assert interleave_round_robin([]) == []
