"""Tests for the Table 5 workload mixes."""

import pytest

from repro.workloads.mixes import MIXES, Mix, mix_by_name
from repro.workloads.spec import class_counts


class TestTable5:
    def test_twelve_mixes(self):
        assert len(MIXES) == 12

    def test_every_mix_has_16_benchmarks(self):
        for mix in MIXES:
            assert len(mix.benchmark_names) == 16
            assert len(mix.benchmarks) == 16

    def test_declared_type_counts_validated(self):
        """The (c0,c1,c2,c3) annotations of Table 5 match the benchmarks."""
        for mix in MIXES:
            assert class_counts(mix.benchmark_names) == mix.type_counts
            assert sum(mix.type_counts) == 16

    def test_specific_compositions(self):
        assert mix_by_name("MIX 01").type_counts == (0, 0, 10, 6)
        assert mix_by_name("MIX 08").type_counts == (4, 4, 4, 4)
        assert mix_by_name("MIX 12").type_counts == (4, 8, 4, 0)

    def test_lookup_by_short_name(self):
        assert mix_by_name("5").name == "MIX 05"
        assert mix_by_name("11").name == "MIX 11"

    def test_unknown_mix_raises(self):
        with pytest.raises(ValueError):
            mix_by_name("MIX 99")

    def test_constructor_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            Mix(name="bad", type_counts=(1, 0, 0, 0),
                benchmark_names=("gcc",))

    def test_constructor_rejects_wrong_classes(self):
        with pytest.raises(ValueError):
            Mix(name="bad", type_counts=(16, 0, 0, 0),
                benchmark_names=tuple(["gcc"] * 16))
