"""Tests for the synthetic address-stream generator."""

import numpy as np
import pytest

from repro.config import TINY
from repro.workloads.synthetic import (
    SHARED_BASE,
    FootprintModel,
    SyntheticThread,
    make_threads,
)

L2 = TINY.l2_slice
L3 = TINY.l3_slice


def make_model(**overrides):
    params = dict(name="test", l2_acf=0.5, l2_sigma_t=0.05,
                  l3_acf=0.5, l3_sigma_t=0.05)
    params.update(overrides)
    return FootprintModel(**params)


class TestFootprintModel:
    def test_validation_rejects_bad_acf(self):
        with pytest.raises(ValueError):
            make_model(l2_acf=0.0)
        with pytest.raises(ValueError):
            make_model(l3_acf=2.0)

    def test_validation_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            make_model(l2_sigma_t=-0.1)

    def test_validation_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            make_model(shared_fraction=1.0)
        with pytest.raises(ValueError):
            make_model(cold_fraction=0.6)
        with pytest.raises(ValueError):
            make_model(write_ratio=1.5)

    def test_with_sharing(self):
        shared = make_model().with_sharing(0.3, 0.1)
        assert shared.shared_fraction == 0.3
        assert shared.spatial_sigma == 0.1


class TestSyntheticThread:
    def test_deterministic_replay(self):
        a = SyntheticThread(make_model(), 0, L2, L3, seed=5)
        b = SyntheticThread(make_model(), 0, L2, L3, seed=5)
        ta, tb = a.generate(500), b.generate(500)
        assert np.array_equal(ta.lines, tb.lines)
        assert np.array_equal(ta.writes, tb.writes)
        assert np.array_equal(ta.gaps, tb.gaps)

    def test_different_seeds_differ(self):
        a = SyntheticThread(make_model(), 0, L2, L3, seed=5)
        b = SyntheticThread(make_model(), 0, L2, L3, seed=6)
        assert not np.array_equal(a.generate(500).lines, b.generate(500).lines)

    def test_threads_have_disjoint_private_ranges(self):
        a = SyntheticThread(make_model(), 0, L2, L3, seed=5)
        b = SyntheticThread(make_model(), 1, L2, L3, seed=5)
        assert not set(a.generate(500).lines) & set(b.generate(500).lines)

    def test_write_ratio_respected(self):
        thread = SyntheticThread(make_model(write_ratio=0.3), 0, L2, L3, seed=1)
        trace = thread.generate(4000)
        assert trace.writes.mean() == pytest.approx(0.3, abs=0.05)

    def test_mean_gap_respected(self):
        thread = SyntheticThread(make_model(mean_gap=2.0), 0, L2, L3, seed=1)
        trace = thread.generate(4000)
        assert trace.gaps.mean() == pytest.approx(2.0, abs=0.3)

    def test_zero_gap_model(self):
        thread = SyntheticThread(make_model(mean_gap=0.0), 0, L2, L3, seed=1)
        assert thread.generate(100).gaps.sum() == 0

    def test_cold_stream_never_repeats(self):
        model = make_model(cold_fraction=0.4, drift=0.0)
        thread = SyntheticThread(model, 0, L2, L3, seed=1)
        t1 = thread.generate(1000)
        t2 = thread.generate(1000)
        cold_base = thread._cold_cursor - 10
        assert cold_base not in set(t1.lines)  # cursor advanced past t1

    def test_footprint_scales_with_acf(self):
        small = SyntheticThread(make_model(l2_acf=0.2, l3_acf=0.2), 0, L2, L3, seed=1)
        large = SyntheticThread(make_model(l2_acf=0.8, l3_acf=0.8), 1, L2, L3, seed=1)
        assert large.generate(2000).unique_lines > small.generate(2000).unique_lines

    def test_shared_fraction_targets_shared_region(self):
        model = make_model(shared_fraction=0.4)
        thread = SyntheticThread(model, 0, L2, L3, seed=1)
        trace = thread.generate(2000)
        shared = (trace.lines >= SHARED_BASE).mean()
        assert shared == pytest.approx(0.4, abs=0.06)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SyntheticThread(make_model(), 0, L2, L3, spatial_scale=0.0)
        thread = SyntheticThread(make_model(), 0, L2, L3)
        with pytest.raises(ValueError):
            thread.generate(0)


class TestMakeThreads:
    def test_builds_requested_count(self):
        threads = make_threads(make_model(spatial_sigma=0.1), 4, L2, L3, seed=2)
        assert len(threads) == 4
        assert [t.thread_id for t in threads] == [0, 1, 2, 3]

    def test_spatial_sigma_spreads_scales(self):
        threads = make_threads(make_model(spatial_sigma=0.15), 16, L2, L3, seed=2)
        scales = [t.spatial_scale for t in threads]
        assert np.std(scales) > 0.05

    def test_zero_sigma_uniform_scales(self):
        threads = make_threads(make_model(spatial_sigma=0.0), 8, L2, L3, seed=2)
        assert all(t.spatial_scale == 1.0 for t in threads)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            make_threads(make_model(), 0, L2, L3)


class TestGapDtype:
    """Gaps ship to the batch engine as int32 — never a float or object
    array — on both the geometric and the degenerate mean_gap=0 paths."""

    def test_geometric_gaps_are_int32(self):
        thread = SyntheticThread(make_model(mean_gap=3.0), 0, L2, L3, seed=9)
        assert thread.generate(256).gaps.dtype == np.int32

    def test_zero_mean_gap_is_int32(self):
        thread = SyntheticThread(make_model(mean_gap=0.0), 0, L2, L3, seed=9)
        trace = thread.generate(256)
        assert trace.gaps.dtype == np.int32
        assert trace.gaps.sum() == 0
