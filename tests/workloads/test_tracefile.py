"""Tests for trace file recording and replay."""

import numpy as np
import pytest

from repro.config import TINY
from repro.sim.workload import Workload
from repro.workloads.trace import EpochTrace
from repro.workloads.tracefile import (
    RecordedThread,
    load_traces,
    record_workload,
    recorded_threads,
    save_traces,
)


def make_trace(lines):
    n = len(lines)
    return EpochTrace(
        lines=np.asarray(lines, dtype=np.int64),
        writes=np.zeros(n, dtype=bool),
        gaps=np.ones(n, dtype=np.int32),
    )


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.npz"
        original = {0: [make_trace([1, 2, 3]), make_trace([4, 5, 6])],
                    3: [make_trace([7]), make_trace([8])]}
        save_traces(path, original)
        loaded = load_traces(path)
        assert set(loaded) == {0, 3}
        assert list(loaded[0][1].lines) == [4, 5, 6]
        assert list(loaded[3][0].lines) == [7]

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(ValueError):
            load_traces(path)


class TestRecordedThread:
    def test_replays_epochs_in_order(self):
        thread = RecordedThread(0, [make_trace([1, 2]), make_trace([3, 4])])
        assert list(thread.generate(2).lines) == [1, 2]
        assert list(thread.generate(2).lines) == [3, 4]

    def test_wraps_around(self):
        thread = RecordedThread(0, [make_trace([1, 2])])
        thread.generate(2)
        assert list(thread.generate(2).lines) == [1, 2]

    def test_prefix_replay(self):
        thread = RecordedThread(0, [make_trace([1, 2, 3])])
        assert list(thread.generate(2).lines) == [1, 2]

    def test_overrun_rejected(self):
        thread = RecordedThread(0, [make_trace([1])])
        with pytest.raises(ValueError):
            thread.generate(5)

    def test_needs_epochs(self):
        with pytest.raises(ValueError):
            RecordedThread(0, [])


class TestRecordAndSimulate:
    def test_recorded_workload_replays_identically(self, tmp_path):
        from repro.cpu.cmp import CmpSystem

        config = TINY.with_(accesses_per_core_per_epoch=150)
        workload = Workload.alone("gcc")
        path = tmp_path / "gcc.npz"
        record_workload(workload, config, epochs=3, path=path, seed=9)

        threads = recorded_threads(path, config.cores)
        assert threads[0] is not None
        assert all(t is None for t in threads[1:])

        # Replaying through the hierarchy gives a deterministic result that
        # matches a second replay exactly.
        def run_once():
            system = CmpSystem(config, static_label="(16:1:1)")
            timing = []
            replay = recorded_threads(path, config.cores)[0]
            for _ in range(3):
                trace = replay.generate(150)
                total = sum(
                    system.access(0, int(line), bool(write))
                    for line, write, _gap in trace
                )
                timing.append(total)
            return timing

        assert run_once() == run_once()
