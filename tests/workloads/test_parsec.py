"""Tests for the PARSEC benchmark table (Table 4, right)."""

import pytest

from repro.workloads.parsec import PARSEC_BENCHMARKS, parsec_benchmark


class TestTableIntegrity:
    def test_12_benchmarks(self):
        assert len(PARSEC_BENCHMARKS) == 12

    def test_paper_values_spot_checks(self):
        dedup = parsec_benchmark("dedup")
        assert dedup.model.l2_acf == 0.47
        assert dedup.model.l3_acf == 0.74
        assert dedup.l3_sigma_s == 0.12
        streamcluster = parsec_benchmark("streamcluster")
        assert streamcluster.model.l2_acf == 0.79
        assert streamcluster.model.l2_sigma_t == 0.28

    def test_fig16_highlights_have_high_spatial_sigma(self):
        """facesim/ferret high sigma_s in L2; freqmine/x264 in L3 — the
        benchmarks the paper singles out as biggest MorphCache winners."""
        l2_sigmas = sorted(PARSEC_BENCHMARKS.values(),
                           key=lambda b: b.l2_sigma_s, reverse=True)
        top_l2 = {b.name for b in l2_sigmas[:3]}
        assert {"facesim", "ferret"} <= top_l2 | {l2_sigmas[3].name}
        l3_sigmas = sorted(PARSEC_BENCHMARKS.values(),
                           key=lambda b: b.l3_sigma_s, reverse=True)
        top_l3 = {b.name for b in l3_sigmas[:3]}
        assert {"freqmine", "x264"} <= top_l3

    def test_all_have_sharing(self):
        assert all(b.model.shared_fraction > 0
                   for b in PARSEC_BENCHMARKS.values())

    def test_pipeline_benchmarks_share_most(self):
        assert parsec_benchmark("dedup").model.shared_fraction >= \
            parsec_benchmark("blackscholes").model.shared_fraction

    def test_spatial_sigma_is_mean_of_levels(self):
        bench = parsec_benchmark("fluidanimate")
        expected = (bench.l2_sigma_s + bench.l3_sigma_s) / 2.0
        assert bench.model.spatial_sigma == pytest.approx(expected)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            parsec_benchmark("raytrace")
