"""Tests for the SPEC CPU 2006 benchmark table (Table 4, left)."""

import pytest

from repro.workloads.spec import (
    SPEC_BENCHMARKS,
    class_counts,
    spec_benchmark,
)


class TestTableIntegrity:
    def test_29_benchmarks(self):
        assert len(SPEC_BENCHMARKS) == 29

    def test_paper_values_spot_checks(self):
        hmmer = spec_benchmark("hmmer").model
        assert (hmmer.l2_acf, hmmer.l2_sigma_t) == (0.31, 0.19)
        assert (hmmer.l3_acf, hmmer.l3_sigma_t) == (0.69, 0.11)
        cactus = spec_benchmark("cactusADM").model
        assert (cactus.l2_acf, cactus.l3_acf) == (0.74, 0.48)
        libq = spec_benchmark("libquantum").model
        assert (libq.l2_acf, libq.l3_acf) == (0.26, 0.18)

    def test_classes_match_low_high_semantics(self):
        """Class encodes L2/L3 footprint low/high; verify the split point
        separates the classes (class 0+1 = low L2, class 2+3 = high L2)."""
        low_l2 = [b.model.l2_acf for b in SPEC_BENCHMARKS.values()
                  if b.spec_class in (0, 1)]
        high_l2 = [b.model.l2_acf for b in SPEC_BENCHMARKS.values()
                   if b.spec_class in (2, 3)]
        assert max(low_l2) < min(high_l2)

    def test_class_l3_semantics(self):
        low_l3 = [b.model.l3_acf for b in SPEC_BENCHMARKS.values()
                  if b.spec_class in (0, 2)]
        high_l3 = [b.model.l3_acf for b in SPEC_BENCHMARKS.values()
                   if b.spec_class in (1, 3)]
        assert max(low_l3) < min(high_l3)

    def test_streamers_have_high_cold_fractions(self):
        assert spec_benchmark("libquantum").model.cold_fraction > 0.3
        assert spec_benchmark("lbm").model.cold_fraction > 0.3
        assert spec_benchmark("povray").model.cold_fraction < 0.1


class TestAliases:
    @pytest.mark.parametrize("alias,canonical", [
        ("Gems", "GemsFDTD"),
        ("cactus", "cactusADM"),
        ("leslie", "leslie3d"),
        ("h264", "h264ref"),
        ("libq", "libquantum"),
        ("libm", "lbm"),
        ("perl", "perlbench"),
        ("xalanc", "xalancbmk"),
        ("gomacs", "gromacs"),
    ])
    def test_table5_aliases_resolve(self, alias, canonical):
        assert spec_benchmark(alias).name == canonical

    def test_unknown_benchmark_raises(self):
        with pytest.raises(ValueError):
            spec_benchmark("doom3")


class TestClassCounts:
    def test_counts_match_known_composition(self):
        counts = class_counts(("libq", "hmmer", "bzip2", "gcc"))
        assert counts == (1, 1, 1, 1)
