"""Tests for the machine configuration (Table 3) and scale presets."""


import pytest

from repro.config import (
    DEFAULT,
    LINE_BYTES,
    PAPER,
    PRESETS,
    SMALL,
    TINY,
    CacheGeometry,
    LatencyModel,
    MachineConfig,
    MorphConfig,
    MsatConfig,
    format_table3,
    preset,
)


class TestCacheGeometry:
    def test_paper_l1_geometry_is_32kb(self):
        assert PAPER.l1.capacity_bytes == 32 * 1024

    def test_paper_l2_slice_is_256kb(self):
        assert PAPER.l2_slice.capacity_bytes == 256 * 1024

    def test_paper_l3_slice_is_1mb(self):
        assert PAPER.l3_slice.capacity_bytes == 1024 * 1024

    def test_lines_product(self):
        geometry = CacheGeometry(sets=8, ways=4)
        assert geometry.lines == 32
        assert geometry.capacity_bytes == 32 * LINE_BYTES

    def test_scaled_divides_sets(self):
        geometry = CacheGeometry(sets=512, ways=8)
        assert geometry.scaled(8).sets == 64
        assert geometry.scaled(8).ways == 8

    def test_scaled_never_below_one_set(self):
        assert CacheGeometry(sets=4, ways=2).scaled(100).sets == 1

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=3, ways=4)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=0, ways=4)
        with pytest.raises(ValueError):
            CacheGeometry(sets=4, ways=0)

    def test_rejects_bad_scale_factor(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=4, ways=2).scaled(0)


class TestLatencyModel:
    def test_paper_defaults(self):
        lat = LatencyModel()
        assert lat.l1_hit == 3
        assert lat.l2_local_hit == 10
        assert lat.l2_merged_hit == 25
        assert lat.l3_local_hit == 30
        assert lat.l3_merged_hit == 45
        assert lat.memory == 300

    def test_bus_overhead_is_15_cycles(self):
        assert LatencyModel().bus_overhead == 15

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyModel(l1_hit=-1)


class TestMsatConfig:
    def test_paper_default_is_60_30(self):
        msat = MsatConfig()
        assert msat.high == 60.0
        assert msat.low == 30.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            MsatConfig(high=30, low=60)

    def test_rejects_out_of_range_overlap(self):
        with pytest.raises(ValueError):
            MsatConfig(overlap=150)


class TestMorphConfig:
    def test_defaults(self):
        morph = MorphConfig()
        assert morph.hash_name == "xor"
        assert morph.conflict_policy == "merge"
        assert not morph.qos

    def test_rejects_unknown_hash(self):
        with pytest.raises(ValueError):
            MorphConfig(hash_name="md5")

    def test_rejects_unknown_conflict_policy(self):
        with pytest.raises(ValueError):
            MorphConfig(conflict_policy="random")

    def test_rejects_non_positive_acfv_bits(self):
        with pytest.raises(ValueError):
            MorphConfig(acfv_bits=0)


class TestMachineConfig:
    def test_paper_has_16_cores_4_wide(self):
        assert PAPER.cores == 16
        assert PAPER.issue_width == 4

    def test_rejects_non_power_of_two_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(cores=12)

    def test_rejects_unknown_replacement(self):
        with pytest.raises(ValueError):
            MachineConfig(replacement="fifo")

    def test_with_returns_modified_copy(self):
        modified = PAPER.with_(cores=8)
        assert modified.cores == 8
        assert PAPER.cores == 16

    def test_config_is_hashable(self):
        assert hash(PAPER) != hash(TINY)


class TestPresets:
    def test_all_presets_preserve_ways(self):
        for config in PRESETS.values():
            assert config.l2_slice.ways == 8
            assert config.l3_slice.ways == 16
            assert config.l1.ways == 4

    def test_presets_strictly_shrink(self):
        assert PAPER.l2_slice.lines > DEFAULT.l2_slice.lines
        assert DEFAULT.l2_slice.lines > SMALL.l2_slice.lines
        assert SMALL.l2_slice.lines > TINY.l2_slice.lines

    def test_l3_is_4x_l2_in_every_preset(self):
        for name, config in PRESETS.items():
            if name == "tiny":
                continue  # rounding at the smallest scale
            assert config.l3_slice.lines == 4 * config.l2_slice.lines

    def test_preset_lookup(self):
        assert preset("paper") is PAPER
        assert preset("tiny") is TINY

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            preset("huge")


class TestFormatTable3:
    def test_mentions_all_rows(self):
        text = format_table3(PAPER)
        assert "256 KB/slice" in text
        assert "1024 KB/slice" in text
        assert "300 cycle" in text
        assert "4 way issue superscalar" in text


class TestConfigErrorFieldNames:
    """Construction-time validation raises ConfigError naming the field."""

    def test_configerror_is_a_valueerror(self):
        from repro.resilience.errors import ConfigError, ReproError
        assert issubclass(ConfigError, ValueError)
        assert issubclass(ConfigError, ReproError)

    def test_geometry_names_sets(self):
        from repro.resilience.errors import ConfigError
        with pytest.raises(ConfigError, match="sets") as err:
            CacheGeometry(sets=3, ways=4)
        assert err.value.field == "sets"

    def test_geometry_names_ways(self):
        from repro.resilience.errors import ConfigError
        with pytest.raises(ConfigError, match="ways") as err:
            CacheGeometry(sets=4, ways=3)
        assert err.value.field == "ways"

    def test_latency_names_offending_field(self):
        from repro.resilience.errors import ConfigError
        with pytest.raises(ConfigError, match="l3_local_hit"):
            LatencyModel(l3_local_hit=-1)

    def test_msat_names_bounds(self):
        from repro.resilience.errors import ConfigError
        with pytest.raises(ConfigError, match="high/low"):
            MsatConfig(high=20.0, low=30.0)

    def test_machine_names_cores(self):
        from repro.resilience.errors import ConfigError
        with pytest.raises(ConfigError, match="cores"):
            MachineConfig(cores=5)

    def test_machine_names_epoch_length(self):
        from repro.resilience.errors import ConfigError
        with pytest.raises(ConfigError, match="accesses_per_core_per_epoch"):
            MachineConfig(accesses_per_core_per_epoch=0)

    def test_machine_names_epochs(self):
        from repro.resilience.errors import ConfigError
        with pytest.raises(ConfigError, match="epochs"):
            MachineConfig(epochs=0)

    def test_morph_names_hash(self):
        from repro.resilience.errors import ConfigError
        with pytest.raises(ConfigError, match="hash_name"):
            MorphConfig(hash_name="sha512")
