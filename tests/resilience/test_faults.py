"""Tests for fault plans, the spec parser and the injector."""

import pytest

from repro.caches.hierarchy import CacheHierarchy
from repro.config import TINY
from repro.cpu.cmp import CmpSystem
from repro.resilience.errors import ConfigError, FaultInjectedError
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    parse_fault_spec,
)


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            FaultRule(kind="meteor-strike", at=1)

    def test_needs_at_or_every(self):
        with pytest.raises(ConfigError, match="at/every"):
            FaultRule(kind="flip-acfv")

    def test_rejects_bad_level(self):
        with pytest.raises(ConfigError, match="level"):
            FaultRule(kind="disable-slice", at=1, level="l9")

    def test_one_shot_fires_once(self):
        rule = FaultRule(kind="flip-acfv", at=3)
        assert [e for e in range(6) if rule.fires_at(e)] == [3]

    def test_periodic_fires_from_start(self):
        rule = FaultRule(kind="disable-slice", every=4, start=2)
        assert [e for e in range(12) if rule.fires_at(e)] == [2, 6, 10]


class TestFaultPlan:
    def test_events_at_is_pure(self):
        plan = FaultPlan.random_plan(rate=0.5, seed=9)
        for epoch in range(20):
            assert plan.events_at(epoch) == plan.events_at(epoch)

    def test_random_plan_seed_changes_schedule(self):
        a = FaultPlan.random_plan(rate=0.5, seed=1)
        b = FaultPlan.random_plan(rate=0.5, seed=2)
        schedule_a = [bool(a.events_at(e)) for e in range(40)]
        schedule_b = [bool(b.events_at(e)) for e in range(40)]
        assert schedule_a != schedule_b

    def test_periodic_constructor(self):
        plan = FaultPlan.periodic("bus-stall", every=5, duration=2)
        assert plan.events_at(0)[0].kind == "bus-stall"
        assert not plan.events_at(3)
        assert plan.events_at(5)[0].duration == 2

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan.periodic("flip-acfv", every=1)


class TestParseFaultSpec:
    def test_full_grammar(self):
        plan = parse_fault_spec(
            "disable-slice:every=10:level=l3:duration=2,"
            "flip-acfv:at=5:bits=8,seed=7,name=demo")
        assert plan.seed == 7
        assert plan.name == "demo"
        assert len(plan.rules) == 2
        assert plan.rules[0].every == 10
        assert plan.rules[0].level == "l3"
        assert plan.rules[1].bits == 8

    def test_random_clause(self):
        plan = parse_fault_spec("random:rate=0.25:kinds=flip-acfv+bus-stall")
        assert plan.rules[0].rate == 0.25
        assert plan.rules[0].kinds == ("flip-acfv", "bus-stall")

    def test_rejects_unknown_field(self):
        with pytest.raises(ConfigError, match="faults"):
            parse_fault_spec("flip-acfv:at=1:flavour=spicy")

    def test_rejects_non_integer(self):
        with pytest.raises(ConfigError, match="every"):
            parse_fault_spec("disable-slice:every=soon")

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            parse_fault_spec("bogus:at=1")


class TestFaultInjector:
    def make_system(self):
        return CmpSystem(TINY)

    def test_flip_acfv_changes_vector(self):
        system = self.make_system()
        plan = FaultPlan.periodic("flip-acfv", every=1, level="l2",
                                  target=0, bits=3, seed=4)
        injector = FaultInjector(plan)
        before = system.controller.bank.acfv("l2", 0).as_int()
        injector.begin_epoch(0, system)
        assert system.controller.bank.acfv("l2", 0).as_int() != before
        assert injector.injected == 1

    def test_disable_slice_flushes_and_recovers(self):
        system = self.make_system()
        plan = FaultPlan(rules=(FaultRule(kind="disable-slice", at=0,
                                          level="l3", target=2, duration=1),))
        injector = FaultInjector(plan)
        injector.begin_epoch(0, system)
        assert system.hierarchy.disabled_slices("l3") == {2}
        assert system.hierarchy.l3s[2].occupancy() == 0
        injector.begin_epoch(1, system)  # duration elapsed: back online
        assert system.hierarchy.disabled_slices("l3") == set()

    def test_system_progresses_with_slice_disabled(self):
        system = self.make_system()
        plan = FaultPlan(rules=(FaultRule(kind="disable-slice", at=0,
                                          level="l3", target=0, duration=99),))
        injector = FaultInjector(plan)
        injector.begin_epoch(0, system)
        for line in range(200):
            latency = system.access(0, line, False)
            assert latency > 0
        system.end_epoch()
        assert system.hierarchy.l3s[0].occupancy() == 0  # stays offline

    def test_disabling_every_slice_raises(self):
        system = self.make_system()
        rules = tuple(FaultRule(kind="disable-slice", at=0, level="l2",
                                target=s, duration=5)
                      for s in range(TINY.cores))
        injector = FaultInjector(FaultPlan(rules=rules))
        with pytest.raises(FaultInjectedError, match="every"):
            injector.begin_epoch(0, system)

    def test_out_of_range_target_raises(self):
        system = self.make_system()
        plan = FaultPlan(rules=(FaultRule(kind="disable-slice", at=0,
                                          target=99),))
        with pytest.raises(FaultInjectedError, match="out of range"):
            FaultInjector(plan).begin_epoch(0, system)

    def test_bus_stall_penalty_window(self):
        system = self.make_system()
        plan = FaultPlan(rules=(FaultRule(kind="bus-stall", at=1, duration=2,
                                          penalty=33),))
        injector = FaultInjector(plan)
        injector.begin_epoch(0, system)
        assert system.hierarchy.bus_penalty == 0
        injector.begin_epoch(1, system)
        assert system.hierarchy.bus_penalty == 33
        injector.begin_epoch(2, system)
        assert system.hierarchy.bus_penalty == 33
        injector.begin_epoch(3, system)
        assert system.hierarchy.bus_penalty == 0

    def test_corrupt_topology_breaks_an_invariant(self):
        from repro.resilience.errors import TopologyInvariantError
        from repro.resilience.guards import validate_topology

        system = self.make_system()
        plan = FaultPlan(rules=(FaultRule(kind="corrupt-topology", at=0),),
                         seed=3)
        FaultInjector(plan).begin_epoch(0, system)
        topology = system.controller.topology
        with pytest.raises(TopologyInvariantError):
            validate_topology(TINY.cores, topology.groups("l2"),
                              topology.groups("l3"))

    def test_injector_replay_reproduces_random_targets(self):
        plan = FaultPlan.periodic("disable-slice", every=2, level="l2",
                                  duration=1, seed=13)
        observed = []
        for _ in range(2):
            system = self.make_system()
            injector = FaultInjector(plan)
            for epoch in range(6):
                injector.begin_epoch(epoch, system)
            observed.append([(e.epoch, e.kind) for e in injector.log])
        assert observed[0] == observed[1]


class TestHierarchyFaultHooks:
    def test_all_kinds_are_distinct(self):
        assert len(set(FAULT_KINDS)) == len(FAULT_KINDS)

    def test_set_faulted_slices_validates_range(self):
        hierarchy = CacheHierarchy(TINY)
        with pytest.raises(FaultInjectedError):
            hierarchy.set_faulted_slices("l2", {77})

    def test_cannot_disable_all_slices(self):
        hierarchy = CacheHierarchy(TINY)
        with pytest.raises(FaultInjectedError):
            hierarchy.set_faulted_slices("l3", set(range(TINY.cores)))

    def test_inclusion_survives_disable_enable_cycle(self):
        hierarchy = CacheHierarchy(TINY)
        for line in range(300):
            hierarchy.access(line % TINY.cores, line, False)
        hierarchy.set_faulted_slices("l3", {1, 5})
        for line in range(300, 600):
            hierarchy.access(line % TINY.cores, line, False)
        hierarchy.check_inclusion()
        hierarchy.set_faulted_slices("l3", set())
        for line in range(600, 900):
            hierarchy.access(line % TINY.cores, line, False)
        hierarchy.check_inclusion()
