"""Tests for checkpoint/resume: round trips, fingerprints, bit-identity."""

import json

import pytest

import repro.sim.engine as engine_module
from repro.config import TINY
from repro.resilience.checkpoint import (
    load_checkpoint,
    run_fingerprint,
    save_checkpoint,
    state_digest,
)
from repro.resilience.errors import CheckpointError
from repro.resilience.faults import FaultPlan
from repro.sim.engine import simulate
from repro.sim.experiment import build_system, run_scheme
from repro.sim.workload import Workload
from repro.workloads import mix_by_name

CFG = TINY.with_(accesses_per_core_per_epoch=250)


def series(result):
    return [(e.epoch, e.ipcs, e.misses, e.topology_label)
            for e in result.epochs]


@pytest.fixture
def workload():
    return Workload.from_mix(mix_by_name("MIX 03"))


class TestStateDigest:
    def test_digest_changes_with_state(self, workload):
        system = build_system("morphcache", CFG, workload, seed=1)
        before = state_digest(system)
        system.access(0, 42, False)
        assert state_digest(system) != before

    def test_digest_matches_for_identical_runs(self, workload):
        digests = []
        for _ in range(2):
            system = build_system("morphcache", CFG, workload, seed=1)
            for line in range(100):
                system.access(line % CFG.cores, line, False)
            digests.append(state_digest(system))
        assert digests[0] == digests[1]

    def test_baseline_without_hierarchy_digests_misses(self, workload):
        system = build_system("pipp", CFG, workload, seed=1)
        for line in range(50):
            system.access(0, line, False)
        assert len(state_digest(system)) == 64


class TestSaveLoad:
    def test_round_trip(self, tmp_path, workload):
        path = tmp_path / "ck.json"
        run_scheme("morphcache", workload, CFG, seed=2, epochs=3,
                   checkpoint_path=path, checkpoint_every=2)
        fingerprint = run_fingerprint(workload, CFG, "morphcache", 2, 3,
                                      CFG.accesses_per_core_per_epoch, 1)
        payload = load_checkpoint(path, fingerprint)
        assert payload["next_epoch"] == 4  # 1 warmup + 3 recorded
        assert len(payload["epochs"]) == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.json", {})

    def test_corrupt_json_raises(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path, {})

    def test_fingerprint_mismatch_names_fields(self, tmp_path, workload):
        path = tmp_path / "ck.json"
        run_scheme("morphcache", workload, CFG, seed=2, epochs=2,
                   checkpoint_path=path)
        with pytest.raises(CheckpointError, match="seed"):
            run_scheme("morphcache", workload, CFG, seed=3, epochs=2,
                       checkpoint_path=path, resume=True)

    def test_version_mismatch_raises(self, tmp_path, workload):
        path = tmp_path / "ck.json"
        run_scheme("morphcache", workload, CFG, seed=2, epochs=2,
                   checkpoint_path=path)
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="version"):
            run_scheme("morphcache", workload, CFG, seed=2, epochs=2,
                       checkpoint_path=path, resume=True)

    def test_tampered_digest_fails_verification(self, tmp_path, workload):
        path = tmp_path / "ck.json"
        run_scheme("morphcache", workload, CFG, seed=2, epochs=2,
                   checkpoint_path=path)
        payload = json.loads(path.read_text())
        payload["state_digest"] = "0" * 64
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="digest"):
            run_scheme("morphcache", workload, CFG, seed=2, epochs=2,
                       checkpoint_path=path, resume=True)

    def test_resume_without_path_raises(self, workload):
        with pytest.raises(CheckpointError, match="path"):
            run_scheme("morphcache", workload, CFG, seed=2, epochs=2,
                       resume=True)


class _Killed(Exception):
    pass


def _run_and_kill_after(workload, path, kill_at_epoch, scheme="morphcache",
                        fault_plan=None, seed=5, epochs=6):
    """Run with checkpointing, abort right after the checkpoint at
    ``kill_at_epoch`` — emulating a killed process."""
    system = build_system(scheme, CFG, workload, seed=seed)
    original = engine_module.save_checkpoint

    def save_then_kill(p, fingerprint, next_epoch, *args, **kwargs):
        original(p, fingerprint, next_epoch, *args, **kwargs)
        if next_epoch >= kill_at_epoch:
            raise _Killed()

    engine_module.save_checkpoint = save_then_kill
    try:
        with pytest.raises(_Killed):
            simulate(system, workload, CFG, seed=seed, epochs=epochs,
                     fault_plan=fault_plan,
                     checkpoint_path=path, checkpoint_every=2)
    finally:
        engine_module.save_checkpoint = original


class TestBitIdenticalResume:
    @pytest.mark.parametrize("scheme", ["morphcache", "(16:1:1)"])
    def test_killed_run_resumes_identically(self, tmp_path, workload, scheme):
        reference = run_scheme(scheme, workload, CFG, seed=5, epochs=6)
        path = tmp_path / "ck.json"
        _run_and_kill_after(workload, path, kill_at_epoch=4, scheme=scheme)
        resumed = run_scheme(scheme, workload, CFG, seed=5, epochs=6,
                             checkpoint_path=path, resume=True)
        assert series(resumed) == series(reference)

    def test_resume_with_faults_is_identical(self, tmp_path, workload):
        plan = FaultPlan.periodic("disable-slice", every=3, level="l3",
                                  duration=1, seed=17)
        reference = run_scheme("morphcache", workload, CFG, seed=5, epochs=6,
                               fault_plan=plan)
        path = tmp_path / "ck.json"
        _run_and_kill_after(workload, path, kill_at_epoch=4, fault_plan=plan)
        resumed = run_scheme("morphcache", workload, CFG, seed=5, epochs=6,
                             fault_plan=plan, checkpoint_path=path,
                             resume=True)
        assert series(resumed) == series(reference)

    def test_checkpointing_does_not_perturb_results(self, tmp_path, workload):
        plain = run_scheme("morphcache", workload, CFG, seed=5, epochs=4)
        checked = run_scheme("morphcache", workload, CFG, seed=5, epochs=4,
                             checkpoint_path=tmp_path / "ck.json",
                             checkpoint_every=1)
        assert series(plain) == series(checked)

    def test_resume_of_finished_run_returns_same_results(self, tmp_path,
                                                         workload):
        path = tmp_path / "ck.json"
        full = run_scheme("morphcache", workload, CFG, seed=5, epochs=4,
                          checkpoint_path=path)
        again = run_scheme("morphcache", workload, CFG, seed=5, epochs=4,
                           checkpoint_path=path, resume=True)
        assert series(again) == series(full)

    def test_checkpoint_cadence(self, tmp_path, workload):
        path = tmp_path / "ck.json"
        saved = []
        original = engine_module.save_checkpoint

        def spy(p, fingerprint, next_epoch, *args, **kwargs):
            saved.append(next_epoch)
            original(p, fingerprint, next_epoch, *args, **kwargs)

        engine_module.save_checkpoint = spy
        try:
            run_scheme("morphcache", workload, CFG, seed=5, epochs=5,
                       checkpoint_path=path, checkpoint_every=2)
        finally:
            engine_module.save_checkpoint = original
        # 1 warmup + 5 recorded = 6 epochs; cadence 2 plus the final epoch.
        assert saved == [2, 4, 6]

    def test_atomic_write_leaves_tmp_clean(self, tmp_path, workload):
        path = tmp_path / "ck.json"
        run_scheme("morphcache", workload, CFG, seed=5, epochs=2,
                   checkpoint_path=path)
        assert path.exists()
        assert not (tmp_path / "ck.json.tmp").exists()

    def test_save_checkpoint_unwritable_path_raises(self, workload):
        system = build_system("morphcache", CFG, workload, seed=1)
        threads = workload.build_threads(CFG, seed=1)
        with pytest.raises(CheckpointError, match="cannot write"):
            save_checkpoint("/nonexistent-dir/ck.json", {}, 0, [], threads,
                            system)
