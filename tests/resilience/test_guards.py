"""Tests for topology invariant validation and the degradation ladder."""

import pytest

from repro.caches.hierarchy import CacheHierarchy
from repro.config import TINY
from repro.core.controller import MorphCacheController
from repro.core.topology import TopologyState, parse_config_label
from repro.resilience.errors import TopologyInvariantError
from repro.resilience.guards import (
    FALLBACK,
    FROZEN,
    NORMAL,
    RETRY,
    TopologyGuard,
    validate_topology,
)


def private(n):
    return [(i,) for i in range(n)]


class TestValidateTopology:
    def test_accepts_all_private(self):
        validate_topology(4, private(4), private(4))

    def test_accepts_static_labels(self):
        for label in ("(16:1:1)", "(8:2:1)", "(4:2:2)", "(1:1:16)"):
            l2, l3 = parse_config_label(label, 16)
            validate_topology(16, l2, l3)

    def test_rejects_duplicated_slice(self):
        with pytest.raises(TopologyInvariantError) as err:
            validate_topology(4, [(0, 1), (1, 2, 3)], private(4))
        assert err.value.invariant == "partition"

    def test_rejects_orphaned_slice(self):
        with pytest.raises(TopologyInvariantError) as err:
            validate_topology(4, [(0, 1), (2,)], private(4))
        assert err.value.invariant == "partition"

    def test_rejects_out_of_range_slice(self):
        with pytest.raises(TopologyInvariantError) as err:
            validate_topology(4, [(0, 1), (2, 9)], private(4))
        assert err.value.invariant == "partition"

    def test_rejects_empty_group(self):
        with pytest.raises(TopologyInvariantError):
            validate_topology(4, [(0, 1), (2, 3), ()], private(4))

    def test_rejects_inclusion_violation(self):
        # L2 group (1, 2) straddles L3 groups (0, 1) and (2, 3).
        with pytest.raises(TopologyInvariantError) as err:
            validate_topology(4, [(0,), (1, 2), (3,)], [(0, 1), (2, 3)])
        assert err.value.invariant == "inclusion"

    def test_rejects_non_contiguous_group(self):
        with pytest.raises(TopologyInvariantError) as err:
            validate_topology(4, [(0, 2), (1,), (3,)], [(0, 1, 2, 3)])
        assert err.value.invariant == "connectivity"

    def test_non_neighbors_extension_allows_gaps(self):
        validate_topology(4, [(0, 2), (1,), (3,)], [(0, 1, 2, 3)],
                          allow_non_neighbors=True)


class TestTopologyGuard:
    def make_topology(self, n=4):
        return TopologyState(n)

    def corrupt(self, topology):
        topology._groups["l2"][0] = (0, 1)  # duplicate slice 1

    def test_valid_review_remembers_good(self):
        guard = TopologyGuard(n_slices=4)
        topology = self.make_topology()
        assert guard.review(topology) is None
        assert guard.mode == NORMAL
        assert guard._last_good is not None

    def test_violation_rolls_back(self):
        guard = TopologyGuard(n_slices=4)
        topology = self.make_topology()
        guard.review(topology)
        self.corrupt(topology)
        violation = guard.review(topology)
        assert violation is not None
        assert guard.mode == RETRY
        assert topology.groups("l2") == private(4)
        topology.check_inclusion()

    def test_recovery_returns_to_normal(self):
        guard = TopologyGuard(n_slices=4)
        topology = self.make_topology()
        guard.review(topology)
        self.corrupt(topology)
        guard.review(topology)
        assert guard.mode == RETRY
        assert guard.review(topology) is None  # rolled-back state is valid
        assert guard.mode == NORMAL

    def test_ladder_freezes_after_max_retries(self):
        guard = TopologyGuard(n_slices=4, max_retries=2)
        topology = self.make_topology()
        guard.review(topology)
        for _ in range(3):
            self.corrupt(topology)
            guard.review(topology)
        assert guard.mode == FROZEN
        assert not guard.decisions_enabled

    def test_ladder_falls_back_while_frozen(self):
        guard = TopologyGuard(n_slices=4, max_retries=1,
                              max_freeze_violations=1)
        topology = self.make_topology()
        guard.review(topology)
        for _ in range(5):
            self.corrupt(topology)
            guard.review(topology)
        assert guard.mode == FALLBACK
        # Default fallback is (n:1:1), the all-shared static baseline.
        assert topology.groups("l2") == [(0, 1, 2, 3)]
        assert guard.events[-1].action == "fallback"

    def test_record_failure_wraps_plain_exception(self):
        guard = TopologyGuard(n_slices=4)
        topology = self.make_topology()
        guard.review(topology)
        guard.record_failure(topology, RuntimeError("decision blew up"))
        assert guard.mode == RETRY
        assert "decision blew up" in guard.events[-1].violation

    def test_intervention_count(self):
        guard = TopologyGuard(n_slices=4)
        topology = self.make_topology()
        guard.review(topology)
        assert guard.interventions == 0
        self.corrupt(topology)
        guard.review(topology)
        assert guard.interventions == 1

    def test_bad_fallback_label_fails_fast(self):
        with pytest.raises(ValueError):
            TopologyGuard(n_slices=4, fallback_label="(16:1:1)")


class TestGuardedController:
    def test_controller_survives_corrupted_topology(self):
        controller = MorphCacheController(TINY)
        hierarchy = CacheHierarchy(TINY)
        controller.attach(hierarchy)
        for line in range(400):
            hierarchy.access(line % TINY.cores, line, False)
        # Corrupt the topology the way a controller SRAM fault would.
        controller.topology._groups["l2"][0] = (0, 1)
        controller.end_epoch()
        # The guard rolled back; the hierarchy only ever saw valid groupings.
        validate_topology(TINY.cores, hierarchy.l2_groups, hierarchy.l3_groups)
        assert controller.guard.interventions == 1
        hierarchy.check_inclusion()

    def test_frozen_controller_stops_reconfiguring(self):
        controller = MorphCacheController(TINY)
        hierarchy = CacheHierarchy(TINY)
        controller.attach(hierarchy)
        for _ in range(controller.guard.max_retries + 2):
            controller.topology._groups["l2"][0] = (0, 1)
            controller.end_epoch()
        assert controller.guard.mode == FROZEN
        events_before = len(controller.events)
        for line in range(400):
            hierarchy.access(line % TINY.cores, line, False)
        controller.end_epoch()
        assert len(controller.events) == events_before
