"""The error taxonomy's contract: distinct, documented exit codes.

``python -m repro`` (and the service's job children) report failures
through process exit codes, so CI and operators diagnose a dead process
from its status alone.  That only works while the codes stay unique and
the documentation stays honest — both are asserted here against the
class hierarchy itself, so adding an error class without a distinct code
and a row in README.md/DESIGN.md fails the build.
"""

import pathlib

import pytest

import repro.resilience.errors as errors_module
from repro.resilience.errors import (
    CheckpointError,
    ConfigError,
    FaultInjectedError,
    JobNotFoundError,
    JobTimeoutError,
    LeaseLostError,
    PoolCorruptError,
    PoolError,
    QuotaExceededError,
    ReproError,
    ServiceDrainingError,
    ServiceError,
    ServiceSaturatedError,
    SweepInterrupted,
    TopologyInvariantError,
    WorkerCrashError,
)

REPO = pathlib.Path(__file__).parents[2]


def _all_error_classes():
    """Every ReproError subclass the package exports (plus the root)."""
    seen, frontier = [], [ReproError]
    while frontier:
        cls = frontier.pop()
        seen.append(cls)
        frontier.extend(cls.__subclasses__())
    return seen


def _declaring_classes():
    """Classes that *declare* their own exit code (not inherited)."""
    return [cls for cls in _all_error_classes() if "exit_code" in cls.__dict__]


class TestExitCodeTaxonomy:
    def test_every_declared_exit_code_is_unique(self):
        declared = _declaring_classes()
        codes = [cls.exit_code for cls in declared]
        assert len(codes) == len(set(codes)), (
            f"duplicate exit codes: "
            f"{sorted((cls.__name__, cls.exit_code) for cls in declared)}")

    def test_codes_avoid_the_reserved_ones(self):
        # 0 = success, 1 = generic/partial, 2 also means argparse usage
        # error — ReproError deliberately shares 2; everything else must
        # be > 2 and small enough to survive the 8-bit exit status.
        for cls in _declaring_classes():
            assert 2 <= cls.exit_code < 126, cls

    def test_known_assignments_are_stable(self):
        # These are public API: scripts and CI match on them.
        assert ReproError.exit_code == 2
        assert ConfigError.exit_code == 3
        assert TopologyInvariantError.exit_code == 4
        assert FaultInjectedError.exit_code == 5
        assert CheckpointError.exit_code == 6
        assert WorkerCrashError.exit_code == 7
        assert SweepInterrupted.exit_code == 8
        assert ServiceError.exit_code == 9
        assert PoolError.exit_code == 10

    def test_service_subclasses_share_the_service_code(self):
        # Over HTTP the *status* is the discriminator; the process exit
        # code only says "the service layer failed".
        for cls in (ServiceSaturatedError, QuotaExceededError,
                    ServiceDrainingError, JobNotFoundError, JobTimeoutError):
            assert "exit_code" not in cls.__dict__
            assert cls.exit_code == 9
            assert cls.http_status in (404, 429, 503, 504)

    def test_pool_subclasses_share_the_pool_code(self):
        # A worker dying of a lost lease vs. a torn pool dir is diagnosed
        # from its stderr; the exit code just says "the pool layer failed".
        for cls in (LeaseLostError, PoolCorruptError):
            assert "exit_code" not in cls.__dict__
            assert cls.exit_code == 10

    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md"])
    def test_every_declared_code_is_documented(self, doc):
        text = (REPO / doc).read_text(encoding="utf-8")
        for cls in _declaring_classes():
            row = f"| {cls.exit_code} | `{cls.__name__}`"
            assert row in text, (
                f"{doc} is missing the exit-code table row for "
                f"{cls.__name__} (expected a line starting {row!r})")

    def test_config_error_names_the_field(self):
        exc = ConfigError("epochs", "must be >= 1")
        assert str(exc) == "epochs: must be >= 1"
        assert isinstance(exc, ValueError)

    def test_module_all_exports_every_class(self):
        for cls in _all_error_classes():
            assert cls.__name__ in errors_module.__all__
