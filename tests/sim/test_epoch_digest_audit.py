"""Seed audit at ``run_epoch`` granularity: pin every epoch's state digest.

``test_golden_determinism`` pins the *final* digest of a fixed-seed run —
enough to detect a determinism regression, useless for locating one: by the
end of the run the divergence has been laundered through every later epoch.
This suite pins the **per-epoch digest sequence** (the trace recorder's
``epoch_digests`` channel, hashing every cache entry, stamp, LRU order,
stat and ACFV after each epoch) for both engines, asserting epoch by epoch,
so a mid-run divergence fails on the *first bad epoch* with its index in
the assertion message — and an engine-specific regression is localised to
the engine whose parametrisation fails.

``golden_epoch_digests.json`` was captured from this tree at the fixture's
introduction; both engines produced identical sequences (the bit-identical
guarantee), so each scheme stores one sequence per engine and the suite
also cross-checks that they stay equal.  If this fails after an
*intentional* behaviour change, recapture with::

    PYTHONPATH=src python - <<'PY'
    import json, pathlib
    from repro.config import TINY
    from repro.obs.trace import TraceRecorder
    from repro.sim.engine import simulate
    from repro.sim.experiment import build_system
    from repro.sim.workload import Workload
    from repro.workloads import MIXES
    golden = {}
    for scheme in ("morphcache", "(16:1:1)"):
        golden[scheme] = {}
        for engine in ("event", "batch"):
            workload = Workload.from_mix(MIXES[0])
            system = build_system(scheme, TINY.with_(epochs=3), workload, seed=7)
            tracer = TraceRecorder(epoch_digests=True)
            simulate(system, workload, TINY.with_(epochs=3), seed=7,
                     engine=engine, tracer=tracer)
            golden[scheme][engine] = [
                {"epoch": r["epoch"], "digest": r["digest"]}
                for r in tracer.records("epoch")]
    pathlib.Path("tests/sim/golden_epoch_digests.json").write_text(
        json.dumps(golden, indent=2, sort_keys=True) + "\n")
    PY

Never loosen the comparison.
"""

import json
import pathlib

import pytest

from repro.config import TINY
from repro.obs.trace import TraceRecorder
from repro.sim.engine import simulate
from repro.sim.experiment import build_system
from repro.sim.workload import Workload
from repro.workloads import MIXES

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_epoch_digests.json").read_text())

SEED = 7
CONFIG = TINY.with_(epochs=3)


def _digest_sequence(scheme, engine):
    workload = Workload.from_mix(MIXES[0])
    system = build_system(scheme, CONFIG, workload, seed=SEED)
    tracer = TraceRecorder(epoch_digests=True)
    simulate(system, workload, CONFIG, seed=SEED, engine=engine,
             tracer=tracer)
    return [(r["epoch"], r["digest"]) for r in tracer.records("epoch")]


@pytest.mark.parametrize("engine", ["event", "batch"])
@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_per_epoch_digests_match_golden(scheme, engine):
    got = _digest_sequence(scheme, engine)
    want = [(e["epoch"], e["digest"]) for e in GOLDEN[scheme][engine]]
    assert len(got) == len(want)
    # epoch-by-epoch, never whole-list: a divergence fails on the first bad
    # epoch, naming it, instead of an opaque list diff at the end.
    for (got_epoch, got_digest), (want_epoch, want_digest) in zip(got, want):
        assert got_epoch == want_epoch
        assert got_digest == want_digest, (
            f"{scheme}/{engine}: state diverged at epoch {got_epoch} "
            f"(first bad epoch)")


@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_golden_sequences_agree_across_engines(scheme):
    # The fixture itself must respect the bit-identical guarantee; a
    # recapture that bakes in an engine divergence fails here, not silently.
    assert GOLDEN[scheme]["event"] == GOLDEN[scheme]["batch"]
