"""Tests for the workload-to-core bindings."""

import pytest

from repro.config import TINY
from repro.sim.workload import Workload
from repro.workloads import mix_by_name, parsec_benchmark


class TestFromMix:
    def test_binds_16_models(self):
        workload = Workload.from_mix(mix_by_name("MIX 03"))
        assert len(workload.models) == 16
        assert not workload.shared_address_space
        assert workload.active_cores == list(range(16))

    def test_thread_order_matches_table5(self):
        workload = Workload.from_mix(mix_by_name("MIX 01"))
        assert workload.models[0].name == "calculix"
        assert workload.models[15].name == "h264ref"


class TestFromParsec:
    def test_by_object_and_name(self):
        a = Workload.from_parsec(parsec_benchmark("vips"))
        b = Workload.from_parsec("vips")
        assert a.name == b.name == "vips"
        assert a.shared_address_space

    def test_all_threads_same_model(self):
        workload = Workload.from_parsec("ferret")
        assert len(set(m.name for m in workload.models)) == 1

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            Workload.from_parsec(42)


class TestAlone:
    def test_single_active_core(self):
        workload = Workload.alone("hmmer")
        assert workload.active_cores == [0]
        assert workload.models[0].name == "hmmer"
        assert all(m is None for m in workload.models[1:])

    def test_requires_an_active_core(self):
        with pytest.raises(ValueError):
            Workload(name="empty", models=(None,) * 16)


class TestBuildThreads:
    def test_mix_builds_one_thread_per_core(self):
        workload = Workload.from_mix(mix_by_name("MIX 02"))
        threads = workload.build_threads(TINY, seed=1)
        assert len(threads) == 16
        assert all(t is not None for t in threads)

    def test_alone_builds_none_for_idle(self):
        threads = Workload.alone("gcc").build_threads(TINY, seed=1)
        assert threads[0] is not None
        assert all(t is None for t in threads[1:])

    def test_parsec_threads_have_varying_scales(self):
        workload = Workload.from_parsec("ferret")
        threads = workload.build_threads(TINY, seed=1)
        scales = {t.spatial_scale for t in threads}
        assert len(scales) > 1

    def test_too_many_threads_rejected(self):
        workload = Workload.from_parsec("vips")
        with pytest.raises(ValueError):
            workload.build_threads(TINY.with_(cores=8), seed=1)
