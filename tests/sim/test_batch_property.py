"""Property suite: random topologies x random traces, event vs batch.

The differential suite (``test_batch_equivalence.py``) pins the named
topologies the paper evaluates; this file drives the *space* around them.
Hypothesis draws whole machines — core count, arbitrary (non-contiguous,
permuted) slice groupings at both levels with L2 groups refining L3
groups, and per-core traces whose shared-line density ranges from fully
disjoint to fully shared — and requires the batch engine to stay
bit-identical to the event engine:

- the per-epoch :func:`~repro.resilience.checkpoint.state_digest` sequence
  must match epoch by epoch, so a shrunk counterexample names the *first
  divergent epoch* (the same localisation discipline as
  ``test_epoch_digest_audit.py``), not an end-of-run hash mismatch;
- timer cycles must match at ``repr`` precision (bit-identical floats);
- full runs through :func:`~repro.sim.engine.simulate` must produce
  **byte-identical trace files** (``TraceRecorder`` JSONL with
  ``epoch_digests=True``), the strongest observable-equality statement
  the simulator can make;
- every epoch must land on the expected dispatch tier — a multi-slice
  topology that falls through to ``batch-general`` is a failure even when
  the state matches, because the speedup is the point.

The custom geometry (``l1=CacheGeometry(4, 4)``) raises ``partition_sets``
above TINY's 1 so the group kernel's set-partition reordering is actually
exercised; plain TINY would run every trace in original order.

``tempfile.TemporaryDirectory`` is used instead of the ``tmp_path``
fixture: Hypothesis calls the test body many times per fixture instance,
and a per-example directory keeps the trace files independent.
"""

import pathlib
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TINY, CacheGeometry
from repro.cpu.cmp import CmpSystem
from repro.cpu.core_model import CoreTimingModel
from repro.obs.trace import TraceRecorder
from repro.resilience.checkpoint import state_digest
from repro.sim.batch import (
    MERGED_KERNEL,
    PRIVATE_KERNEL,
    PRIVATE_PERCORE,
    SHARED_KERNEL,
    run_epoch_batch,
)
from repro.sim.engine import run_epoch, simulate
from repro.sim.workload import Workload
from repro.workloads import MIXES, PARSEC_BENCHMARKS

SEED = 11


# -- strategies --------------------------------------------------------------

def _draw_partition(draw, items):
    """Partition ``items`` (order kept) into non-empty consecutive groups."""
    groups, start = [], 0
    while start < len(items):
        size = draw(st.integers(1, len(items) - start))
        groups.append(tuple(items[start:start + size]))
        start += size
    return groups


def _draw_topology(draw, cores):
    """A random legal topology: L2 groups refine L3 groups.

    Slices are permuted first, so groups are arbitrary subsets — not the
    contiguous ranges the ``(x:y:z)`` labels produce — which stresses the
    search-order and residency-map logic with shapes no label can express.
    """
    order = draw(st.permutations(list(range(cores))))
    l3_groups = _draw_partition(draw, list(order))
    l2_groups = [g
                 for l3 in l3_groups
                 for g in _draw_partition(draw, list(l3))]
    return l2_groups, l3_groups


class _Trace:
    """Minimal EpochTrace stand-in with the three arrays the engines read."""

    def __init__(self, lines, writes):
        self.lines = np.asarray(lines, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=bool)
        self.gaps = np.zeros(len(lines), dtype=np.int32)


def _core_lines(draw, core, length, density):
    """Per-core line addresses at the drawn shared-line density.

    ``density`` 0 = disjoint per-core pools, 2 = one machine-wide pool
    (maximum duplicates/coherence), 1 = an even mix of both.  Pools are
    tiny so every level sees constant collisions and evictions.
    """
    shared = st.integers(0, 39)
    private = st.integers(1000 + core * 64, 1000 + core * 64 + 39)
    strat = (private, st.one_of(shared, private), shared)[density]
    return draw(st.lists(strat, min_size=length, max_size=length))


def _expected_tags(l2_groups, l3_groups):
    if all(len(g) == 1 for g in list(l2_groups) + list(l3_groups)):
        return (PRIVATE_PERCORE, PRIVATE_KERNEL)
    if len(l2_groups) == 1:
        return (SHARED_KERNEL,)
    return (MERGED_KERNEL,)


# -- raw-epoch property: digests + timers, first divergent epoch named -------

@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_random_topologies_and_traces_identical(data):
    draw = data.draw
    cores = draw(st.sampled_from([4, 8, 16]))
    config = TINY.with_(cores=cores, l1=CacheGeometry(4, 4))
    l2_groups, l3_groups = _draw_topology(draw, cores)
    density = draw(st.integers(0, 2))
    length = draw(st.integers(8, 40))
    n_epochs = draw(st.integers(1, 3))
    expected = _expected_tags(l2_groups, l3_groups)

    systems = []
    for _ in range(2):
        system = CmpSystem(config, static_label=f"(1:1:{cores})")
        system.hierarchy.set_topology(l2_groups, l3_groups)
        systems.append(system)

    for epoch in range(n_epochs):
        traces = {
            core: _Trace(_core_lines(draw, core, length, density),
                         draw(st.lists(st.booleans(), min_size=length,
                                       max_size=length)))
            for core in range(cores)
        }
        timer_sets = [
            {core: CoreTimingModel(config.issue_width,
                                   memory_latency=config.latency.memory)
             for core in range(cores)}
            for _ in range(2)
        ]
        run_epoch(systems[0], traces, timer_sets[0], length)
        tag = run_epoch_batch(systems[1], traces, timer_sets[1], length)
        assert tag in expected, (tag, expected, l2_groups, l3_groups)
        assert state_digest(systems[0]) == state_digest(systems[1]), \
            f"state diverged at epoch {epoch} (first divergent epoch)"
        for core in range(cores):
            a, b = timer_sets[0][core], timer_sets[1][core]
            assert repr(a.cycles) == repr(b.cycles), (epoch, core)
            assert a.instructions == b.instructions
        systems[0].end_epoch()
        systems[1].end_epoch()


# -- full-run property: byte-identical trace files ---------------------------

@settings(max_examples=6, deadline=None)
@given(data=st.data())
def test_trace_files_byte_identical_across_engines(data):
    draw = data.draw
    config = TINY.with_(epochs=2)
    l2_groups, l3_groups = _draw_topology(draw, config.cores)
    if draw(st.booleans()):
        workload = Workload.from_mix(MIXES[draw(st.integers(0, 1))])
    else:
        workload = Workload.from_parsec(
            draw(st.sampled_from(sorted(PARSEC_BENCHMARKS))))

    files, digests = {}, {}
    with tempfile.TemporaryDirectory() as tmp:
        for engine in ("event", "batch"):
            system = CmpSystem(config, static_label=f"(1:1:{config.cores})")
            system.hierarchy.set_topology(l2_groups, l3_groups)
            path = pathlib.Path(tmp) / f"{engine}.jsonl"
            with TraceRecorder(path=path, epoch_digests=True) as tracer:
                simulate(system, workload, config, seed=SEED, engine=engine,
                         tracer=tracer)
                digests[engine] = [(r["epoch"], r["digest"])
                                   for r in tracer.records("epoch")]
            files[engine] = path.read_bytes()

    # Digest-by-digest first, so a shrunk failure names the first bad epoch
    # instead of dumping a JSONL diff.
    assert len(digests["event"]) == len(digests["batch"])
    for (epoch, event_digest), (_, batch_digest) in zip(digests["event"],
                                                        digests["batch"]):
        assert event_digest == batch_digest, \
            f"state diverged at epoch {epoch} (first divergent epoch)"
    assert files["event"] == files["batch"], (l2_groups, l3_groups)
