"""Tests for the process-parallel sweep runner."""

import pytest

from repro.config import TINY
from repro.resilience.errors import ConfigError
from repro.sim import experiment
from repro.sim.parallel import (
    RunSpec,
    derive_seed,
    prime_alone_ipcs,
    resolve_jobs,
    run_many,
)
from repro.sim.workload import Workload
from repro.workloads import MIXES


def _specs():
    workload = Workload.from_mix(MIXES[0])
    return [RunSpec(scheme=scheme, workload=workload, config=TINY, seed=11)
            for scheme in ["(16:1:1)", "(1:1:16)", "(4:4:1)", "morphcache"]]


def test_jobs1_and_jobs4_identical_and_ordered():
    specs = _specs()
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=4)
    # Results in input order under both job counts...
    assert [r.scheme_name for r in serial] == [s.scheme for s in specs]
    assert [r.scheme_name for r in parallel] == [s.scheme for s in specs]
    # ...and the full EpochResult series bit-identical run for run.
    for a, b in zip(serial, parallel):
        assert a.workload_name == b.workload_name
        assert a.epochs == b.epochs


def test_worker_failure_raises():
    workload = Workload.from_mix(MIXES[0])
    good = RunSpec(scheme="(16:1:1)", workload=workload, config=TINY)
    bad = RunSpec(scheme="not-a-scheme", workload=workload, config=TINY)
    with pytest.raises(ValueError, match="unknown scheme"):
        run_many([good, bad, good], jobs=4)
    with pytest.raises(ValueError, match="unknown scheme"):
        run_many([bad], jobs=1)


def test_resolve_jobs(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(3) == 3
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs() == 5
    assert resolve_jobs(2) == 2  # explicit argument wins
    with pytest.raises(ValueError):
        resolve_jobs(0)


def test_resolve_jobs_routes_through_config_error(monkeypatch):
    # Bad values are ConfigError (the config exit code, field named), not a
    # bare ValueError — while staying catchable as ValueError.
    with pytest.raises(ConfigError, match="jobs"):
        resolve_jobs(0)
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ConfigError, match="REPRO_JOBS"):
        resolve_jobs()
    monkeypatch.setenv("REPRO_JOBS", "banana")
    with pytest.raises(ConfigError, match="REPRO_JOBS"):
        resolve_jobs()


def test_derive_seed_stable_and_distinct():
    seeds = [derive_seed(2011, i) for i in range(64)]
    assert seeds == [derive_seed(2011, i) for i in range(64)]  # stable
    assert len(set(seeds)) == 64  # distinct per index
    assert set(seeds).isdisjoint(derive_seed(2012, i) for i in range(64))
    assert all(0 <= s < 2 ** 31 for s in seeds)


def test_prime_alone_ipcs_matches_serial_cache(monkeypatch):
    monkeypatch.setattr(experiment, "_ALONE_CACHE", {})
    primed = prime_alone_ipcs(["mcf", "milc", "mcf"], TINY,
                              seed=3, epochs=2, jobs=2)
    assert set(primed) == {"mcf", "milc"}
    # The pool-computed values are cache hits now, and identical to what a
    # serial alone_ipc() computes from scratch.
    assert experiment.alone_ipc_cached("mcf", TINY, seed=3, epochs=2)
    monkeypatch.setattr(experiment, "_ALONE_CACHE", {})
    for name, ipc in primed.items():
        assert experiment.alone_ipc(name, TINY, seed=3, epochs=2) == ipc


def test_batch_engine_specs_match_event(monkeypatch):
    event_specs = _specs()
    batch_specs = [RunSpec(scheme=s.scheme, workload=s.workload,
                           config=s.config, seed=s.seed, engine="batch")
                   for s in event_specs]
    event = run_many(event_specs, jobs=1)
    batch = run_many(batch_specs, jobs=2)
    for a, b in zip(event, batch):
        assert [e.misses for e in a.epochs] == [e.misses for e in b.epochs]
        assert [{c: repr(v) for c, v in e.ipcs.items()} for e in a.epochs] \
            == [{c: repr(v) for c, v in e.ipcs.items()} for e in b.epochs]


def test_many_specs_ordered():
    # More specs than workers exercises the supervisor's throttled
    # submission; order and content must still match the serial run
    # spec-for-spec.
    workload = Workload.from_mix(MIXES[0])
    specs = [RunSpec(scheme="(16:1:1)", workload=workload, config=TINY,
                     seed=seed) for seed in range(9)]
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=3)
    assert [r.mean_throughput for r in serial] \
        == [r.mean_throughput for r in parallel]


def test_run_many_journal_and_resume(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    specs = _specs()
    first = run_many(specs, jobs=2, journal=journal)
    assert journal.exists()
    resumed = run_many(specs, jobs=2, journal=journal, resume=True)
    for a, b in zip(first, resumed):
        assert [{c: repr(v) for c, v in e.ipcs.items()} for e in a.epochs] \
            == [{c: repr(v) for c, v in e.ipcs.items()} for e in b.epochs]


def test_prime_alone_ipcs_salvages_siblings_on_failure(monkeypatch):
    # One benchmark's worker failing must not discard the siblings that
    # completed: they are seeded into the cache before the failure
    # surfaces, so a retried priming pass recomputes only the failed one.
    monkeypatch.setattr(experiment, "_ALONE_CACHE", {})
    real_run_scheme = experiment.run_scheme

    def failing_run_scheme(scheme, workload, config, **kwargs):
        if workload.name == "milc (alone)":
            raise RuntimeError("injected worker failure")
        return real_run_scheme(scheme, workload, config, **kwargs)

    # Workers are forked after the monkeypatch, so they inherit it.
    monkeypatch.setattr(experiment, "run_scheme", failing_run_scheme)
    with pytest.raises(RuntimeError, match="injected worker failure"):
        prime_alone_ipcs(["mcf", "milc", "gcc"], TINY, seed=3, epochs=2,
                         jobs=2)
    assert experiment.alone_ipc_cached("mcf", TINY, 3, 2)
    assert experiment.alone_ipc_cached("gcc", TINY, 3, 2)
    assert not experiment.alone_ipc_cached("milc", TINY, 3, 2)

    # The retried pass recomputes milc only — and matches a from-scratch
    # serial computation exactly.
    monkeypatch.setattr(experiment, "run_scheme", real_run_scheme)
    primed = prime_alone_ipcs(["mcf", "milc", "gcc"], TINY, seed=3, epochs=2,
                              jobs=2)
    monkeypatch.setattr(experiment, "_ALONE_CACHE", {})
    for name, ipc in primed.items():
        assert experiment.alone_ipc(name, TINY, seed=3, epochs=2) == ipc


def test_alone_ipcs_parallel_matches_serial(monkeypatch):
    monkeypatch.setattr(experiment, "_ALONE_CACHE", {})
    parallel = experiment.alone_ipcs(["mcf", "milc"], TINY, seed=3, jobs=2)
    monkeypatch.setattr(experiment, "_ALONE_CACHE", {})
    serial = experiment.alone_ipcs(["mcf", "milc"], TINY, seed=3)
    assert parallel == serial
