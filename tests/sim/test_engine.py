"""Tests for the epoch-driven simulation engine."""

import pytest

from repro.cpu.cmp import CmpSystem
from repro.sim.engine import EpochResult, RunResult, simulate
from repro.sim.workload import Workload
from repro.workloads import mix_by_name


@pytest.fixture
def fast_config(tiny_config):
    return tiny_config.with_(accesses_per_core_per_epoch=200)


def run(fast_config, scheme_label="(16:1:1)", epochs=2, **kwargs):
    workload = Workload.from_mix(mix_by_name("MIX 08"))
    system = CmpSystem(fast_config, static_label=scheme_label)
    return simulate(system, workload, fast_config, seed=4, epochs=epochs,
                    **kwargs)


class TestSimulate:
    def test_records_requested_epochs(self, fast_config):
        result = run(fast_config, epochs=3)
        assert len(result.epochs) == 3
        assert [e.epoch for e in result.epochs] == [0, 1, 2]

    def test_all_cores_have_ipcs(self, fast_config):
        result = run(fast_config)
        for epoch in result.epochs:
            assert set(epoch.ipcs) == set(range(16))
            assert all(ipc > 0 for ipc in epoch.ipcs.values())

    def test_misses_are_epoch_deltas(self, fast_config):
        result = run(fast_config)
        for epoch in result.epochs:
            assert all(m >= 0 for m in epoch.misses.values())
            # An epoch cannot miss more than it accessed.
            assert all(m <= 200 for m in epoch.misses.values())

    def test_warmup_epochs_not_recorded(self, fast_config):
        with_warmup = run(fast_config, epochs=2, warmup_epochs=2)
        assert len(with_warmup.epochs) == 2

    def test_topology_label_recorded(self, fast_config):
        result = run(fast_config, scheme_label="(4:4:1)")
        assert all(e.topology_label == "(4:4:1)" for e in result.epochs)

    def test_deterministic_given_seed(self, fast_config):
        a = run(fast_config)
        b = run(fast_config)
        assert a.throughput_series() == b.throughput_series()

    def test_alone_workload_runs_single_core(self, fast_config):
        workload = Workload.alone("gcc")
        system = CmpSystem(fast_config, static_label="(16:1:1)")
        result = simulate(system, workload, fast_config, seed=4, epochs=1)
        assert set(result.epochs[0].ipcs) == {0}


class TestRunResult:
    def test_mean_throughput(self):
        result = RunResult("w", "s", epochs=[
            EpochResult(0, {0: 1.0, 1: 1.0}, {}, None),
            EpochResult(1, {0: 2.0, 1: 2.0}, {}, None),
        ])
        assert result.mean_throughput == pytest.approx(3.0)

    def test_mean_ipcs(self):
        result = RunResult("w", "s", epochs=[
            EpochResult(0, {0: 1.0}, {}, None),
            EpochResult(1, {0: 3.0}, {}, None),
        ])
        assert result.mean_ipcs() == {0: pytest.approx(2.0)}

    def test_mean_ipcs_with_core_inactive_mid_run(self):
        """Regression: a core that goes inactive (or joins late) must still
        average over its own epochs — the old implementation keyed on epoch
        0's core set and crashed or dropped cores."""
        result = RunResult("w", "s", epochs=[
            EpochResult(0, {0: 1.0, 1: 2.0}, {}, None),
            EpochResult(1, {0: 3.0}, {}, None),          # core 1 inactive
            EpochResult(2, {0: 5.0, 2: 4.0}, {}, None),  # core 2 joins late
        ])
        means = result.mean_ipcs()
        assert means == {0: pytest.approx(3.0), 1: pytest.approx(2.0),
                         2: pytest.approx(4.0)}
        assert list(means) == [0, 1, 2]  # sorted core order

    def test_empty_run(self):
        result = RunResult("w", "s")
        assert result.mean_throughput == 0.0
        assert result.mean_ipcs() == {}

    def test_throughput_property(self):
        epoch = EpochResult(0, {0: 0.5, 1: 0.25}, {}, None)
        assert epoch.throughput == pytest.approx(0.75)


class TestEngineSelection:
    def test_unknown_engine_rejected(self, fast_config):
        with pytest.raises(ValueError, match="unknown engine"):
            run(fast_config, engine="turbo")

    def test_engines_constant(self):
        from repro.sim.engine import ENGINES
        assert ENGINES == ("event", "batch")

    def test_batch_engine_matches_event(self, fast_config):
        event = run(fast_config, epochs=3, engine="event")
        batch = run(fast_config, epochs=3, engine="batch")
        assert [e.misses for e in event.epochs] \
            == [e.misses for e in batch.epochs]
        assert [{c: repr(v) for c, v in e.ipcs.items()}
                for e in event.epochs] \
            == [{c: repr(v) for c, v in e.ipcs.items()}
                for e in batch.epochs]
