"""Differential suite: the batch engine is bit-identical to the event engine.

Every test runs the same (scheme, workload, seed) twice — once per engine —
and requires the *exact* same observable run: per-epoch IPCs compared at
``repr`` precision (bit-identical floats, never approx-equal), the same
per-core miss counts, the same topology labels, and the same final
cache-state digest (:func:`repro.resilience.checkpoint.state_digest`, which
hashes every entry, stamp, LRU order, stat and ACFV).  The suite covers all
batch dispatch tiers:

- ``batch-private-percore`` — all-private topologies with disjoint per-core
  address spaces (multiprogrammed mixes);
- ``batch-private`` — all-private with genuinely shared lines (multithreaded
  workloads), exercising coherence and cross-core back-invalidation;
- ``batch-merged`` — multi-slice search groups on the slice-group kernel:
  aggregate per-group residency maps, group-wide LRU victims, duplicate
  tracking and lazy invalidation, all inlined;
- ``batch-shared`` — the same kernel when a single L2 group spans the
  machine (the paper's ``(cores:1:1)`` end of the spectrum);
- ``batch-general`` — batchable hierarchies outside every kernel's
  contract (e.g. PLRU replacement), driven through the real access path;
- ``event`` fallback — schemes without a batchable hierarchy.

Because the group kernel's speedup is the point (BENCH_batch.json), the
dispatch tests below also pin *which* tier each topology lands on — a
silent fall-through to ``batch-general`` fails CI here, not just in the
benchmark job.

A Hypothesis property test drives the private kernels with adversarial
random traces (tiny geometry, heavy set collisions, optional sharing) so
the inlined probe/fill/evict sequences are checked against the dict-backed
``CacheSlice`` semantics far outside the synthetic workloads' layout.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.static_topologies import STATIC_LABELS
from repro.caches.hierarchy import L2, L3
from repro.config import TINY
from repro.core.topology import parse_config_label
from repro.cpu.cmp import CmpSystem
from repro.cpu.core_model import CoreTimingModel
from repro.obs.metrics import MetricsRegistry
from repro.resilience import parse_fault_spec
from repro.resilience.checkpoint import state_digest
from repro.sim.batch import (
    EVENT_FALLBACK,
    GENERAL_KERNEL,
    MERGED_KERNEL,
    PRIVATE_KERNEL,
    PRIVATE_PERCORE,
    SHARED_KERNEL,
    batch_unsupported,
    run_epoch_batch,
)
from repro.sim.engine import run_epoch, simulate
from repro.sim.experiment import build_system
from repro.sim.workload import Workload
from repro.workloads import MIXES, PARSEC_BENCHMARKS

CONFIG = TINY.with_(epochs=4)
SEED = 3


def _run(scheme, workload, engine, config=CONFIG, seed=SEED, **kwargs):
    system = build_system(scheme, config, workload, seed=seed)
    result = simulate(system, workload, config, seed=seed, engine=engine,
                      **kwargs)
    return result, state_digest(system)


def _assert_identical(scheme, workload, config=CONFIG, seed=SEED, **kwargs):
    (event, event_digest) = _run(scheme, workload, "event", config, seed,
                                 **kwargs)
    (batch, batch_digest) = _run(scheme, workload, "batch", config, seed,
                                 **kwargs)
    assert len(event.epochs) == len(batch.epochs)
    for a, b in zip(event.epochs, batch.epochs):
        assert a.epoch == b.epoch
        assert a.topology_label == b.topology_label
        # repr-level: bit-identical floats, not approx-equal.
        assert {c: repr(v) for c, v in a.ipcs.items()} \
            == {c: repr(v) for c, v in b.ipcs.items()}
        assert a.misses == b.misses
    assert event_digest == batch_digest


@pytest.mark.parametrize("scheme", STATIC_LABELS)
def test_static_topologies_identical(scheme):
    _assert_identical(scheme, Workload.from_mix(MIXES[0]))


def test_morphcache_identical_across_reconfigurations():
    _assert_identical("morphcache", Workload.from_mix(MIXES[0]))


def test_multithreaded_shared_lines_identical():
    # A PARSEC workload shares one address space across all threads, so the
    # private topology must route through the coherence-exact partition
    # kernel — and still match bit for bit.
    name = sorted(PARSEC_BENCHMARKS)[0]
    _assert_identical("(1:1:16)", Workload.from_parsec(name))
    _assert_identical("morphcache", Workload.from_parsec(name))


def test_merged_shared_topologies_shared_lines_identical():
    # The slice-group kernel's hardest differential: a multithreaded
    # workload over multi-slice groups drives remote hits, duplicate
    # copies and lazy invalidation through the aggregate residency maps.
    name = sorted(PARSEC_BENCHMARKS)[0]
    _assert_identical("(4:4:1)", Workload.from_parsec(name))
    _assert_identical("(16:1:1)", Workload.from_parsec(name))


def test_event_fallback_schemes_identical():
    for scheme in ("pipp", "dsr", "ucp"):
        _assert_identical(scheme, Workload.from_mix(MIXES[0]))


def test_fault_injected_run_identical():
    plan = parse_fault_spec(
        "disable-slice:every=2:level=l3,flip-acfv:at=3:bits=4,seed=7")
    _assert_identical("morphcache", Workload.from_mix(MIXES[1]),
                      fault_plan=plan)
    _assert_identical("(1:1:16)", Workload.from_mix(MIXES[1]),
                      fault_plan=plan)


def test_fault_injected_merged_shared_identical():
    # Faults landing on the group-kernel tiers: offline slices shrink the
    # group search orders, flush their contents mid-run and shift fill
    # placement; the kernel's residency maps must track all of it.
    plan = parse_fault_spec(
        "disable-slice:every=2:level=l3,flip-acfv:at=3:bits=4,seed=7")
    _assert_identical("(4:4:1)", Workload.from_mix(MIXES[1]),
                      fault_plan=plan)
    _assert_identical("(16:1:1)", Workload.from_mix(MIXES[1]),
                      fault_plan=plan)
    l2_plan = parse_fault_spec("disable-slice:every=2:level=l2,seed=11")
    _assert_identical("(4:4:1)", Workload.from_mix(MIXES[1]),
                      fault_plan=l2_plan)


#: A merge -> split -> merge storm: each reinstall invalidates the batch
#: engine's cached residency maps and (merging slices that each hold a
#: copy of a shared line) creates duplicates for lazy invalidation.
STORM_LABELS = ["(1:1:16)", "(4:4:1)", "(2:2:4)", "(1:1:16)",
                "(16:1:1)", "(4:4:1)"]
STORM_TAGS = {"(1:1:16)": PRIVATE_KERNEL, "(4:4:1)": MERGED_KERNEL,
              "(2:2:4)": MERGED_KERNEL, "(16:1:1)": SHARED_KERNEL}


def test_reconfig_storm_identical():
    """Mid-run topology storms stay bit-identical, epoch by epoch.

    Both engines run the same multithreaded traces while the topology is
    reconfigured between every epoch.  Digests are compared after *each*
    epoch (not just at the end) so a divergence names the first bad epoch,
    and every epoch must land on its expected dispatch tier.
    """
    workload = Workload.from_parsec(sorted(PARSEC_BENCHMARKS)[0])
    n = CONFIG.accesses_per_core_per_epoch
    threads = workload.build_threads(CONFIG, seed=SEED)
    active = [c for c, t in enumerate(threads) if t is not None]
    event_sys = CmpSystem(CONFIG, static_label=STORM_LABELS[0])
    batch_sys = CmpSystem(CONFIG, static_label=STORM_LABELS[0])

    for epoch, label in enumerate(STORM_LABELS):
        if epoch:
            groups = parse_config_label(label, CONFIG.cores)
            event_sys.hierarchy.set_topology(*groups)
            batch_sys.hierarchy.set_topology(*groups)
        traces = {c: threads[c].generate(n) for c in active}
        timer_sets = [
            {c: CoreTimingModel(CONFIG.issue_width,
                                memory_latency=CONFIG.latency.memory)
             for c in active}
            for _ in range(2)
        ]
        run_epoch(event_sys, traces, timer_sets[0], n)
        tag = run_epoch_batch(batch_sys, traces, timer_sets[1], n)
        assert tag == STORM_TAGS[label], (epoch, label, tag)
        assert state_digest(event_sys) == state_digest(batch_sys), \
            f"engines diverged at epoch {epoch} ({label})"
        for core in active:
            assert repr(timer_sets[0][core].cycles) \
                == repr(timer_sets[1][core].cycles), (epoch, core)
        event_sys.end_epoch()
        batch_sys.end_epoch()


class _Killed(Exception):
    pass


def test_checkpoint_resume_identical(tmp_path, monkeypatch):
    # Checkpoints are engine-agnostic: a run checkpointed under one engine
    # and killed mid-flight resumes under the other, and every combination
    # lands on the same series and digest as an uninterrupted event run.
    from repro.sim import engine as engine_module

    workload = Workload.from_mix(MIXES[0])
    golden, golden_digest = _run("morphcache", workload, "event")

    original = engine_module.save_checkpoint
    for writer, resumer in (("event", "batch"), ("batch", "event"),
                            ("batch", "batch")):
        path = tmp_path / f"{writer}-{resumer}.ckpt"

        def save_then_kill(p, fingerprint, next_epoch, *args, **kwargs):
            original(p, fingerprint, next_epoch, *args, **kwargs)
            if next_epoch >= 3:
                raise _Killed()

        monkeypatch.setattr(engine_module, "save_checkpoint", save_then_kill)
        system = build_system("morphcache", CONFIG, workload, seed=SEED)
        with pytest.raises(_Killed):
            simulate(system, workload, CONFIG, seed=SEED, engine=writer,
                     checkpoint_path=path, checkpoint_every=1)
        monkeypatch.setattr(engine_module, "save_checkpoint", original)

        resumed, resumed_digest = _run(
            "morphcache", workload, resumer,
            checkpoint_path=path, resume=True)
        assert resumed_digest == golden_digest
        assert [e.misses for e in resumed.epochs] \
            == [e.misses for e in golden.epochs]
        assert [{c: repr(v) for c, v in e.ipcs.items()}
                for e in resumed.epochs] \
            == [{c: repr(v) for c, v in e.ipcs.items()}
                for e in golden.epochs]


def test_checkpoint_resume_inside_merged_epoch_identical(tmp_path, monkeypatch):
    # Same engine cross-product, but on a merged static topology with a
    # multithreaded workload: the resume lands *inside* a slice-group
    # kernel epoch, so the batch engine must rebuild its residency maps
    # from imported checkpoint state (stamps, duplicates, LRU order) and
    # still converge on the uninterrupted event run.
    from repro.sim import engine as engine_module

    workload = Workload.from_parsec(sorted(PARSEC_BENCHMARKS)[0])
    golden, golden_digest = _run("(4:4:1)", workload, "event")

    original = engine_module.save_checkpoint
    for writer, resumer in (("event", "batch"), ("batch", "event"),
                            ("batch", "batch")):
        path = tmp_path / f"merged-{writer}-{resumer}.ckpt"

        def save_then_kill(p, fingerprint, next_epoch, *args, **kwargs):
            original(p, fingerprint, next_epoch, *args, **kwargs)
            if next_epoch >= 3:
                raise _Killed()

        monkeypatch.setattr(engine_module, "save_checkpoint", save_then_kill)
        system = build_system("(4:4:1)", CONFIG, workload, seed=SEED)
        with pytest.raises(_Killed):
            simulate(system, workload, CONFIG, seed=SEED, engine=writer,
                     checkpoint_path=path, checkpoint_every=1)
        monkeypatch.setattr(engine_module, "save_checkpoint", original)

        resumed, resumed_digest = _run(
            "(4:4:1)", workload, resumer,
            checkpoint_path=path, resume=True)
        assert resumed_digest == golden_digest, (writer, resumer)
        assert [{c: repr(v) for c, v in e.ipcs.items()}
                for e in resumed.epochs] \
            == [{c: repr(v) for c, v in e.ipcs.items()}
                for e in golden.epochs]


# -- dispatch: each epoch must take (and report) the right tier --------------

def _epoch_tag(system, workload, config, seed=SEED):
    threads = workload.build_threads(config, seed=seed)
    active = [c for c, t in enumerate(threads) if t is not None]
    n = config.accesses_per_core_per_epoch
    traces = {c: threads[c].generate(n) for c in active}
    timers = {c: CoreTimingModel(config.issue_width,
                                 memory_latency=config.latency.memory)
              for c in active}
    return run_epoch_batch(system, traces, timers, n)


def test_dispatch_private_percore():
    workload = Workload.from_mix(MIXES[0])
    system = build_system("(1:1:16)", CONFIG, workload, seed=SEED)
    assert _epoch_tag(system, workload, CONFIG) == PRIVATE_PERCORE


def test_dispatch_private_kernel_on_shared_lines():
    name = sorted(PARSEC_BENCHMARKS)[0]
    workload = Workload.from_parsec(name)
    system = build_system("(1:1:16)", CONFIG, workload, seed=SEED)
    tags = {_epoch_tag(system, workload, CONFIG) for _ in range(3)}
    assert tags == {PRIVATE_KERNEL}


def test_dispatch_merged_kernel_on_merged_topology():
    # A fall-through to batch-general here silently costs the ~2.4x
    # speedup BENCH_batch.json commits to — so it fails CI here too.
    workload = Workload.from_mix(MIXES[0])
    system = build_system("(4:4:1)", CONFIG, workload, seed=SEED)
    tags = {_epoch_tag(system, workload, CONFIG) for _ in range(3)}
    assert tags == {MERGED_KERNEL}


def test_dispatch_shared_kernel_on_fully_shared_topology():
    workload = Workload.from_mix(MIXES[0])
    system = build_system("(16:1:1)", CONFIG, workload, seed=SEED)
    tags = {_epoch_tag(system, workload, CONFIG) for _ in range(3)}
    assert tags == {SHARED_KERNEL}


def test_dispatch_group_kernel_survives_faulted_slices():
    # Offline slices must not demote merged epochs to batch-general.
    workload = Workload.from_mix(MIXES[0])
    system = build_system("(4:4:1)", CONFIG, workload, seed=SEED)
    system.hierarchy.set_faulted_slices(L3, {0})
    assert _epoch_tag(system, workload, CONFIG) == MERGED_KERNEL
    # A faulted all-private machine loses the private fast path, but the
    # group kernel handles singleton groups — batch-general would be a
    # silent regression.
    system = build_system("(1:1:16)", CONFIG, workload, seed=SEED)
    system.hierarchy.set_faulted_slices(L2, {2})
    assert _epoch_tag(system, workload, CONFIG) == MERGED_KERNEL


def test_dispatch_plru_general_fallback_identical():
    # Non-LRU replacement is outside every specialised kernel's contract:
    # the dispatch must take the real access path — and still match.
    config = CONFIG.with_(replacement="plru")
    workload = Workload.from_mix(MIXES[0])
    system = build_system("(4:4:1)", config, workload, seed=SEED)
    assert _epoch_tag(system, workload, config) == GENERAL_KERNEL
    _assert_identical("(4:4:1)", workload, config=config)


def test_dispatch_event_fallback():
    # PIPP/DSR/UCP implement the access protocol with their own
    # organisations: batch_unsupported names the reason and the epoch runs
    # on the event engine.
    workload = Workload.from_mix(MIXES[0])
    for scheme in ("pipp", "dsr", "ucp"):
        system = build_system(scheme, CONFIG, workload, seed=SEED)
        assert batch_unsupported(system) is not None
        assert _epoch_tag(system, workload, CONFIG) == EVENT_FALLBACK


def test_dispatch_tier_metric_counts_epochs(monkeypatch):
    # The tier counter is the observability hook CI dashboards read; a
    # kernel that stops reporting (or reports the wrong tier) fails here.
    from repro.sim import batch as batch_module

    registry = MetricsRegistry(enabled=True)
    monkeypatch.setattr(batch_module.obs_metrics, "REGISTRY", registry)
    workload = Workload.from_mix(MIXES[0])
    for label, tier in (("(4:4:1)", MERGED_KERNEL),
                        ("(16:1:1)", SHARED_KERNEL),
                        ("(1:1:16)", PRIVATE_PERCORE)):
        system = build_system(label, CONFIG, workload, seed=SEED)
        assert _epoch_tag(system, workload, CONFIG) == tier
    counter = registry.counter("repro_batch_epochs_total", labels=("tier",))
    for tier in (MERGED_KERNEL, SHARED_KERNEL, PRIVATE_PERCORE):
        assert counter.labels(tier=tier).value == 1, tier


# -- property test: random traces through the private kernels ----------------


class _Trace:
    """Minimal EpochTrace stand-in with the three arrays the engines read."""

    def __init__(self, lines, writes):
        self.lines = np.asarray(lines, dtype=np.int64)
        self.writes = np.asarray(writes, dtype=bool)
        self.gaps = np.zeros(len(lines), dtype=np.int32)


def _access_lists(draw, n_cores, length, shared):
    traces = {}
    # Tiny line universe => heavy set collisions at every level, constant
    # evictions, back-invalidations and (when shared) coherence traffic.
    for core in range(n_cores):
        base = 0 if shared else core * 1000
        lines = draw(st.lists(
            st.integers(min_value=base, max_value=base + 40),
            min_size=length, max_size=length))
        writes = draw(st.lists(st.booleans(),
                               min_size=length, max_size=length))
        traces[core] = _Trace(lines, writes)
    return traces


@settings(max_examples=40, deadline=None)
@given(data=st.data(), shared=st.booleans(), length=st.integers(8, 40))
def test_private_kernels_match_event_on_random_traces(data, shared, length):
    """Adversarial traces: batch == event through the dict-backed slices.

    ``shared=True`` forces overlapping per-core address ranges, driving the
    partition kernel's coherence/invalidations; ``shared=False`` lets the
    per-core tier engage.  Both must leave the hierarchy (entries, LRU
    recency, stamps, stats, directory) and the timers bit-identical to the
    event engine's.
    """
    workload = Workload.from_mix(MIXES[0])
    n_cores = TINY.cores
    systems = []
    timer_sets = []
    for _ in range(2):
        system = build_system("(1:1:16)", TINY, workload, seed=SEED)
        timers = {c: CoreTimingModel(TINY.issue_width,
                                     memory_latency=TINY.latency.memory)
                  for c in range(n_cores)}
        systems.append(system)
        timer_sets.append(timers)
    traces = _access_lists(data.draw, n_cores, length, shared)

    run_epoch(systems[0], traces, timer_sets[0], length)
    tag = run_epoch_batch(systems[1], traces, timer_sets[1], length)
    assert tag in (PRIVATE_PERCORE, PRIVATE_KERNEL)
    if shared:
        assert tag == PRIVATE_KERNEL

    assert state_digest(systems[0]) == state_digest(systems[1])
    for core in range(n_cores):
        a, b = timer_sets[0][core], timer_sets[1][core]
        assert repr(a.cycles) == repr(b.cycles)
        assert a.instructions == b.instructions
