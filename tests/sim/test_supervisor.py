"""Tests for the supervised, crash-safe sweep executor.

The scripted worker below misbehaves on cue (raise, SIGKILL itself, hang,
MemoryError, fail-once-then-succeed) so every rung of the supervision
ladder — timeout → retry → quarantine → salvage — is exercised against real
process pools, not mocks.  The worker functions are module-level so they
pickle by reference into pool workers.

The two subprocess tests at the bottom cover the acceptance criteria: a
sweep whose *parent* is SIGKILLed mid-run resumes from its journal with
results bit-identical to the golden-determinism fixture, and SIGTERM drains
in-flight runs and exits with the ``SweepInterrupted`` code.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.config import TINY
from repro.resilience.errors import (
    CheckpointError,
    ConfigError,
    LeaseLostError,
    SweepInterrupted,
    WorkerCrashError,
)
from repro.sim.engine import EpochResult, RunResult
from repro.sim.parallel import RunSpec, run_many
from repro.sim.supervisor import (
    SweepPolicy,
    inspect_journal,
    result_from_json,
    result_to_json,
    run_supervised,
    spec_key,
)
from repro.sim.workload import Workload
from repro.workloads import MIXES

REPO = pathlib.Path(__file__).parents[2]

#: No-sleep, fast-poll policy for the scripted tests.
FAST = dict(backoff_base=0.0, poll_interval=0.01)


def _workload():
    return Workload.from_mix(MIXES[0])


def _specs(schemes, workload=None):
    workload = workload or _workload()
    return [RunSpec(scheme=scheme, workload=workload, config=TINY, seed=i)
            for i, scheme in enumerate(schemes)]


# -- scripted workers (module-level: picklable into pool processes) ---------

def _toy_result(spec):
    return RunResult(
        workload_name=spec.workload.name, scheme_name=spec.scheme,
        epochs=[EpochResult(epoch=0, ipcs={0: float(spec.seed)},
                            misses={0: spec.seed}, topology_label=None)])


def _scripted_worker(spec):
    """Behaviour keyed on the scheme name; returns a toy result otherwise."""
    scheme = spec.scheme
    if scheme == "die":
        os.kill(os.getpid(), signal.SIGKILL)
    if scheme == "hang":
        time.sleep(600)
    if scheme == "fail":
        raise RuntimeError("scripted failure")
    if scheme == "oom":
        raise MemoryError("scripted allocation failure")
    if scheme.startswith("flaky:"):
        marker = pathlib.Path(scheme.split(":", 1)[1])
        if not marker.exists():
            marker.touch()
            raise RuntimeError("scripted transient failure")
    return _toy_result(spec)


def _forbidden_worker(spec):
    raise AssertionError(f"worker must not run for {spec.scheme}")


# -- the ladder -------------------------------------------------------------

def test_supervised_matches_serial_bit_identical():
    specs = _specs(["(16:1:1)", "(1:1:16)", "(4:4:1)", "morphcache"])
    serial = run_many(specs, jobs=1)
    report = run_supervised(specs, jobs=3)
    assert report.ok and report.quarantined == []
    assert [r.scheme_name for r in report.results] == [s.scheme for s in specs]
    for a, b in zip(serial, report.results):
        assert [{c: repr(v) for c, v in e.ipcs.items()} for e in a.epochs] \
            == [{c: repr(v) for c, v in e.ipcs.items()} for e in b.epochs]
        assert [e.misses for e in a.epochs] == [e.misses for e in b.epochs]


def test_poison_spec_quarantined_sweep_continues():
    # Acceptance: one poison spec must not cost the rest of the sweep.
    specs = _specs(["(16:1:1)", "not-a-scheme", "morphcache"])
    report = run_supervised(specs, jobs=2, policy=SweepPolicy(**FAST))
    assert report.quarantined == [1]
    assert report.succeeded == [0, 2]
    assert report.results[1] is None
    assert "unknown scheme" in report.outcomes[1].error
    assert isinstance(report.outcomes[1].exception, ValueError)
    with pytest.raises(ValueError, match="unknown scheme"):
        report.raise_first()


def test_worker_sigkill_quarantined_others_intact():
    # The dead worker breaks the pool; the supervisor rebuilds it, retries
    # the (possibly innocent) in-flight runs, and quarantines the run that
    # keeps killing its worker — with a typed WorkerCrashError, not a raw
    # BrokenProcessPool traceback.
    specs = _specs(["ok", "die", "ok", "ok"])
    report = run_supervised(specs, jobs=2,
                            policy=SweepPolicy(retries=2, **FAST),
                            worker=_scripted_worker)
    assert report.quarantined == [1]
    assert report.succeeded == [0, 2, 3]
    assert isinstance(report.outcomes[1].exception, WorkerCrashError)
    assert "worker process died" in report.outcomes[1].error
    for index in (0, 2, 3):
        assert report.results[index].epochs[0].misses == {0: index}


def test_worker_memoryerror_translated_to_crash():
    specs = _specs(["ok", "oom"])
    report = run_supervised(specs, jobs=2, policy=SweepPolicy(**FAST),
                            worker=_scripted_worker)
    assert report.quarantined == [1]
    assert isinstance(report.outcomes[1].exception, WorkerCrashError)
    assert "out of memory" in report.outcomes[1].error
    assert report.results[0] is not None


def test_hung_run_times_out_and_quarantines():
    specs = _specs(["ok", "hang", "ok"])
    start = time.monotonic()
    report = run_supervised(
        specs, jobs=2, policy=SweepPolicy(run_timeout=1.0, **FAST),
        worker=_scripted_worker)
    assert time.monotonic() - start < 30  # nowhere near the 600s sleep
    assert report.quarantined == [1]
    assert report.succeeded == [0, 2]
    assert "timeout" in report.outcomes[1].error
    assert isinstance(report.outcomes[1].exception, WorkerCrashError)


def test_flaky_run_retried_same_seed(tmp_path):
    marker = tmp_path / "first-attempt"
    specs = _specs(["ok", f"flaky:{marker}", "ok"])
    report = run_supervised(specs, jobs=2,
                            policy=SweepPolicy(retries=1, **FAST),
                            worker=_scripted_worker)
    assert report.ok
    assert report.retried == [1]
    assert report.outcomes[1].attempts == 2
    # The retry reused the spec's original seed: the toy result encodes it.
    assert report.results[1].epochs[0].misses == {0: 1}


def test_strict_mode_reraises_original_exception():
    specs = _specs(["ok", "fail", "ok"])
    with pytest.raises(RuntimeError, match="scripted failure"):
        run_supervised(specs, jobs=2, policy=SweepPolicy(**FAST),
                       strict=True, worker=_scripted_worker)


def test_backoff_deterministic_and_bounded():
    policy = SweepPolicy(backoff_base=0.25, backoff_cap=2.0)
    delays = [policy.backoff_delay(11, a) for a in range(1, 8)]
    assert delays == [policy.backoff_delay(11, a)
                      for a in range(1, 8)]  # deterministic
    assert all(0 < d <= 2.0 for d in delays)  # capped
    assert delays != [policy.backoff_delay(12, a)
                      for a in range(1, 8)]  # jitter is seeded per run
    assert SweepPolicy(backoff_base=0.0).backoff_delay(11, 1) == 0.0


def test_policy_validation():
    with pytest.raises(ConfigError, match="run_timeout"):
        SweepPolicy(run_timeout=0)
    with pytest.raises(ConfigError, match="retries"):
        SweepPolicy(retries=-1)
    with pytest.raises(ConfigError, match="backoff_base"):
        SweepPolicy(backoff_base=-0.1)


# -- the journal ------------------------------------------------------------

def test_journal_roundtrips_results_exactly():
    result = run_many(_specs(["morphcache"]), jobs=1)[0]
    rebuilt = result_from_json(json.loads(json.dumps(result_to_json(result))))
    assert [{c: repr(v) for c, v in e.ipcs.items()} for e in rebuilt.epochs] \
        == [{c: repr(v) for c, v in e.ipcs.items()} for e in result.epochs]
    assert [e.misses for e in rebuilt.epochs] \
        == [e.misses for e in result.epochs]


def test_resume_skips_completed_runs(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    specs = _specs(["ok", "ok", "ok"])
    first = run_supervised(specs, jobs=2, journal=journal,
                           worker=_scripted_worker)
    assert first.ok
    # Resume with a worker that would blow up if any run re-executed.
    resumed = run_supervised(specs, jobs=2, journal=journal, resume=True,
                             worker=_forbidden_worker)
    assert resumed.ok and resumed.resumed == [0, 1, 2]
    for a, b in zip(first.results, resumed.results):
        assert a.epochs[0].misses == b.epochs[0].misses


def test_truncated_journal_resumes_clean_and_bit_identical(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    specs = _specs(["(16:1:1)", "(1:1:16)", "morphcache"])
    serial = run_many(specs, jobs=1)
    run_supervised(specs, jobs=1, journal=journal)
    # Chop the final *run* record mid-line, as a SIGKILL mid-write would.
    # (The last line of a finished journal is the summary record — drop it
    # too, exactly what a kill during the last run would have left.)
    lines = journal.read_text().rstrip("\n").split("\n")
    assert json.loads(lines[-1])["kind"] == "summary"
    journal.write_text("\n".join(lines[:-1])[:-25])
    resumed = run_supervised(specs, jobs=1, journal=journal, resume=True)
    assert resumed.ok
    assert len(resumed.resumed) == len(specs) - 1  # only the torn run redone
    for a, b in zip(serial, resumed.results):
        assert [{c: repr(v) for c, v in e.ipcs.items()} for e in a.epochs] \
            == [{c: repr(v) for c, v in e.ipcs.items()} for e in b.epochs]
        assert [e.misses for e in a.epochs] == [e.misses for e in b.epochs]


def test_journal_refuses_a_different_sweep(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    run_supervised(_specs(["ok", "ok"]), journal=journal,
                   worker=_scripted_worker)
    other = [RunSpec(scheme="ok", workload=_workload(), config=TINY, seed=99),
             RunSpec(scheme="ok", workload=_workload(), config=TINY, seed=98)]
    with pytest.raises(CheckpointError, match="different"):
        run_supervised(other, journal=journal, resume=True,
                       worker=_scripted_worker)
    with pytest.raises(CheckpointError, match="no sweep journal"):
        run_supervised(other, journal=tmp_path / "absent.jsonl", resume=True,
                       worker=_scripted_worker)
    with pytest.raises(CheckpointError, match="journal"):
        run_supervised(other, resume=True, worker=_scripted_worker)


def test_quarantined_runs_rerun_on_resume(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    marker = tmp_path / "poison-marker"
    specs = _specs(["ok", f"flaky:{marker}", "ok"])
    first = run_supervised(specs, jobs=1, journal=journal,
                           policy=SweepPolicy(**FAST),
                           worker=_scripted_worker)
    assert first.quarantined == [1]  # no retries: first failure is final
    # On resume the quarantined spec gets a fresh attempt budget — and the
    # marker now exists, so it succeeds; completed runs are not rerun.
    resumed = run_supervised(specs, jobs=1, journal=journal, resume=True,
                             policy=SweepPolicy(**FAST),
                             worker=_scripted_worker)
    assert resumed.ok
    assert sorted(resumed.resumed) == [0, 2]
    assert resumed.results[1].epochs[0].misses == {0: 1}


# -- journal inspection -----------------------------------------------------

def test_inspect_journal_complete_sweep(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    report = run_supervised(_specs(["a", "b", "c"]), jobs=1, journal=journal,
                            policy=SweepPolicy(**FAST),
                            worker=_scripted_worker)
    summary = inspect_journal(journal)
    assert summary.complete
    assert summary.completed == [0, 1, 2]
    assert summary.missing == 0 and summary.resumes == 0
    assert not summary.truncated_tail and summary.bad_lines == 0
    # Latency comes from the summary record the sweep appended.
    assert summary.elapsed == report.latency()["total"]
    assert summary.latency == {k: report.latency()[k]
                               for k in ("p50", "p90", "max")}
    assert summary.latency["p50"] <= summary.latency["p90"] \
        <= summary.latency["max"]
    rendered = summary.render()
    assert "3/3 completed" in rendered and "status: complete" in rendered
    payload = summary.to_json()
    assert payload["complete"] is True and payload["missing"] == 0


def test_inspect_journal_truncated_tail_is_resumable(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    run_supervised(_specs(["a", "b", "c"]), jobs=1, journal=journal,
                   policy=SweepPolicy(**FAST), worker=_scripted_worker)
    lines = journal.read_text().rstrip("\n").split("\n")
    journal.write_text("\n".join(lines[:-1])[:-20])  # tear the last run
    summary = inspect_journal(journal)
    assert summary.truncated_tail and summary.bad_lines == 1
    assert summary.completed == [0, 1] and summary.missing == 1
    assert not summary.complete
    assert "torn" in summary.render()
    assert "resumable" in summary.render()


def test_inspect_journal_reports_quarantines_retries_and_resumes(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    marker = tmp_path / "flaky-marker"
    specs = _specs(["ok", "fail", f"flaky:{marker}"])
    run_supervised(specs, jobs=1, journal=journal,
                   policy=SweepPolicy(retries=1, **FAST),
                   worker=_scripted_worker)
    summary = inspect_journal(journal)
    assert summary.quarantined == [1]   # 'fail' exhausted its retries
    assert summary.retried == [2]       # 'flaky' needed a second attempt
    assert summary.completed == [0, 2]
    run_supervised(specs, jobs=1, journal=journal, resume=True,
                   policy=SweepPolicy(retries=1, **FAST),
                   worker=_scripted_worker)
    resumed = inspect_journal(journal)
    assert resumed.resumes == 1
    assert "resumes: 1" in resumed.render()


def test_inspect_journal_validates_against_spec_keys(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    specs = _specs(["a", "b"])
    run_supervised(specs, jobs=1, journal=journal,
                   policy=SweepPolicy(**FAST), worker=_scripted_worker)
    assert inspect_journal(journal,
                           keys=[spec_key(s) for s in specs]).complete
    with pytest.raises(CheckpointError):
        inspect_journal(journal, keys=["deadbeef", "deadbeef"])
    with pytest.raises(CheckpointError):
        inspect_journal(tmp_path / "absent.jsonl")


def test_summary_record_carries_latency_percentiles(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    report = run_supervised(_specs(["a", "b", "c", "d"]), jobs=1,
                            journal=journal, policy=SweepPolicy(**FAST),
                            worker=_scripted_worker)
    last = json.loads(journal.read_text().rstrip("\n").split("\n")[-1])
    assert last["kind"] == "summary"
    assert last["completed"] == 4
    latency = report.latency()
    assert last["runs"] == latency["runs"] == 4.0
    for key in ("total", "p50", "p90", "max"):
        assert last[key] == latency[key]
    # Nearest-rank: with every elapsed equal the percentiles collapse.
    assert latency["p50"] <= latency["p90"] <= latency["max"]


def test_spec_key_distinguishes_every_field():
    base = RunSpec(scheme="morphcache", workload=_workload(), config=TINY,
                   seed=1)
    assert spec_key(base) == spec_key(RunSpec(
        scheme="morphcache", workload=_workload(), config=TINY, seed=1))
    for other in (
            RunSpec(scheme="pipp", workload=_workload(), config=TINY, seed=1),
            RunSpec(scheme="morphcache", workload=_workload(), config=TINY,
                    seed=2),
            RunSpec(scheme="morphcache", workload=_workload(), config=TINY,
                    seed=1, epochs=5),
            RunSpec(scheme="morphcache", workload=_workload(), config=TINY,
                    seed=1, engine="batch"),
    ):
        assert spec_key(other) != spec_key(base)


# -- parent-death and signal draining (subprocess) --------------------------

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_tiny_mix01.json").read_text())

#: The exact sweep ``repro compare`` runs for the golden configuration.
COMPARE_ARGS = ["compare", "--workload", "MIX 01", "--preset", "tiny",
                "--epochs", "3", "--seed", "7", "--jobs", "2"]


def _compare_specs():
    """The RunSpecs cmd_compare builds for COMPARE_ARGS, reproduced here."""
    from repro.baselines.static_topologies import STATIC_LABELS
    from repro.config import preset
    workload = Workload.from_mix(MIXES[0])
    return [RunSpec(scheme=scheme, workload=workload, config=preset("tiny"),
                    seed=7, epochs=3)
            for scheme in STATIC_LABELS + ["morphcache"]]


def _spawn_compare(journal, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_JOBS", None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *COMPARE_ARGS,
         "--sweep-journal", str(journal), *extra],
        env=env, cwd=str(REPO), start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)


def _wait_for_run_record(journal, process, timeout=120.0):
    """Block until the journal holds >= 1 completed-run line."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists() and '"kind":"run"' in journal.read_text():
            return
        if process.poll() is not None:
            return  # sweep already finished; resume still must be identical
        time.sleep(0.05)
    raise AssertionError("no run record appeared in the journal")


def test_parent_sigkill_then_resume_bit_identical_to_golden(tmp_path):
    # Acceptance: SIGKILL the sweep's *parent* mid-run, resume from the
    # journal, and get results bit-identical to an uninterrupted sweep —
    # checked against the golden-determinism fixture for the two schemes
    # it captures, and against a fresh serial sweep for all six.
    journal = tmp_path / "sweep.jsonl"
    process = _spawn_compare(journal)
    try:
        _wait_for_run_record(journal, process)
    finally:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        process.wait()

    specs = _compare_specs()
    resumed = run_supervised(specs, jobs=2, journal=journal, resume=True)
    assert resumed.ok

    serial = run_many(specs, jobs=1)
    for a, b in zip(serial, resumed.results):
        assert [{str(c): repr(v) for c, v in e.ipcs.items()}
                for e in a.epochs] \
            == [{str(c): repr(v) for c, v in e.ipcs.items()}
                for e in b.epochs]
        assert [e.misses for e in a.epochs] == [e.misses for e in b.epochs]

    for index, spec in enumerate(specs):
        if spec.scheme not in GOLDEN:
            continue
        golden_epochs = GOLDEN[spec.scheme]["epochs"]
        got = resumed.results[index].epochs
        assert len(got) == len(golden_epochs)
        for epoch, want in zip(got, golden_epochs):
            assert {str(c): repr(v) for c, v in epoch.ipcs.items()} \
                == want["ipcs"]
            assert {str(c): v for c, v in epoch.misses.items()} \
                == want["misses"]


def test_sigterm_drains_flushes_and_exits_distinct_code(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    process = _spawn_compare(journal)
    _wait_for_run_record(journal, process)
    if process.poll() is None:
        process.send_signal(signal.SIGTERM)
    out, err = process.communicate(timeout=120)
    if process.returncode == 0:
        pytest.skip("sweep finished before SIGTERM landed")
    assert process.returncode == SweepInterrupted.exit_code
    assert "interrupted" in err and "resumable" in err
    # The journal survived the interruption and resumes to a full sweep.
    specs = _compare_specs()
    resumed = run_supervised(specs, jobs=2, journal=journal, resume=True)
    assert resumed.ok
    assert resumed.resumed  # the drained runs were journaled before exit


def _children_of(pid):
    """Live pids whose /proc stat names ``pid`` as parent (Linux only)."""
    kids = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            stat = (pathlib.Path("/proc") / entry / "stat").read_text()
        except OSError:
            continue  # raced with an exit
        # Field 4 is ppid; comm (field 2) may contain spaces — split after
        # the closing paren.
        ppid = int(stat.rsplit(")", 1)[1].split()[1])
        if ppid == pid:
            kids.append(int(entry))
    return kids


@pytest.mark.skipif(sys.platform != "linux", reason="needs /proc + prctl")
def test_sigkill_leaves_no_orphaned_pool_children(tmp_path):
    # The worker-pool failover drills SIGKILL a supervisor *process* (not
    # its group) mid-sweep.  Its executor fork-children must die with it
    # — PR_SET_PDEATHSIG in _bind_worker_to_parent — instead of blocking
    # forever on the inherited call-queue pipe as orphans of init.
    journal = tmp_path / "sweep.jsonl"
    process = _spawn_compare(journal)
    try:
        _wait_for_run_record(journal, process)
        if process.poll() is not None:
            pytest.skip("sweep finished before the kill landed")
        deadline = time.monotonic() + 30.0
        kids = _children_of(process.pid)
        while not kids and time.monotonic() < deadline:
            time.sleep(0.05)
            kids = _children_of(process.pid)
        assert kids, "executor never forked a pool child"
        os.kill(process.pid, signal.SIGKILL)  # the supervisor ONLY
        process.wait()
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = [pid for pid in kids
                     if pathlib.Path(f"/proc/{pid}").exists()]
            if not alive:
                return
            time.sleep(0.05)
        raise AssertionError(f"orphaned pool children survived: {alive}")
    finally:
        for pid in _children_of(process.pid) if process.poll() is None else []:
            os.kill(pid, signal.SIGKILL)
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass
        process.wait()


# -- journal fencing (worker-pool integration) -------------------------------

def test_journal_extra_stamps_every_record(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    run_supervised(_specs(["a", "b"]), jobs=1, journal=journal,
                   policy=SweepPolicy(**FAST), worker=_scripted_worker,
                   journal_extra={"lease": "1:w0", "worker": "w0"})
    records = [json.loads(line) for line in journal.read_text().splitlines()]
    assert records and all(r["lease"] == "1:w0" for r in records)
    assert all(r["worker"] == "w0" for r in records)
    # Loaders ignore the stamps: the journal still resumes/validates.
    summary = inspect_journal(journal)
    assert summary.complete
    assert summary.leases == ["1:w0"]
    assert summary.adoptions == 0


def test_journal_guard_aborts_before_the_write(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    writes = []

    def guard():
        # header + first run record allowed, then the fence is lost.
        if len(writes) >= 2:
            raise LeaseLostError("job adopted by a peer at fence 2")
        writes.append(1)

    with pytest.raises(LeaseLostError):
        run_supervised(_specs(["a", "b", "c"]), jobs=1, journal=journal,
                       policy=SweepPolicy(**FAST), worker=_scripted_worker,
                       journal_guard=guard)
    # Nothing landed after the guard tripped: exactly header + one run.
    lines = journal.read_text().splitlines()
    assert [json.loads(line)["kind"] for line in lines] == ["header", "run"]


def test_inspect_journal_renders_the_handover_chain(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    specs = _specs(["ok", "fail", "ok"])
    run_supervised(specs, jobs=1, journal=journal,
                   policy=SweepPolicy(**FAST), worker=_scripted_worker,
                   journal_extra={"lease": "1:alpha", "worker": "alpha"})
    # A peer adopts (resume under the next fence) and finishes the sweep.
    marker_free = inspect_journal(journal)
    assert marker_free.leases == ["1:alpha"]
    run_supervised(specs, jobs=1, journal=journal, resume=True,
                   policy=SweepPolicy(retries=1, **FAST),
                   worker=_scripted_worker,
                   journal_extra={"lease": "2:bravo", "worker": "bravo"})
    summary = inspect_journal(journal)
    assert summary.leases == ["1:alpha", "2:bravo"]
    assert summary.adoptions == 1
    rendered = summary.render()
    assert "1:alpha" in rendered and "2:bravo" in rendered
    assert "handover" in rendered
    assert summary.to_json()["adoptions"] == 1


def test_unfenced_journals_report_no_leases(tmp_path):
    journal = tmp_path / "sweep.jsonl"
    run_supervised(_specs(["a"]), jobs=1, journal=journal,
                   policy=SweepPolicy(**FAST), worker=_scripted_worker)
    summary = inspect_journal(journal)
    assert summary.leases == []
    assert summary.adoptions == 0
    assert "leases" not in summary.render()
