"""Tests for the oracle footprint estimator (Figure 5 reference)."""

from repro.caches.hierarchy import CacheHierarchy
from repro.config import TINY
from repro.core.acfv import AcfvBank
from repro.sim.oracle import FanoutObserver, OracleFootprint


class TestOracleFootprint:
    def test_counts_unique_reused_lines(self):
        oracle = OracleFootprint(2)
        oracle.on_hit("l2", 0, 0, 10)
        oracle.on_hit("l2", 0, 0, 10)
        oracle.on_hit("l2", 0, 0, 11)
        assert oracle.footprint("l2", 0) == 2

    def test_l2_hit_counts_toward_l3(self):
        oracle = OracleFootprint(2)
        oracle.on_hit("l2", 0, 1, 10)
        assert oracle.footprint("l3", 1) == 1

    def test_reset_clears(self):
        oracle = OracleFootprint(1)
        oracle.on_hit("l3", 0, 0, 5)
        oracle.reset()
        assert oracle.footprint("l3", 0) == 0

    def test_eviction_discards_from_owner(self):
        oracle = OracleFootprint(2)
        oracle.on_hit("l3", 0, 0, 5)
        oracle.on_evict("l3", 0, 5, owner=0)
        assert oracle.footprint("l3", 0) == 0

    def test_eviction_of_unknown_owner_is_ignored(self):
        oracle = OracleFootprint(2)
        oracle.on_hit("l3", 0, 0, 5)
        oracle.on_evict("l3", 0, 5, owner=-1)
        assert oracle.footprint("l3", 0) == 1


class TestFanout:
    def test_broadcasts_to_all(self):
        oracle = OracleFootprint(2)
        bank = AcfvBank(2, 32, 32)
        fanout = FanoutObserver(oracle, bank)
        fanout.on_hit("l2", 0, 0, 7)
        fanout.on_fill("l2", 0, 0, 8)
        fanout.on_evict("l2", 0, 7, 0)
        assert oracle.footprint("l2", 0) == 0  # hit then evicted
        assert bank.acfv("l2", 0).ones == 1    # bank accumulates

    def test_attached_to_hierarchy(self):
        oracle = OracleFootprint(16)
        hierarchy = CacheHierarchy(TINY, observer=oracle)
        hierarchy.access(0, 0x10)
        hierarchy.access(0, 0x10)  # L1 hit: oracle sees nothing new
        hierarchy.l1s[0].flush()
        hierarchy.access(0, 0x10)  # L2 hit: now in the footprint
        assert oracle.footprint("l2", 0) == 1
        assert oracle.footprint("l3", 0) == 1
