"""Tests for the experiment orchestration layer."""

import pytest

from repro.baselines.dsr import DsrSystem
from repro.baselines.pipp import PippSystem
from repro.cpu.cmp import CmpSystem
from repro.sim.experiment import alone_ipc, alone_ipcs, build_system, run_scheme
from repro.sim.workload import Workload
from repro.workloads import mix_by_name


@pytest.fixture
def fast_config(tiny_config):
    return tiny_config.with_(accesses_per_core_per_epoch=200)


@pytest.fixture
def workload():
    return Workload.from_mix(mix_by_name("MIX 08"))


class TestBuildSystem:
    def test_static_label(self, fast_config, workload):
        system = build_system("(4:4:1)", fast_config, workload)
        assert isinstance(system, CmpSystem)
        assert system.label == "(4:4:1)"
        assert system.controller is None

    def test_morphcache(self, fast_config, workload):
        system = build_system("morphcache", fast_config, workload)
        assert isinstance(system, CmpSystem)
        assert system.controller is not None

    def test_morphcache_inherits_shared_address_space(self, fast_config):
        workload = Workload.from_parsec("vips")
        system = build_system("morphcache", fast_config, workload)
        assert system.controller.shared_address_space

    def test_pipp_and_dsr(self, fast_config, workload):
        assert isinstance(build_system("pipp", fast_config, workload), PippSystem)
        assert isinstance(build_system("dsr", fast_config, workload), DsrSystem)

    def test_unknown_scheme(self, fast_config, workload):
        with pytest.raises(ValueError):
            build_system("utopia", fast_config, workload)


class TestRunScheme:
    def test_result_tagged_with_scheme(self, fast_config, workload):
        result = run_scheme("(16:1:1)", workload, fast_config, seed=2, epochs=1)
        assert result.scheme_name == "(16:1:1)"
        assert result.workload_name == "MIX 08"

    def test_all_schemes_produce_positive_throughput(self, fast_config, workload):
        for scheme in ["(16:1:1)", "(1:1:16)", "morphcache", "pipp", "dsr"]:
            result = run_scheme(scheme, workload, fast_config, seed=2, epochs=1)
            assert result.mean_throughput > 0


class TestAloneIpc:
    def test_cached_across_calls(self, fast_config):
        first = alone_ipc("gcc", fast_config, seed=2, epochs=1)
        second = alone_ipc("gcc", fast_config, seed=2, epochs=1)
        assert first == second

    def test_alone_ipcs_preserve_order(self, fast_config):
        values = alone_ipcs(["gcc", "hmmer"], fast_config, seed=2, epochs=1)
        assert values[0] == alone_ipc("gcc", fast_config, seed=2, epochs=1)
        assert values[1] == alone_ipc("hmmer", fast_config, seed=2, epochs=1)

    def test_alone_ipc_positive(self, fast_config):
        assert alone_ipc("libquantum", fast_config, seed=2, epochs=1) > 0
