"""Golden determinism: the hot-path rewrite must not move a single bit.

``golden_tiny_mix01.json`` holds the exact per-epoch IPC series (as
``repr`` strings, i.e. full float precision), miss counts, topology labels
and final cache-state digests of two fixed-seed runs — morphcache and the
all-shared ``(16:1:1)`` baseline on MIX 01 at the tiny preset — captured
from the tree immediately before the rewrite (commit 6bd6035).

Any change to lookup order, victim selection, stats accounting, latency
arithmetic or observer dispatch shows up here as a float or digest
mismatch.  If this test fails after an *intentional* behaviour change,
recapture the fixture with the snippet in the fixture's provenance note
below; never loosen the comparison.

Provenance / recapture::

    from repro.config import TINY
    from repro.resilience.checkpoint import state_digest
    from repro.sim.experiment import build_system
    from repro.sim.engine import simulate
    ...  # build_system(scheme, TINY.with_(epochs=3), MIX 01, seed=7),
    ...  # simulate(...), record repr(ipc) per core plus state_digest(system)
"""

import json
import pathlib

import pytest

from repro.config import TINY
from repro.resilience.checkpoint import state_digest
from repro.sim.engine import simulate
from repro.sim.experiment import build_system
from repro.sim.workload import Workload
from repro.workloads import MIXES

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden_tiny_mix01.json").read_text())

SEED = 7
CONFIG = TINY.with_(epochs=3)


@pytest.mark.parametrize("engine", ["event", "batch"])
@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_golden_series_and_digest(scheme, engine):
    # Both engines must land on the fixture exactly: the batch engine is
    # bit-identical by design, so it shares the event engine's golden.
    workload = Workload.from_mix(MIXES[0])
    system = build_system(scheme, CONFIG, workload, seed=SEED)
    result = simulate(system, workload, CONFIG, seed=SEED, engine=engine)

    expected = GOLDEN[scheme]
    assert len(result.epochs) == len(expected["epochs"])
    for got, want in zip(result.epochs, expected["epochs"]):
        assert got.epoch == want["epoch"]
        assert got.topology_label == want["topology_label"]
        # repr-level comparison: bit-identical floats, not approx-equal.
        assert {str(c): repr(v) for c, v in got.ipcs.items()} == want["ipcs"]
        assert {str(c): v for c, v in got.misses.items()} == want["misses"]

    assert state_digest(system) == expected["digest"]
