"""Golden fixtures for merged/shared topologies at 16 and 64 cores.

The digest-audit suite (``test_epoch_digest_audit.py``) pins morphcache and
the fully-shared 16-core static; this file extends the same discipline to
the slice-group kernel's whole dispatch matrix — merged and shared shapes
at both the paper's 16-core scale and the 64-core stretch scale the batch
benchmark times (``benchmarks/bench_batch.py``).  Each case pins, per
engine:

- the per-epoch ``state_digest`` sequence (every cache entry, stamp, LRU
  order, stat and ACFV), asserted epoch by epoch so a regression names the
  first bad epoch;
- the per-epoch total miss count (a human-legible early warning: a digest
  mismatch with equal misses points at state layout, not behaviour).

Both engines must also produce *the same* golden sequence (the
bit-identical guarantee); a recapture that bakes in an engine divergence
fails ``test_golden_sequences_agree_across_engines`` rather than landing
silently.  If this suite fails after an *intentional* behaviour change,
recapture with::

    PYTHONPATH=src python - <<'PY'
    import json, pathlib
    from tests.sim.test_golden_scaled_topologies import (
        CASES, SEED, _config, _sequence, _workload)
    golden = {}
    for case, (label, cores) in CASES.items():
        golden[case] = {"label": label, "cores": cores}
        for engine in ("event", "batch"):
            golden[case][engine] = [
                {"epoch": e, "digest": d, "misses": m}
                for e, d, m in _sequence(label, cores, engine)]
    pathlib.Path("tests/sim/golden_scaled_topologies.json").write_text(
        json.dumps(golden, indent=2, sort_keys=True) + "\n")
    PY

Never loosen the comparison.
"""

import json
import pathlib

import pytest

from repro.config import TINY
from repro.obs.trace import TraceRecorder
from repro.sim.engine import simulate
from repro.sim.experiment import build_system
from repro.sim.workload import Workload
from repro.workloads import MIXES

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_scaled_topologies.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

SEED = 7

#: case -> (static label, cores).  The 16-core pair mirrors the paper's
#: merged/shared statics; the 64-core pair mirrors the benchmark's stretch
#: scale, where group search orders span 16-64 slices.
CASES = {
    "merged16": ("(4:4:1)", 16),
    "shared16": ("(16:1:1)", 16),
    "merged64": ("(4:4:4)", 64),
    "shared64": ("(64:1:1)", 64),
}


def _config(cores):
    config = TINY.with_(epochs=3)
    if cores != TINY.cores:
        # Shorter epochs keep the 64-core event runs CI-cheap; the state
        # still turns over every set several times.
        config = config.with_(cores=cores, accesses_per_core_per_epoch=150)
    return config


def _workload(cores):
    base = Workload.from_mix(MIXES[0])
    reps = cores // len(base.models)
    if reps == 1:
        return base
    return Workload(name=f"{base.name} x{reps}", models=base.models * reps)


def _sequence(label, cores, engine):
    config = _config(cores)
    workload = _workload(cores)
    system = build_system(label, config, workload, seed=SEED)
    tracer = TraceRecorder(epoch_digests=True)
    simulate(system, workload, config, seed=SEED, engine=engine,
             tracer=tracer)
    return [(r["epoch"], r["digest"], sum(r["misses"].values()))
            for r in tracer.records("epoch")]


@pytest.mark.parametrize("engine", ["event", "batch"])
@pytest.mark.parametrize("case", sorted(CASES))
def test_scaled_topology_matches_golden(case, engine):
    label, cores = CASES[case]
    got = _sequence(label, cores, engine)
    want = [(e["epoch"], e["digest"], e["misses"])
            for e in GOLDEN[case][engine]]
    assert len(got) == len(want)
    for (epoch, digest, misses), (want_epoch, want_digest, want_misses) \
            in zip(got, want):
        assert epoch == want_epoch
        assert misses == want_misses, (
            f"{case}/{engine}: miss count diverged at epoch {epoch} "
            f"(first bad epoch)")
        assert digest == want_digest, (
            f"{case}/{engine}: state diverged at epoch {epoch} "
            f"(first bad epoch)")


@pytest.mark.parametrize("case", sorted(CASES))
def test_golden_sequences_agree_across_engines(case):
    assert GOLDEN[case]["event"] == GOLDEN[case]["batch"]
