"""Tests for the CLI and text rendering helpers."""

import pytest

from repro.cli import _workload_from_name, build_parser, main
from repro.render import render_series, render_topology
from repro.resilience.errors import ConfigError


class TestWorkloadParsing:
    def test_mix_names(self):
        assert _workload_from_name("MIX 03").name == "MIX 03"
        assert _workload_from_name("mix 03").name == "MIX 03"

    def test_parsec_name(self):
        workload = _workload_from_name("dedup")
        assert workload.shared_address_space

    def test_alone(self):
        workload = _workload_from_name("alone:gcc")
        assert workload.active_cores == [0]

    def test_unknown_is_typed_config_error(self):
        # The CLI and the service share Workload.from_name, so both reject
        # a bad workload with the same typed error (exit 3 / HTTP 400).
        with pytest.raises(ConfigError, match="workload"):
            _workload_from_name("quake3")


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3", "--preset", "tiny"]) == 0
        assert "superscalar" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "160.5" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MIX 12" in out
        assert "morphcache" in out

    def test_run_alone(self, capsys):
        code = main(["run", "--workload", "alone:gamess", "--preset", "tiny",
                     "--epochs", "1", "--scheme", "(16:1:1)"])
        assert code == 0
        assert "mean throughput" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_with_faults(self, capsys):
        code = main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "2",
                     "--faults", "disable-slice:every=2:level=l3,seed=3"])
        assert code == 0
        assert "fault plan" in capsys.readouterr().out

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        path = str(tmp_path / "ck.json")
        args = ["run", "--workload", "MIX 01", "--preset", "tiny",
                "--epochs", "2", "--checkpoint", path]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_run_with_trace_then_render(self, tmp_path, capsys):
        trace = str(tmp_path / "run.jsonl")
        code = main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "2", "--trace", trace])
        assert code == 0
        assert "trace written" in capsys.readouterr().out

        assert main(["trace", trace]) == 0
        timeline = capsys.readouterr().out
        assert timeline.startswith("morphcache on MIX 01")
        assert "run end:" in timeline

    def test_run_trace_is_engine_independent(self, tmp_path, capsys):
        # The CLI surface inherits the engines' byte-identical guarantee.
        paths = {}
        for engine in ("event", "batch"):
            paths[engine] = tmp_path / f"{engine}.jsonl"
            assert main(["run", "--workload", "MIX 01", "--preset", "tiny",
                         "--epochs", "2", "--engine", engine,
                         "--trace", str(paths[engine])]) == 0
        capsys.readouterr()
        assert paths["event"].read_bytes() == paths["batch"].read_bytes()

    def test_run_with_metrics_text_and_json(self, tmp_path, capsys):
        text_path = tmp_path / "metrics.prom"
        code = main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1", "--metrics", str(text_path)])
        assert code == 0
        assert "metrics written" in capsys.readouterr().out
        text = text_path.read_text()
        assert "# TYPE repro_sim_runs_total counter" in text
        assert 'repro_sim_runs_total{engine="event"} 1' in text

        json_path = tmp_path / "metrics.json"
        assert main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1", "--metrics", str(json_path)]) == 0
        capsys.readouterr()
        import json as json_module
        dump = json_module.loads(json_path.read_text())
        assert dump["repro_sim_runs_total"]["type"] == "counter"

    def test_metrics_registry_disabled_after_run(self, tmp_path, capsys):
        from repro.obs import REGISTRY
        assert main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1",
                     "--metrics", str(tmp_path / "m.prom")]) == 0
        capsys.readouterr()
        assert REGISTRY.enabled is False

    def test_compare_trace_dir(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        code = main(["compare", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1", "--trace", str(trace_dir)])
        assert code == 0
        assert "traces written" in capsys.readouterr().out
        names = sorted(p.name for p in trace_dir.iterdir())
        assert "morphcache.jsonl" in names
        assert "16-1-1.jsonl" in names  # "(16:1:1)" sanitised
        assert len(names) == 6

    def test_compare_supervised_journal_and_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        args = ["compare", "--workload", "MIX 01", "--preset", "tiny",
                "--epochs", "1", "--retries", "1", "--sweep-journal", journal]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "sweep: 6/6 runs ok" in first
        # Resuming the finished sweep reruns nothing and prints the same
        # table (modulo the sweep summary's timing line).
        assert main(args + ["--resume-sweep"]) == 0
        resumed = capsys.readouterr().out
        assert "6 resumed from journal" in resumed
        assert resumed.split("sweep:")[0] == first.split("sweep:")[0]

    def test_journal_subcommand_renders_and_jsons(self, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert main(["compare", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1", "--sweep-journal", journal]) == 0
        capsys.readouterr()
        assert main(["journal", journal]) == 0
        rendered = capsys.readouterr().out
        assert "6/6" in rendered
        assert main(["journal", journal, "--json"]) == 0
        import json as _json
        payload = _json.loads(capsys.readouterr().out)
        assert payload["completed"] == list(range(6))
        assert payload["complete"] is True
        assert {"p50", "p90", "max"} <= set(payload["latency"])

    def test_journal_subcommand_missing_file_exits_6(self, tmp_path, capsys):
        code = main(["journal", str(tmp_path / "absent.jsonl")])
        assert code == 6
        assert "error:" in capsys.readouterr().err


class TestPoolCommands:
    def _admit(self, pool_dir):
        from repro.serve.jobs import JobSpec
        from repro.serve.pool import SharedPool

        pool = SharedPool.ensure(pool_dir, heartbeat=0.2, misses=3)
        return pool.admit(JobSpec.from_payload(
            {"tenant": "cli", "workload": "MIX 01",
             "schemes": ["morphcache"], "preset": "tiny", "epochs": 2,
             "seed": 5, "trace": False}))

    def test_worker_init_drains_a_job(self, tmp_path, capsys):
        pool_dir = str(tmp_path / "pool")
        self._admit(tmp_path / "pool")
        assert main(["worker", "--pool", pool_dir, "--worker-id", "cli-w",
                     "--drain"]) == 0
        assert "1 job(s) completed" in capsys.readouterr().err

    def test_worker_init_creates_an_empty_pool(self, tmp_path, capsys):
        pool_dir = str(tmp_path / "fresh")
        assert main(["worker", "--pool", pool_dir, "--init", "--drain",
                     "--heartbeat", "0.5", "--misses", "2"]) == 0
        from repro.serve.pool import SharedPool
        assert SharedPool.open(pool_dir).config.ttl == 1.0

    def test_worker_against_missing_pool_exits_10(self, tmp_path, capsys):
        code = main(["worker", "--pool", str(tmp_path / "nope"), "--drain"])
        assert code == 10
        assert "error:" in capsys.readouterr().err

    def test_pool_status_renders_and_jsons(self, tmp_path, capsys):
        pool_dir = str(tmp_path / "pool")
        job = self._admit(tmp_path / "pool")
        assert main(["worker", "--pool", pool_dir, "--worker-id", "cli-w",
                     "--drain"]) == 0
        capsys.readouterr()
        assert main(["pool", "status", pool_dir]) == 0
        rendered = capsys.readouterr().out
        assert job.id in rendered
        assert "done" in rendered and "cli-w" in rendered
        assert main(["pool", "status", pool_dir, "--json"]) == 0
        import json as _json
        payload = _json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"done": 1}
        assert payload["reclaims"] == 0
        assert payload["jobs"][0]["worker"] == "cli-w"
        assert payload["workers"][0]["jobs_done"] == 1

    def test_pool_status_of_missing_pool_exits_10(self, tmp_path, capsys):
        code = main(["pool", "status", str(tmp_path / "nope")])
        assert code == 10
        assert "error:" in capsys.readouterr().err

    def test_journal_json_surfaces_the_lease_chain(self, tmp_path, capsys):
        pool_dir = str(tmp_path / "pool")
        job = self._admit(tmp_path / "pool")
        assert main(["worker", "--pool", pool_dir, "--worker-id", "cli-w",
                     "--drain"]) == 0
        capsys.readouterr()
        assert main(["journal", str(job.job_dir / "journal.jsonl"),
                     "--json"]) == 0
        import json as _json
        payload = _json.loads(capsys.readouterr().out)
        assert payload["leases"] == ["1:cli-w"]
        assert payload["adoptions"] == 0


class TestExitCodes:
    def test_bad_fault_spec_exits_3(self, capsys):
        code = main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1", "--faults", "not-a-kind:at=0"])
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_resume_without_checkpoint_exits_6(self, capsys):
        code = main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1", "--resume"])
        assert code == 6

    def test_resume_from_missing_file_exits_6(self, tmp_path, capsys):
        code = main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1",
                     "--checkpoint", str(tmp_path / "absent.json"),
                     "--resume"])
        assert code == 6
        assert "no checkpoint" in capsys.readouterr().err

    def test_fault_injected_error_exits_5(self, capsys):
        spec = ",".join(f"disable-slice:at=0:level=l2:target={s}:duration=9"
                        for s in range(16))
        code = main(["run", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1", "--faults", spec])
        assert code == 5

    def test_repro_jobs_zero_exits_config_code(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "0")
        code = main(["compare", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1"])
        assert code == 3
        err = capsys.readouterr().err
        assert "REPRO_JOBS" in err

    def test_repro_jobs_malformed_exits_config_code(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "many")
        code = main(["compare", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1"])
        assert code == 3
        assert "REPRO_JOBS" in capsys.readouterr().err

    def test_resume_sweep_without_journal_exits_3(self, capsys):
        code = main(["compare", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1", "--resume-sweep"])
        assert code == 3
        assert "--sweep-journal" in capsys.readouterr().err

    def test_trace_of_missing_file_exits_3(self, tmp_path, capsys):
        code = main(["trace", str(tmp_path / "absent.jsonl")])
        assert code == 3
        assert "cannot read" in capsys.readouterr().err

    def test_trace_of_malformed_file_exits_3(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("{not json\n")
        code = main(["trace", str(path)])
        assert code == 3
        assert "error:" in capsys.readouterr().err

    def test_resume_sweep_from_missing_journal_exits_6(self, tmp_path,
                                                       capsys):
        code = main(["compare", "--workload", "MIX 01", "--preset", "tiny",
                     "--epochs", "1",
                     "--sweep-journal", str(tmp_path / "absent.jsonl"),
                     "--resume-sweep"])
        assert code == 6
        assert "no sweep journal" in capsys.readouterr().err

    def test_exit_codes_are_distinct(self):
        from repro.resilience.errors import (
            CheckpointError, ConfigError, FaultInjectedError, ReproError,
            SweepInterrupted, TopologyInvariantError, WorkerCrashError)
        codes = [cls.exit_code for cls in
                 (ReproError, ConfigError, TopologyInvariantError,
                  FaultInjectedError, CheckpointError, WorkerCrashError,
                  SweepInterrupted)]
        assert len(set(codes)) == len(codes)
        assert all(code != 0 for code in codes)


class TestRendering:
    def test_topology_brackets_groups(self):
        text = render_topology([(0, 1), (2, 3)], [(0, 1, 2, 3)], cores=4)
        assert text.count("[") == 3
        assert "L2" in text and "L3" in text

    def test_series_sparkline(self):
        text = render_series([1.0, 2.0, 3.0], label="x ")
        assert text.startswith("x ")
        assert "1.000" in text and "3.000" in text

    def test_empty_series(self):
        assert render_series([], label="y") == "y"
