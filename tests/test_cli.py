"""Tests for the CLI and text rendering helpers."""

import pytest

from repro.cli import _workload_from_name, build_parser, main
from repro.render import render_series, render_topology


class TestWorkloadParsing:
    def test_mix_names(self):
        assert _workload_from_name("MIX 03").name == "MIX 03"
        assert _workload_from_name("mix 03").name == "MIX 03"

    def test_parsec_name(self):
        workload = _workload_from_name("dedup")
        assert workload.shared_address_space

    def test_alone(self):
        workload = _workload_from_name("alone:gcc")
        assert workload.active_cores == [0]

    def test_unknown_exits(self):
        with pytest.raises(SystemExit):
            _workload_from_name("quake3")


class TestCommands:
    def test_table3(self, capsys):
        assert main(["table3", "--preset", "tiny"]) == 0
        assert "superscalar" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "160.5" in capsys.readouterr().out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MIX 12" in out
        assert "morphcache" in out

    def test_run_alone(self, capsys):
        code = main(["run", "--workload", "alone:gamess", "--preset", "tiny",
                     "--epochs", "1", "--scheme", "(16:1:1)"])
        assert code == 0
        assert "mean throughput" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRendering:
    def test_topology_brackets_groups(self):
        text = render_topology([(0, 1), (2, 3)], [(0, 1, 2, 3)], cores=4)
        assert text.count("[") == 3
        assert "L2" in text and "L3" in text

    def test_series_sparkline(self):
        text = render_series([1.0, 2.0, 3.0], label="x ")
        assert text.startswith("x ")
        assert "1.000" in text and "3.000" in text

    def test_empty_series(self):
        assert render_series([], label="y") == "y"
