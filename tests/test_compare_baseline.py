"""Unit tests for the bench-baseline comparator, focused on ``--gate``.

The gate is what turns the bench-smoke CI job from advisory into a
ratchet: the batch engine's merged/shared speedups must stay within the
threshold of the committed ``BENCH_batch.json``.  These tests pin the exit
codes — a gate that stops failing (or a warning that starts failing) is a
CI-semantics regression the benchmark suite itself cannot catch.
"""

import importlib.util
import json
import pathlib

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_baseline",
    pathlib.Path(__file__).parent.parent / "benchmarks"
    / "compare_baseline.py")
compare_baseline = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_baseline)


BASELINE = {
    "config": "SMALL",
    "speedup": {"merged": 2.4, "shared": 2.5},
    "scaled64": {"speedup": {"merged64": 2.2}},
    "event": {"merged": 90000.0},
}


def _write(tmp_path, name, tree):
    path = tmp_path / name
    path.write_text(json.dumps(tree))
    return path


def _run(tmp_path, fresh, *extra):
    base = _write(tmp_path, "baseline.json", BASELINE)
    got = _write(tmp_path, "fresh.json", fresh)
    return compare_baseline.main(["compare_baseline", str(base), str(got),
                                  *extra])


def test_within_threshold_exits_zero(tmp_path):
    assert _run(tmp_path, BASELINE,
                "--gate", "speedup.merged", "--gate", "speedup.shared") == 0


def test_ungated_regression_warns_but_exits_zero(tmp_path, capsys):
    fresh = json.loads(json.dumps(BASELINE))
    fresh["event"]["merged"] = 1000.0  # -99%: noisy-runner territory
    assert _run(tmp_path, fresh, "--gate", "speedup.merged") == 0
    assert "::warning" in capsys.readouterr().out


def test_gated_regression_fails(tmp_path, capsys):
    fresh = json.loads(json.dumps(BASELINE))
    fresh["speedup"]["merged"] = 1.0  # >20% below 2.4
    assert _run(tmp_path, fresh, "--gate", "speedup.merged") == 1
    assert "::error" in capsys.readouterr().out


def test_gate_tolerates_drop_within_threshold(tmp_path):
    fresh = json.loads(json.dumps(BASELINE))
    fresh["speedup"]["merged"] = 2.0  # -17% < 20% threshold
    assert _run(tmp_path, fresh, "--gate", "speedup.merged") == 0


def test_gated_leaf_missing_from_fresh_fails(tmp_path, capsys):
    fresh = json.loads(json.dumps(BASELINE))
    del fresh["speedup"]["shared"]  # e.g. a renamed topology key
    assert _run(tmp_path, fresh, "--gate", "speedup.shared") == 1
    assert "missing from fresh" in capsys.readouterr().out


def test_gated_leaf_missing_from_baseline_fails(tmp_path, capsys):
    assert _run(tmp_path, BASELINE, "--gate", "speedup.typo") == 1
    assert "not in committed baseline" in capsys.readouterr().out


def test_nested_gate_path_works(tmp_path):
    fresh = json.loads(json.dumps(BASELINE))
    fresh["scaled64"]["speedup"]["merged64"] = 1.0
    assert _run(tmp_path, fresh, "--gate", "scaled64.speedup.merged64") == 1


def test_missing_baseline_file_skips_even_with_gates(tmp_path):
    # First run on a branch that never committed a baseline: nothing to
    # ratchet against, so the gate cannot fire.
    got = _write(tmp_path, "fresh.json", BASELINE)
    assert compare_baseline.main(
        ["compare_baseline", str(tmp_path / "absent.json"), str(got),
         "--gate", "speedup.merged"]) == 0
