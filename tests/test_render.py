"""Tests for the text renderers (repro.render).

``render_topology`` draws the topology pictures used by the CLI, the
timeline renderer and several examples; ``render_series`` draws the
throughput sparklines.  Both were previously covered only incidentally via
the CLI tests — this file pins their layout rules directly.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.render import render_series, render_topology

BLOCKS = "▁▂▃▄▅▆▇█"


class TestRenderTopology:
    def test_all_private(self):
        text = render_topology([(0,), (1,)], [(0,), (1,)], cores=2)
        assert text.splitlines() == [
            "cores 0   1",
            "L2    [0] [1]",
            "L3    [0] [1]",
        ]

    def test_merged_groups_bracket_their_span(self):
        text = render_topology([(0, 1), (2, 3)], [(0, 1, 2, 3)], cores=4)
        lines = text.splitlines()
        assert lines[1] == "L2    [0  1 ] [2  3 ]"
        assert lines[2] == "L3    [0  1   2   3 ]"

    def test_group_order_does_not_matter(self):
        # Groups are sorted before drawing: (3, 2) renders like (2, 3).
        forwards = render_topology([(0, 1), (2, 3)], [(0, 1, 2, 3)], cores=4)
        backwards = render_topology([(1, 0), (3, 2)], [(3, 1, 2, 0)], cores=4)
        assert forwards == backwards

    def test_asymmetric_levels(self):
        text = render_topology([(0,), (1,), (2, 3)],
                               [(0, 1), (2,), (3,)], cores=4)
        lines = text.splitlines()
        assert lines[1] == "L2    [0] [1] [2  3 ]"
        assert lines[2] == "L3    [0  1 ] [2] [3]"

    def test_sixteen_core_header(self):
        text = render_topology([tuple(range(16))], [tuple(range(16))])
        header = text.splitlines()[0]
        assert header.startswith("cores 0   1")
        assert header.endswith("15")

    def test_every_core_appears_once_per_level(self):
        text = render_topology([(0, 1, 2, 3)], [(0,), (1,), (2, 3)], cores=4)
        for line in text.splitlines()[1:]:
            body = line[6:]  # drop the "L2    " / "L3    " prefix
            for core in range(4):
                assert body.count(str(core)) == 1


class TestRenderSeries:
    def test_empty_returns_just_the_label(self):
        assert render_series([], label="y ") == "y "

    def test_extremes_map_to_extreme_blocks(self):
        bar = render_series([1.0, 2.0, 3.0])
        assert bar[0] == BLOCKS[0]
        assert bar[2] == BLOCKS[-1]

    def test_range_annotation(self):
        assert render_series([1.0, 2.0]).endswith("[1.000 .. 2.000]")

    def test_constant_series_renders_flat(self):
        bar = render_series([2.5, 2.5, 2.5])
        assert bar.startswith(BLOCKS[0] * 3)
        assert "[2.500 .. 2.500]" in bar

    def test_label_prefixes(self):
        assert render_series([1.0], label="trend ").startswith("trend ")

    @given(values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=30))
    def test_one_block_per_value_all_valid(self, values):
        out = render_series(values)
        bar = out.split("  [")[0]
        assert len(bar) == len(values)
        assert all(ch in BLOCKS for ch in bar)

    @given(values=st.lists(
        st.floats(min_value=0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=2, max_size=30))
    def test_monotone_in_value(self, values):
        # A larger value never renders as a shorter block than a smaller
        # one in the same series.
        bar = render_series(values).split("  [")[0]
        heights = [BLOCKS.index(ch) for ch in bar]
        for (va, ha) in zip(values, heights):
            for (vb, hb) in zip(values, heights):
                if va < vb:
                    assert ha <= hb
