"""Cross-module property-based tests on system invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.hierarchy import CacheHierarchy
from repro.config import TINY
from repro.core.acfv import Acfv, AcfvBank
from repro.core.controller import MorphCacheController
from repro.core.topology import TopologyState, parse_config_label
from repro.interconnect.arbiter import ArbiterTree
from repro.metrics import fair_speedup, weighted_speedup
from repro.resilience.faults import FAULT_KINDS, FaultInjector, FaultPlan
from repro.resilience.guards import validate_topology
from repro.sim.experiment import run_scheme
from repro.sim.workload import Workload
from repro.workloads import mix_by_name


@st.composite
def buddy_partitions(draw, n=8):
    """Random valid buddy partition of n slices."""
    groups = [(i,) for i in range(n)]
    for _ in range(draw(st.integers(0, 6))):
        candidates = [
            (a, b)
            for a in groups for b in groups
            if a != b and len(a) == len(b) and (min(a) ^ len(a)) == min(b)
        ]
        if not candidates:
            break
        a, b = draw(st.sampled_from(candidates))
        groups.remove(a)
        groups.remove(b)
        groups.append(tuple(sorted(a + b)))
    return sorted(groups, key=min)


@given(buddy_partitions())
@settings(max_examples=30, deadline=None)
def test_arbiter_tree_accepts_every_buddy_partition(groups):
    """Any buddy partition is a legal arbiter configuration, and exactly
    one slice per multi-slice domain wins arbitration."""
    tree = ArbiterTree(8)
    tree.configure_groups(groups)
    acquired = tree.resolve([True] * 8)
    for group in groups:
        winners = sum(acquired[s] for s in group)
        assert winners == (1 if len(group) > 1 else 0)


@given(buddy_partitions(), buddy_partitions())
@settings(max_examples=30, deadline=None)
def test_hierarchy_rejects_or_accepts_partitions_consistently(l2, l3):
    """set_topology either raises (inclusion violation) or installs both
    partitions exactly."""
    config = TINY.with_(cores=8)
    hierarchy = CacheHierarchy(config)
    try:
        hierarchy.set_topology(l2, l3)
    except ValueError:
        return
    assert sorted(hierarchy.l2_groups, key=min) == l2
    assert sorted(hierarchy.l3_groups, key=min) == l3
    hierarchy.check_inclusion()


@given(st.sets(st.integers(0, 100_000), max_size=150),
       st.sets(st.integers(0, 100_000), max_size=150))
@settings(max_examples=40, deadline=None)
def test_acfv_overlap_bounds(tags_a, tags_b):
    """Overlap count never exceeds either population."""
    a, b = Acfv(128), Acfv(128)
    for tag in tags_a:
        a.set(tag)
    for tag in tags_b:
        b.set(tag)
    overlap = a.overlap_ones(b)
    assert overlap <= min(a.ones, b.ones)
    assert 0.0 <= a.overlap_fraction(b) <= 1.0


@given(st.lists(st.tuples(st.sampled_from(["l2", "l3"]), st.integers(0, 3),
                          st.integers(0, 10_000)),
                max_size=200))
@settings(max_examples=30, deadline=None)
def test_bank_utilization_bounded(events):
    """Group utilisation is always within [0, 100) on the saturating scale."""
    bank = AcfvBank(4, 32, 64)
    for level, core, tag in events:
        bank.on_hit(level, core, core, tag)
    for level, lines in (("l2", 64), ("l3", 256)):
        for core in range(4):
            utilisation = bank.group_utilization(level, (core,), lines)
            assert 0.0 <= utilisation < 100.0


@given(st.lists(st.floats(0.1, 4.0), min_size=1, max_size=16),
       st.lists(st.floats(0.1, 4.0), min_size=1, max_size=16))
@settings(max_examples=50, deadline=None)
def test_fair_speedup_never_exceeds_mean_speedup(ipcs, alone):
    """FS (harmonic mean) <= WS/N (arithmetic mean) for matched lengths."""
    n = min(len(ipcs), len(alone))
    ipcs, alone = ipcs[:n], alone[:n]
    ws = weighted_speedup(ipcs, alone)
    fs = fair_speedup(ipcs, alone)
    assert fs <= ws / n + 1e-9


@given(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4))
@settings(max_examples=40, deadline=None)
def test_config_labels_round_trip(x_exp, y_exp, z_exp):
    """(x:y:z) parse -> TopologyState -> config_label round-trips."""
    x, y, z = 1 << x_exp, 1 << y_exp, 1 << z_exp
    if x * y * z != 16:
        return
    label = f"({x}:{y}:{z})"
    l2_groups, l3_groups = parse_config_label(label)
    topo = TopologyState(16)
    topo.set_groups("l3", l3_groups)
    topo.set_groups("l2", l2_groups)
    assert topo.config_label() == label


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 800),
                          st.booleans()),
                min_size=100, max_size=300))
@settings(max_examples=10, deadline=None)
def test_controller_epochs_never_break_inclusion(accesses):
    """Whatever the controller decides, the hierarchy stays inclusive."""
    controller = MorphCacheController(TINY)
    hierarchy = CacheHierarchy(TINY)
    controller.attach(hierarchy)
    for chunk_start in range(0, len(accesses), 100):
        for core, line, write in accesses[chunk_start:chunk_start + 100]:
            hierarchy.access(core, line, write)
        controller.end_epoch()
        hierarchy.check_inclusion()
        controller.topology.check_inclusion()


@st.composite
def fault_plans(draw):
    """Random multi-rule fault plans over every fault kind."""
    rules = []
    for _ in range(draw(st.integers(1, 3))):
        kind = draw(st.sampled_from(FAULT_KINDS))
        rules.append(dict(
            kind=kind,
            every=draw(st.integers(1, 4)),
            start=draw(st.integers(0, 2)),
            duration=draw(st.integers(1, 3)),
            level=draw(st.sampled_from(["l2", "l3"])),
        ))
    seed = draw(st.integers(0, 1_000))
    from repro.resilience.faults import FaultRule
    return FaultPlan(rules=tuple(FaultRule(**r) for r in rules), seed=seed)


@given(fault_plans(),
       st.lists(st.tuples(st.integers(0, 15), st.integers(0, 800),
                          st.booleans()),
                min_size=100, max_size=200))
@settings(max_examples=10, deadline=None)
def test_faulted_hierarchy_only_ever_sees_valid_topologies(plan, accesses):
    """Under any fault plan, no invalid grouping reaches the hierarchy and
    inclusion holds at every epoch boundary."""
    from repro.cpu.cmp import CmpSystem
    system = CmpSystem(TINY)
    injector = FaultInjector(plan)
    for epoch in range(4):
        injector.begin_epoch(epoch, system)
        for core, line, write in accesses:
            system.access(core, line, write)
        system.end_epoch()
        validate_topology(TINY.cores, system.hierarchy.l2_groups,
                          system.hierarchy.l3_groups)
        system.hierarchy.check_inclusion()


@given(st.integers(0, 50), st.integers(2, 5))
@settings(max_examples=5, deadline=None)
def test_resume_reproduces_exact_epoch_series(tmp_path_factory, seed, epochs):
    """A checkpointed-and-resumed run equals the uninterrupted run exactly."""
    config = TINY.with_(accesses_per_core_per_epoch=150)
    workload = Workload.from_mix(mix_by_name("MIX 06"))
    path = tmp_path_factory.mktemp("ck") / "ck.json"
    reference = run_scheme("morphcache", workload, config, seed=seed,
                           epochs=epochs)
    run_scheme("morphcache", workload, config, seed=seed, epochs=epochs,
               checkpoint_path=path, checkpoint_every=2)
    resumed = run_scheme("morphcache", workload, config, seed=seed,
                         epochs=epochs, checkpoint_path=path, resume=True)
    assert [(e.epoch, e.ipcs, e.misses, e.topology_label)
            for e in resumed.epochs] == \
           [(e.epoch, e.ipcs, e.misses, e.topology_label)
            for e in reference.epochs]
