"""Shared fixtures for the MorphCache reproduction test suite."""

from __future__ import annotations

import pytest

from repro.config import TINY, MachineConfig, MorphConfig
from repro.sim.workload import Workload
from repro.workloads import mix_by_name, parsec_benchmark


@pytest.fixture
def tiny_config() -> MachineConfig:
    """The 1/128-scale machine used throughout the unit tests."""
    return TINY


@pytest.fixture
def tiny_fast(tiny_config) -> MachineConfig:
    """Tiny machine with a very short epoch for integration tests."""
    return tiny_config.with_(accesses_per_core_per_epoch=300, epochs=2)


@pytest.fixture
def mix_workload() -> Workload:
    """A representative multiprogrammed workload (MIX 08, all four classes)."""
    return Workload.from_mix(mix_by_name("MIX 08"))


@pytest.fixture
def parsec_workload() -> Workload:
    """A representative multithreaded workload."""
    return Workload.from_parsec(parsec_benchmark("dedup"))


@pytest.fixture
def morph_config() -> MorphConfig:
    return MorphConfig()
