"""Segmented-bus energy model (the paper's stated future work).

The concluding remarks: "we believe that the segmented-bus architecture
would lead to reduced power consumption in MorphCache, [but] we would like
to quantify this improvement in the future."  This module quantifies it
with a standard switched-capacitance model:

- driving a bus transaction charges the wire capacitance of every segment
  in the *electrical domain* the transaction traverses — the whole point of
  segmentation is that disabled switches shrink that domain;
- each arbiter consumed by the request/grant handshake adds a fixed logic
  energy (a slice's request climbs only the levels its sharing degree
  needs);
- a monolithic shared bus is the degenerate case: every transaction drives
  the full bus length and the full arbiter tree.

Capacitance and energy constants are per-mm wire values typical for 45 nm
global interconnect; they cancel in the relative comparison the model is
for (segmented vs monolithic, and between MorphCache topologies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.interconnect.timing import VCC_VOLTS

#: Wire capacitance per millimetre of 45 nm global interconnect.
WIRE_CAPACITANCE_PF_PER_MM = 0.2

#: Energy per arbiter traversal (request latch + round-robin + grant).
ARBITER_ENERGY_PJ = 0.05


@dataclass(frozen=True)
class BusEnergyReport:
    """Energy accounting of one configuration, in picojoules/transaction."""

    name: str
    mean_domain_span_mm: float
    mean_arbiter_levels: float
    wire_energy_pj: float
    arbiter_energy_pj: float

    @property
    def total_pj(self) -> float:
        return self.wire_energy_pj + self.arbiter_energy_pj


class SegmentedBusPowerModel:
    """Per-transaction energy of a segmented bus under a slice grouping."""

    def __init__(self, n_slices: int = 16, segment_length_mm: float = 2.5,
                 vcc: float = VCC_VOLTS) -> None:
        if n_slices <= 0 or segment_length_mm <= 0 or vcc <= 0:
            raise ValueError("n_slices, segment_length_mm, vcc must be positive")
        self.n_slices = n_slices
        self.segment_length_mm = segment_length_mm
        self.vcc = vcc

    def _wire_energy(self, span_segments: int) -> float:
        """0.5 * C * V^2 for the wire length of ``span_segments`` segments."""
        capacitance = (span_segments * self.segment_length_mm
                       * WIRE_CAPACITANCE_PF_PER_MM)
        return 0.5 * capacitance * self.vcc ** 2

    def transaction_energy(self, group: Sequence[int]) -> float:
        """Energy of one transaction inside ``group``'s electrical domain."""
        span = max(group) - min(group) + 1
        levels = max(1, len(group).bit_length() - 1) if len(group) > 1 else 0
        arbiters = sum(1 for _ in range(levels))
        return self._wire_energy(span) + arbiters * ARBITER_ENERGY_PJ

    def report(self, groups: Sequence[Tuple[int, ...]],
               traffic: Dict[Tuple[int, ...], int],
               name: str = "segmented") -> BusEnergyReport:
        """Aggregate energy for per-group transaction counts.

        Args:
            groups: the current slice grouping.
            traffic: transactions observed per group (groups absent from
                the mapping contribute nothing).
        """
        total_transactions = sum(traffic.get(tuple(g), 0) for g in groups)
        if total_transactions == 0:
            return BusEnergyReport(name, 0.0, 0.0, 0.0, 0.0)
        wire = 0.0
        arbiter = 0.0
        span_weighted = 0.0
        levels_weighted = 0.0
        for group in groups:
            count = traffic.get(tuple(group), 0)
            if count == 0:
                continue
            span = max(group) - min(group) + 1
            levels = max(0, len(group).bit_length() - 1)
            wire += count * self._wire_energy(span)
            arbiter += count * levels * ARBITER_ENERGY_PJ
            span_weighted += count * span * self.segment_length_mm
            levels_weighted += count * levels
        return BusEnergyReport(
            name=name,
            mean_domain_span_mm=span_weighted / total_transactions,
            mean_arbiter_levels=levels_weighted / total_transactions,
            wire_energy_pj=wire / total_transactions,
            arbiter_energy_pj=arbiter / total_transactions,
        )

    def monolithic_report(self, total_transactions: int) -> BusEnergyReport:
        """The non-segmented reference: every transaction drives everything."""
        full_span = self.n_slices
        levels = max(0, self.n_slices.bit_length() - 1)
        return BusEnergyReport(
            name="monolithic",
            mean_domain_span_mm=full_span * self.segment_length_mm,
            mean_arbiter_levels=float(levels),
            wire_energy_pj=self._wire_energy(full_span),
            arbiter_energy_pj=levels * ARBITER_ENERGY_PJ,
        )

    def savings_vs_monolithic(self, groups: Sequence[Tuple[int, ...]],
                              traffic: Dict[Tuple[int, ...], int]) -> float:
        """Fractional energy saved by segmentation for the given traffic."""
        if not traffic or sum(traffic.values()) == 0:
            return 0.0
        segmented = self.report(groups, traffic)
        monolithic = self.monolithic_report(sum(traffic.values()))
        if monolithic.total_pj == 0:
            return 0.0
        return 1.0 - segmented.total_pj / monolithic.total_pj


def traffic_from_hierarchy_stats(hierarchy,
                                 level: str = "l2") -> Dict[Tuple[int, ...], int]:
    """Estimate per-group bus transactions from hierarchy statistics.

    Remote hits into merged groups are the events that ride the segmented
    bus at that level; private groups generate none.
    """
    traffic: Dict[Tuple[int, ...], int] = {}
    groups = hierarchy.l2_groups if level == "l2" else hierarchy.l3_groups
    for group in groups:
        if len(group) < 2:
            continue
        remote = sum(
            (hierarchy.stats.cores[c].l2_remote_hits if level == "l2"
             else hierarchy.stats.cores[c].l3_remote_hits)
            for c in group
        )
        traffic[tuple(group)] = remote
    return traffic
