"""Arbiter area/delay model reproducing Tables 1 and 2 (Section 3.2).

The paper synthesised the arbiter in 45 nm and reports, per bus:

======================== ======================= =======================
quantity                 L2 bus (3-level)        L3 bus (4-level)
======================== ======================= =======================
arbiters                 7 per side              15
total arbiter area       160.5 um^2              343.9 um^2
request delay            0.31 ns wire + 0.38 ns  0.4 ns wire + 0.49 ns
grant delay              0.32 ns logic + 0.31 ns 0.32 ns logic + 0.4 ns
======================== ======================= =======================

This module models that arithmetic explicitly:

- area: a per-arbiter constant (both rows of Table 2 give the same
  22.93 um^2 per arbiter — 160.5/7 = 343.9/15);
- request logic delay: a latch overhead plus a per-level arbitration term,
  solved from the two table rows (base + 3x = 0.38, base + 4x = 0.49 gives
  x = 0.11 ns/level, base = 0.05 ns);
- grant logic delay: a fixed 0.32 ns (the grant fans out combinationally);
- wire delay: path length x the Table 1 wire parameter (0.038 ns/mm), with
  path lengths taken either from the paper (calibrated mode) or computed
  from the Figure 12 floorplan geometry.

The max frequency and the 15-cycle (10-cycle pipelined) CPU overhead of the
bus transaction follow from these delays exactly as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.interconnect.floorplan import Floorplan

#: Table 1 parameters.
TECHNOLOGY_NM = 45
WIRE_NS_PER_MM = 0.038
VCC_VOLTS = 1.05

#: Calibrated synthesis constants (see module docstring).
AREA_PER_ARBITER_UM2 = 160.5 / 7.0
REQUEST_LOGIC_BASE_NS = 0.05
REQUEST_LOGIC_PER_LEVEL_NS = 0.11
GRANT_LOGIC_NS = 0.32

#: Paper wire-path lengths (back-derived from Table 2's wire delays).
PAPER_L2_WIRE_MM = 0.31 / WIRE_NS_PER_MM
PAPER_L3_WIRE_MM = 0.40 / WIRE_NS_PER_MM

#: Bus protocol: request + grant (2 cycles) then a 1-cycle 64-byte transfer.
BUS_TRANSACTION_CYCLES = 3
PIPELINED_TRANSACTION_CYCLES = 2


@dataclass(frozen=True)
class BusTimingSummary:
    """One column of Table 2 plus the derived frequency/overhead figures."""

    name: str
    levels: int
    n_arbiters: int
    total_area_um2: float
    request_wire_ns: float
    request_logic_ns: float
    grant_logic_ns: float
    grant_wire_ns: float

    @property
    def request_delay_ns(self) -> float:
        return self.request_wire_ns + self.request_logic_ns

    @property
    def grant_delay_ns(self) -> float:
        return self.grant_logic_ns + self.grant_wire_ns

    @property
    def critical_path_ns(self) -> float:
        return max(self.request_delay_ns, self.grant_delay_ns)

    @property
    def max_frequency_ghz(self) -> float:
        return 1.0 / self.critical_path_ns


class ArbiterTimingModel:
    """Computes Table 2 and the segmented-bus overhead in CPU cycles.

    Args:
        floorplan: geometry to derive wire lengths from.  When
            ``use_paper_wire_lengths`` is True (default) the wire delays are
            the paper's own (the floorplan-derived ones differ by < 15 %,
            see EXPERIMENTS.md); set it False to use pure geometry.
        bus_ghz: conservative bus clock (the paper rounds 1.12 GHz down
            to 1 GHz).
        cpu_ghz: the 5 GHz processor clock of Section 3.2.
    """

    def __init__(
        self,
        floorplan: Optional[Floorplan] = None,
        use_paper_wire_lengths: bool = True,
        bus_ghz: float = 1.0,
        cpu_ghz: float = 5.0,
    ) -> None:
        if bus_ghz <= 0 or cpu_ghz <= 0 or cpu_ghz < bus_ghz:
            raise ValueError("need 0 < bus_ghz <= cpu_ghz")
        self.floorplan = floorplan or Floorplan()
        self.use_paper_wire_lengths = use_paper_wire_lengths
        self.bus_ghz = bus_ghz
        self.cpu_ghz = cpu_ghz

    # -- Table 2 -----------------------------------------------------------

    def _summary(self, name: str, levels: int, n_arbiters: int,
                 wire_mm: float) -> BusTimingSummary:
        wire_ns = wire_mm * WIRE_NS_PER_MM
        logic_ns = REQUEST_LOGIC_BASE_NS + levels * REQUEST_LOGIC_PER_LEVEL_NS
        return BusTimingSummary(
            name=name,
            levels=levels,
            n_arbiters=n_arbiters,
            total_area_um2=n_arbiters * AREA_PER_ARBITER_UM2,
            request_wire_ns=wire_ns,
            request_logic_ns=logic_ns,
            grant_logic_ns=GRANT_LOGIC_NS,
            grant_wire_ns=wire_ns,
        )

    def l2_bus(self) -> BusTimingSummary:
        """The L2 segmented bus column of Table 2 (per chip side)."""
        wire = (PAPER_L2_WIRE_MM if self.use_paper_wire_lengths
                else self.floorplan.l2_max_wire_mm())
        return self._summary(
            "L2 Segmented Bus (3-level)",
            levels=self.floorplan.l2_levels,
            n_arbiters=self.floorplan.l2_arbiters_per_side,
            wire_mm=wire,
        )

    def l3_bus(self) -> BusTimingSummary:
        """The L3 segmented bus column of Table 2."""
        wire = (PAPER_L3_WIRE_MM if self.use_paper_wire_lengths
                else self.floorplan.l3_max_wire_mm())
        return self._summary(
            "L3 Segmented Bus (4-level)",
            levels=self.floorplan.l3_levels,
            n_arbiters=self.floorplan.l3_arbiters,
            wire_mm=wire,
        )

    # -- derived machine parameters -----------------------------------------

    def max_frequency_ghz(self) -> float:
        """Highest bus frequency the slowest path supports (paper: 1.12 GHz)."""
        return min(self.l2_bus().max_frequency_ghz, self.l3_bus().max_frequency_ghz)

    def transaction_cpu_cycles(self, pipelined: bool = False) -> int:
        """CPU-cycle overhead of one bus transaction (15, or 10 pipelined)."""
        bus_cycles = (PIPELINED_TRANSACTION_CYCLES if pipelined
                      else BUS_TRANSACTION_CYCLES)
        return math.ceil(bus_cycles * self.cpu_ghz / self.bus_ghz)

    def format_table2(self) -> str:
        """Render the model's Table 2 next to the paper's reference values."""
        l2, l3 = self.l2_bus(), self.l3_bus()
        rows = [
            ("No. of arbiters", f"{l2.n_arbiters} per side", f"{l3.n_arbiters}"),
            ("Total arbiter area",
             f"{l2.total_area_um2:.1f} um^2", f"{l3.total_area_um2:.1f} um^2"),
            ("Total request delay",
             f"{l2.request_wire_ns:.2f} ns (wire) + {l2.request_logic_ns:.2f} ns (logic)",
             f"{l3.request_wire_ns:.2f} ns (wire) + {l3.request_logic_ns:.2f} ns (logic)"),
            ("Total grant delay",
             f"{l2.grant_logic_ns:.2f} ns (logic) + {l2.grant_wire_ns:.2f} ns (wire)",
             f"{l3.grant_logic_ns:.2f} ns (logic) + {l3.grant_wire_ns:.2f} ns (wire)"),
            ("Max frequency", f"{l2.max_frequency_ghz:.2f} GHz",
             f"{l3.max_frequency_ghz:.2f} GHz"),
        ]
        header = f"{'':24}  {l2.name:42}  {l3.name}"
        lines = [header]
        for name, a, b in rows:
            lines.append(f"{name:24}  {a:42}  {b}")
        lines.append(
            f"{'Bus transaction':24}  "
            f"{self.transaction_cpu_cycles()} CPU cycles "
            f"({self.transaction_cpu_cycles(pipelined=True)} pipelined) "
            f"at {self.cpu_ghz:g} GHz core / {self.bus_ghz:g} GHz bus"
        )
        return "\n".join(lines)
