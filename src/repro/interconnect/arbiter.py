"""Hierarchical segmented-bus arbitration (Section 3.2, Figures 9-11).

The arbiter fabric is a binary tree of identical 2-input arbiters.  Each
arbiter latches its two request inputs, grants one of them round-robin
(``Lastgnt`` remembers the loser so it wins next time), and — when its
``Fwdreq`` input says the sharing domain extends past it — forwards the
request to its parent.

A cache slice sharing among ``2^k`` slices is gated by the ``k`` lowest
arbiter levels: its ``BusAcq`` is the AND of the grants from those levels
(Figure 11's Share signals).  Arbiters above the sharing domain never see
the request, which is what lets disjoint domains run parallel transactions.

The model is cycle-accurate at bus-clock granularity with the paper's
protocol: requests latched in cycle t are granted in cycle t+2, and the data
transfer occupies cycle t+3 (3-cycle transactions at 1 GHz).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple


class Arbiter:
    """One 2-input round-robin arbiter (Figure 10)."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.last_grant = 1  # so input 0 wins the first tie
        self.req = [False, False]
        self.forward = False
        """Fwdreq: True when the sharing domain extends above this arbiter."""

    def latch(self, req0: bool, req1: bool) -> None:
        """Latch the request inputs (the D flip-flops of Figure 10)."""
        self.req = [req0, req1]

    @property
    def req_out(self) -> bool:
        """Request forwarded to the parent arbiter when Fwdreq is set."""
        return self.forward and (self.req[0] or self.req[1])

    def arbitrate(self) -> Tuple[bool, bool]:
        """Produce (Gnt0, Gnt1) for the latched requests, round-robin."""
        r0, r1 = self.req
        if r0 and r1:
            winner = 1 - self.last_grant
        elif r0:
            winner = 0
        elif r1:
            winner = 1
        else:
            return False, False
        self.last_grant = winner
        return winner == 0, winner == 1


class ArbiterTree:
    """A full arbiter hierarchy over ``n`` cache slices (Figure 9).

    Levels are numbered from 1 (leaf arbiters, one per slice pair) to
    ``log2(n)`` (root).  ``share_level[s]`` gives the number of levels slice
    ``s`` must be granted by: a slice in a ``2^k``-shared group has share
    level ``k`` (0 = private, no bus needed).
    """

    def __init__(self, n_slices: int) -> None:
        if n_slices < 2 or n_slices & (n_slices - 1):
            raise ValueError(f"n_slices must be a power of two >= 2, got {n_slices}")
        self.n_slices = n_slices
        self.levels = n_slices.bit_length() - 1
        self.arbiters: List[List[Arbiter]] = [
            [Arbiter(name=f"L{level + 1}A{i}") for i in range(n_slices >> (level + 1))]
            for level in range(self.levels)
        ]
        self.share_level = [0] * n_slices
        self.stalled: Set[int] = set()
        """Slice ports held in reset by a fault — they are never granted;
        healthy ports keep arbitrating normally."""

    @property
    def n_arbiters(self) -> int:
        return sum(len(level) for level in self.arbiters)

    def stall_ports(self, slice_ids: Sequence[int]) -> None:
        """Fault hook: stall the given slice ports (empty = clear all)."""
        for slice_id in slice_ids:
            if not 0 <= slice_id < self.n_slices:
                raise ValueError(f"slice {slice_id} out of range")
        self.stalled = set(slice_ids)

    # -- configuration -----------------------------------------------------

    def configure_groups(self, groups: Sequence[Tuple[int, ...]]) -> None:
        """Derive share levels and Fwdreq flags from a slice grouping.

        Groups must be aligned power-of-two runs (the buddy structure of the
        default MorphCache policy).
        """
        seen = sorted(s for g in groups for s in g)
        if seen != list(range(self.n_slices)):
            raise ValueError(f"groups {groups} do not partition the slices")
        for group in groups:
            size = len(group)
            if size & (size - 1):
                raise ValueError(f"group {group} size must be a power of two")
            lo = min(group)
            if lo % size or tuple(sorted(group)) != tuple(range(lo, lo + size)):
                raise ValueError(f"group {group} must be an aligned contiguous run")
            level = size.bit_length() - 1
            for slice_id in group:
                self.share_level[slice_id] = level
        # An arbiter forwards requests upward when the sharing domain of the
        # slices below it extends beyond it.
        for level_index, level in enumerate(self.arbiters):
            span = 1 << (level_index + 1)
            for i, arbiter in enumerate(level):
                slices_below = range(i * span, (i + 1) * span)
                arbiter.forward = any(
                    self.share_level[s] > level_index + 1 for s in slices_below
                )

    # -- combinational grant resolution (one arbitration round) -------------

    def resolve(self, requests: Sequence[bool]) -> List[bool]:
        """One arbitration round: which requesting slices get BusAcq.

        ``requests[s]`` is slice ``s``'s bus request.  Returns per-slice
        BusAcq.  Private slices (share level 0) never request the bus.
        """
        if len(requests) != self.n_slices:
            raise ValueError("requests must have one entry per slice")
        effective = [bool(requests[s]) and self.share_level[s] > 0
                     and s not in self.stalled
                     for s in range(self.n_slices)]

        # Propagate requests up level by level, latching at each arbiter.
        level_inputs = effective
        for level in self.arbiters:
            next_inputs: List[bool] = []
            for i, arbiter in enumerate(level):
                arbiter.latch(level_inputs[2 * i], level_inputs[2 * i + 1])
                next_inputs.append(arbiter.req_out)
            level_inputs = next_inputs

        # Grants: an arbiter participates only for slices whose share level
        # reaches it; a grant at level k selects one of the two 2^(k-1)-slice
        # halves below.
        grants: List[List[Tuple[bool, bool]]] = []
        for level in self.arbiters:
            grants.append([arbiter.arbitrate() for arbiter in level])

        bus_acq: List[bool] = []
        for s in range(self.n_slices):
            if not effective[s]:
                bus_acq.append(False)
                continue
            acquired = True
            for level_index in range(self.share_level[s]):
                arbiter_index = s >> (level_index + 1)
                side = (s >> level_index) & 1
                if not grants[level_index][arbiter_index][side]:
                    acquired = False
                    break
            bus_acq.append(acquired)
        return bus_acq

    # -- cycle-level transaction simulation ---------------------------------

    def simulate_transactions(
        self, arrivals: Dict[int, int], max_cycles: int = 10_000
    ) -> Dict[int, Tuple[int, int]]:
        """Run the request/grant/transfer protocol to completion.

        Args:
            arrivals: slice id -> bus cycle its request is raised.

        Returns:
            slice id -> (grant_cycle, transfer_complete_cycle).  Per the
            paper, grant arrives 2 cycles after the request and the block
            transfer takes 1 further cycle; a granted transaction holds its
            electrical domain during its transfer cycle, so competing slices
            in the same domain serialise.
        """
        pending = dict(arrivals)
        done: Dict[int, Tuple[int, int]] = {}
        busy_until: Dict[int, int] = {}  # domain root key -> cycle it frees
        cycle = 0
        while pending and cycle < max_cycles:
            requests = [False] * self.n_slices
            for slice_id, arrival in pending.items():
                if arrival <= cycle:
                    domain = self._domain_key(slice_id)
                    if busy_until.get(domain, -1) <= cycle:
                        requests[slice_id] = True
            acq = self.resolve(requests)
            for slice_id, got in enumerate(acq):
                if got:
                    grant_cycle = cycle + 2
                    transfer_done = grant_cycle + 1
                    done[slice_id] = (grant_cycle, transfer_done)
                    busy_until[self._domain_key(slice_id)] = transfer_done
                    del pending[slice_id]
            cycle += 1
        if pending:
            raise RuntimeError(f"transactions never completed: {sorted(pending)}")
        return done

    def _domain_key(self, slice_id: int) -> int:
        """Identify the sharing domain of a slice (its aligned group base)."""
        size = 1 << self.share_level[slice_id]
        return slice_id - (slice_id % size)
