"""Segmented bus model (Section 3.1, Figures 7 and 8).

A segmented bus is a shared bus composed of ``n`` segments, one per
component, with ``n - 1`` switches between adjacent segments.  Enabling a
switch joins its two neighbouring segments into one electrical domain;
disabling it isolates them so the two sides can carry independent
transactions simultaneously.

The bus is configured from a slice grouping: switches interior to a group
are enabled, switches on group boundaries disabled.  Groups must therefore
be contiguous runs of slice ids — which is exactly the paper's
neighbours-only sharing constraint; the Section 5.5 extension emulates
non-contiguous groups by enabling the spanning superset of switches and
tagging messages with logical group ids.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from repro.obs import metrics as obs_metrics


class SegmentedBus:
    """A bus of ``n`` segments and ``n - 1`` inter-segment switches."""

    def __init__(self, n_segments: int) -> None:
        if n_segments <= 0:
            raise ValueError("need at least one segment")
        self.n_segments = n_segments
        self._switch_enabled = [False] * (n_segments - 1)
        self.dropped: Set[int] = set()
        """Segments whose grants a fault silently drops this round: the
        requester is skipped and its domain stays free for the next one."""

    # -- configuration -----------------------------------------------------

    def configure_groups(self, groups: Sequence[Tuple[int, ...]]) -> None:
        """Set switches so each group forms one electrical domain.

        ``groups`` must partition ``range(n_segments)``.  Non-contiguous
        groups are supported by closing every switch across their span (the
        Section 5.5 physical-superset scheme): segments between two members
        of the same group are joined even if they belong to other groups,
        and those groups then share the physical fabric.
        """
        seen = sorted(s for g in groups for s in g)
        if seen != list(range(self.n_segments)):
            raise ValueError(f"groups {groups} do not partition the bus segments")
        self._switch_enabled = [False] * (self.n_segments - 1)
        for group in groups:
            lo, hi = min(group), max(group)
            for switch in range(lo, hi):
                self._switch_enabled[switch] = True
        reg = obs_metrics.REGISTRY
        if reg.enabled:
            reg.counter("repro_bus_configurations_total",
                        "Segmented-bus switch reconfigurations").inc()
            reg.gauge("repro_bus_domains",
                      "Isolated electrical domains on the bus"
                      ).set(len(self.domains()))

    def set_switch(self, index: int, enabled: bool) -> None:
        """Directly drive one switch (tests and the arbiter harness)."""
        self._switch_enabled[index] = enabled

    def switch_states(self) -> List[bool]:
        return list(self._switch_enabled)

    # -- electrical domains ------------------------------------------------

    def domains(self) -> List[Tuple[int, ...]]:
        """Maximal runs of segments joined by enabled switches."""
        result: List[Tuple[int, ...]] = []
        current = [0]
        for switch, enabled in enumerate(self._switch_enabled):
            if enabled:
                current.append(switch + 1)
            else:
                result.append(tuple(current))
                current = [switch + 1]
        result.append(tuple(current))
        return result

    def domain_of(self, segment: int) -> Tuple[int, ...]:
        """The electrical domain containing ``segment``."""
        for domain in self.domains():
            if segment in domain:
                return domain
        raise ValueError(f"segment {segment} out of range")

    def conflict(self, a: int, b: int) -> bool:
        """True if transactions from segments ``a`` and ``b`` share wires."""
        return self.domain_of(a) == self.domain_of(b)

    def drop_grants(self, segments: Sequence[int]) -> None:
        """Fault hook: silently drop grants to these segments (empty = heal)."""
        for segment in segments:
            if not 0 <= segment < self.n_segments:
                raise ValueError(f"segment {segment} out of range")
        self.dropped = set(segments)

    def grant_parallel(self, requesters: Sequence[int]) -> List[int]:
        """Grant one requester per electrical domain (lowest id wins).

        Models the property the paper highlights: a segmented bus supports
        multiple simultaneous transactions as long as they are in isolated
        segment groups.  Requesters in :attr:`dropped` lose their grant to
        the fault; their domain remains available to the next requester.
        """
        granted: List[int] = []
        busy: Set[Tuple[int, ...]] = set()
        dropped = 0
        for requester in sorted(requesters):
            if requester in self.dropped:
                dropped += 1
                continue
            domain = self.domain_of(requester)
            if domain not in busy:
                busy.add(domain)
                granted.append(requester)
        reg = obs_metrics.REGISTRY
        if reg.enabled and requesters:
            outcomes = reg.counter(
                "repro_bus_transactions_total",
                "Bus arbitration outcomes", labels=("outcome",))
            outcomes.labels(outcome="granted").inc(len(granted))
            denied = len(requesters) - len(granted) - dropped
            if denied:
                outcomes.labels(outcome="deferred").inc(denied)
            if dropped:
                outcomes.labels(outcome="dropped").inc(dropped)
        return granted

    def formation(self) -> Tuple[int, ...]:
        """Domain sizes, e.g. ``(4, 2, 2)`` for the Figure 7 configuration."""
        return tuple(len(d) for d in self.domains())
