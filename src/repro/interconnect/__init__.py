"""MorphCache interconnect: segmented bus, hierarchical arbiters, timing.

Implements Section 3 of the paper:

- :mod:`~repro.interconnect.segmented_bus` — a shared bus split into
  segments by switches; disjoint groups hold parallel transactions (Fig 7/8).
- :mod:`~repro.interconnect.arbiter` — the tree of 2-input round-robin
  arbiters with BusAcq gating (Figs 9-11), simulated cycle by cycle.
- :mod:`~repro.interconnect.floorplan` — the Fig 12 chip geometry used to
  derive wire lengths.
- :mod:`~repro.interconnect.timing` — the Table 1/Table 2 area and delay
  model (45 nm, 0.038 ns/mm) and the 15-cycle bus-transaction overhead.
"""

from repro.interconnect.segmented_bus import SegmentedBus
from repro.interconnect.arbiter import Arbiter, ArbiterTree
from repro.interconnect.floorplan import Floorplan
from repro.interconnect.timing import ArbiterTimingModel, BusTimingSummary
from repro.interconnect.power import (
    BusEnergyReport,
    SegmentedBusPowerModel,
    traffic_from_hierarchy_stats,
)

__all__ = [
    "SegmentedBus",
    "Arbiter",
    "ArbiterTree",
    "Floorplan",
    "ArbiterTimingModel",
    "BusTimingSummary",
    "BusEnergyReport",
    "SegmentedBusPowerModel",
    "traffic_from_hierarchy_stats",
]
