"""Chip floorplan of Figure 12 and the wire lengths derived from it.

The paper's floorplan is a 15 mm x 20 mm die.  The 16 core+L1+L2 tiles sit
in two columns of eight along the left and right edges; the 16 L3 slices
occupy the centre column.  The L2 arbiter trees (one per side, 7 arbiters
each) run vertically along each tile column; the L3 arbiter tree (15
arbiters) spans the centre column.

Wire delay in Table 2 is computed from "the farthest distance between any
two arbiters in this floorplan" times the 0.038 ns/mm parameter of Table 1.
This module reconstructs those distances geometrically: arbiters are placed
at the midpoints of the slices (or arbiters) they aggregate, and the request
path length of a slice is the Manhattan distance it accumulates climbing
from the slice to the root arbiter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

Point = Tuple[float, float]


def _manhattan(a: Point, b: Point) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def _midpoint(a: Point, b: Point) -> Point:
    return ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


@dataclass
class ArbiterTreeLayout:
    """Positions of a binary arbiter tree over a row of leaf positions."""

    leaf_positions: List[Point]
    arbiter_positions: List[List[Point]] = field(init=False)

    def __post_init__(self) -> None:
        n = len(self.leaf_positions)
        if n < 2 or n & (n - 1):
            raise ValueError("need a power-of-two number >= 2 of leaves")
        self.arbiter_positions = []
        current = list(self.leaf_positions)
        while len(current) > 1:
            level = [_midpoint(current[2 * i], current[2 * i + 1])
                     for i in range(len(current) // 2)]
            self.arbiter_positions.append(level)
            current = level

    @property
    def levels(self) -> int:
        return len(self.arbiter_positions)

    @property
    def n_arbiters(self) -> int:
        return sum(len(level) for level in self.arbiter_positions)

    def request_path_length(self, leaf: int) -> float:
        """Wire length from a leaf up through every arbiter to the root."""
        position = self.leaf_positions[leaf]
        length = 0.0
        index = leaf
        for level in self.arbiter_positions:
            index //= 2
            length += _manhattan(position, level[index])
            position = level[index]
        return length

    def max_request_path(self) -> float:
        """Longest leaf-to-root request path (sets the Table 2 wire delay)."""
        return max(self.request_path_length(leaf)
                   for leaf in range(len(self.leaf_positions)))


@dataclass
class Floorplan:
    """The 16-core Figure 12 die: tile geometry plus both arbiter fabrics."""

    chip_width_mm: float = 15.0
    chip_height_mm: float = 20.0
    cores: int = 16

    def __post_init__(self) -> None:
        if self.cores < 4 or self.cores & (self.cores - 1):
            raise ValueError("cores must be a power of two >= 4")
        per_side = self.cores // 2
        tile_height = self.chip_height_mm / per_side
        column_width = self.chip_width_mm / 3.0
        left_x = column_width / 2.0
        right_x = self.chip_width_mm - column_width / 2.0
        center_x = self.chip_width_mm / 2.0

        ys = [tile_height * (i + 0.5) for i in range(per_side)]
        self.left_l2_positions: List[Point] = [(left_x, y) for y in ys]
        self.right_l2_positions: List[Point] = [(right_x, y) for y in ys]
        # L3 slices interleave along the centre column, two per tile row.
        l3_pitch = self.chip_height_mm / self.cores
        self.l3_positions: List[Point] = [
            (center_x, l3_pitch * (i + 0.5)) for i in range(self.cores)
        ]

        self.l2_tree_left = ArbiterTreeLayout(self.left_l2_positions)
        self.l2_tree_right = ArbiterTreeLayout(self.right_l2_positions)
        self.l3_tree = ArbiterTreeLayout(self.l3_positions)

    # -- Table 2 geometry --------------------------------------------------

    @property
    def l2_arbiters_per_side(self) -> int:
        return self.l2_tree_left.n_arbiters

    @property
    def l3_arbiters(self) -> int:
        return self.l3_tree.n_arbiters

    @property
    def l2_levels(self) -> int:
        return self.l2_tree_left.levels

    @property
    def l3_levels(self) -> int:
        return self.l3_tree.levels

    def l2_max_wire_mm(self) -> float:
        """Longest L2 request path on either side of the chip."""
        return max(self.l2_tree_left.max_request_path(),
                   self.l2_tree_right.max_request_path())

    def l3_max_wire_mm(self) -> float:
        """Longest L3 request path across the chip."""
        return self.l3_tree.max_request_path()
