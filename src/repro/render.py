"""Text rendering of cache topologies and results (CLI / example helper)."""

from __future__ import annotations

from typing import Sequence, Tuple

Group = Tuple[int, ...]


def render_topology(l2_groups: Sequence[Group], l3_groups: Sequence[Group],
                    cores: int = 16) -> str:
    """ASCII picture of a topology: cores, L2 groups, L3 groups.

    Example for ``(2:2:4)`` on 8 cores::

        cores 0  1  2  3  4  5  6  7
        L2    [0  1][2  3][4  5][6  7]
        L3    [0  1  2  3][4  5  6  7]
    """
    def row(groups: Sequence[Group]) -> str:
        cells = [""] * cores
        for group in groups:
            ordered = sorted(group)
            for slice_id in ordered:
                cells[slice_id] = f"{slice_id:<2}"
            cells[ordered[0]] = "[" + cells[ordered[0]].rstrip().ljust(2)
            cells[ordered[-1]] = cells[ordered[-1]].rstrip().ljust(2) + "]"
        return " ".join(cell.ljust(3) for cell in cells).rstrip()

    header = "cores " + " ".join(f"{i:<3}" for i in range(cores)).rstrip()
    return "\n".join([
        header,
        "L2    " + row(l2_groups),
        "L3    " + row(l3_groups),
    ])


def render_series(values: Sequence[float], width: int = 40,
                  label: str = "") -> str:
    """A one-line spark-bar for a throughput series."""
    if not values:
        return label
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    blocks = "▁▂▃▄▅▆▇█"
    bar = "".join(
        blocks[min(len(blocks) - 1,
                   int((value - lo) / span * (len(blocks) - 1)))]
        for value in values
    )
    return f"{label}{bar}  [{lo:.3f} .. {hi:.3f}]"
