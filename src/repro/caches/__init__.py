"""Cache substrate: set-associative slices, merged groups, 3-level hierarchy.

This package implements the memory-side substrate the paper's evaluation
runs on: per-core private L1s, 16 L2 slices and 16 L3 slices that can be
grouped (merged) at runtime, an inclusive hierarchy with back-invalidation,
lazy invalidation of post-merge duplicates (paper Section 2.2), and per-core
/ per-slice statistics.
"""

from repro.caches.replacement import LruPolicy, TreePlruPolicy, make_policy
from repro.caches.cache import CacheSlice, Entry
from repro.caches.hierarchy import AccessResult, CacheHierarchy, HierarchyObserver
from repro.caches.stats import CoreStats, SliceStats

__all__ = [
    "LruPolicy",
    "TreePlruPolicy",
    "make_policy",
    "CacheSlice",
    "Entry",
    "AccessResult",
    "CacheHierarchy",
    "HierarchyObserver",
    "CoreStats",
    "SliceStats",
]
