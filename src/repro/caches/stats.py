"""Statistics collected by the cache hierarchy.

Per-core counters drive the timing model and the paper's metrics
(throughput, weighted/fair speedup); per-slice counters drive the QoS
throttling of Section 5.3 (miss counts before/after a merge) and the
diagnostic output of the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CoreStats:
    """Per-core access counters and accumulated memory cycles."""

    accesses: int = 0
    l1_hits: int = 0
    l2_local_hits: int = 0
    l2_remote_hits: int = 0
    l3_local_hits: int = 0
    l3_remote_hits: int = 0
    memory_accesses: int = 0
    coherence_invalidations: int = 0
    memory_cycles: int = 0
    instructions: int = 0
    cycles: float = 0.0

    @property
    def l2_hits(self) -> int:
        return self.l2_local_hits + self.l2_remote_hits

    @property
    def l3_hits(self) -> int:
        return self.l3_local_hits + self.l3_remote_hits

    @property
    def misses(self) -> int:
        """Accesses that went to main memory."""
        return self.memory_accesses

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the counted window."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def add_access_counts(self, accesses: int, l1_hits: int,
                          l2_local_hits: int, l3_local_hits: int,
                          memory_accesses: int, memory_cycles: int,
                          l2_remote_hits: int = 0,
                          l3_remote_hits: int = 0) -> None:
        """Fold a batch of per-level access counts into the counters.

        The batch engine counts levels in plain local integers during its
        kernel loop and flushes once per epoch; integer addition commutes,
        so the totals are identical to per-access increments.  The remote
        counts only arise under merged topologies (the group kernel); the
        private kernels leave them at the default 0.
        """
        self.accesses += accesses
        self.l1_hits += l1_hits
        self.l2_local_hits += l2_local_hits
        self.l2_remote_hits += l2_remote_hits
        self.l3_local_hits += l3_local_hits
        self.l3_remote_hits += l3_remote_hits
        self.memory_accesses += memory_accesses
        self.memory_cycles += memory_cycles

    def reset_window(self) -> None:
        """Zero every counter (start of a measurement window)."""
        self.accesses = 0
        self.l1_hits = 0
        self.l2_local_hits = 0
        self.l2_remote_hits = 0
        self.l3_local_hits = 0
        self.l3_remote_hits = 0
        self.memory_accesses = 0
        self.coherence_invalidations = 0
        self.memory_cycles = 0
        self.instructions = 0
        self.cycles = 0.0


@dataclass
class SliceStats:
    """Per-slice hit/miss/eviction counters for one cache level."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    lazy_invalidations: int = 0

    def add_probe_counts(self, hits: int, misses: int) -> None:
        """Fold a batch of lookup outcomes into the counters."""
        self.hits += hits
        self.misses += misses

    def reset_window(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.lazy_invalidations = 0


@dataclass
class HierarchyStats:
    """All statistics of one hierarchy: per-core and per-level/per-slice."""

    cores: Dict[int, CoreStats] = field(default_factory=dict)
    l2_slices: Dict[int, SliceStats] = field(default_factory=dict)
    l3_slices: Dict[int, SliceStats] = field(default_factory=dict)

    @classmethod
    def for_machine(cls, n_cores: int) -> "HierarchyStats":
        return cls(
            cores={i: CoreStats() for i in range(n_cores)},
            l2_slices={i: SliceStats() for i in range(n_cores)},
            l3_slices={i: SliceStats() for i in range(n_cores)},
        )

    def reset_window(self) -> None:
        for group in (self.cores, self.l2_slices, self.l3_slices):
            for stats in group.values():
                stats.reset_window()
