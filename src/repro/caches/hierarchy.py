"""Three-level inclusive cache hierarchy with mergeable L2/L3 slice groups.

This is the substrate every scheme in the paper runs on: 16 private L1s and
16 slices of L2 and L3.  The hierarchy does not decide topology — it is told
the current grouping of slices at each level (``set_topology``) and provides:

- group-wide lookup: a core's access searches every slice of its group,
  local slice first (local hits cost the local latency, remote hits the
  merged latency of Table 3 when ``charge_remote_latency`` is set);
- group-wide insertion with true-LRU victim choice across the group
  (merging sums associativities, footnote 1 of the paper);
- lazy invalidation of duplicate copies created by a merge (Section 2.2):
  on a multi-hit only the most recently used copy survives;
- inclusion maintenance: an L3 eviction back-invalidates the covered L2
  slices and L1s, an L2 eviction back-invalidates L1s;
- a write-invalidate L1 directory for threads sharing an address space.

An observer receives fill/hit/evict events per slice — the MorphCache
controller attaches its ACFVs there, and the oracle footprint estimator of
Figure 5 uses the same interface.

Hot-path architecture (see DESIGN.md §6): the access path is driven by
per-level :class:`_LevelBinding` objects precomputed at ``set_topology``
time, so no per-access work re-resolves ``level == L2`` branches, config
attributes, or stats dict lookups.  Singleton (private, local) groups take
a fast path that skips the multi-hit collection/sort/lazy-invalidation
machinery entirely, and observer dispatch is skipped per hook when the
installed observer inherits the default no-op implementation.  All of this
is bit-identical to the straightforward path — the golden-determinism test
and checkpoint digests pin that down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from repro.caches.cache import CacheSlice, Entry
from repro.caches.stats import HierarchyStats
from repro.config import MachineConfig
from repro.obs import metrics as obs_metrics
from repro.resilience.errors import FaultInjectedError

L2 = "l2"
L3 = "l3"


class HierarchyObserver:
    """Event sink for per-slice cache activity.  All hooks are optional."""

    def on_hit(self, level: str, slice_id: int, core: int, tag: int) -> None:
        """A lookup hit ``tag`` in slice ``slice_id`` on behalf of ``core``."""

    def on_fill(self, level: str, slice_id: int, core: int, tag: int) -> None:
        """``tag`` was installed into slice ``slice_id`` for ``core``."""

    def on_evict(self, level: str, slice_id: int, tag: int,
                 owner: int = -1) -> None:
        """``tag`` left slice ``slice_id`` (replacement or invalidation)."""


class AccessResult(NamedTuple):
    """Outcome of one memory reference.

    A NamedTuple rather than a dataclass: one is constructed per access,
    and tuple construction is several times cheaper.
    """

    latency: int

    level: str
    """Where the reference was served: ``l1``, ``l2``, ``l3`` or ``mem``."""

    remote: bool
    """True when served by a non-local slice of a merged group."""


@dataclass
class _LevelBinding:
    """Everything the access path needs about one level, pre-resolved.

    Rebuilt whenever the topology or the fault-disabled set changes; the
    hot path only ever indexes into these lists.
    """

    name: str
    slices: List[CacheSlice]
    stats: List  # SliceStats per slice id
    local_hit: int
    merged_hit: int
    orders: List[Tuple[int, ...]]
    """Per-core search order (local slice first, then by distance)."""

    fast: List[Optional[CacheSlice]]
    """Per-core: the core's own slice when its order is exactly
    ``(core,)`` — the private-topology fast path — else None."""


class CacheHierarchy:
    """The CMP cache substrate (see module docstring)."""

    def __init__(
        self,
        config: MachineConfig,
        charge_remote_latency: bool = True,
        observer: Optional[HierarchyObserver] = None,
    ) -> None:
        self.config = config
        self.charge_remote_latency = charge_remote_latency
        n = config.cores
        rep = config.replacement
        self.l1s = [CacheSlice(config.l1.sets, config.l1.ways, rep, i) for i in range(n)]
        self.l2s = [CacheSlice(config.l2_slice.sets, config.l2_slice.ways, rep, i)
                    for i in range(n)]
        self.l3s = [CacheSlice(config.l3_slice.sets, config.l3_slice.ways, rep, i)
                    for i in range(n)]
        self.stats = HierarchyStats.for_machine(n)
        self._core_stats = [self.stats.cores[i] for i in range(n)]
        # config is frozen: hoist the latency chain and the hot constants.
        self._lat = lat = config.latency
        self._lat_l1 = lat.l1_hit
        self._lat_l2_local = lat.l2_local_hit
        self._lat_l3_local = lat.l3_local_hit
        self._lat_mem = lat.memory
        self._stamp = 0
        self.bus_penalty = 0
        """Extra cycles a remote (merged) hit pays while a bus fault stalls
        the arbiter; set by the fault injector, 0 in healthy epochs."""

        self.observer = observer or HierarchyObserver()

        # Slices taken offline by injected faults, per level.
        self._disabled: Dict[str, Set[int]] = {L2: set(), L3: set()}
        # line -> cores holding the line in their L1 (inclusion directory).
        self._l1_directory: Dict[int, Set[int]] = {}
        private = [(i,) for i in range(n)]
        self._l2_groups: List[Tuple[int, ...]] = []
        self._l3_groups: List[Tuple[int, ...]] = []
        self._l2_group_of: List[Tuple[int, ...]] = []
        self._l3_group_of: List[Tuple[int, ...]] = []
        self._l2_binding = _LevelBinding(
            L2, self.l2s, [self.stats.l2_slices[i] for i in range(n)],
            lat.l2_local_hit, lat.l2_merged_hit, [()] * n, [None] * n)
        self._l3_binding = _LevelBinding(
            L3, self.l3s, [self.stats.l3_slices[i] for i in range(n)],
            lat.l3_local_hit, lat.l3_merged_hit, [()] * n, [None] * n)
        self._l2_slice_stats = self._l2_binding.stats
        self._l3_slice_stats = self._l3_binding.stats
        self.set_topology(private, list(private))

    # -- observer dispatch flags -------------------------------------------

    @property
    def observer(self) -> HierarchyObserver:
        return self._observer

    @observer.setter
    def observer(self, observer: HierarchyObserver) -> None:
        """Install an observer, pre-resolving which hooks are overridden.

        Hooks left at the base-class no-op are never dispatched on the hot
        path — the default (no observer) configuration pays nothing.
        """
        cls = type(observer)
        self._observer = observer
        self._notify_hit = cls.on_hit is not HierarchyObserver.on_hit
        self._notify_fill = cls.on_fill is not HierarchyObserver.on_fill
        self._notify_evict = cls.on_evict is not HierarchyObserver.on_evict

    # -- topology ----------------------------------------------------------

    def set_topology(
        self,
        l2_groups: Sequence[Tuple[int, ...]],
        l3_groups: Sequence[Tuple[int, ...]],
    ) -> None:
        """Install a new slice grouping at both levels.

        ``l2_groups`` / ``l3_groups`` must each partition ``range(cores)``.
        Every L2 group must be contained in a single L3 group (the inclusion
        requirement of Sections 2.2/2.3).  Duplicate copies that sharing may
        create are *not* flushed here — lazy invalidation handles them.
        """
        n = self.config.cores
        for name, groups in ((L2, l2_groups), (L3, l3_groups)):
            seen = sorted(s for g in groups for s in g)
            if seen != list(range(n)):
                raise ValueError(f"{name} groups {groups} do not partition 0..{n - 1}")
        l3_of: Dict[int, Tuple[int, ...]] = {}
        for group in l3_groups:
            for slice_id in group:
                l3_of[slice_id] = tuple(group)
        for group in l2_groups:
            covering = {l3_of[s] for s in group}
            if len(covering) != 1:
                raise ValueError(
                    f"L2 group {group} spans multiple L3 groups {covering}: "
                    "inclusion would be violated"
                )
        self._l2_groups = [tuple(g) for g in l2_groups]
        self._l3_groups = [tuple(g) for g in l3_groups]
        self._l2_group_of = [()] * n
        self._l3_group_of = [()] * n
        for group in self._l2_groups:
            for slice_id in group:
                self._l2_group_of[slice_id] = group
        for group in self._l3_groups:
            for slice_id in group:
                self._l3_group_of[slice_id] = group
        self._recompute_search_orders()
        self._repair_after_reconfiguration()
        reg = obs_metrics.REGISTRY
        if reg.enabled:
            reg.counter("repro_topology_changes_total",
                        "Topology installs via set_topology").inc()
            groups_gauge = reg.gauge("repro_topology_groups",
                                     "Installed slice groups per level",
                                     labels=("level",))
            groups_gauge.labels(level=L2).set(len(self._l2_groups))
            groups_gauge.labels(level=L3).set(len(self._l3_groups))

    def topology(self) -> Dict[str, List[Tuple[int, ...]]]:
        """The installed slice grouping per level (copies, sorted members)."""
        return {
            L2: [tuple(sorted(g)) for g in self._l2_groups],
            L3: [tuple(sorted(g)) for g in self._l3_groups],
        }

    def _recompute_search_orders(self) -> None:
        """Rebuild the per-level bindings (orders + fast-path slices)."""
        for binding, groups in ((self._l2_binding, self._l2_groups),
                                (self._l3_binding, self._l3_groups)):
            disabled = self._disabled[binding.name]
            for group in groups:
                for slice_id in group:
                    order = _search_order(slice_id, group, disabled)
                    binding.orders[slice_id] = order
                    binding.fast[slice_id] = (
                        binding.slices[slice_id]
                        if order == (slice_id,) else None)
        # The all-private monolithic fast path: valid for a core when both
        # levels are singleton-local and replacement is true LRU (the inline
        # code implements recency-dict LRU only).
        lru = self.config.replacement == "lru"
        self._private_fast = [
            lru
            and self._l2_binding.fast[core] is not None
            and self._l3_binding.fast[core] is not None
            for core in range(self.config.cores)
        ]
        # When *every* core is private-fast, shadow the class's ``access``
        # with the fast path directly (one call frame less per access).
        if all(self._private_fast):
            self.access = self._access_private
        else:
            self.__dict__.pop("access", None)

    # -- fault support -----------------------------------------------------

    def disabled_slices(self, level: str) -> Set[int]:
        """Slices currently offline at ``level`` (injected faults)."""
        return set(self._disabled[level])

    def set_faulted_slices(self, level: str, slice_ids: Set[int]) -> None:
        """Take the given slices offline at ``level`` (and the rest online).

        Newly-offline slices are flushed (a failed slice loses its data) and
        excluded from every group's lookup/fill path; the surviving slices
        of each group carry on serving.  Inclusion is re-established by the
        standard reconfiguration repair.  Re-enabled slices come back empty.

        Raises:
            FaultInjectedError: disabling every slice of a level — the
                machine would be unable to cache anything there.
        """
        slice_ids = {int(s) for s in slice_ids}
        n = self.config.cores
        if any(not 0 <= s < n for s in slice_ids):
            raise FaultInjectedError(
                f"{level} fault targets {sorted(slice_ids)} outside 0..{n - 1}")
        if len(slice_ids) >= n:
            raise FaultInjectedError(
                f"fault set disables every {level} slice; no capacity left")
        if slice_ids == self._disabled[level]:
            return
        newly_offline = slice_ids - self._disabled[level]
        self._disabled[level] = slice_ids
        slices = self.l2s if level == L2 else self.l3s
        slice_stats = self.stats.l2_slices if level == L2 else self.stats.l3_slices
        for slice_id in newly_offline:
            for entry in slices[slice_id].flush():
                slice_stats[slice_id].evictions += 1
                self._observer.on_evict(level, slice_id, entry.line, entry.owner)
        self._recompute_search_orders()
        self._repair_after_reconfiguration()
        reg = obs_metrics.REGISTRY
        if reg.enabled:
            reg.gauge("repro_faulted_slices",
                      "Cache slices taken offline by injected faults",
                      labels=("level",)).labels(level=level).set(len(slice_ids))

    def _repair_after_reconfiguration(self) -> None:
        """Evict lines a topology change made unreachable or non-inclusive.

        A split leaves lines stranded in slices their owner can no longer
        reach; those lines would never hit again and, worse, an L2 copy may
        lose its backing L3 copy, breaking inclusion.  Hardware would handle
        this with (lazy) invalidation; the repair here invalidates orphans
        eagerly at the reconfiguration boundary, which is rare enough that
        the cost is irrelevant (and the lost-locality penalty of refetching
        is faithfully paid by the subsequent misses).
        """
        # L3 orphans: owner can no longer address this slice.
        for slice_id, l3 in enumerate(self.l3s):
            for entry in l3.entries():
                if slice_id not in self._l3_group_of[entry.owner]:
                    l3.invalidate_entry(entry)
                    self.stats.l3_slices[slice_id].evictions += 1
                    self._observer.on_evict(L3, slice_id, entry.line, entry.owner)
        # L2 orphans: unreachable by owner, or L3 backing copy gone.
        for slice_id, l2 in enumerate(self.l2s):
            l3_group = self._l3_group_of[slice_id]
            for entry in l2.entries():
                unreachable = slice_id not in self._l2_group_of[entry.owner]
                unbacked = not any(entry.line in self.l3s[s] for s in l3_group)
                if unreachable or unbacked:
                    l2.invalidate_entry(entry)
                    self.stats.l2_slices[slice_id].evictions += 1
                    self._observer.on_evict(L2, slice_id, entry.line, entry.owner)
        # L1 copies must still be backed by the core's (new) L2 group.
        for line, holders in list(self._l1_directory.items()):
            for core in list(holders):
                backed = any(line in self.l2s[s]
                             for s in self._l2_group_of[core])
                if not backed:
                    self.l1s[core].invalidate(line)
                    holders.discard(core)
            if not holders:
                del self._l1_directory[line]

    @property
    def l2_groups(self) -> List[Tuple[int, ...]]:
        return list(self._l2_groups)

    @property
    def l3_groups(self) -> List[Tuple[int, ...]]:
        return list(self._l3_groups)

    def l2_group_of(self, slice_id: int) -> Tuple[int, ...]:
        return self._l2_group_of[slice_id]

    def l3_group_of(self, slice_id: int) -> Tuple[int, ...]:
        return self._l3_group_of[slice_id]

    # -- batch-engine entry points ------------------------------------------

    @property
    def all_private_fast(self) -> bool:
        """True when every core takes the monolithic private fast path.

        This is the precondition for the batch engine's specialised
        all-private kernel (``repro.sim.batch``): singleton local groups at
        both levels, true LRU, no fault-disabled slices in any core's path.
        """
        return all(self._private_fast)

    @property
    def partition_sets(self) -> int:
        """Number of independent set partitions for batched resolution.

        The smallest set count across the three levels.  Every structure a
        reference can touch — its own sets, LRU victims (same set), dirty
        write-backs (same L1 set ⇒ partition bits preserved), inclusion
        back-invalidations (subset index bits) and coherence invalidations
        (same line) — shares the reference's ``line & (partition_sets - 1)``
        bits, so resolving each partition's subsequence in global order is
        bit-identical to the fully interleaved order (DESIGN.md §7).
        """
        config = self.config
        return min(config.l1.sets, config.l2_slice.sets, config.l3_slice.sets)

    def group_line_index(
        self, level: str, group: Tuple[int, ...]
    ) -> Tuple[Dict[int, int], Dict[int, Set[int]]]:
        """Aggregate residency view of one slice group at ``level``.

        Returns ``(index, dups)``: ``index`` maps each resident line to the
        slice holding it, or to ``-1`` when several slices hold copies (the
        duplicates a merge leaves behind, resolved lazily on the next hit);
        ``dups`` then lists the holding slices.  Fault-disabled slices are
        naturally absent — they are flushed when they go offline.

        This is the scatter/gather substrate of the batch engine's group
        kernel: one scan replaces the per-access probe of every slice in
        the group, and the kernel keeps the maps current incrementally.
        """
        slices = self.l2s if level == L2 else self.l3s
        index: Dict[int, int] = {}
        dups: Dict[int, Set[int]] = {}
        for slice_id in group:
            for line in slices[slice_id].resident_lines():
                prev = index.setdefault(line, slice_id)
                if prev != slice_id:
                    dups.setdefault(line, {prev} if prev >= 0 else set()) \
                        .add(slice_id)
                    index[line] = -1
        return index, dups

    def max_access_latency(self) -> int:
        """Upper bound on the latency any single access can return.

        Used by the batch engine to bound the cycles an epoch can add when
        checking :meth:`~repro.cpu.core_model.CoreTimingModel.
        batch_summation_exact`.  Covers the worst remote merged hit (full
        segmented-bus span plus any active bus-fault penalty) and the
        coherence invalidation adder; deliberately a loose over-estimate.
        """
        lat = self.config.latency
        span = max(0, self.config.cores - 2) * lat.distance_cycles_per_hop
        worst_remote = max(lat.l2_merged_hit, lat.l3_merged_hit) + span \
            + self.bus_penalty
        return max(lat.l1_hit, lat.l2_local_hit, lat.l3_local_hit,
                   lat.memory, worst_remote) + lat.coherence_invalidate

    def advance_stamp(self, count: int) -> int:
        """Consume ``count`` stamps; returns the stamp *before* the first.

        The batch engine assigns each access its stamp positionally
        (``base + 1 + global_index``) instead of incrementing per access;
        this reserves the range and keeps the counter identical to what the
        per-access path would leave behind.
        """
        base = self._stamp
        self._stamp = base + count
        return base

    # -- the access path ---------------------------------------------------

    def access(self, core: int, line: int, write: bool = False) -> AccessResult:
        """Issue one reference from ``core``; returns level and latency."""
        if self._private_fast[core]:
            return self._access_private(core, line, write)
        self._stamp += 1
        stamp = self._stamp
        lat = self.config.latency
        core_stats = self._core_stats[core]
        core_stats.accesses += 1

        # L1.
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None:
            l1.touch(entry, stamp)
            core_stats.l1_hits += 1
            latency = lat.l1_hit
            if write:
                entry.dirty = True
                latency += self._invalidate_other_l1s(core, line)
            return AccessResult(latency, "l1", False)

        # L2 group.
        hit_slice, latency = self._lookup_group(self._l2_binding, core, line, stamp)
        if hit_slice is not None:
            remote = hit_slice != core
            if remote:
                core_stats.l2_remote_hits += 1
            else:
                core_stats.l2_local_hits += 1
            total = latency + self._fill_l1(core, line, write, stamp)
            if write:
                total += self._invalidate_other_l1s(core, line)
            return AccessResult(total, "l2", remote)

        # L3 group.
        hit_slice, latency = self._lookup_group(self._l3_binding, core, line, stamp)
        if hit_slice is not None:
            remote = hit_slice != core
            if remote:
                core_stats.l3_remote_hits += 1
            else:
                core_stats.l3_local_hits += 1
            l2_filled = self._fill_group(self._l2_binding, core, line, write, stamp)
            total = latency
            if l2_filled is not None:
                total += self._fill_l1(core, line, write, stamp)
            if write:
                total += self._invalidate_other_l1s(core, line)
            return AccessResult(total, "l3", remote)

        # Main memory.  Fills cascade only while the parent level succeeded:
        # with a whole group fault-disabled the lower levels skip caching
        # too, preserving inclusion (an L2 copy must have an L3 backing).
        core_stats.memory_accesses += 1
        core_stats.memory_cycles += lat.memory
        total = lat.memory
        if self._fill_group(self._l3_binding, core, line, write, stamp) is not None:
            if self._fill_group(self._l2_binding, core, line, write, stamp) is not None:
                total += self._fill_l1(core, line, write, stamp)
        if write:
            total += self._invalidate_other_l1s(core, line)
        return AccessResult(total, "mem", False)

    def _access_private(self, core: int, line: int, write: bool = False) -> AccessResult:
        """The all-private (singleton local groups, true LRU) access path.

        Semantically identical to the general path below, with the slice
        operations inlined: each level is one dict probe, a hit is a
        recency-dict re-append, and a fill's LRU victim is the dict head.
        The golden-determinism test and the checkpoint digests pin the
        bit-identical claim.
        """
        self._stamp += 1
        stamp = self._stamp
        core_stats = self._core_stats[core]
        core_stats.accesses += 1

        # L1 probe (recency-dict hit).
        l1 = self.l1s[core]
        bucket = l1._index[line & l1._set_mask]
        entry = bucket.get(line)
        if entry is not None:
            entry.stamp = stamp
            del bucket[line]
            bucket[line] = entry
            core_stats.l1_hits += 1
            latency = self._lat_l1
            if write:
                entry.dirty = True
                # A holder set of exactly {core} (the common private case)
                # needs no coherence work; core is a holder by inclusion.
                holders = self._l1_directory.get(line)
                if holders is not None and len(holders) > 1:
                    latency += self._invalidate_other_l1s(core, line)
            return AccessResult(latency, "l1", False)

        # L2 probe.
        l2 = self.l2s[core]
        bucket = l2._index[line & l2._set_mask]
        entry = bucket.get(line)
        if entry is not None:
            entry.stamp = stamp
            del bucket[line]
            bucket[line] = entry
            self._l2_slice_stats[core].hits += 1
            core_stats.l2_local_hits += 1
            if self._notify_hit:
                self._observer.on_hit(L2, core, core, line)
            self._fill_l1_private(l1, l2, core, line, write, stamp)
            total = self._lat_l2_local
            if write:
                holders = self._l1_directory.get(line)
                if holders is not None and len(holders) > 1:
                    total += self._invalidate_other_l1s(core, line)
            return AccessResult(total, "l2", False)
        self._l2_slice_stats[core].misses += 1

        # L3 probe.
        l3 = self.l3s[core]
        bucket = l3._index[line & l3._set_mask]
        entry = bucket.get(line)
        if entry is not None:
            entry.stamp = stamp
            del bucket[line]
            bucket[line] = entry
            self._l3_slice_stats[core].hits += 1
            core_stats.l3_local_hits += 1
            if self._notify_hit:
                self._observer.on_hit(L3, core, core, line)
            self._fill_private(self._l2_binding, l2, core, line, write, stamp)
            self._fill_l1_private(l1, l2, core, line, write, stamp)
            total = self._lat_l3_local
            if write:
                holders = self._l1_directory.get(line)
                if holders is not None and len(holders) > 1:
                    total += self._invalidate_other_l1s(core, line)
            return AccessResult(total, "l3", False)
        self._l3_slice_stats[core].misses += 1

        # Main memory; fills cascade down the private slices.
        core_stats.memory_accesses += 1
        core_stats.memory_cycles += self._lat_mem
        total = self._lat_mem
        self._fill_private(self._l3_binding, l3, core, line, write, stamp)
        self._fill_private(self._l2_binding, l2, core, line, write, stamp)
        self._fill_l1_private(l1, l2, core, line, write, stamp)
        if write:
            holders = self._l1_directory.get(line)
            if holders is not None and len(holders) > 1:
                total += self._invalidate_other_l1s(core, line)
        return AccessResult(total, "mem", False)

    def _fill_l1_private(self, l1: CacheSlice, l2: CacheSlice, core: int,
                         line: int, write: bool, stamp: int) -> None:
        """:meth:`_fill_l1` with the L1 insert and the singleton-L2 dirty
        writeback inlined (the private path's L2 order is ``(core,)``).

        The evicted entry object is recycled as the new entry (its fields
        are all overwritten) to avoid an allocation per fill; the victim's
        line/dirtiness are captured first.
        """
        set_index = line & l1._set_mask
        ways = l1._data[set_index]
        bucket = l1._index[set_index]
        directory = self._l1_directory
        if len(ways) >= l1.ways:
            victim = next(iter(bucket.values()))
            victim_line = victim.line
            del bucket[victim_line]
            ways.remove(victim)
            holders = directory.get(victim_line)
            if holders is not None:
                holders.discard(core)
                if not holders:
                    del directory[victim_line]
            if victim.dirty:
                l2_entry = l2._index[victim_line & l2._set_mask].get(victim_line)
                if l2_entry is not None:
                    l2_entry.dirty = True
            entry = victim  # recycle
            entry.line = line
            entry.owner = core
            entry.dirty = write
            entry.stamp = stamp
        else:
            entry = Entry(line, core, write, stamp)
        ways.append(entry)
        bucket[line] = entry
        holders = directory.get(line)
        if holders is None:
            directory[line] = {core}
        else:
            holders.add(core)

    def _fill_private(self, binding: _LevelBinding, slice_: CacheSlice,
                      core: int, line: int, write: bool, stamp: int) -> None:
        """Singleton-group fill with the slice's insert inlined (LRU only).

        The evicted entry object is recycled as the new entry to avoid an
        allocation per fill; its line/owner are captured first for the
        eviction bookkeeping that runs after the insert.
        """
        set_index = line & slice_._set_mask
        ways = slice_._data[set_index]
        bucket = slice_._index[set_index]
        victim_line = -1
        victim_owner = -1
        if len(ways) >= slice_.ways:
            victim = next(iter(bucket.values()))
            victim_line = victim.line
            victim_owner = victim.owner
            ways.remove(victim)
            del bucket[victim_line]
            entry = victim  # recycle
            entry.line = line
            entry.owner = core
            entry.dirty = write
            entry.stamp = stamp
        else:
            entry = Entry(line, core, write, stamp)
        ways.append(entry)
        bucket[line] = entry
        stats = binding.stats[core]
        stats.insertions += 1
        if self._notify_fill:
            self._observer.on_fill(binding.name, core, core, line)
        if victim_line >= 0:
            stats.evictions += 1
            if self._notify_evict:
                self._observer.on_evict(binding.name, core, victim_line,
                                        victim_owner)
            self._back_invalidate(binding.name, core, victim_line)

    # -- group mechanics ---------------------------------------------------

    def _lookup_group(
        self, binding: _LevelBinding, core: int, line: int, stamp: int
    ) -> Tuple[Optional[int], int]:
        """Search the core's group at the binding's level; return (hit slice,
        latency).

        Implements lazy invalidation: when the line is found in several
        slices of a merged group (duplicates left over from a merge), only
        the most recently used copy is kept.  The private-topology fast path
        (a singleton, local group) skips all of that: at most one copy can
        exist and any hit is local.
        """
        stats = binding.stats
        local = binding.fast[core]
        if local is not None:
            entry = local.lookup(line)
            if entry is None:
                stats[core].misses += 1
                return None, 0
            local.touch(entry, stamp)
            stats[core].hits += 1
            if self._notify_hit:
                self._observer.on_hit(binding.name, core, core, line)
            return core, binding.local_hit

        slices = binding.slices
        order = binding.orders[core]
        winner_slice = -1
        winner: Optional[Entry] = None
        extra: Optional[List[Tuple[int, Entry]]] = None
        for slice_id in order:
            entry = slices[slice_id].lookup(line)
            if entry is not None:
                if winner is None:
                    winner_slice, winner = slice_id, entry
                elif extra is None:
                    extra = [(slice_id, entry)]
                else:
                    extra.append((slice_id, entry))
        if winner is None:
            stats[core].misses += 1
            return None, 0

        if extra is not None:
            hits = [(winner_slice, winner)] + extra
            hits.sort(key=lambda item: item[1].stamp, reverse=True)
            winner_slice, winner = hits[0]
            for dup_slice, dup in hits[1:]:
                slices[dup_slice].invalidate_entry(dup)
                stats[dup_slice].lazy_invalidations += 1
                if dup.dirty:
                    winner.dirty = True
                if self._notify_evict:
                    self._observer.on_evict(binding.name, dup_slice, line, dup.owner)
        slices[winner_slice].touch(winner, stamp)
        stats[winner_slice].hits += 1
        if self._notify_hit:
            self._observer.on_hit(binding.name, winner_slice, core, line)
        if winner_slice == core or not self.charge_remote_latency:
            return winner_slice, binding.local_hit
        # Remote hits pay the merged latency plus the segmented-bus span
        # cost for slices beyond the immediate neighbourhood (Section 5.5),
        # plus the arbiter-stall penalty while a bus fault is active.
        distance_penalty = (abs(winner_slice - core) - 1) \
            * self.config.latency.distance_cycles_per_hop
        return winner_slice, binding.merged_hit + max(0, distance_penalty) \
            + self.bus_penalty

    def _fill_group(self, binding: _LevelBinding, core: int, line: int,
                    write: bool, stamp: int) -> Optional[int]:
        """Install ``line`` into the core's group at the binding's level.

        Placement: the local slice if its set has room, else any group slice
        with room, else the slice holding the group-wide LRU victim (summed
        associativity per footnote 1).  Returns the slice filled, or None
        when every slice of the group is fault-disabled (the line is simply
        not cached at this level).  A singleton local group needs no
        placement search — insert() already picks the slice-local victim.
        """
        slices = binding.slices
        local = binding.fast[core]
        if local is not None:
            target = core
            victim = local.insert(line, core, write, stamp)
        else:
            order = binding.orders[core]
            if not order:
                return None
            target = None
            for slice_id in order:
                if slices[slice_id].has_room(line):
                    target = slice_id
                    break
            if target is None:
                oldest_stamp = None
                for slice_id in order:
                    candidate = slices[slice_id].victim_candidate(line)
                    if candidate is not None and (
                        oldest_stamp is None or candidate.stamp < oldest_stamp
                    ):
                        oldest_stamp = candidate.stamp
                        target = slice_id
                if target is None:  # pragma: no cover - sets cannot all be unfull and victimless
                    target = order[0]
            victim = slices[target].insert(line, core, write, stamp)
        binding.stats[target].insertions += 1
        if self._notify_fill:
            self._observer.on_fill(binding.name, target, core, line)
        if victim is not None:
            binding.stats[target].evictions += 1
            if self._notify_evict:
                self._observer.on_evict(binding.name, target, victim.line,
                                        victim.owner)
            self._back_invalidate(binding.name, target, victim.line)
        return target

    def _back_invalidate(self, level: str, from_slice: int, line: int) -> None:
        """Maintain inclusion after an eviction at ``level``."""
        if level == L3:
            # The line can only live in L2 slices covered by this L3 group.
            for slice_id in self._l3_group_of[from_slice]:
                removed = self.l2s[slice_id].invalidate(line)
                if removed is not None:
                    self.stats.l2_slices[slice_id].evictions += 1
                    if self._notify_evict:
                        self._observer.on_evict(L2, slice_id, line, removed.owner)
        # In both cases the L1 copies must go (L1 is inclusive in L2).
        holders = self._l1_directory.get(line)
        if holders:
            for core in list(holders):
                self.l1s[core].invalidate(line)
            del self._l1_directory[line]

    # -- L1 handling -------------------------------------------------------

    def _fill_l1(self, core: int, line: int, write: bool, stamp: int) -> int:
        """Install into the core's L1; returns extra latency (always 0)."""
        victim = self.l1s[core].insert(line, core, write, stamp)
        self._l1_directory.setdefault(line, set()).add(core)
        if victim is not None:
            holders = self._l1_directory.get(victim.line)
            if holders is not None:
                holders.discard(core)
                if not holders:
                    del self._l1_directory[victim.line]
            if victim.dirty:
                # Write back into the L2 copy (inclusion guarantees presence
                # unless a concurrent back-invalidation removed it).
                for slice_id in self._l2_binding.orders[core]:
                    entry = self.l2s[slice_id].lookup(victim.line)
                    if entry is not None:
                        entry.dirty = True
                        break
        return 0

    def _invalidate_other_l1s(self, core: int, line: int) -> int:
        """Write-invalidate coherence for threads sharing an address space."""
        holders = self._l1_directory.get(line)
        if not holders:
            return 0
        if len(holders) == 1 and core in holders:
            return 0  # only the writer itself holds the line (common case)
        others = [c for c in holders if c != core]
        if not others:
            return 0
        for other in others:
            self.l1s[other].invalidate(line)
            holders.discard(other)
            self.stats.cores[core].coherence_invalidations += 1
        return self.config.latency.coherence_invalidate

    # -- invariants (used by tests and property checks) ---------------------

    def check_inclusion(self) -> None:
        """Raise AssertionError if any inclusion invariant is violated."""
        for core, l1 in enumerate(self.l1s):
            group = self._l2_group_of[core]
            for line in l1.resident_lines():
                if not any(line in self.l2s[s] for s in group):
                    raise AssertionError(
                        f"L1 of core {core} holds line {line:#x} absent from "
                        f"its L2 group {group}"
                    )
        for slice_id, l2 in enumerate(self.l2s):
            group = self._l3_group_of[slice_id]
            for line in l2.resident_lines():
                if not any(line in self.l3s[s] for s in group):
                    raise AssertionError(
                        f"L2 slice {slice_id} holds line {line:#x} absent "
                        f"from its L3 group {group}"
                    )


def _search_order(local: int, group: Tuple[int, ...],
                  disabled: Set[int] = frozenset()) -> Tuple[int, ...]:
    """Local slice first, then the rest of the group by physical distance.

    Fault-disabled slices are excluded entirely; a core whose local slice is
    offline is served by the surviving slices of its group (possibly none).
    """
    alive = [s for s in group if s not in disabled]
    rest = sorted((s for s in alive if s != local), key=lambda s: abs(s - local))
    if local in disabled:
        return tuple(rest)
    return (local, *rest)
