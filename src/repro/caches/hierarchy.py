"""Three-level inclusive cache hierarchy with mergeable L2/L3 slice groups.

This is the substrate every scheme in the paper runs on: 16 private L1s and
16 slices of L2 and L3.  The hierarchy does not decide topology — it is told
the current grouping of slices at each level (``set_topology``) and provides:

- group-wide lookup: a core's access searches every slice of its group,
  local slice first (local hits cost the local latency, remote hits the
  merged latency of Table 3 when ``charge_remote_latency`` is set);
- group-wide insertion with true-LRU victim choice across the group
  (merging sums associativities, footnote 1 of the paper);
- lazy invalidation of duplicate copies created by a merge (Section 2.2):
  on a multi-hit only the most recently used copy survives;
- inclusion maintenance: an L3 eviction back-invalidates the covered L2
  slices and L1s, an L2 eviction back-invalidates L1s;
- a write-invalidate L1 directory for threads sharing an address space.

An observer receives fill/hit/evict events per slice — the MorphCache
controller attaches its ACFVs there, and the oracle footprint estimator of
Figure 5 uses the same interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.caches.cache import CacheSlice, Entry
from repro.caches.stats import HierarchyStats
from repro.config import MachineConfig
from repro.resilience.errors import FaultInjectedError

L2 = "l2"
L3 = "l3"


class HierarchyObserver:
    """Event sink for per-slice cache activity.  All hooks are optional."""

    def on_hit(self, level: str, slice_id: int, core: int, tag: int) -> None:
        """A lookup hit ``tag`` in slice ``slice_id`` on behalf of ``core``."""

    def on_fill(self, level: str, slice_id: int, core: int, tag: int) -> None:
        """``tag`` was installed into slice ``slice_id`` for ``core``."""

    def on_evict(self, level: str, slice_id: int, tag: int,
                 owner: int = -1) -> None:
        """``tag`` left slice ``slice_id`` (replacement or invalidation)."""


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory reference."""

    latency: int
    level: str
    """Where the reference was served: ``l1``, ``l2``, ``l3`` or ``mem``."""

    remote: bool
    """True when served by a non-local slice of a merged group."""


class CacheHierarchy:
    """The CMP cache substrate (see module docstring)."""

    def __init__(
        self,
        config: MachineConfig,
        charge_remote_latency: bool = True,
        observer: Optional[HierarchyObserver] = None,
    ) -> None:
        self.config = config
        self.charge_remote_latency = charge_remote_latency
        self.observer = observer or HierarchyObserver()
        n = config.cores
        rep = config.replacement
        self.l1s = [CacheSlice(config.l1.sets, config.l1.ways, rep, i) for i in range(n)]
        self.l2s = [CacheSlice(config.l2_slice.sets, config.l2_slice.ways, rep, i)
                    for i in range(n)]
        self.l3s = [CacheSlice(config.l3_slice.sets, config.l3_slice.ways, rep, i)
                    for i in range(n)]
        self.stats = HierarchyStats.for_machine(n)
        self._stamp = 0
        self.bus_penalty = 0
        """Extra cycles a remote (merged) hit pays while a bus fault stalls
        the arbiter; set by the fault injector, 0 in healthy epochs."""

        # Slices taken offline by injected faults, per level.
        self._disabled: Dict[str, Set[int]] = {L2: set(), L3: set()}
        # line -> cores holding the line in their L1 (inclusion directory).
        self._l1_directory: Dict[int, Set[int]] = {}
        private = [(i,) for i in range(n)]
        self._l2_groups: List[Tuple[int, ...]] = []
        self._l3_groups: List[Tuple[int, ...]] = []
        self._l2_group_of: List[Tuple[int, ...]] = []
        self._l3_group_of: List[Tuple[int, ...]] = []
        self._l2_search_order: List[Tuple[int, ...]] = []
        self._l3_search_order: List[Tuple[int, ...]] = []
        self.set_topology(private, list(private))

    # -- topology ----------------------------------------------------------

    def set_topology(
        self,
        l2_groups: Sequence[Tuple[int, ...]],
        l3_groups: Sequence[Tuple[int, ...]],
    ) -> None:
        """Install a new slice grouping at both levels.

        ``l2_groups`` / ``l3_groups`` must each partition ``range(cores)``.
        Every L2 group must be contained in a single L3 group (the inclusion
        requirement of Sections 2.2/2.3).  Duplicate copies that sharing may
        create are *not* flushed here — lazy invalidation handles them.
        """
        n = self.config.cores
        for name, groups in ((L2, l2_groups), (L3, l3_groups)):
            seen = sorted(s for g in groups for s in g)
            if seen != list(range(n)):
                raise ValueError(f"{name} groups {groups} do not partition 0..{n - 1}")
        l3_of: Dict[int, Tuple[int, ...]] = {}
        for group in l3_groups:
            for slice_id in group:
                l3_of[slice_id] = tuple(group)
        for group in l2_groups:
            covering = {l3_of[s] for s in group}
            if len(covering) != 1:
                raise ValueError(
                    f"L2 group {group} spans multiple L3 groups {covering}: "
                    "inclusion would be violated"
                )
        self._l2_groups = [tuple(g) for g in l2_groups]
        self._l3_groups = [tuple(g) for g in l3_groups]
        self._l2_group_of = [()] * n
        self._l3_group_of = [()] * n
        for group in self._l2_groups:
            for slice_id in group:
                self._l2_group_of[slice_id] = group
        for group in self._l3_groups:
            for slice_id in group:
                self._l3_group_of[slice_id] = group
        self._recompute_search_orders()
        self._repair_after_reconfiguration()

    def _recompute_search_orders(self) -> None:
        """Derive per-core lookup orders, skipping fault-disabled slices."""
        n = self.config.cores
        self._l2_search_order = [()] * n
        self._l3_search_order = [()] * n
        for group in self._l2_groups:
            for slice_id in group:
                self._l2_search_order[slice_id] = _search_order(
                    slice_id, group, self._disabled[L2])
        for group in self._l3_groups:
            for slice_id in group:
                self._l3_search_order[slice_id] = _search_order(
                    slice_id, group, self._disabled[L3])

    # -- fault support -----------------------------------------------------

    def disabled_slices(self, level: str) -> Set[int]:
        """Slices currently offline at ``level`` (injected faults)."""
        return set(self._disabled[level])

    def set_faulted_slices(self, level: str, slice_ids: Set[int]) -> None:
        """Take the given slices offline at ``level`` (and the rest online).

        Newly-offline slices are flushed (a failed slice loses its data) and
        excluded from every group's lookup/fill path; the surviving slices
        of each group carry on serving.  Inclusion is re-established by the
        standard reconfiguration repair.  Re-enabled slices come back empty.

        Raises:
            FaultInjectedError: disabling every slice of a level — the
                machine would be unable to cache anything there.
        """
        slice_ids = {int(s) for s in slice_ids}
        n = self.config.cores
        if any(not 0 <= s < n for s in slice_ids):
            raise FaultInjectedError(
                f"{level} fault targets {sorted(slice_ids)} outside 0..{n - 1}")
        if len(slice_ids) >= n:
            raise FaultInjectedError(
                f"fault set disables every {level} slice; no capacity left")
        if slice_ids == self._disabled[level]:
            return
        newly_offline = slice_ids - self._disabled[level]
        self._disabled[level] = slice_ids
        slices = self.l2s if level == L2 else self.l3s
        slice_stats = self.stats.l2_slices if level == L2 else self.stats.l3_slices
        for slice_id in newly_offline:
            for entry in slices[slice_id].flush():
                slice_stats[slice_id].evictions += 1
                self.observer.on_evict(level, slice_id, entry.line, entry.owner)
        self._recompute_search_orders()
        self._repair_after_reconfiguration()

    def _repair_after_reconfiguration(self) -> None:
        """Evict lines a topology change made unreachable or non-inclusive.

        A split leaves lines stranded in slices their owner can no longer
        reach; those lines would never hit again and, worse, an L2 copy may
        lose its backing L3 copy, breaking inclusion.  Hardware would handle
        this with (lazy) invalidation; the repair here invalidates orphans
        eagerly at the reconfiguration boundary, which is rare enough that
        the cost is irrelevant (and the lost-locality penalty of refetching
        is faithfully paid by the subsequent misses).
        """
        # L3 orphans: owner can no longer address this slice.
        for slice_id, l3 in enumerate(self.l3s):
            for entry in l3.entries():
                if slice_id not in self._l3_group_of[entry.owner]:
                    l3.invalidate_entry(entry)
                    self.stats.l3_slices[slice_id].evictions += 1
                    self.observer.on_evict(L3, slice_id, entry.line, entry.owner)
        # L2 orphans: unreachable by owner, or L3 backing copy gone.
        for slice_id, l2 in enumerate(self.l2s):
            l3_group = self._l3_group_of[slice_id]
            for entry in l2.entries():
                unreachable = slice_id not in self._l2_group_of[entry.owner]
                unbacked = not any(entry.line in self.l3s[s] for s in l3_group)
                if unreachable or unbacked:
                    l2.invalidate_entry(entry)
                    self.stats.l2_slices[slice_id].evictions += 1
                    self.observer.on_evict(L2, slice_id, entry.line, entry.owner)
        # L1 copies must still be backed by the core's (new) L2 group.
        for line, holders in list(self._l1_directory.items()):
            for core in list(holders):
                backed = any(line in self.l2s[s]
                             for s in self._l2_group_of[core])
                if not backed:
                    self.l1s[core].invalidate(line)
                    holders.discard(core)
            if not holders:
                del self._l1_directory[line]

    @property
    def l2_groups(self) -> List[Tuple[int, ...]]:
        return list(self._l2_groups)

    @property
    def l3_groups(self) -> List[Tuple[int, ...]]:
        return list(self._l3_groups)

    def l2_group_of(self, slice_id: int) -> Tuple[int, ...]:
        return self._l2_group_of[slice_id]

    def l3_group_of(self, slice_id: int) -> Tuple[int, ...]:
        return self._l3_group_of[slice_id]

    # -- the access path ---------------------------------------------------

    def access(self, core: int, line: int, write: bool = False) -> AccessResult:
        """Issue one reference from ``core``; returns level and latency."""
        self._stamp += 1
        stamp = self._stamp
        lat = self.config.latency
        core_stats = self.stats.cores[core]
        core_stats.accesses += 1

        # L1.
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None:
            l1.touch(entry, stamp)
            core_stats.l1_hits += 1
            latency = lat.l1_hit
            if write:
                entry.dirty = True
                latency += self._invalidate_other_l1s(core, line)
            return AccessResult(latency=latency, level="l1", remote=False)

        # L2 group.
        hit_slice, latency = self._lookup_group(L2, core, line, stamp)
        if hit_slice is not None:
            remote = hit_slice != core
            if remote:
                core_stats.l2_remote_hits += 1
            else:
                core_stats.l2_local_hits += 1
            total = latency + self._fill_l1(core, line, write, stamp)
            if write:
                total += self._invalidate_other_l1s(core, line)
            return AccessResult(latency=total, level="l2", remote=remote)

        # L3 group.
        hit_slice, latency = self._lookup_group(L3, core, line, stamp)
        if hit_slice is not None:
            remote = hit_slice != core
            if remote:
                core_stats.l3_remote_hits += 1
            else:
                core_stats.l3_local_hits += 1
            l2_filled = self._fill_group(L2, core, line, write, stamp)
            total = latency
            if l2_filled is not None:
                total += self._fill_l1(core, line, write, stamp)
            if write:
                total += self._invalidate_other_l1s(core, line)
            return AccessResult(latency=total, level="l3", remote=remote)

        # Main memory.  Fills cascade only while the parent level succeeded:
        # with a whole group fault-disabled the lower levels skip caching
        # too, preserving inclusion (an L2 copy must have an L3 backing).
        core_stats.memory_accesses += 1
        core_stats.memory_cycles += lat.memory
        total = lat.memory
        if self._fill_group(L3, core, line, write, stamp) is not None:
            if self._fill_group(L2, core, line, write, stamp) is not None:
                total += self._fill_l1(core, line, write, stamp)
        if write:
            total += self._invalidate_other_l1s(core, line)
        return AccessResult(latency=total, level="mem", remote=False)

    # -- group mechanics ---------------------------------------------------

    def _lookup_group(
        self, level: str, core: int, line: int, stamp: int
    ) -> Tuple[Optional[int], int]:
        """Search the core's group at ``level``; return (hit slice, latency).

        Implements lazy invalidation: when the line is found in several
        slices of a merged group (duplicates left over from a merge), only
        the most recently used copy is kept.
        """
        slices = self.l2s if level == L2 else self.l3s
        slice_stats = self.stats.l2_slices if level == L2 else self.stats.l3_slices
        lat = self.config.latency
        local_hit = lat.l2_local_hit if level == L2 else lat.l3_local_hit
        merged_hit = lat.l2_merged_hit if level == L2 else lat.l3_merged_hit
        order = (self._l2_search_order if level == L2 else self._l3_search_order)[core]

        hits: List[Tuple[int, Entry]] = []
        for slice_id in order:
            entry = slices[slice_id].lookup(line)
            if entry is not None:
                hits.append((slice_id, entry))
        if not hits:
            slice_stats[core].misses += 1
            return None, 0

        hits.sort(key=lambda item: item[1].stamp, reverse=True)
        winner_slice, winner = hits[0]
        for dup_slice, dup in hits[1:]:
            slices[dup_slice].invalidate_entry(dup)
            slice_stats[dup_slice].lazy_invalidations += 1
            if dup.dirty:
                winner.dirty = True
            self.observer.on_evict(level, dup_slice, line, dup.owner)
        slices[winner_slice].touch(winner, stamp)
        slice_stats[winner_slice].hits += 1
        self.observer.on_hit(level, winner_slice, core, line)
        is_local = winner_slice == core
        if is_local or not self.charge_remote_latency:
            return winner_slice, local_hit
        # Remote hits pay the merged latency plus the segmented-bus span
        # cost for slices beyond the immediate neighbourhood (Section 5.5),
        # plus the arbiter-stall penalty while a bus fault is active.
        distance_penalty = (abs(winner_slice - core) - 1) * lat.distance_cycles_per_hop
        return winner_slice, merged_hit + max(0, distance_penalty) + self.bus_penalty

    def _fill_group(self, level: str, core: int, line: int, write: bool,
                    stamp: int) -> Optional[int]:
        """Install ``line`` into the core's group at ``level``.

        Placement: the local slice if its set has room, else any group slice
        with room, else the slice holding the group-wide LRU victim (summed
        associativity per footnote 1).  Returns the slice filled, or None
        when every slice of the group is fault-disabled (the line is simply
        not cached at this level).
        """
        slices = self.l2s if level == L2 else self.l3s
        slice_stats = self.stats.l2_slices if level == L2 else self.stats.l3_slices
        order = (self._l2_search_order if level == L2 else self._l3_search_order)[core]
        if not order:
            return None

        target = None
        for slice_id in order:
            if slices[slice_id].has_room(line):
                target = slice_id
                break
        if target is None:
            oldest_stamp = None
            for slice_id in order:
                candidate = slices[slice_id].victim_candidate(line)
                if candidate is not None and (
                    oldest_stamp is None or candidate.stamp < oldest_stamp
                ):
                    oldest_stamp = candidate.stamp
                    target = slice_id
            if target is None:  # pragma: no cover - sets cannot all be unfull and victimless
                target = order[0]
        victim = slices[target].insert(line, core, write, stamp)
        slice_stats[target].insertions += 1
        self.observer.on_fill(level, target, core, line)
        if victim is not None:
            slice_stats[target].evictions += 1
            self.observer.on_evict(level, target, victim.line, victim.owner)
            self._back_invalidate(level, target, victim.line)
        return target

    def _back_invalidate(self, level: str, from_slice: int, line: int) -> None:
        """Maintain inclusion after an eviction at ``level``."""
        if level == L3:
            # The line can only live in L2 slices covered by this L3 group.
            for slice_id in self._l3_group_of[from_slice]:
                removed = self.l2s[slice_id].invalidate(line)
                if removed is not None:
                    self.stats.l2_slices[slice_id].evictions += 1
                    self.observer.on_evict(L2, slice_id, line, removed.owner)
        # In both cases the L1 copies must go (L1 is inclusive in L2).
        holders = self._l1_directory.get(line)
        if holders:
            for core in list(holders):
                self.l1s[core].invalidate(line)
            del self._l1_directory[line]

    # -- L1 handling -------------------------------------------------------

    def _fill_l1(self, core: int, line: int, write: bool, stamp: int) -> int:
        """Install into the core's L1; returns extra latency (always 0)."""
        victim = self.l1s[core].insert(line, core, write, stamp)
        self._l1_directory.setdefault(line, set()).add(core)
        if victim is not None:
            holders = self._l1_directory.get(victim.line)
            if holders is not None:
                holders.discard(core)
                if not holders:
                    del self._l1_directory[victim.line]
            if victim.dirty:
                # Write back into the L2 copy (inclusion guarantees presence
                # unless a concurrent back-invalidation removed it).
                for slice_id in self._l2_search_order[core]:
                    entry = self.l2s[slice_id].lookup(victim.line)
                    if entry is not None:
                        entry.dirty = True
                        break
        return 0

    def _invalidate_other_l1s(self, core: int, line: int) -> int:
        """Write-invalidate coherence for threads sharing an address space."""
        holders = self._l1_directory.get(line)
        if not holders:
            return 0
        others = [c for c in holders if c != core]
        if not others:
            return 0
        for other in others:
            self.l1s[other].invalidate(line)
            holders.discard(other)
            self.stats.cores[core].coherence_invalidations += 1
        return self.config.latency.coherence_invalidate

    # -- invariants (used by tests and property checks) ---------------------

    def check_inclusion(self) -> None:
        """Raise AssertionError if any inclusion invariant is violated."""
        for core, l1 in enumerate(self.l1s):
            group = self._l2_group_of[core]
            for line in l1.resident_lines():
                if not any(line in self.l2s[s] for s in group):
                    raise AssertionError(
                        f"L1 of core {core} holds line {line:#x} absent from "
                        f"its L2 group {group}"
                    )
        for slice_id, l2 in enumerate(self.l2s):
            group = self._l3_group_of[slice_id]
            for line in l2.resident_lines():
                if not any(line in self.l3s[s] for s in group):
                    raise AssertionError(
                        f"L2 slice {slice_id} holds line {line:#x} absent "
                        f"from its L3 group {group}"
                    )


def _search_order(local: int, group: Tuple[int, ...],
                  disabled: Set[int] = frozenset()) -> Tuple[int, ...]:
    """Local slice first, then the rest of the group by physical distance.

    Fault-disabled slices are excluded entirely; a core whose local slice is
    offline is served by the surviving slices of its group (possibly none).
    """
    alive = [s for s in group if s not in disabled]
    rest = sorted((s for s in alive if s != local), key=lambda s: abs(s - local))
    if local in disabled:
        return tuple(rest)
    return (local, *rest)
