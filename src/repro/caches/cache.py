"""A single set-associative cache slice.

A slice stores line addresses directly (the simulator is line-granular), but
exposes the hardware *tag* of a line (the line address with the set-index
bits stripped) because the ACFV hardware of Section 2.1 hashes tags.

Entries carry a monotonic access stamp supplied by the hierarchy; stamps
implement true LRU and order copies during lazy invalidation after a merge.
"""

from __future__ import annotations

from typing import List, Optional

from repro.caches.replacement import make_policy


class Entry:
    """One cache line: its address, owning thread, dirtiness, access stamp."""

    __slots__ = ("line", "owner", "dirty", "stamp")

    def __init__(self, line: int, owner: int, dirty: bool, stamp: int) -> None:
        self.line = line
        self.owner = owner
        self.dirty = dirty
        self.stamp = stamp

    def __repr__(self) -> str:
        return f"Entry(line={self.line:#x}, owner={self.owner}, " \
               f"dirty={self.dirty}, stamp={self.stamp})"


class CacheSlice:
    """One slice of ``sets`` x ``ways`` lines with a replacement policy.

    The slice itself knows nothing about levels, merging or latencies; the
    hierarchy composes slices into groups.  All mutating operations return
    enough information for the caller to maintain inclusion (the evicted
    entry, if any).
    """

    def __init__(self, sets: int, ways: int, replacement: str = "lru",
                 slice_id: int = 0) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("sets and ways must be positive")
        if sets & (sets - 1):
            raise ValueError(f"sets must be a power of two, got {sets}")
        self.sets = sets
        self.ways = ways
        self.slice_id = slice_id
        self._set_mask = sets - 1
        self._set_shift = sets.bit_length() - 1
        self.policy = make_policy(replacement, sets, ways)
        self._lru = replacement == "lru"
        self._data: List[List[Entry]] = [[] for _ in range(sets)]

    # -- address helpers ---------------------------------------------------

    def set_index(self, line: int) -> int:
        """Set that the given line address maps to."""
        return line & self._set_mask

    def tag(self, line: int) -> int:
        """Hardware tag of the line (index bits stripped)."""
        return line >> self._set_shift

    # -- lookup / update ---------------------------------------------------

    def lookup(self, line: int) -> Optional[Entry]:
        """Return the entry holding ``line``, or None.  Does not touch LRU."""
        for entry in self._data[line & self._set_mask]:
            if entry.line == line:
                return entry
        return None

    def touch(self, entry: Entry, stamp: int) -> None:
        """Record a hit on ``entry`` at time ``stamp``."""
        entry.stamp = stamp
        if self._lru:
            return  # true LRU is fully captured by the stamp
        set_index = entry.line & self._set_mask
        way = self._data[set_index].index(entry)
        self.policy.touch(set_index, way)

    def has_room(self, line: int) -> bool:
        """True if the line's set has a free way."""
        return len(self._data[line & self._set_mask]) < self.ways

    def insert(self, line: int, owner: int, dirty: bool, stamp: int) -> Optional[Entry]:
        """Install ``line``; return the evicted entry if the set was full.

        The caller is responsible for checking the line is not already
        present (the hierarchy always performs a group-wide lookup first).
        """
        set_index = line & self._set_mask
        ways = self._data[set_index]
        victim: Optional[Entry] = None
        if len(ways) >= self.ways:
            if self._lru:
                victim_way = min(range(len(ways)), key=lambda i: ways[i].stamp)
            else:
                victim_way = self.policy.victim(set_index, [e.stamp for e in ways])
            victim = ways.pop(victim_way)
        entry = Entry(line, owner, dirty, stamp)
        ways.append(entry)
        if not self._lru:
            self.policy.touch(set_index, len(ways) - 1)
        return victim

    def victim_candidate(self, line: int) -> Optional[Entry]:
        """The entry that *would* be evicted if ``line`` were inserted now."""
        set_index = line & self._set_mask
        ways = self._data[set_index]
        if len(ways) < self.ways:
            return None
        if self._lru:
            return min(ways, key=lambda e: e.stamp)
        return ways[self.policy.victim(set_index, [e.stamp for e in ways])]

    def invalidate(self, line: int) -> Optional[Entry]:
        """Remove ``line`` from the slice; return the entry if it was present."""
        ways = self._data[line & self._set_mask]
        for i, entry in enumerate(ways):
            if entry.line == line:
                return ways.pop(i)
        return None

    def invalidate_entry(self, entry: Entry) -> bool:
        """Remove a specific entry object (used by lazy invalidation)."""
        ways = self._data[entry.line & self._set_mask]
        try:
            ways.remove(entry)
            return True
        except ValueError:
            return False

    # -- introspection -----------------------------------------------------

    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(ways) for ways in self._data)

    def resident_lines(self) -> List[int]:
        """All line addresses currently in the slice (test/oracle helper)."""
        return [entry.line for ways in self._data for entry in ways]

    def entries(self) -> List[Entry]:
        """All valid entries (snapshot; safe to invalidate while iterating)."""
        return [entry for ways in self._data for entry in ways]

    def flush(self) -> List[Entry]:
        """Invalidate everything; return the removed entries."""
        removed = [entry for ways in self._data for entry in ways]
        self._data = [[] for _ in range(self.sets)]
        return removed

    def __contains__(self, line: int) -> bool:
        return self.lookup(line) is not None

    def __repr__(self) -> str:
        return (f"CacheSlice(id={self.slice_id}, sets={self.sets}, "
                f"ways={self.ways}, occupancy={self.occupancy()})")
