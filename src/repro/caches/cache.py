"""A single set-associative cache slice.

A slice stores line addresses directly (the simulator is line-granular), but
exposes the hardware *tag* of a line (the line address with the set-index
bits stripped) because the ACFV hardware of Section 2.1 hashes tags.

Entries carry a monotonic access stamp supplied by the hierarchy; stamps
implement true LRU and order copies during lazy invalidation after a merge.

Hot-path layout: every set is backed by **two** structures kept in lockstep —

- a way *list* (``_data``) in insertion order, which fixes the iteration
  order of ``entries()``/``resident_lines()``/``flush()`` (checkpoint state
  digests hash that order, so it must never change) and carries the way
  indices the PLRU policy operates on;
- a ``line -> Entry`` *dict* (``_index``) giving O(1) ``lookup``,
  ``invalidate`` and ``__contains__`` instead of an O(ways) scan.

Under true LRU the dict is additionally kept in **recency order** (a hit
re-appends its entry), so the LRU victim is simply the first value — O(1)
instead of a ``min()`` scan over the set.  This is exactly equivalent to
min-by-stamp because the hierarchy's stamps are strictly monotonic: recency
order and stamp order coincide, and stamps within a set are unique (each
access touches or inserts at most one entry per slice).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.caches.replacement import make_policy


class Entry:
    """One cache line: its address, owning thread, dirtiness, access stamp."""

    __slots__ = ("line", "owner", "dirty", "stamp")

    def __init__(self, line: int, owner: int, dirty: bool, stamp: int) -> None:
        self.line = line
        self.owner = owner
        self.dirty = dirty
        self.stamp = stamp

    def __repr__(self) -> str:
        return f"Entry(line={self.line:#x}, owner={self.owner}, " \
               f"dirty={self.dirty}, stamp={self.stamp})"


class CacheSlice:
    """One slice of ``sets`` x ``ways`` lines with a replacement policy.

    The slice itself knows nothing about levels, merging or latencies; the
    hierarchy composes slices into groups.  All mutating operations return
    enough information for the caller to maintain inclusion (the evicted
    entry, if any).

    Stamps passed to ``insert``/``touch`` must be monotonically increasing
    (as the hierarchy's global counter guarantees); the O(1) LRU victim
    relies on recency order and stamp order coinciding.
    """

    def __init__(self, sets: int, ways: int, replacement: str = "lru",
                 slice_id: int = 0) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("sets and ways must be positive")
        if sets & (sets - 1):
            raise ValueError(f"sets must be a power of two, got {sets}")
        self.sets = sets
        self.ways = ways
        self.slice_id = slice_id
        self._set_mask = sets - 1
        self._set_shift = sets.bit_length() - 1
        self.policy = make_policy(replacement, sets, ways)
        self._lru = replacement == "lru"
        self._data: List[List[Entry]] = [[] for _ in range(sets)]
        self._index: List[Dict[int, Entry]] = [{} for _ in range(sets)]

    # -- address helpers ---------------------------------------------------

    def set_index(self, line: int) -> int:
        """Set that the given line address maps to."""
        return line & self._set_mask

    def tag(self, line: int) -> int:
        """Hardware tag of the line (index bits stripped)."""
        return line >> self._set_shift

    # -- lookup / update ---------------------------------------------------

    def lookup(self, line: int) -> Optional[Entry]:
        """Return the entry holding ``line``, or None.  Does not touch LRU."""
        return self._index[line & self._set_mask].get(line)

    def touch(self, entry: Entry, stamp: int) -> None:
        """Record a hit on ``entry`` at time ``stamp``."""
        entry.stamp = stamp
        if self._lru:
            # Move to the recency tail so the head stays the LRU victim.
            bucket = self._index[entry.line & self._set_mask]
            del bucket[entry.line]
            bucket[entry.line] = entry
            return
        set_index = entry.line & self._set_mask
        way = self._data[set_index].index(entry)
        self.policy.touch(set_index, way)

    def has_room(self, line: int) -> bool:
        """True if the line's set has a free way."""
        return len(self._data[line & self._set_mask]) < self.ways

    def insert(self, line: int, owner: int, dirty: bool, stamp: int) -> Optional[Entry]:
        """Install ``line``; return the evicted entry if the set was full.

        The caller is responsible for checking the line is not already
        present (the hierarchy always performs a group-wide lookup first).
        """
        set_index = line & self._set_mask
        ways = self._data[set_index]
        bucket = self._index[set_index]
        victim: Optional[Entry] = None
        if len(ways) >= self.ways:
            if self._lru:
                victim = next(iter(bucket.values()))
            else:
                victim_way = self.policy.victim(set_index, [e.stamp for e in ways])
                victim = ways[victim_way]
            ways.remove(victim)
            del bucket[victim.line]
        entry = Entry(line, owner, dirty, stamp)
        ways.append(entry)
        bucket[line] = entry
        if not self._lru:
            self.policy.touch(set_index, len(ways) - 1)
        return victim

    def victim_candidate(self, line: int) -> Optional[Entry]:
        """The entry that *would* be evicted if ``line`` were inserted now."""
        set_index = line & self._set_mask
        ways = self._data[set_index]
        if len(ways) < self.ways:
            return None
        if self._lru:
            return next(iter(self._index[set_index].values()))
        return ways[self.policy.victim(set_index, [e.stamp for e in ways])]

    def invalidate(self, line: int) -> Optional[Entry]:
        """Remove ``line`` from the slice; return the entry if it was present."""
        entry = self._index[line & self._set_mask].pop(line, None)
        if entry is not None:
            self._data[line & self._set_mask].remove(entry)
        return entry

    def invalidate_entry(self, entry: Entry) -> bool:
        """Remove a specific entry object (used by lazy invalidation)."""
        bucket = self._index[entry.line & self._set_mask]
        if bucket.get(entry.line) is not entry:
            return False
        del bucket[entry.line]
        self._data[entry.line & self._set_mask].remove(entry)
        return True

    # -- array-friendly state export/import (batch engine & tests) ---------

    def set_bucket(self, set_index: int) -> Dict[int, "Entry"]:
        """The ``line -> Entry`` dict of one set, in recency order (LRU).

        The batch engine's per-set kernels hoist these dicts once per
        partition instead of re-resolving ``_index[line & mask]`` per
        access.  Mutating the returned dict directly is only sound while
        the lockstep way-list is maintained alongside (as the kernels do).
        """
        return self._index[set_index]

    def set_buckets(self) -> List[Dict[int, "Entry"]]:
        """All per-set recency dicts, indexed by set (LRU victim = first
        value of each dict).  Lockstep with :meth:`way_lists`; same direct
        mutation contract as :meth:`set_bucket`."""
        return self._index

    def way_lists(self) -> List[List[Entry]]:
        """All per-set way lists in digest order, indexed by set.

        The batch kernels hoist these once per epoch and mutate them
        directly (keeping :meth:`set_buckets` in lockstep), which is what
        fixes the checkpoint/digest iteration order they must preserve.
        """
        return self._data

    def export_arrays(self) -> Dict[str, np.ndarray]:
        """Snapshot the slice state as parallel numpy arrays.

        Entries appear in digest order (way-list order per set, sets
        ascending) so two slices are state-equal iff their exports are
        element-wise equal.  Used by the batch-engine differential tests
        and available to future vectorised kernels.
        """
        sets, lines, owners, dirty, stamps = [], [], [], [], []
        for set_index, ways in enumerate(self._data):
            for entry in ways:
                sets.append(set_index)
                lines.append(entry.line)
                owners.append(entry.owner)
                dirty.append(entry.dirty)
                stamps.append(entry.stamp)
        return {
            "set": np.asarray(sets, dtype=np.int64),
            "line": np.asarray(lines, dtype=np.int64),
            "owner": np.asarray(owners, dtype=np.int64),
            "dirty": np.asarray(dirty, dtype=bool),
            "stamp": np.asarray(stamps, dtype=np.int64),
        }

    def import_arrays(self, state: Dict[str, np.ndarray]) -> None:
        """Rebuild the slice from an :meth:`export_arrays` snapshot.

        The way-lists are restored in export order; under true LRU the
        recency dicts are rebuilt in stamp order (recency and stamp order
        coincide for states produced by monotonic-stamp hierarchies), so a
        round trip is state-identical including the LRU victim choice.
        """
        self._data = [[] for _ in range(self.sets)]
        self._index = [{} for _ in range(self.sets)]
        entries = [Entry(int(line), int(owner), bool(d), int(stamp))
                   for line, owner, d, stamp in zip(
                       state["line"], state["owner"],
                       state["dirty"], state["stamp"])]
        for set_index, entry in zip(state["set"], entries):
            set_index = int(set_index)
            if len(self._data[set_index]) >= self.ways:
                raise ValueError(
                    f"set {set_index} over-full in imported state")
            self._data[set_index].append(entry)
        for set_index in range(self.sets):
            for entry in sorted(self._data[set_index], key=lambda e: e.stamp):
                self._index[set_index][entry.line] = entry

    # -- introspection -----------------------------------------------------

    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(ways) for ways in self._data)

    def resident_lines(self) -> List[int]:
        """All line addresses currently in the slice (test/oracle helper)."""
        return [entry.line for ways in self._data for entry in ways]

    def entries(self) -> List[Entry]:
        """All valid entries (snapshot; safe to invalidate while iterating)."""
        return [entry for ways in self._data for entry in ways]

    def flush(self) -> List[Entry]:
        """Invalidate everything; return the removed entries."""
        removed = [entry for ways in self._data for entry in ways]
        self._data = [[] for _ in range(self.sets)]
        self._index = [{} for _ in range(self.sets)]
        return removed

    def __contains__(self, line: int) -> bool:
        return line in self._index[line & self._set_mask]

    def __repr__(self) -> str:
        return (f"CacheSlice(id={self.slice_id}, sets={self.sets}, "
                f"ways={self.ways}, occupancy={self.occupancy()})")
