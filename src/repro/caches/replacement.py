"""Replacement policies for cache slices.

Two policies are provided, matching Section 2.2 of the paper:

- :class:`LruPolicy` — true LRU via monotonic access stamps.  Stamps make
  merging trivial: the LRU entry of a merged group is simply the entry with
  the smallest stamp across the group's slices ("in an ideal LRU
  implementation, we can merge the entries according to time-stamps").
- :class:`TreePlruPolicy` — generalized tree pseudo-LRU (Robinson's
  tree-LRU, the paper's practical alternative).  When slices are merged the
  per-slice trees are kept as-is and "future accesses quickly determine a new
  LRU sub-tree"; across slices the victim slice is chosen by comparing each
  slice's candidate stamp, which converges to the same behaviour.

Both operate on one *set* of one slice.  The policy owns no entry storage;
it only ranks ways.
"""

from __future__ import annotations

from typing import List, Sequence


class LruPolicy:
    """True LRU: the victim is the way with the smallest access stamp."""

    name = "lru"

    def __init__(self, sets: int, ways: int) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("sets and ways must be positive")
        self.sets = sets
        self.ways = ways

    def touch(self, set_index: int, way: int) -> None:
        """Record an access; stamps are maintained by the entries themselves."""
        # True LRU needs no per-set state beyond the entry stamps.

    def victim(self, set_index: int, stamps: Sequence[int]) -> int:
        """Return the way to evict given the per-way access stamps."""
        return min(range(len(stamps)), key=stamps.__getitem__)


class TreePlruPolicy:
    """Tree-based pseudo LRU over a power-of-two number of ways.

    Each set keeps ``ways - 1`` tree bits.  Bit ``i`` has children
    ``2i + 1`` and ``2i + 2``; leaves map to ways.  A 0 bit means the LRU
    side is the left subtree, 1 means the right.  On an access the bits on
    the path to the accessed way are pointed *away* from it; the victim is
    found by following the bits.
    """

    name = "plru"

    def __init__(self, sets: int, ways: int) -> None:
        if sets <= 0 or ways <= 0:
            raise ValueError("sets and ways must be positive")
        if ways & (ways - 1):
            raise ValueError(f"tree-PLRU needs power-of-two ways, got {ways}")
        self.sets = sets
        self.ways = ways
        self._bits: List[List[int]] = [[0] * max(1, ways - 1) for _ in range(sets)]

    def touch(self, set_index: int, way: int) -> None:
        """Update the tree so the accessed way is protected (MRU side)."""
        if self.ways == 1:
            return
        bits = self._bits[set_index]
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                bits[node] = 1  # LRU side is now the right subtree
                node = 2 * node + 1
                hi = mid
            else:
                bits[node] = 0  # LRU side is now the left subtree
                node = 2 * node + 2
                lo = mid
        self._check_node(node)

    def victim(self, set_index: int, stamps: Sequence[int]) -> int:
        """Follow the tree bits to the pseudo-LRU way (stamps are unused)."""
        if self.ways == 1:
            return 0
        bits = self._bits[set_index]
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if bits[node] == 0:
                node = 2 * node + 1
                hi = mid
            else:
                node = 2 * node + 2
                lo = mid
        return lo

    def _check_node(self, node: int) -> None:
        if node >= 2 * len(self._bits[0]) + 1:
            raise AssertionError("tree walk escaped the node array")


def make_policy(name: str, sets: int, ways: int):
    """Instantiate a replacement policy by configuration name."""
    if name == "lru":
        return LruPolicy(sets, ways)
    if name == "plru":
        return TreePlruPolicy(sets, ways)
    raise ValueError(f"unknown replacement policy {name!r}")
