"""A lightweight metrics registry: counters, gauges and histograms.

The registry is the aggregate side of the observability layer (the trace
recorder in :mod:`repro.obs.trace` is the event side).  Instrumented
modules — the simulation engine, the batch engine, the hierarchy, the
controller, the segmented bus and the sweep supervisor — all guard their
updates with ``if REGISTRY.enabled:``, and every hook site sits on a
per-epoch or per-run boundary, never inside the per-access hot loop, so the
disabled default costs one attribute load per epoch at most.

The worker pool (:mod:`repro.serve.pool`) adds its own family on the same
boundaries: ``repro_pool_admissions_total``, ``repro_pool_claims_total``
(labelled ``fresh``/``adopt``), ``repro_pool_jobs_total`` by terminal
state, and ``repro_pool_reclaims``/``repro_pool_jobs`` gauges refreshed by
``pool_status``.

Naming convention (see DESIGN.md §9): ``repro_<subsystem>_<what>_<unit>``,
with ``_total`` for counters, plain nouns for gauges and ``_seconds`` (or
another unit suffix) for histograms.  Label names are static per metric and
the number of distinct label-value sets is capped (:class:`CardinalityError`
on overflow) so an instrumentation bug cannot grow memory without bound.

Exposition: :meth:`MetricsRegistry.expose_text` renders the Prometheus text
format (``# HELP`` / ``# TYPE`` plus one sample line per series, cumulative
``_bucket``/``_sum``/``_count`` for histograms); :meth:`MetricsRegistry.
dump_json` returns the same data as a plain JSON-serialisable dict.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CardinalityError",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "REGISTRY",
]


class MetricError(ValueError):
    """Misuse of the metrics API (bad name, type clash, negative inc...)."""


class CardinalityError(MetricError):
    """A metric exceeded its distinct label-value-set cap."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets, in seconds — sized for per-run wall clocks.
DEFAULT_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
                   60.0, 120.0, 300.0)


def _format_value(value: float) -> str:
    """A number in Prometheus sample syntax (ints without a trailing .0)."""
    if isinstance(value, bool):  # bools are ints; never wanted here
        value = int(value)
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{_escape_label(v)}"'
                     for n, v in zip(names, values))
    return "{" + inner + "}"


class _CounterSeries:
    """One (label-values) series of a counter: a monotone float."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


class _GaugeSeries:
    """One series of a gauge: a float that may move either way."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramSeries:
    """One series of a histogram: per-bucket counts plus sum and count."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts including the +Inf bucket (== count)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out


class _Metric:
    """Shared machinery: label validation, the series map, the cap."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Tuple[str, ...], max_series: int) -> None:
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.max_series = max_series
        self._series: Dict[Tuple[str, ...], object] = {}

    def _new_series(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, **labels: object):
        """The series for these label values (created on first use)."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels {list(self.label_names)}, "
                f"got {sorted(labels)}")
        key = tuple(str(labels[n]) for n in self.label_names)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_series:
                raise CardinalityError(
                    f"metric {self.name!r} exceeded its cap of "
                    f"{self.max_series} distinct label sets (rejected "
                    f"{dict(zip(self.label_names, key))})")
            series = self._series[key] = self._new_series()
        return series

    def series(self) -> List[Tuple[Tuple[str, ...], object]]:
        """All series in insertion order (stable exposition)."""
        return list(self._series.items())


class Counter(_Metric):
    """A monotonically increasing value (events, accesses, retries...)."""

    type_name = "counter"

    def _new_series(self) -> _CounterSeries:
        return _CounterSeries()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-less series (shorthand for ``labels()``)."""
        self.labels().inc(amount)

    @property
    def value(self) -> float:
        """The label-less series' value (0 if never incremented)."""
        series = self._series.get(())
        return series.value if series is not None else 0.0


class Gauge(_Metric):
    """A point-in-time value (groups installed, slices offline...)."""

    type_name = "gauge"

    def _new_series(self) -> _GaugeSeries:
        return _GaugeSeries()

    def set(self, value: float) -> None:
        self.labels().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    @property
    def value(self) -> float:
        series = self._series.get(())
        return series.value if series is not None else 0.0


class Histogram(_Metric):
    """A distribution over fixed buckets (per-run wall-clock seconds...)."""

    type_name = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Tuple[str, ...], max_series: int,
                 buckets: Sequence[float]) -> None:
        bucket_tuple = tuple(float(b) for b in buckets)
        if not bucket_tuple:
            raise MetricError(f"histogram {name!r} needs at least one bucket")
        if list(bucket_tuple) != sorted(set(bucket_tuple)):
            raise MetricError(
                f"histogram {name!r} buckets must be strictly increasing: "
                f"{list(buckets)}")
        super().__init__(name, help_text, label_names, max_series)
        self.buckets = bucket_tuple

    def _new_series(self) -> _HistogramSeries:
        return _HistogramSeries(self.buckets)

    def observe(self, value: float) -> None:
        self.labels().observe(value)


class MetricsRegistry:
    """Holds every metric; disabled by default (zero instrumentation cost).

    Args:
        enabled: start collecting immediately (default off — the simulator's
            instrumented sites all check :attr:`enabled` first).
        max_label_sets: per-metric cap on distinct label-value sets.
    """

    def __init__(self, enabled: bool = False, max_label_sets: int = 64) -> None:
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self._metrics: Dict[str, _Metric] = {}

    # -- lifecycle ----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric and its values (test isolation, fresh runs)."""
        self._metrics.clear()

    # -- registration -------------------------------------------------------

    def _register(self, cls, name: str, help_text: str,
                  labels: Sequence[str], **kwargs) -> _Metric:
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        label_names = tuple(labels)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(
                    f"invalid label name {label!r} on metric {name!r}")
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls or existing.label_names != label_names:
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.type_name} with labels "
                    f"{list(existing.label_names)}")
            return existing
        metric = cls(name, help_text, label_names,
                     max_series=self.max_label_sets, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help_text, labels,
                              buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    # -- exposition ---------------------------------------------------------

    def expose_text(self) -> str:
        """The Prometheus text exposition format, one block per metric."""
        lines: List[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.type_name}")
            for key, series in metric.series():
                if isinstance(series, _HistogramSeries):
                    cumulative = series.cumulative()
                    les = [repr(b) for b in series.buckets] + ["+Inf"]
                    for le, count in zip(les, cumulative):
                        labels = _render_labels(
                            tuple(metric.label_names) + ("le",), key + (le,))
                        lines.append(
                            f"{metric.name}_bucket{labels} {count}")
                    labels = _render_labels(metric.label_names, key)
                    lines.append(f"{metric.name}_sum{labels} "
                                 f"{_format_value(series.sum)}")
                    lines.append(f"{metric.name}_count{labels} "
                                 f"{series.count}")
                else:
                    labels = _render_labels(metric.label_names, key)
                    lines.append(f"{metric.name}{labels} "
                                 f"{_format_value(series.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def dump_json(self) -> Dict[str, dict]:
        """The same data as :meth:`expose_text`, JSON-serialisable."""
        out: Dict[str, dict] = {}
        for metric in self._metrics.values():
            entries = []
            for key, series in metric.series():
                labels = dict(zip(metric.label_names, key))
                if isinstance(series, _HistogramSeries):
                    entries.append({
                        "labels": labels,
                        "buckets": {repr(b): c for b, c in
                                    zip(series.buckets, series.cumulative())},
                        "sum": series.sum,
                        "count": series.count,
                    })
                else:
                    entries.append({"labels": labels, "value": series.value})
            out[metric.name] = {
                "type": metric.type_name,
                "help": metric.help,
                "label_names": list(metric.label_names),
                "series": entries,
            }
        return out


#: The process-wide default registry every instrumented module consults.
#: Disabled until a caller (CLI ``--metrics``, a test, an example) enables
#: it, so plain simulation runs pay nothing.
REGISTRY = MetricsRegistry(enabled=False)
