"""Render a reconfiguration timeline from a recorded trace.

Answers the question the trace exists for: *which cores merged or split at
which epoch, and why*.  The renderer walks a trace's records in order and
prints one line per event — faults, guard interventions, reconfiguration
decisions with their ACFV inputs — plus an ASCII topology picture whenever
the installed grouping changes, and closes with the run's throughput
sparkline.  Exposed on the CLI as ``repro trace PATH`` and toured in
``examples/trace_tour.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.obs.trace import load_trace
from repro.render import render_series, render_topology

__all__ = ["load_trace", "render_timeline"]


def _format_groups(groups: Sequence[Sequence[int]]) -> str:
    return "+".join("[" + ",".join(str(c) for c in g) + "]" for g in groups)


def _event_line(record: dict) -> Optional[str]:
    kind = record.get("kind")
    epoch = record.get("epoch")
    if kind == "fault":
        detail = f"{record.get('fault')} level={record.get('level')}"
        target = record.get("target")
        if target is not None and target >= 0:
            detail += f" target={target}"
        duration = record.get("duration")
        if duration is not None and duration > 1:
            detail += f" duration={duration}"
        return f"epoch {epoch:>3}  fault    {detail}"
    if kind == "guard":
        return (f"epoch {epoch:>3}  guard    {record.get('action')} "
                f"({record.get('violation')}) -> "
                f"mode {record.get('mode_after')}")
    if kind == "reconfig":
        acfv = record.get("acfv_ones") or {}
        inputs = " ".join(f"core{c}:|ACFV|={acfv[c]}" for c in sorted(
            acfv, key=int))
        line = (f"epoch {epoch:>3}  {record.get('action'):<8} "
                f"{record.get('level')} {_format_groups(record.get('groups', []))}"
                f" — {record.get('reason')}")
        label = record.get("label")
        line += f" -> {label}" if label else " -> asymmetric"
        if inputs:
            line += f"  [{inputs}]"
        return line
    return None


def render_timeline(records: List[dict], indent: str = "  ") -> str:
    """The human-readable timeline for one run's trace records."""
    lines: List[str] = []
    throughput: List[float] = []
    cores = 16
    last_topology = None

    for record in records:
        kind = record.get("kind")
        if kind == "run-start":
            cores = len(record.get("cores", [])) or cores
            faults = record.get("faults")
            lines.append(
                f"{record.get('scheme')} on {record.get('workload')} — "
                f"seed {record.get('seed')}, {record.get('epochs')} epochs "
                f"(+{record.get('warmup_epochs')} warmup), "
                f"{record.get('accesses_per_core')} accesses/core/epoch")
            if faults:
                lines.append(f"{indent}fault plan: {faults}")
            continue
        if kind == "epoch":
            ipcs = record.get("ipcs") or {}
            if record.get("measured") is not None:
                throughput.append(sum(ipcs.values()))
            topology = record.get("topology")
            if topology is not None and topology != last_topology:
                lines.append(f"{indent}epoch {record.get('epoch'):>3}  "
                             f"topology now {record.get('label')}:")
                picture = render_topology(
                    [tuple(g) for g in topology["l2"]],
                    [tuple(g) for g in topology["l3"]],
                    cores=cores)
                lines.extend(f"{indent}  {row}" for row in
                             picture.splitlines())
                last_topology = topology
            continue
        if kind == "run-end":
            lines.append(
                f"run end: {record.get('epochs')} measured epochs, mean "
                f"throughput {record.get('mean_throughput'):.3f}"
                + (f", {record.get('reconfigurations')} reconfigurations"
                   if record.get("reconfigurations") is not None else ""))
            continue
        event = _event_line(record)
        if event is not None:
            lines.append(indent + event)

    if throughput:
        lines.append(render_series(throughput, label="throughput "))
    return "\n".join(lines)
