"""Structured epoch-level trace recording (JSONL + in-memory ring buffer).

A :class:`TraceRecorder` captures one record per observable event of a
simulation run: the run header, injected faults, guard interventions,
reconfiguration decisions (with the triggering ACFV/decision inputs), one
per-epoch statistics record, and a run footer.  Records are emitted only at
epoch boundaries — never inside the per-access hot loop — so tracing costs
nothing when off and an epoch-proportional amount when on.

**Canonical encoding.**  Every record is serialised with sorted keys,
compact separators and ASCII escapes (:func:`canonical_line`), so two runs
that emit equal records produce byte-identical JSONL files.  Combined with
the engines' bit-identical guarantee this extends to the engines themselves:
an event-engine run and a batch-engine run of the same ``RunSpec`` write the
same trace file, byte for byte (``tests/obs/test_trace_equivalence.py``).
For that reason records never mention the engine, wall-clock time, process
ids or file paths.

The schema is documented in DESIGN.md §9; ``schema`` in the ``run-start``
record carries :data:`SCHEMA_VERSION` so readers can detect drift.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = [
    "SCHEMA_VERSION",
    "TraceRecorder",
    "canonical_line",
    "load_trace",
    "CORE_STAT_FIELDS",
    "SLICE_STAT_FIELDS",
    "snapshot_hierarchy",
    "hierarchy_delta",
]

#: Bumped whenever a record kind gains, loses or renames a field.
SCHEMA_VERSION = 1


def canonical_line(record: Mapping) -> str:
    """One record as its canonical JSON line (no trailing newline).

    Sorted keys + compact separators + ASCII escapes: emitting the same
    record twice — from either engine — yields the same bytes.
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def load_trace(path) -> List[dict]:
    """Parse a JSONL trace file back into its records, in order."""
    records = []
    with open(path, "r", encoding="ascii") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class TraceRecorder:
    """Collects trace records into a ring buffer and, optionally, a file.

    Args:
        path: JSONL output file (opened immediately, truncating); ``None``
            keeps records in memory only.
        ring_size: how many records the in-memory ring retains (oldest
            dropped first) — the file, when given, always gets everything.
        epoch_digests: ask the engine to include a full
            :func:`~repro.resilience.checkpoint.state_digest` in every
            ``epoch`` record (slow; meant for divergence hunts).

    The :attr:`suspended` flag silences :meth:`emit` entirely; the engine
    raises it while fast-forward replaying a checkpoint resume, so a resumed
    run's trace contains exactly the post-resume records.
    """

    def __init__(self, path=None, ring_size: int = 4096,
                 epoch_digests: bool = False) -> None:
        self.path = str(path) if path is not None else None
        self.ring: deque = deque(maxlen=ring_size)
        self.epoch_digests = epoch_digests
        self.suspended = False
        self._fh = (open(self.path, "w", encoding="ascii")
                    if self.path is not None else None)

    # -- recording ----------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Record one event.  ``fields`` must be JSON-serialisable."""
        if self.suspended:
            return
        record = dict(fields)
        record["kind"] = kind
        self.ring.append(record)
        if self._fh is not None:
            self._fh.write(canonical_line(record) + "\n")

    def records(self, kind: Optional[str] = None) -> List[dict]:
        """The retained records, optionally filtered by kind."""
        if kind is None:
            return list(self.ring)
        return [r for r in self.ring if r.get("kind") == kind]

    # -- lifecycle ----------------------------------------------------------

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- hierarchy statistics snapshots ------------------------------------------
#
# The per-epoch record carries *deltas* of the cumulative hierarchy stats.
# Integer counters are order-free (addition commutes), so the deltas are
# bit-identical across engines even though the engines order the work
# differently within an epoch.

CORE_STAT_FIELDS = ("accesses", "l1_hits", "l2_local_hits", "l2_remote_hits",
                    "l3_local_hits", "l3_remote_hits", "memory_accesses",
                    "coherence_invalidations")
SLICE_STAT_FIELDS = ("hits", "misses", "insertions", "evictions",
                     "lazy_invalidations")


def snapshot_hierarchy(stats) -> Dict[str, Dict[int, tuple]]:
    """Freeze a :class:`~repro.caches.stats.HierarchyStats` as plain tuples."""
    return {
        "cores": {c: tuple(getattr(s, f) for f in CORE_STAT_FIELDS)
                  for c, s in stats.cores.items()},
        "l2": {i: tuple(getattr(s, f) for f in SLICE_STAT_FIELDS)
               for i, s in stats.l2_slices.items()},
        "l3": {i: tuple(getattr(s, f) for f in SLICE_STAT_FIELDS)
               for i, s in stats.l3_slices.items()},
    }


def _delta_group(before: Dict[int, tuple], after: Dict[int, tuple],
                 fields: Iterable[str]) -> Dict[str, Dict[str, int]]:
    out: Dict[str, Dict[str, int]] = {}
    field_list = tuple(fields)
    for key, now in after.items():
        then = before.get(key, (0,) * len(field_list))
        changed = {f: n - t for f, n, t in zip(field_list, now, then) if n != t}
        if changed:
            out[str(key)] = changed
    return out


def hierarchy_delta(before: Dict[str, Dict[int, tuple]],
                    after: Dict[str, Dict[int, tuple]]) -> Dict[str, dict]:
    """Non-zero per-core / per-slice counter deltas between two snapshots."""
    return {
        "cores": _delta_group(before["cores"], after["cores"],
                              CORE_STAT_FIELDS),
        "l2": _delta_group(before["l2"], after["l2"], SLICE_STAT_FIELDS),
        "l3": _delta_group(before["l3"], after["l3"], SLICE_STAT_FIELDS),
    }
