"""Observability: structured tracing, metrics, reconfiguration timelines.

Zero-overhead-when-disabled by construction: the metrics registry starts
disabled and every instrumented site guards on ``REGISTRY.enabled`` at
epoch/run granularity; the trace recorder only exists when a caller passes
one in, and the engines consult it only at epoch boundaries (the hot loops
in :func:`repro.sim.engine.run_epoch` and :mod:`repro.sim.batch` are
untouched).  Both engines emit byte-identical traces for identical runs —
the bit-identical guarantee extended to observability (DESIGN.md §9).
"""

from repro.obs.metrics import (
    REGISTRY,
    CardinalityError,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.trace import (
    SCHEMA_VERSION,
    TraceRecorder,
    canonical_line,
    load_trace,
)

__all__ = [
    "CardinalityError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "REGISTRY",
    "SCHEMA_VERSION",
    "TraceRecorder",
    "canonical_line",
    "load_trace",
]
