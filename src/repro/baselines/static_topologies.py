"""The static cache topologies of Section 5.

The paper's notation ``(x:y:z)``: each L2 slice group is shared by ``x``
cores, each L3 group by ``y`` L2 groups, and there are ``z`` L3 groups.
The baseline for all normalised results is the all-shared ``(16:1:1)``;
``(1:1:16)`` is fully private, ``(1:16:1)`` is private L2 with one shared
L3 (the Nehalem-style organisation).
"""

from __future__ import annotations

from typing import List

#: The all-shared L2+L3 configuration every figure normalises to.
BASELINE_LABEL = "(16:1:1)"

#: The static configurations evaluated in Figures 2, 13, 15 and 16.
STATIC_LABELS: List[str] = [
    "(16:1:1)",
    "(1:1:16)",
    "(4:4:1)",
    "(8:2:1)",
    "(1:16:1)",
]

#: Additional symmetric configurations the weighted/fair speedup study
#: sweeps over (Figure 14 reports (2:2:4) as the best-WS static and
#: (4:4:1) as the best-FS static).
EXTENDED_STATIC_LABELS: List[str] = STATIC_LABELS + [
    "(2:2:4)",
    "(2:8:1)",
    "(4:1:4)",
    "(2:1:8)",
    "(4:2:2)",
]
