"""The ideal offline scheme of Figure 15.

The paper compares MorphCache against an impractical oracle that, at the
beginning of each epoch, switches to whichever static configuration will
perform best *for that epoch* (knowledge only obtainable by running the
workload under every configuration offline).  Here that is realised
literally: given the per-epoch results of the static-topology runs, the
ideal scheme's epoch series is the pointwise maximum over configurations.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim.engine import EpochResult, RunResult


def ideal_offline(static_runs: Sequence[RunResult]) -> RunResult:
    """Combine static runs into the per-epoch-best oracle run.

    All runs must cover the same workload and epoch count.  Each epoch of
    the result copies the epoch of the best-throughput static configuration
    and labels it with that configuration.
    """
    if not static_runs:
        raise ValueError("need at least one static run")
    workload_names = {run.workload_name for run in static_runs}
    if len(workload_names) != 1:
        raise ValueError(f"runs cover different workloads: {workload_names}")
    epoch_counts = {len(run.epochs) for run in static_runs}
    if len(epoch_counts) != 1:
        raise ValueError(f"runs have different epoch counts: {epoch_counts}")

    result = RunResult(workload_name=static_runs[0].workload_name,
                       scheme_name="ideal-offline")
    for index in range(epoch_counts.pop()):
        best = max(static_runs, key=lambda run: run.epochs[index].throughput)
        source = best.epochs[index]
        result.epochs.append(EpochResult(
            epoch=index,
            ipcs=dict(source.ipcs),
            misses=dict(source.misses),
            topology_label=best.scheme_name,
        ))
    return result
