"""Utility-based cache partitioning (UCP), Qureshi & Patt, MICRO 2006.

The paper cites UCP ([20]) as the canonical shared-cache partitioning
scheme PIPP improves upon; it is included here as an additional comparator
and as the ablation point between "plain shared LRU" and "PIPP's
pseudo-partitioning": UCP enforces *strict* way quotas from the same UMON +
lookahead machinery PIPP uses, instead of PIPP's insertion/promotion
approximation.

The shared cache keeps one priority list per set (LRU order); on an
insertion that overflows a set, the victim is the LRU line of whichever
core currently *exceeds* its allocated quota (falling back to the global
LRU line when nobody does).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.pipp import UtilityMonitor, lookahead_partition
from repro.caches.cache import CacheSlice
from repro.config import MachineConfig


class UcpCache:
    """A shared cache with strict utility-derived way partitions."""

    def __init__(self, sets: int, ways: int, n_cores: int) -> None:
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self.n_cores = n_cores
        self._set_mask = sets - 1
        # Each set: list of (line, owner), index 0 = LRU.
        self._data: List[List[Tuple[int, int]]] = [[] for _ in range(sets)]
        self.monitors = [UtilityMonitor(sets, ways) for _ in range(n_cores)]
        base = max(1, ways // n_cores)
        self.allocations = [base] * n_cores
        self.hits = 0
        self.misses = 0

    def lookup(self, core: int, line: int) -> bool:
        """Probe (and monitor); LRU-promote on hit."""
        self.monitors[core].observe(line)
        entries = self._data[line & self._set_mask]
        for position, (entry_line, owner) in enumerate(entries):
            if entry_line == line:
                entries.pop(position)
                entries.append((line, owner))
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill(self, core: int, line: int) -> Optional[int]:
        """Install at MRU; evict from an over-quota core when full."""
        entries = self._data[line & self._set_mask]
        victim = None
        if len(entries) >= self.ways:
            victim = self._evict(entries)
        entries.append((line, core))
        return victim

    def _evict(self, entries: List[Tuple[int, int]]) -> int:
        counts: Dict[int, int] = {}
        for _line, owner in entries:
            counts[owner] = counts.get(owner, 0) + 1
        over_quota = {owner for owner, count in counts.items()
                      if count > self.allocations[owner]}
        for position, (line, owner) in enumerate(entries):
            if owner in over_quota:
                entries.pop(position)
                return line
        return entries.pop(0)[0]

    def repartition(self) -> List[int]:
        """Recompute strict quotas from the UMON curves (epoch hook)."""
        curves = [monitor.utility_curve() for monitor in self.monitors]
        self.allocations = lookahead_partition(curves, self.ways)
        for monitor in self.monitors:
            monitor.reset()
        return list(self.allocations)

    def occupancy_of(self, core: int) -> int:
        """Lines currently held by one core (test/diagnostic helper)."""
        return sum(1 for entries in self._data
                   for _line, owner in entries if owner == core)


class UcpSystem:
    """A CMP with UCP-partitioned shared L2 and L3 (engine protocol)."""

    label = "ucp"

    def __init__(self, config: MachineConfig, seed: int = 0) -> None:
        self.config = config
        n = config.cores
        self.l1s = [CacheSlice(config.l1.sets, config.l1.ways, "lru", i)
                    for i in range(n)]
        self.l2 = UcpCache(config.l2_slice.sets, config.l2_slice.ways * n, n)
        self.l3 = UcpCache(config.l3_slice.sets, config.l3_slice.ways * n, n)
        self._memory_accesses = {core: 0 for core in range(n)}
        self._stamp = 0

    def access(self, core: int, line: int, write: bool) -> int:
        self._stamp += 1
        lat = self.config.latency
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None:
            l1.touch(entry, self._stamp)
            return lat.l1_hit
        if self.l2.lookup(core, line):
            l1.insert(line, core, write, self._stamp)
            return lat.l2_local_hit
        if self.l3.lookup(core, line):
            self.l2.fill(core, line)
            l1.insert(line, core, write, self._stamp)
            return lat.l3_local_hit
        self._memory_accesses[core] += 1
        self.l3.fill(core, line)
        self.l2.fill(core, line)
        l1.insert(line, core, write, self._stamp)
        return lat.memory

    def end_epoch(self) -> str:
        self.l2.repartition()
        self.l3.repartition()
        return self.label

    def miss_counts(self) -> Dict[int, int]:
        return dict(self._memory_accesses)
