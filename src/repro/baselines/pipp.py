"""Promotion/Insertion Pseudo-Partitioning (PIPP), Xie & Loh, ISCA 2009.

The paper's Figure 17 compares MorphCache against "PIPP extended to both L2
and L3 caches": a single shared cache at each level, pseudo-partitioned
among the 16 cores.  This module implements PIPP from scratch:

- each shared cache keeps its sets as explicit priority lists (index 0 is
  evicted first);
- a per-core *utility monitor* (UMON) samples sets with shadow
  fully-associative LRU tags and counts hits per stack position;
- at every epoch the *lookahead* algorithm (from utility-based cache
  partitioning) converts the utility curves into target allocations
  ``pi_i`` summing to the associativity;
- core ``i``'s incoming lines are inserted at priority position ``pi_i``;
  hits promote a line by one position with probability ``p_prom`` (3/4);
- stream-detected cores (misses overwhelmingly dominate hits in the UMON)
  insert at position 1 and promote with probability 1/128, so streams
  cannot flush the cache.

The shared cache at each level uses the merged-all organisation of the
substrate (same sets as one slice, 16x the ways), which is what a
monolithic shared cache of that capacity looks like to the replacement
policy, and is exactly the structure PIPP's per-way partitioning needs.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.caches.cache import CacheSlice

#: PIPP constants from the original paper.
PROMOTION_PROBABILITY = 0.75
STREAM_PROMOTION_PROBABILITY = 1.0 / 128.0
STREAM_INSERT_POSITION = 1
#: A core is stream-classified when its UMON hit total is below this
#: fraction of its accesses.
STREAM_HIT_THRESHOLD = 0.02


class UtilityMonitor:
    """Per-core shadow-tag LRU monitor over sampled sets (UMON-DSS).

    Maintains, for each sampled set, a fully-associative-within-set LRU
    stack of the core's own recent lines, and counts hits per stack
    position.  The position histogram is the marginal-utility curve the
    lookahead partitioner consumes.
    """

    def __init__(self, sets: int, ways: int, sample_every: int = 4) -> None:
        if sets <= 0 or ways <= 0 or sample_every <= 0:
            raise ValueError("sets, ways and sample_every must be positive")
        self.ways = ways
        self.sample_every = sample_every
        self._set_mask = sets - 1
        self._stacks: Dict[int, List[int]] = {
            s: [] for s in range(0, sets, sample_every)
        }
        self.position_hits = [0] * ways
        self.accesses = 0
        self.misses = 0

    def observe(self, line: int) -> None:
        """Feed one of the owning core's references."""
        set_index = line & self._set_mask
        stack = self._stacks.get(set_index)
        if stack is None:
            return
        self.accesses += 1
        try:
            position = stack.index(line)
        except ValueError:
            position = -1
        if position >= 0:
            # Stack distance from the MRU end (0 = MRU).
            distance = len(stack) - 1 - position
            self.position_hits[distance] += 1
            stack.pop(position)
            stack.append(line)
        else:
            self.misses += 1
            stack.append(line)
            if len(stack) > self.ways:
                stack.pop(0)

    def utility_curve(self) -> List[int]:
        """Cumulative hits obtainable with 1..ways allocated ways."""
        curve = []
        total = 0
        for hits in self.position_hits:
            total += hits
            curve.append(total)
        return curve

    @property
    def is_streaming(self) -> bool:
        """True when almost nothing in the monitored window was reused."""
        if self.accesses == 0:
            return False
        hits = self.accesses - self.misses
        return hits < STREAM_HIT_THRESHOLD * self.accesses

    def reset(self) -> None:
        self.position_hits = [0] * self.ways
        self.accesses = 0
        self.misses = 0


def lookahead_partition(curves: Sequence[Sequence[int]], total_ways: int,
                        minimum: int = 1) -> List[int]:
    """Greedy lookahead allocation of ``total_ways`` across cores.

    Each core's ``curves[i][w - 1]`` is the hits it would get with ``w``
    ways.  Every core receives at least ``minimum`` way(s); the remainder is
    handed out by maximum marginal utility per way, considering blocks of
    ways at once (the "lookahead" that handles convex utility curves).
    """
    n = len(curves)
    if n == 0:
        raise ValueError("need at least one core")
    if total_ways < n * minimum:
        raise ValueError("not enough ways for the minimum allocation")
    alloc = [minimum] * n
    remaining = total_ways - n * minimum

    def gain(core: int, extra: int) -> float:
        have = alloc[core]
        curve = curves[core]
        now = curve[have - 1] if have > 0 else 0
        then = curve[min(have + extra, len(curve)) - 1]
        return (then - now) / extra

    while remaining > 0:
        best_core, best_extra, best_gain = -1, 1, -1.0
        for core in range(n):
            max_extra = min(remaining, len(curves[core]) - alloc[core])
            for extra in range(1, max_extra + 1):
                g = gain(core, extra)
                if g > best_gain:
                    best_core, best_extra, best_gain = core, extra, g
        if best_core < 0 or best_gain <= 0:
            # No one benefits: spread the remainder round-robin.
            for core in range(n):
                if remaining == 0:
                    break
                if alloc[core] < len(curves[core]):
                    alloc[core] += 1
                    remaining -= 1
            if remaining > 0:
                alloc[0] += remaining
                remaining = 0
            break
        alloc[best_core] += best_extra
        remaining -= best_extra
    return alloc


class PippCache:
    """One shared cache level managed by PIPP."""

    def __init__(self, sets: int, ways: int, n_cores: int,
                 seed: int = 0) -> None:
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        self.sets = sets
        self.ways = ways
        self.n_cores = n_cores
        self._set_mask = sets - 1
        # Each set is a priority list: index 0 = next victim, -1 = highest.
        self._data: List[List[Tuple[int, int]]] = [[] for _ in range(sets)]
        self._rng = random.Random(seed)
        self.monitors = [UtilityMonitor(sets, ways) for _ in range(n_cores)]
        base = max(1, ways // n_cores)
        self.partitions = [base] * n_cores
        self.hits = 0
        self.misses = 0

    # -- the PIPP access path -------------------------------------------------

    def lookup(self, core: int, line: int) -> bool:
        """Probe (and monitor) the cache; promotes on hit.  True if hit."""
        self.monitors[core].observe(line)
        entries = self._data[line & self._set_mask]
        for position, (entry_line, owner) in enumerate(entries):
            if entry_line == line:
                self.hits += 1
                self._promote(entries, position, owner)
                return True
        self.misses += 1
        return False

    def _promote(self, entries: List[Tuple[int, int]], position: int,
                 owner: int) -> None:
        probability = (STREAM_PROMOTION_PROBABILITY
                       if self.monitors[owner].is_streaming
                       else PROMOTION_PROBABILITY)
        if position < len(entries) - 1 and self._rng.random() < probability:
            entries[position], entries[position + 1] = (
                entries[position + 1], entries[position]
            )

    def fill(self, core: int, line: int) -> Optional[int]:
        """Install a line at the core's insertion position.

        Returns the evicted line, if any.
        """
        entries = self._data[line & self._set_mask]
        victim = None
        if len(entries) >= self.ways:
            victim = entries.pop(0)[0]
        if self.monitors[core].is_streaming:
            position = min(STREAM_INSERT_POSITION, len(entries))
        else:
            position = min(self.partitions[core], len(entries))
        entries.insert(position, (line, core))
        return victim

    def contains(self, line: int) -> bool:
        entries = self._data[line & self._set_mask]
        return any(entry_line == line for entry_line, _ in entries)

    # -- epoch boundary ---------------------------------------------------------

    def repartition(self) -> List[int]:
        """Recompute target allocations from the UMON curves (epoch hook)."""
        curves = [monitor.utility_curve() for monitor in self.monitors]
        self.partitions = lookahead_partition(curves, self.ways)
        for monitor in self.monitors:
            monitor.reset()
        return list(self.partitions)


class PippSystem:
    """A CMP with PIPP-managed shared L2 and L3 (the Figure 17 comparator).

    Implements the engine protocol (``access`` / ``end_epoch`` /
    ``miss_counts``).  Latencies are the flat shared-cache latencies of the
    Section 4 methodology.
    """

    label = "pipp"

    def __init__(self, config: MachineConfig, seed: int = 0) -> None:
        self.config = config
        n = config.cores
        self.l1s = [CacheSlice(config.l1.sets, config.l1.ways, "lru", i)
                    for i in range(n)]
        self.l2 = PippCache(config.l2_slice.sets, config.l2_slice.ways * n,
                            n, seed=seed)
        self.l3 = PippCache(config.l3_slice.sets, config.l3_slice.ways * n,
                            n, seed=seed + 1)
        self._memory_accesses = {core: 0 for core in range(n)}
        self._stamp = 0

    def access(self, core: int, line: int, write: bool) -> int:
        self._stamp += 1
        lat = self.config.latency
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None:
            l1.touch(entry, self._stamp)
            return lat.l1_hit
        if self.l2.lookup(core, line):
            l1.insert(line, core, write, self._stamp)
            return lat.l2_local_hit
        if self.l3.lookup(core, line):
            self.l2.fill(core, line)
            l1.insert(line, core, write, self._stamp)
            return lat.l3_local_hit
        self._memory_accesses[core] += 1
        self.l3.fill(core, line)
        self.l2.fill(core, line)
        l1.insert(line, core, write, self._stamp)
        return lat.memory

    def end_epoch(self) -> str:
        self.l2.repartition()
        self.l3.repartition()
        return self.label

    def miss_counts(self) -> Dict[int, int]:
        return dict(self._memory_accesses)
