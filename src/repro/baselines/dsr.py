"""Dynamic Spill-Receive (DSR), Qureshi, HPCA 2009.

The paper's Figure 17 compares MorphCache against "managing per-core
private caches at each level using dynamic spill receive".  DSR keeps every
slice private but lets each cache learn, via set dueling, whether it is a
*spiller* (its evicted lines are forwarded into another cache) or a
*receiver* (it accepts other caches' spills):

- each slice dedicates a few sampled sets to "always spill" and a few to
  "always receive"; a per-slice PSEL saturating counter is incremented on
  misses in spill-sample sets and decremented on misses in receive-sample
  sets, and follower sets adopt the policy the counter favours;
- on a local miss, all peer slices are probed for a spilled copy (a snoop,
  paying the remote latency);
- when a spiller evicts a line, the line is installed into a randomly
  chosen receiver slice (receivers sacrifice capacity, which set dueling
  only lets happen when it pays off globally).

Applied independently at L2 and L3, matching the paper's multi-level
extension.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.caches.cache import CacheSlice
from repro.config import MachineConfig

#: Set-dueling constants (SDMs of 1/8 of sets each side, 10-bit PSEL).
PSEL_MAX = 1023
PSEL_INIT = PSEL_MAX // 2


class DsrLevel:
    """One cache level (L2 or L3) of per-core slices under DSR."""

    def __init__(self, sets: int, ways: int, n_slices: int,
                 replacement: str = "lru", seed: int = 0) -> None:
        self.n_slices = n_slices
        self.sets = sets
        self.slices = [CacheSlice(sets, ways, replacement, i)
                       for i in range(n_slices)]
        self._rng = random.Random(seed)
        self.psel = [PSEL_INIT] * n_slices
        # Sampled sets: sets with index % 8 == 0 always spill, % 8 == 1
        # always receive; the rest follow PSEL.
        self._sample_mod = 8 if sets >= 8 else max(2, sets)
        self.spills = 0
        self.remote_hits = 0

    # -- policy resolution ---------------------------------------------------

    def _set_role(self, slice_id: int, set_index: int) -> str:
        """Spill/receive role of one set of one slice."""
        phase = set_index % self._sample_mod
        if phase == 0:
            return "spill"
        if phase == 1:
            return "receive"
        return "spill" if self.psel[slice_id] > PSEL_INIT else "receive"

    def is_spiller(self, slice_id: int) -> bool:
        """The follower-set policy this slice currently uses."""
        return self.psel[slice_id] > PSEL_INIT

    # -- access path -----------------------------------------------------------

    def lookup(self, core: int, line: int, stamp: int) -> Optional[str]:
        """Probe the level; returns "local", "remote" or None.

        A local miss updates the set-dueling PSEL and probes the peers.
        """
        local = self.slices[core]
        entry = local.lookup(line)
        if entry is not None:
            local.touch(entry, stamp)
            return "local"
        set_index = line & (self.sets - 1)
        phase = set_index % self._sample_mod
        if phase == 0:  # miss in an always-spill sample
            self.psel[core] = max(0, self.psel[core] - 1)
        elif phase == 1:  # miss in an always-receive sample
            self.psel[core] = min(PSEL_MAX, self.psel[core] + 1)
        for peer_id, peer in enumerate(self.slices):
            if peer_id == core:
                continue
            entry = peer.lookup(line)
            if entry is not None:
                peer.touch(entry, stamp)
                self.remote_hits += 1
                return "remote"
        return None

    def fill(self, core: int, line: int, write: bool, stamp: int) -> None:
        """Install into the core's own slice, spilling the victim if the
        set's role says so."""
        local = self.slices[core]
        victim = local.insert(line, core, write, stamp)
        if victim is None:
            return
        set_index = victim.line & (self.sets - 1)
        if self._set_role(core, set_index) != "spill":
            return
        receivers = [
            peer_id for peer_id in range(self.n_slices)
            if peer_id != core and not self.is_spiller(peer_id)
        ]
        if not receivers:
            return
        target = self._rng.choice(receivers)
        # The spilled line keeps its owner; a second-level spill chain is
        # not allowed (the receiving slice's victim dies quietly).
        self.slices[target].insert(victim.line, victim.owner, victim.dirty, stamp)
        self.spills += 1

    def contains(self, line: int) -> bool:
        return any(line in s for s in self.slices)


class DsrSystem:
    """A CMP with DSR-managed private L2 and L3 (the Figure 17 comparator).

    Implements the engine protocol.  Local hits pay the flat private-cache
    latencies; spilled lines found in a peer slice pay the merged/remote
    latency (the snoop and transfer cost).
    """

    label = "dsr"

    def __init__(self, config: MachineConfig, seed: int = 0) -> None:
        self.config = config
        n = config.cores
        self.l1s = [CacheSlice(config.l1.sets, config.l1.ways, "lru", i)
                    for i in range(n)]
        self.l2 = DsrLevel(config.l2_slice.sets, config.l2_slice.ways, n,
                           config.replacement, seed=seed)
        self.l3 = DsrLevel(config.l3_slice.sets, config.l3_slice.ways, n,
                           config.replacement, seed=seed + 1)
        self._memory_accesses = {core: 0 for core in range(n)}
        self._stamp = 0

    def access(self, core: int, line: int, write: bool) -> int:
        self._stamp += 1
        stamp = self._stamp
        lat = self.config.latency
        l1 = self.l1s[core]
        entry = l1.lookup(line)
        if entry is not None:
            l1.touch(entry, stamp)
            return lat.l1_hit
        where = self.l2.lookup(core, line, stamp)
        if where is not None:
            l1.insert(line, core, write, stamp)
            return lat.l2_local_hit if where == "local" else lat.l2_merged_hit
        where = self.l3.lookup(core, line, stamp)
        if where is not None:
            self.l2.fill(core, line, write, stamp)
            l1.insert(line, core, write, stamp)
            return lat.l3_local_hit if where == "local" else lat.l3_merged_hit
        self._memory_accesses[core] += 1
        self.l3.fill(core, line, write, stamp)
        self.l2.fill(core, line, write, stamp)
        l1.insert(line, core, write, stamp)
        return lat.memory

    def end_epoch(self) -> str:
        return self.label

    def miss_counts(self) -> Dict[int, int]:
        return dict(self._memory_accesses)
