"""Baseline schemes the paper compares MorphCache against.

- :mod:`~repro.baselines.static_topologies` — the five fixed ``(x:y:z)``
  configurations of Section 5.
- :mod:`~repro.baselines.pipp` — promotion/insertion pseudo-partitioning
  (Xie & Loh [28]) extended to both L2 and L3 (Figure 17).
- :mod:`~repro.baselines.dsr` — dynamic spill-receive (Qureshi [18])
  extended to both levels (Figure 17).
- :mod:`~repro.baselines.ucp` — strict utility-based cache partitioning
  (Qureshi & Patt [20]), the ablation point between shared LRU and PIPP.
- :mod:`~repro.baselines.offline_ideal` — the per-epoch-best static oracle
  of Figure 15.
"""

from repro.baselines.static_topologies import STATIC_LABELS, BASELINE_LABEL
from repro.baselines.pipp import PippCache, PippSystem, UtilityMonitor, lookahead_partition
from repro.baselines.dsr import DsrLevel, DsrSystem
from repro.baselines.ucp import UcpCache, UcpSystem
from repro.baselines.offline_ideal import ideal_offline

__all__ = [
    "STATIC_LABELS",
    "BASELINE_LABEL",
    "PippCache",
    "PippSystem",
    "UtilityMonitor",
    "lookahead_partition",
    "DsrLevel",
    "DsrSystem",
    "UcpCache",
    "UcpSystem",
    "ideal_offline",
]
