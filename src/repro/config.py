"""Machine configuration for the MorphCache reproduction.

This module encodes Table 3 of the paper (the baseline 16-core CMP) plus the
scaling presets described in DESIGN.md.  All cache geometry is expressed in
*lines* (the paper's 64-byte blocks): the simulator never needs byte
addresses, only line addresses, so capacities are line counts and a slice is
fully described by ``(sets, ways)``.

The paper's absolute sizes (Table 3)::

    L1  32 KB,  4-way, 64 B lines  ->  128 sets x  4 ways =   512 lines
    L2 256 KB/slice,  8-way        ->  512 sets x  8 ways =  4096 lines
    L3   1 MB/slice, 16-way        -> 1024 sets x 16 ways = 16384 lines

Scaled presets shrink set counts and trace lengths proportionally so that
working-set pressure (the ratio of footprints to capacity, which is what all
of MorphCache's decisions key on) is preserved while runs stay fast enough
for a pure-Python simulator.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.resilience.errors import ConfigError

LINE_BYTES = 64
"""Cache line size in bytes (Table 3)."""


def _require(condition: bool, field_name: str, message: str) -> None:
    """Raise :class:`ConfigError` naming the offending field."""
    if not condition:
        raise ConfigError(field_name, message)


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache slice: ``sets`` x ``ways`` lines of 64 bytes."""

    sets: int
    ways: int

    def __post_init__(self) -> None:
        _require(self.sets > 0, "sets", f"must be positive, got {self.sets}")
        _require(self.ways > 0, "ways", f"must be positive, got {self.ways}")
        _require(self.sets & (self.sets - 1) == 0, "sets",
                 f"must be a power of two, got {self.sets}")
        _require(self.ways & (self.ways - 1) == 0, "ways",
                 f"must be a power of two, got {self.ways}")

    @property
    def lines(self) -> int:
        """Total capacity in cache lines."""
        return self.sets * self.ways

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.lines * LINE_BYTES

    def scaled(self, factor: int) -> "CacheGeometry":
        """Return the geometry with the set count divided by ``factor``."""
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        sets = max(1, self.sets // factor)
        return CacheGeometry(sets=sets, ways=self.ways)


@dataclass(frozen=True)
class LatencyModel:
    """Access latencies in CPU cycles (Table 3 and Section 4).

    ``merged`` latencies apply when a hit is served by a remote slice of a
    merged group over the segmented bus (+15 cycles, Section 3.2); static
    topologies use the flat local latencies regardless of sharing degree, as
    the paper's methodology section specifies.
    """

    l1_hit: int = 3
    l2_local_hit: int = 10
    l2_merged_hit: int = 25
    l3_local_hit: int = 30
    l3_merged_hit: int = 45
    memory: int = 300
    coherence_invalidate: int = 5
    distance_cycles_per_hop: int = 3
    """Extra cycles per slice of distance beyond an immediate neighbour —
    the segmented-bus span cost that makes non-neighbour sharing lose
    (Section 5.5's -7.1 %)."""

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            _require(getattr(self, f.name) >= 0, f.name,
                     f"latency must be non-negative, got {getattr(self, f.name)}")

    @property
    def bus_overhead(self) -> int:
        """Extra cycles a merged (remote) hit pays over a local hit."""
        return self.l2_merged_hit - self.l2_local_hit


@dataclass(frozen=True)
class MsatConfig:
    """Merge/Split Aggressiveness Threshold (Section 2.2).

    Utilisation is the fraction of set bits in a (possibly juxtaposed) ACFV,
    expressed in percent.  ``(high, low) = (60, 30)`` is the paper's default.
    """

    high: float = 60.0
    low: float = 30.0
    overlap: float = 50.0
    """Sharing-significance threshold in percent, on the collision-corrected
    (phi-style) overlap scale of ``Acfv.overlap_fraction``: 100 = identical
    active footprints, 0 = statistically independent."""

    throttle_step: float = 5.0
    """QoS throttling step applied to both bounds (Section 5.3)."""

    high_max: float = 95.0
    low_min: float = 5.0

    def __post_init__(self) -> None:
        _require(0 <= self.low < self.high <= 100, "high/low",
                 f"need 0 <= low < high <= 100, got low={self.low} high={self.high}")
        _require(0 <= self.overlap <= 100, "overlap",
                 f"must be a percentage, got {self.overlap}")


@dataclass(frozen=True)
class MorphConfig:
    """Policy knobs of the MorphCache controller."""

    msat: MsatConfig = field(default_factory=MsatConfig)
    acfv_bits: Optional[int] = None
    """Bits per ACFV.  ``None`` (default) sizes each level's vectors to half
    its slice's line count, which keeps the linearised footprint estimate
    informative at every scale preset; the paper's fixed 128-bit vectors
    correspond to its full-scale slices (Figure 5 reports 0.96 correlation
    at 128 bits)."""

    hash_name: str = "xor"
    """ACFV hash function: ``xor`` (default) or ``modulo``."""

    conflict_policy: str = "merge"
    """Split/merge conflict arbitration: ``merge`` aggressive (default) or
    ``split`` aggressive (Section 2.4)."""

    qos: bool = False
    """Enable miss-driven MSAT throttling (Section 5.3)."""

    allow_arbitrary_sizes: bool = False
    """Section 5.5 extension: groups whose size is not a power of two."""

    allow_non_neighbors: bool = False
    """Section 5.5 extension: non-contiguous groups (distance penalty)."""

    polluter_veto: bool = True
    """Disqualify high-miss/low-reuse cores as merge donors (see
    DecisionEngine.set_miss_feedback).  Off for ablation."""

    hysteresis: bool = True
    """Minimum merged-group age and re-merge cooldown around splits.  Off
    for ablation."""

    def __post_init__(self) -> None:
        _require(self.acfv_bits is None or self.acfv_bits > 0, "acfv_bits",
                 f"must be positive, got {self.acfv_bits}")
        _require(self.hash_name in ("xor", "modulo"), "hash_name",
                 f"unknown hash {self.hash_name!r}")
        _require(self.conflict_policy in ("merge", "split"), "conflict_policy",
                 f"unknown conflict policy {self.conflict_policy!r}")


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description: Table 3 plus scaling knobs."""

    cores: int = 16
    issue_width: int = 4
    l1: CacheGeometry = field(default_factory=lambda: CacheGeometry(128, 4))
    l2_slice: CacheGeometry = field(default_factory=lambda: CacheGeometry(512, 8))
    l3_slice: CacheGeometry = field(default_factory=lambda: CacheGeometry(1024, 16))
    latency: LatencyModel = field(default_factory=LatencyModel)
    replacement: str = "lru"
    """Replacement policy for every slice: ``lru`` or ``plru``."""

    epochs: int = 20
    accesses_per_core_per_epoch: int = 200_000

    def __post_init__(self) -> None:
        _require(self.cores > 0 and self.cores & (self.cores - 1) == 0, "cores",
                 f"must be a positive power of two, got {self.cores}")
        _require(self.issue_width > 0, "issue_width",
                 f"must be positive, got {self.issue_width}")
        _require(self.replacement in ("lru", "plru"), "replacement",
                 f"unknown replacement {self.replacement!r}")
        _require(self.epochs > 0, "epochs",
                 f"epoch count must be positive, got {self.epochs}")
        _require(self.accesses_per_core_per_epoch > 0,
                 "accesses_per_core_per_epoch",
                 f"epoch length must be positive, "
                 f"got {self.accesses_per_core_per_epoch}")

    def with_(self, **changes) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def _preset(set_scale: int, accesses: int, epochs: int) -> MachineConfig:
    base = MachineConfig()
    return base.with_(
        l1=base.l1.scaled(set_scale),
        l2_slice=base.l2_slice.scaled(set_scale),
        l3_slice=base.l3_slice.scaled(set_scale),
        accesses_per_core_per_epoch=accesses,
        epochs=epochs,
    )


#: Full Table 3 sizes and the paper's 20 epochs of the region of interest.
PAPER = _preset(set_scale=1, accesses=200_000, epochs=20)

#: 1/8-scale machine used by the runnable examples.
DEFAULT = _preset(set_scale=8, accesses=20_000, epochs=8)

#: 1/32-scale machine used by the benchmark harness.
SMALL = _preset(set_scale=32, accesses=5_000, epochs=6)

#: 1/128-scale machine used by the unit tests.
TINY = _preset(set_scale=128, accesses=600, epochs=3)

PRESETS = {"paper": PAPER, "default": DEFAULT, "small": SMALL, "tiny": TINY}


def preset(name: str) -> MachineConfig:
    """Look up a named scale preset (``paper``/``default``/``small``/``tiny``)."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(f"unknown preset {name!r}; choose from {sorted(PRESETS)}") from None


def format_table3(config: MachineConfig) -> str:
    """Render the machine description in the shape of the paper's Table 3."""
    lat = config.latency
    rows = [
        ("Processor model", f"{config.issue_width} way issue superscalar, {config.cores} cores"),
        ("Private L1 I & D", f"{config.l1.ways}-way, {config.l1.capacity_bytes // 1024} KB, "
                             f"{LINE_BYTES} B lines, {lat.l1_hit} cycle access"),
        ("L2 cache", f"{config.cores} slices, {config.l2_slice.capacity_bytes // 1024} KB/slice, "
                     f"{config.l2_slice.ways}-way, {lat.l2_local_hit} cycles local, "
                     f"{lat.l2_merged_hit} cycles merged"),
        ("L3 cache", f"{config.cores} slices, {config.l3_slice.capacity_bytes // 1024} KB/slice, "
                     f"{config.l3_slice.ways}-way, {lat.l3_local_hit} cycles local, "
                     f"{lat.l3_merged_hit} cycles merged"),
        ("Memory", f"{lat.memory} cycle off-chip access latency"),
        ("Epoch interval", f"{config.accesses_per_core_per_epoch} accesses/core "
                           f"(reconfiguration interval), {config.epochs} epochs"),
    ]
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)
