"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``table3 [--preset P]`` — print the machine description.
- ``table2`` — print the arbiter synthesis table.
- ``list`` — available mixes, PARSEC benchmarks and schemes.
- ``run --workload W [--scheme S] [--preset P] [--epochs N] [--seed K]
  [--engine {event,batch}] [--faults SPEC] [--trace PATH] [--metrics PATH]
  [--checkpoint PATH [--checkpoint-every N] [--resume]]`` —
  simulate one scheme on one workload (``MIX 01``.. / a PARSEC name / an
  ``alone:<spec>`` benchmark) and print per-epoch results.  ``--trace``
  records a structured JSONL trace of the run (render it with ``repro
  trace``); ``--metrics`` enables the metrics registry for the run and
  writes the Prometheus text exposition (or a JSON dump when the path ends
  in ``.json``).
- ``trace PATH`` — render the reconfiguration timeline of a recorded
  trace: which cores merged/split at which epoch, why (the triggering
  ACFV/decision inputs), plus faults, guard interventions and the
  throughput trend.
- ``compare --workload W [--preset P] [--jobs N] [--engine {event,batch}]
  [--trace DIR]
  [--run-timeout S] [--retries N] [--sweep-journal PATH [--resume-sweep]]``
  — run the Figure 13
  scheme set on one workload (optionally across N worker processes; the
  results are identical at any job count) and print normalised throughput.
  The supervision flags run the sweep under
  :func:`repro.sim.supervisor.run_supervised`: hung runs are killed after
  ``--run-timeout`` seconds, failures retry up to ``--retries`` times
  (bit-identical — retries reuse the run's seed), a spec that keeps
  failing is quarantined while the rest of the sweep completes, and
  ``--sweep-journal`` records every finished run so a killed sweep resumes
  with ``--resume-sweep``, rerunning only the missing runs.
- ``journal PATH [--json]`` — validate and summarize a sweep journal:
  completed/quarantined/retried runs, resume count, wall-clock latency,
  whether the tail is torn (a mid-write kill), and whether the sweep is
  resumable.  Exits 6 (``CheckpointError``) when the journal is unreadable.
- ``serve --state-dir DIR [--host H] [--port P] [--max-jobs N]
  [--max-queued N] [--job-timeout S] [--quota TENANT=W[:QUEUED[:RUNNING]]]
  [--workers N]``
  — run the crash-tolerant multi-tenant simulation service (see DESIGN.md
  §10): jobs over HTTP, per-tenant quotas with weighted-fair scheduling,
  bounded queues with 429 load shedding, SSE progress streams, and
  restart-time recovery from DIR.  SIGTERM drains gracefully: exits 0 when
  nothing was interrupted, 8 when resumable jobs remain in DIR.  With
  ``--workers N`` the state dir becomes a shared worker pool (DESIGN.md
  §11): N ``repro worker`` processes pull jobs via fenced leases, a
  SIGKILLed worker's jobs are adopted bit-identically by its peers, and
  external workers pointed at the same DIR join the pool.
- ``worker --pool DIR [--worker-id ID] [--drain] [--max-jobs N]`` — run
  one pool worker against DIR: claim a job's lease, heartbeat it, execute
  the sweep with the lease token fenced into every journal/status write,
  repeat.  ``--drain`` exits once every job in the pool is terminal.
  Exits 8 on SIGTERM mid-sweep (journal flushed, lease released) and 10
  (``LeaseLostError``) if a peer reclaimed its lease — the fencing that
  makes zombie writes safe.
- ``pool status DIR [--json]`` — inspect a pool: per-job state with lease
  owner/fence/ages/reclaims, worker heartbeats, aggregate counts.

Errors from the simulator exit with a distinct code per class so sweep
scripts can tell failures apart: ``ConfigError`` 3,
``TopologyInvariantError`` 4, ``FaultInjectedError`` 5, ``CheckpointError``
6, ``WorkerCrashError`` 7, ``SweepInterrupted`` 8 (SIGINT/SIGTERM after
draining in-flight runs and flushing the journal), ``ServiceError`` 9,
``PoolError`` 10 (a worker's lease was reclaimed, or the pool dir is
unusable), any other ``ReproError`` 2.  The consolidated table lives in
README ("Exit codes").  A supervised ``compare`` that finishes with
quarantined runs prints what it salvaged and exits 1.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import List, Optional

from repro.baselines.static_topologies import STATIC_LABELS
from repro.config import format_table3, preset
from repro.interconnect.timing import ArbiterTimingModel
from repro.obs import REGISTRY
from repro.render import render_series
from repro.resilience import ConfigError, ReproError, parse_fault_spec
from repro.sim.experiment import run_scheme
from repro.sim.parallel import RunSpec, resolve_jobs, run_many
from repro.sim.supervisor import SweepPolicy, run_supervised
from repro.sim.workload import Workload
from repro.workloads import MIXES, PARSEC_BENCHMARKS, SPEC_BENCHMARKS


def _workload_from_name(name: str) -> Workload:
    # One resolver for the CLI and the service: a bad name is a ConfigError
    # (exit 3 here, HTTP 400 at the service's admission boundary).
    return Workload.from_name(name)


def cmd_table3(args: argparse.Namespace) -> int:
    print(format_table3(preset(args.preset)))
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    print(ArbiterTimingModel().format_table2())
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("mixes:")
    for mix in MIXES:
        print(f"  {mix.name}  type {mix.type_counts}")
    print(f"\nPARSEC: {', '.join(sorted(PARSEC_BENCHMARKS))}")
    print(f"\nSPEC (for alone:<name>): {', '.join(sorted(SPEC_BENCHMARKS))}")
    print(f"\nschemes: morphcache, pipp, dsr, ucp, {', '.join(STATIC_LABELS)}")
    return 0


def _write_metrics(path: str) -> None:
    """Dump the registry: Prometheus text, or JSON for ``*.json`` paths."""
    if path.endswith(".json"):
        payload = json.dumps(REGISTRY.dump_json(), indent=2, sort_keys=True)
    else:
        payload = REGISTRY.expose_text()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)


def trace_filename(scheme: str) -> str:
    """A filesystem-safe trace filename for one scheme of a sweep."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", scheme).strip("-") + ".jsonl"


def cmd_run(args: argparse.Namespace) -> int:
    machine = preset(args.preset)
    if args.epochs is not None:
        machine = machine.with_(epochs=args.epochs)
    workload = _workload_from_name(args.workload)
    fault_plan = parse_fault_spec(args.faults) if args.faults else None
    if args.metrics:
        REGISTRY.reset()
        REGISTRY.enable()
    try:
        result = run_scheme(args.scheme, workload, machine, seed=args.seed,
                            epochs=args.epochs,
                            fault_plan=fault_plan,
                            checkpoint_path=args.checkpoint,
                            checkpoint_every=args.checkpoint_every,
                            resume=args.resume,
                            engine=args.engine,
                            trace_path=args.trace)
    finally:
        if args.metrics:
            REGISTRY.disable()
    print(f"{args.scheme} on {workload.name} "
          f"({args.preset} preset, seed {args.seed})")
    if fault_plan:
        print(f"fault plan: {fault_plan.name} (seed {fault_plan.seed})")
    for epoch in result.epochs:
        print(f"  epoch {epoch.epoch}: throughput {epoch.throughput:.3f}  "
              f"topology {epoch.topology_label}")
    print(render_series(result.throughput_series(), label="  trend "))
    print(f"mean throughput: {result.mean_throughput:.3f}")
    if args.trace:
        print(f"trace written: {args.trace} (render with 'repro trace')")
    if args.metrics:
        _write_metrics(args.metrics)
        print(f"metrics written: {args.metrics}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.timeline import render_timeline
    from repro.obs.trace import load_trace

    try:
        records = load_trace(args.path)
    except (OSError, ValueError) as exc:
        raise ConfigError("trace", f"cannot read {args.path}: {exc}")
    print(render_timeline(records))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    machine = preset(args.preset)
    workload = _workload_from_name(args.workload)
    fault_plan = parse_fault_spec(args.faults) if args.faults else None
    schemes = STATIC_LABELS + ["morphcache"]
    if args.trace:
        os.makedirs(args.trace, exist_ok=True)
    specs = [RunSpec(scheme=scheme, workload=workload, config=machine,
                     seed=args.seed, epochs=args.epochs, engine=args.engine,
                     fault_plan=fault_plan,
                     trace_path=(os.path.join(args.trace,
                                              trace_filename(scheme))
                                 if args.trace else None))
             for scheme in schemes]
    jobs = resolve_jobs(args.jobs)
    if args.resume_sweep and not args.sweep_journal:
        raise ConfigError("--resume-sweep", "requires --sweep-journal PATH")
    supervised = (args.run_timeout is not None or args.retries > 0
                  or args.sweep_journal is not None)
    report = None
    if supervised:
        policy = SweepPolicy(run_timeout=args.run_timeout,
                             retries=args.retries)
        report = run_supervised(specs, jobs=args.jobs, policy=policy,
                                journal=args.sweep_journal,
                                resume=args.resume_sweep)
        results = {scheme: result
                   for scheme, result in zip(schemes, report.results)
                   if result is not None}
    else:
        results = dict(zip(schemes, run_many(specs, jobs=args.jobs)))
    baseline = results.get("(16:1:1)")
    base = baseline.mean_throughput if baseline is not None else None
    suffix = f", {jobs} jobs" if jobs > 1 else ""
    print(f"{workload.name} ({args.preset} preset{suffix})")
    for scheme, result in sorted(results.items(),
                                 key=lambda kv: -kv[1].mean_throughput):
        relative = (f"{result.mean_throughput / base:6.3f}x"
                    if base else "   n/a")
        print(f"  {scheme:12} {result.mean_throughput:8.3f}  {relative}")
    if args.trace:
        print(f"traces written: {args.trace}/ (render with 'repro trace')")
    if report is not None:
        for index in report.quarantined:
            outcome = report.outcomes[index]
            print(f"  {schemes[index]:12} quarantined after "
                  f"{outcome.attempts} attempt(s): {outcome.error}",
                  file=sys.stderr)
        print(f"sweep: {report.summary()}")
        return 0 if report.ok else 1
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    from repro.sim.supervisor import inspect_journal

    summary = inspect_journal(args.path)
    if args.json:
        print(json.dumps(summary.to_json(), indent=2, sort_keys=True))
    else:
        print(summary.render())
    return 0


def _parse_quota(text: str):
    """``TENANT=WEIGHT[:QUEUED[:RUNNING]]`` -> (tenant, TenantQuota)."""
    from repro.serve.queue import TenantQuota

    tenant, sep, rest = text.partition("=")
    if not sep or not tenant:
        raise ConfigError(
            "--quota", f"expected TENANT=WEIGHT[:QUEUED[:RUNNING]], got {text!r}")
    parts = rest.split(":")
    if len(parts) > 3 or not parts[0]:
        raise ConfigError(
            "--quota", f"expected TENANT=WEIGHT[:QUEUED[:RUNNING]], got {text!r}")
    try:
        weight = float(parts[0])
        max_queued = int(parts[1]) if len(parts) > 1 else 8
        max_running = int(parts[2]) if len(parts) > 2 else 1
    except ValueError:
        raise ConfigError(
            "--quota", f"non-numeric quota in {text!r}") from None
    return tenant, TenantQuota(weight=weight, max_queued=max_queued,
                               max_running=max_running)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServiceConfig, TenantQuota, run_service

    quotas = dict(_parse_quota(q) for q in args.quota or ())
    config = ServiceConfig(
        state_dir=args.state_dir,
        host=args.host,
        port=args.port,
        max_concurrent_jobs=args.max_jobs,
        max_queued=args.max_queued,
        default_quota=TenantQuota(max_queued=args.max_queued_per_tenant,
                                  max_running=args.max_running_per_tenant),
        quotas=quotas,
        job_timeout=args.job_timeout,
        drain_grace=args.drain_grace,
        workers=args.workers,
        worker_heartbeat=args.worker_heartbeat,
        worker_misses=args.worker_misses,
    )
    mode = (f"{args.workers} pool worker(s)" if args.workers
            else f"{args.max_jobs} concurrent job(s)")
    print(f"repro serve: state dir {args.state_dir}, {mode}; "
          f"the bound address lands in "
          f"{os.path.join(args.state_dir, 'serve.json')}", file=sys.stderr)
    return run_service(config)


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.serve.pool import SharedPool, run_worker

    worker_id = args.worker_id or f"worker-{os.getpid()}"
    if args.init:
        SharedPool.ensure(args.pool, heartbeat=args.heartbeat,
                          misses=args.misses)
    done = run_worker(args.pool, worker_id, drain=args.drain,
                      max_jobs=args.max_jobs)
    print(f"worker {worker_id}: {done} job(s) completed", file=sys.stderr)
    return 0


def cmd_pool(args: argparse.Namespace) -> int:
    from repro.serve.pool import pool_status

    status = pool_status(args.pool_dir)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    config = status["config"]
    print(f"pool {status['pool']}: heartbeat {config['heartbeat']:g}s, "
          f"ttl {config['ttl']:g}s, "
          f"{status['reclaims']} reclaim(s) recorded")
    counts = ", ".join(f"{state}: {count}"
                       for state, count in sorted(status["counts"].items()))
    print(f"jobs: {counts or 'none'}")
    for job in status["jobs"]:
        lease = job.get("lease")
        if lease is None:
            detail = "unclaimed"
        elif lease["released"]:
            detail = (f"lease released by {lease['owner']} "
                      f"(fence {lease['fence']})")
        else:
            detail = (f"lease {lease['owner']} fence {lease['fence']} "
                      f"hb {lease['heartbeat_age']:.1f}s ago, "
                      f"{lease['reclaims']} reclaim(s)")
        print(f"  {job['id']:24} {job['state']:12} {detail}")
    for worker in status["workers"]:
        running = worker.get("running") or "idle"
        print(f"  worker {worker.get('worker', '?'):16} "
              f"pid {worker.get('pid')} {running}, "
              f"{worker.get('jobs_done', 0)} done, "
              f"seen {worker.get('age', 0.0):.1f}s ago")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MorphCache (HPCA 2011) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table3", help="print the machine description") \
        .add_argument("--preset", default="small")
    sub.add_parser("table2", help="print the arbiter synthesis table")
    sub.add_parser("list", help="list workloads and schemes")

    run_parser = sub.add_parser("run", help="simulate one scheme")
    run_parser.add_argument("--workload", required=True)
    run_parser.add_argument("--scheme", default="morphcache")
    run_parser.add_argument("--preset", default="small")
    run_parser.add_argument("--epochs", type=int, default=4)
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec, e.g. "
             "'disable-slice:every=10:level=l3,flip-acfv:at=5:bits=8,seed=7'")
    run_parser.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="write a resumable checkpoint to PATH during the run")
    run_parser.add_argument(
        "--checkpoint-every", type=int, default=5, metavar="N",
        help="checkpoint cadence in epochs (default 5)")
    run_parser.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint PATH (verified bit-identical replay)")
    run_parser.add_argument(
        "--engine", choices=("event", "batch"), default="event",
        help="epoch engine: per-access event loop (default) or the "
             "set-partitioned batch engine (bit-identical, faster)")
    run_parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record a structured JSONL trace of the run to PATH (render "
             "the reconfiguration timeline with 'repro trace PATH')")
    run_parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="enable the metrics registry for the run and write the "
             "Prometheus text exposition to PATH (JSON dump if PATH ends "
             "in .json)")

    trace_parser = sub.add_parser(
        "trace", help="render the timeline of a recorded trace")
    trace_parser.add_argument("path", help="JSONL trace from 'run --trace'")

    compare_parser = sub.add_parser("compare",
                                    help="compare the Figure 13 scheme set")
    compare_parser.add_argument("--workload", required=True)
    compare_parser.add_argument("--preset", default="small")
    compare_parser.add_argument("--epochs", type=int, default=3)
    compare_parser.add_argument("--seed", type=int, default=1)
    compare_parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the scheme sweep (default: $REPRO_JOBS "
             "or 1); results are identical at any job count")
    compare_parser.add_argument(
        "--engine", choices=("event", "batch"), default="event",
        help="epoch engine for every run of the sweep (bit-identical)")
    compare_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec applied to every run of the sweep "
             "(same syntax as 'run --faults')")
    compare_parser.add_argument(
        "--trace", default=None, metavar="DIR",
        help="record one JSONL trace per scheme into DIR "
             "(e.g. DIR/morphcache.jsonl, DIR/16-1-1.jsonl)")
    compare_parser.add_argument(
        "--run-timeout", type=float, default=None, metavar="S",
        help="wall-clock seconds per run before the supervisor kills the "
             "hung worker and retries/quarantines the run")
    compare_parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="attempts beyond the first before a failing run is "
             "quarantined (retries reuse the run's seed: bit-identical)")
    compare_parser.add_argument(
        "--sweep-journal", default=None, metavar="PATH",
        help="append each completed run to a crash-safe JSONL journal; a "
             "killed sweep resumes from it with --resume-sweep")
    compare_parser.add_argument(
        "--resume-sweep", action="store_true",
        help="load completed runs from --sweep-journal and execute only "
             "the missing ones (bit-identical to an uninterrupted sweep)")

    journal_parser = sub.add_parser(
        "journal", help="validate and summarize a sweep journal")
    journal_parser.add_argument("path", help="JSONL sweep journal")
    journal_parser.add_argument("--json", action="store_true",
                                help="machine-readable summary")

    serve_parser = sub.add_parser(
        "serve", help="run the multi-tenant simulation service")
    serve_parser.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="durable service state: job specs, journals, results; the "
             "service recovers from DIR at startup")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = OS-assigned; see DIR/serve.json)")
    serve_parser.add_argument(
        "--max-jobs", type=int, default=2, metavar="N",
        help="concurrently running jobs across all tenants (default 2)")
    serve_parser.add_argument(
        "--max-queued", type=int, default=64, metavar="N",
        help="global queue bound; beyond it submissions shed with 429")
    serve_parser.add_argument(
        "--max-queued-per-tenant", type=int, default=8, metavar="N",
        help="default per-tenant queue quota (default 8)")
    serve_parser.add_argument(
        "--max-running-per-tenant", type=int, default=1, metavar="N",
        help="default per-tenant running cap (default 1)")
    serve_parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help="default per-job wall-clock watchdog; a job's 'max_seconds' "
             "overrides it (default: no limit)")
    serve_parser.add_argument(
        "--quota", action="append", metavar="TENANT=W[:QUEUED[:RUNNING]]",
        help="per-tenant override: dispatch weight, queue quota, running "
             "cap (repeatable)")
    serve_parser.add_argument(
        "--drain-grace", type=float, default=10.0, metavar="S",
        help="seconds a drain waits for SIGTERM'd jobs to checkpoint "
             "before SIGKILLing them (default 10)")
    serve_parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="pool mode: spawn N 'repro worker' processes that pull jobs "
             "from DIR via fenced leases; a killed worker's jobs are "
             "adopted bit-identically by its peers (default 0 = run jobs "
             "in service-owned children)")
    serve_parser.add_argument(
        "--worker-heartbeat", type=float, default=1.0, metavar="S",
        help="pool lease heartbeat interval (set once at pool creation)")
    serve_parser.add_argument(
        "--worker-misses", type=int, default=3, metavar="N",
        help="missed heartbeats before a peer may reclaim a lease")

    worker_parser = sub.add_parser(
        "worker", help="run one shared-pool worker")
    worker_parser.add_argument(
        "--pool", required=True, metavar="DIR",
        help="the pool directory (a 'serve --workers' state dir, or one "
             "initialised with --init)")
    worker_parser.add_argument(
        "--worker-id", default=None, metavar="ID",
        help="stable identity for leases/heartbeats (default: worker-PID)")
    worker_parser.add_argument(
        "--drain", action="store_true",
        help="exit once every job in the pool is terminal")
    worker_parser.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="execute at most N jobs, then exit")
    worker_parser.add_argument(
        "--init", action="store_true",
        help="create the pool directory if it does not exist yet")
    worker_parser.add_argument(
        "--heartbeat", type=float, default=1.0, metavar="S",
        help="lease heartbeat interval when creating the pool with --init "
             "(an existing pool's timing always wins)")
    worker_parser.add_argument(
        "--misses", type=int, default=3, metavar="N",
        help="missed heartbeats before reclaim, when creating with --init")

    pool_parser = sub.add_parser(
        "pool", help="inspect a shared worker pool")
    pool_sub = pool_parser.add_subparsers(dest="pool_command", required=True)
    pool_status_parser = pool_sub.add_parser(
        "status", help="per-job lease state, worker heartbeats, counts")
    pool_status_parser.add_argument("pool_dir", metavar="DIR")
    pool_status_parser.add_argument("--json", action="store_true",
                                    help="machine-readable status")
    return parser


COMMANDS = {
    "table3": cmd_table3,
    "table2": cmd_table2,
    "list": cmd_list,
    "run": cmd_run,
    "trace": cmd_trace,
    "compare": cmd_compare,
    "journal": cmd_journal,
    "serve": cmd_serve,
    "worker": cmd_worker,
    "pool": cmd_pool,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return COMMANDS[args.command](args)
    except ReproError as exc:
        # Each error class carries its own exit code (see module docstring)
        # so sweep scripts can distinguish failure modes.
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except BrokenPipeError:
        # `repro trace ... | head` closes stdout early; exit quietly like
        # any well-behaved filter instead of tracebacking.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
