"""MorphCache reproduction: a reconfigurable adaptive multi-level cache
hierarchy (Srikantaiah et al., HPCA 2011), rebuilt as a pure-Python library.

Quick start::

    from repro import config, Workload, run_scheme, mix_by_name

    machine = config.preset("small")
    workload = Workload.from_mix(mix_by_name("MIX 05"))
    morph = run_scheme("morphcache", workload, machine, seed=1)
    base = run_scheme("(16:1:1)", workload, machine, seed=1)
    print(morph.mean_throughput / base.mean_throughput)

Packages:

- :mod:`repro.config` — Table 3 machine descriptions and scale presets.
- :mod:`repro.workloads` — synthetic SPEC/PARSEC models (Table 4/5).
- :mod:`repro.caches` — slices, merged groups, the inclusive hierarchy.
- :mod:`repro.interconnect` — segmented bus, arbiters, Table 1/2 timing.
- :mod:`repro.core` — MorphCache itself: ACFVs, topology, decisions, QoS.
- :mod:`repro.baselines` — static topologies, PIPP, DSR, ideal offline.
- :mod:`repro.cpu` / :mod:`repro.sim` — core timing and the epoch engine.
- :mod:`repro.metrics` — throughput, weighted/fair speedup, correlation.
- :mod:`repro.resilience` — fault injection, invariant guards,
  checkpoint/resume, and the typed error taxonomy.
"""

from repro import config
from repro.config import MachineConfig, MorphConfig, MsatConfig, preset
from repro.core import MorphCacheController
from repro.cpu import CmpSystem
from repro.metrics import fair_speedup, throughput, weighted_speedup
from repro.resilience import (
    CheckpointError,
    ConfigError,
    FaultInjectedError,
    FaultPlan,
    ReproError,
    TopologyInvariantError,
    parse_fault_spec,
)
from repro.sim import RunResult, Workload, alone_ipcs, run_scheme, simulate
from repro.workloads import MIXES, PARSEC_BENCHMARKS, SPEC_BENCHMARKS, mix_by_name

__version__ = "1.0.0"

__all__ = [
    "config",
    "preset",
    "MachineConfig",
    "MorphConfig",
    "MsatConfig",
    "MorphCacheController",
    "CmpSystem",
    "Workload",
    "RunResult",
    "run_scheme",
    "simulate",
    "alone_ipcs",
    "throughput",
    "weighted_speedup",
    "fair_speedup",
    "MIXES",
    "mix_by_name",
    "SPEC_BENCHMARKS",
    "PARSEC_BENCHMARKS",
    "ReproError",
    "ConfigError",
    "TopologyInvariantError",
    "FaultInjectedError",
    "CheckpointError",
    "FaultPlan",
    "parse_fault_spec",
    "__version__",
]
