"""Deterministic fault injection for the MorphCache simulator.

A :class:`FaultPlan` is a *pure function* from epoch number to the fault
events that start at that epoch — no hidden state, so a plan queried during
a checkpoint-resume replay produces exactly the events of the original run.
All randomness (random targets, the ``random`` rule's event draws) is
derived from ``(plan seed, epoch)``, never from a shared stream.

Supported fault kinds:

- ``flip-acfv`` — flip ``bits`` random bits in one core's ACFV at one level,
  modelling soft errors in the footprint-tracking SRAM;
- ``disable-slice`` — take a whole L2/L3 slice offline for ``duration``
  epochs (its contents are flushed and lookups/fills skip it), modelling a
  hard slice failure with recovery;
- ``bus-stall`` — the segmented-bus arbiter of the affected epoch(s) stalls:
  every merged-group remote hit pays ``penalty`` extra cycles;
- ``drop-grant`` — a transient arbiter glitch: like ``bus-stall`` but
  one epoch and a smaller default penalty;
- ``corrupt-topology`` — scribble over the controller's topology state
  (duplicate or drop a slice from a group), modelling controller SRAM
  corruption.  The invariant guard must catch this before the grouping
  reaches the cache hierarchy.

Plans are built programmatically (:meth:`FaultPlan.periodic`,
:meth:`FaultPlan.random_plan`) or parsed from a compact spec string
(:func:`parse_fault_spec`) for the ``--faults`` CLI flag, e.g.::

    disable-slice:every=10:level=l3:duration=2,flip-acfv:at=5:bits=8,seed=7
    random:rate=0.25:kinds=flip-acfv+disable-slice,seed=11
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.resilience.errors import ConfigError, FaultInjectedError

FAULT_KINDS = (
    "flip-acfv",
    "disable-slice",
    "bus-stall",
    "drop-grant",
    "corrupt-topology",
)

#: Default remote-hit penalty in cycles per kind (see module docstring).
_DEFAULT_PENALTY = {"bus-stall": 20, "drop-grant": 8}


@dataclass(frozen=True)
class FaultEvent:
    """One concrete fault starting at a given epoch."""

    epoch: int
    kind: str
    level: str = "l2"
    target: int = -1
    """Core (flip-acfv) or slice (disable-slice); -1 = deterministic random."""

    duration: int = 1
    """Epochs the fault stays active (disable-slice, bus-stall)."""

    bits: int = 4
    """Bits flipped per flip-acfv event."""

    penalty: int = 20
    """Extra remote-hit cycles while a bus fault is active."""


@dataclass(frozen=True)
class FaultRule:
    """A generator of :class:`FaultEvent`\\ s; either one-shot or periodic.

    ``at`` fires once at that epoch; ``every`` fires at each multiple of
    ``every`` at or after ``start``.  ``rate`` (with kind ``random``) fires a
    random kind from ``kinds`` with that probability each epoch.
    """

    kind: str
    at: Optional[int] = None
    every: Optional[int] = None
    start: int = 0
    duration: int = 1
    level: str = "l2"
    target: int = -1
    bits: int = 4
    penalty: int = -1  # -1 = kind default
    rate: float = 0.0
    kinds: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind != "random" and self.kind not in FAULT_KINDS:
            raise ConfigError("kind", f"unknown fault kind {self.kind!r}; "
                                      f"expected one of {sorted(FAULT_KINDS)}")
        if self.kind == "random":
            if not 0.0 < self.rate <= 1.0:
                raise ConfigError("rate", f"must be in (0, 1], got {self.rate}")
            for kind in self.kinds:
                if kind not in FAULT_KINDS:
                    raise ConfigError("kinds", f"unknown fault kind {kind!r}")
        elif self.at is None and self.every is None:
            raise ConfigError("at/every",
                              f"rule {self.kind!r} needs at=E or every=N")
        if self.every is not None and self.every <= 0:
            raise ConfigError("every", f"must be positive, got {self.every}")
        if self.duration <= 0:
            raise ConfigError("duration", f"must be positive, got {self.duration}")
        if self.level not in ("l2", "l3"):
            raise ConfigError("level", f"must be 'l2' or 'l3', got {self.level!r}")
        if self.bits <= 0:
            raise ConfigError("bits", f"must be positive, got {self.bits}")

    def fires_at(self, epoch: int) -> bool:
        if self.at is not None and epoch == self.at:
            return True
        if self.every is not None:
            return epoch >= self.start and (epoch - self.start) % self.every == 0
        return False

    def event(self, epoch: int, kind: Optional[str] = None) -> FaultEvent:
        kind = kind or self.kind
        penalty = self.penalty if self.penalty >= 0 else _DEFAULT_PENALTY.get(kind, 20)
        return FaultEvent(epoch=epoch, kind=kind, level=self.level,
                          target=self.target, duration=self.duration,
                          bits=self.bits, penalty=penalty)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of fault events."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0
    name: str = ""

    def events_at(self, epoch: int) -> List[FaultEvent]:
        """All fault events *starting* at ``epoch`` (pure, replay-safe)."""
        events: List[FaultEvent] = []
        for index, rule in enumerate(self.rules):
            if rule.kind == "random":
                rng = np.random.default_rng((self.seed, index, epoch))
                if rng.random() < rule.rate:
                    kinds = rule.kinds or FAULT_KINDS
                    kind = kinds[int(rng.integers(0, len(kinds)))]
                    events.append(rule.event(epoch, kind=kind))
            elif rule.fires_at(epoch):
                events.append(rule.event(epoch))
        return events

    def __bool__(self) -> bool:
        return bool(self.rules)

    # -- constructors ------------------------------------------------------

    @staticmethod
    def periodic(kind: str, every: int, **fields) -> "FaultPlan":
        """A plan with one periodic rule (``kind`` every ``every`` epochs)."""
        seed = fields.pop("seed", 0)
        return FaultPlan(rules=(FaultRule(kind=kind, every=every, **fields),),
                         seed=seed, name=f"{kind}/{every}")

    @staticmethod
    def random_plan(rate: float, seed: int = 0,
                    kinds: Sequence[str] = FAULT_KINDS, **fields) -> "FaultPlan":
        """A plan injecting a random kind with probability ``rate``/epoch."""
        rule = FaultRule(kind="random", rate=rate, kinds=tuple(kinds), **fields)
        return FaultPlan(rules=(rule,), seed=seed, name=f"random/{rate}")


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the compact ``--faults`` spec string into a :class:`FaultPlan`.

    Comma-separated clauses; each clause is ``kind:key=value:...`` or a
    bare ``seed=K`` / ``name=N`` plan field.  Raises :class:`ConfigError`
    on any malformed clause, naming the offending token.
    """
    rules: List[FaultRule] = []
    seed = 0
    name = ""
    for clause in (c.strip() for c in spec.split(",") if c.strip()):
        if clause.startswith("seed="):
            seed = _parse_int("seed", clause[5:])
            continue
        if clause.startswith("name="):
            name = clause[5:]
            continue
        parts = clause.split(":")
        kind = parts[0]
        fields: Dict[str, object] = {}
        for part in parts[1:]:
            if "=" not in part:
                raise ConfigError("faults", f"expected key=value, got {part!r} "
                                            f"in clause {clause!r}")
            key, value = part.split("=", 1)
            if key in ("at", "every", "start", "duration", "target", "bits",
                       "penalty"):
                fields[key] = _parse_int(key, value)
            elif key == "rate":
                try:
                    fields[key] = float(value)
                except ValueError:
                    raise ConfigError("rate", f"not a number: {value!r}") from None
            elif key == "level":
                fields[key] = value
            elif key == "kinds":
                fields[key] = tuple(value.split("+"))
            else:
                raise ConfigError("faults", f"unknown field {key!r} in "
                                            f"clause {clause!r}")
        rules.append(FaultRule(kind=kind, **fields))  # type: ignore[arg-type]
    return FaultPlan(rules=tuple(rules), seed=seed, name=name or spec)


def _parse_int(field_name: str, value: str) -> int:
    try:
        return int(value)
    except ValueError:
        raise ConfigError(field_name, f"not an integer: {value!r}") from None


class FaultInjector:
    """Applies a :class:`FaultPlan` to a running system, epoch by epoch.

    The injector works by duck typing against the system under test: a
    :class:`~repro.cpu.cmp.CmpSystem` exposes ``hierarchy`` (slice disabling,
    bus penalties) and possibly ``controller`` (ACFVs, topology); systems
    without one of those simply don't experience the corresponding faults.
    All mutable injector state (active disables, stall expiry) is a pure
    function of the epochs seen so far, so a resume replay reconstructs it
    exactly.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.log: List[FaultEvent] = []
        self._disabled_until: Dict[Tuple[str, int], int] = {}
        self._stall_until = -1
        self._stall_penalty = 0

    # -- per-epoch application ---------------------------------------------

    def begin_epoch(self, epoch: int, system) -> None:
        """Apply expiries and this epoch's new faults before any access."""
        hierarchy = getattr(system, "hierarchy", None)
        controller = getattr(system, "controller", None)
        rng = np.random.default_rng((self.plan.seed, 0x5EED, epoch))

        expired = [key for key, until in self._disabled_until.items()
                   if until <= epoch]
        for key in expired:
            del self._disabled_until[key]

        for event in self.plan.events_at(epoch):
            self.log.append(event)
            if event.kind == "flip-acfv":
                self._flip_acfv(event, controller, rng)
            elif event.kind == "disable-slice":
                self._disable_slice(event, hierarchy, rng)
            elif event.kind in ("bus-stall", "drop-grant"):
                self._stall_until = max(self._stall_until,
                                        epoch + event.duration)
                self._stall_penalty = event.penalty
            elif event.kind == "corrupt-topology":
                self._corrupt_topology(event, controller, rng)

        if hierarchy is not None:
            for level in ("l2", "l3"):
                disabled = {s for (lvl, s) in self._disabled_until if lvl == level}
                hierarchy.set_faulted_slices(level, disabled)
            hierarchy.bus_penalty = (self._stall_penalty
                                     if epoch < self._stall_until else 0)

    # -- individual fault mechanics ----------------------------------------

    def _flip_acfv(self, event: FaultEvent, controller, rng) -> None:
        if controller is None:
            return
        bank = controller.bank
        core = event.target if 0 <= event.target < bank.n_cores else (
            int(rng.integers(0, bank.n_cores)))
        vector = bank.acfv(event.level, core)
        for _ in range(event.bits):
            vector.flip(int(rng.integers(0, vector.bits)))

    def _disable_slice(self, event: FaultEvent, hierarchy, rng) -> None:
        if hierarchy is None:
            return
        n = hierarchy.config.cores
        already = {s for (lvl, s) in self._disabled_until if lvl == event.level}
        if event.target >= 0:
            target = event.target
            if target >= n:
                raise FaultInjectedError(
                    f"disable-slice target {target} out of range for "
                    f"{n}-slice {event.level}")
            if len(already | {target}) >= n:
                raise FaultInjectedError(
                    f"fault plan would disable every {event.level} slice; "
                    "the machine cannot make progress")
        else:
            candidates = [s for s in range(n) if s not in already]
            if len(candidates) <= 1:
                return  # never take the last slice of a level offline
            target = int(candidates[int(rng.integers(0, len(candidates)))])
        self._disabled_until[(event.level, target)] = event.epoch + event.duration

    def _corrupt_topology(self, event: FaultEvent, controller, rng) -> None:
        if controller is None:
            return
        topology = controller.topology
        groups = topology._groups[event.level]  # deliberate: faults model
        # state corruption, which by nature bypasses the public API.
        if not groups:
            return
        index = int(rng.integers(0, len(groups)))
        group = groups[index]
        if rng.random() < 0.5 or len(group) == 1:
            # Duplicate a slice already owned by another group.
            alien = int(rng.integers(0, topology.n_slices))
            groups[index] = tuple(sorted(set(group) | {alien}))
        else:
            # Orphan a slice: drop it from its group entirely.
            victim = group[int(rng.integers(0, len(group)))]
            groups[index] = tuple(s for s in group if s != victim)

    # -- reporting ---------------------------------------------------------

    @property
    def injected(self) -> int:
        """Total fault events applied so far."""
        return len(self.log)

    def active_disables(self) -> Dict[str, List[int]]:
        """Currently-offline slices per level (for digests and reports)."""
        result: Dict[str, List[int]] = {"l2": [], "l3": []}
        for (level, slice_id) in sorted(self._disabled_until):
            result[level].append(slice_id)
        return result
