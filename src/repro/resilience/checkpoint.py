"""Checkpoint/resume for long simulation sweeps.

A checkpoint records, every N epochs:

- the **completed epoch results** (IPC, misses, topology label per epoch);
- the **RNG state** of every workload thread (numpy bit-generator state);
- a **digest of the cache/ACFV state** (every resident line, the topology,
  the ACFV vectors) — a few hundred bytes instead of megabytes of entries;
- a **fingerprint** of the run (workload, scheme, seed, machine geometry)
  so a checkpoint can never silently resume a *different* experiment.

Resume is replay-based: the engine re-simulates the already-completed
epochs (trace generation and cache accesses are deterministic given the
seed), then verifies that the rebuilt RNG states and state digest match the
checkpoint exactly before continuing.  This makes a resumed run
*bit-identical* to an uninterrupted one by construction — the checkpoint is
the proof obligation, not the state transfer — and keeps checkpoint files
small, human-readable JSON.

Checkpoint writes are atomic (write to ``<path>.tmp``, then ``os.replace``)
so a run killed mid-write leaves the previous checkpoint intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Dict, List, Optional

from repro.resilience.errors import CheckpointError

FORMAT_VERSION = 1


# -- digests ---------------------------------------------------------------

def state_digest(system) -> str:
    """SHA-256 over the system's full architectural state.

    Covers the cache hierarchy (every entry's line/owner/dirty/stamp, the
    installed topology, disabled slices, the LRU stamp counter) and the
    MorphCache controller (ACFV vectors, epoch, guard mode) when present.
    Systems without a hierarchy (PIPP/DSR baselines) digest their cumulative
    miss counters, which the access stream fully determines.
    """
    hasher = hashlib.sha256()

    def feed(*parts: Any) -> None:
        hasher.update(repr(parts).encode())

    hierarchy = getattr(system, "hierarchy", None)
    if hierarchy is not None:
        feed("stamp", hierarchy._stamp)
        feed("l2_groups", hierarchy.l2_groups, "l3_groups", hierarchy.l3_groups)
        feed("disabled", sorted(hierarchy.disabled_slices("l2")),
             sorted(hierarchy.disabled_slices("l3")))
        for name, slices in (("l1", hierarchy.l1s), ("l2", hierarchy.l2s),
                             ("l3", hierarchy.l3s)):
            for slice_id, cache in enumerate(slices):
                for entry in cache.entries():
                    feed(name, slice_id, entry.line, entry.owner,
                         entry.dirty, entry.stamp)
    controller = getattr(system, "controller", None)
    if controller is not None:
        feed("epoch", controller._epoch, "mode", controller.guard.mode)
        for level in ("l2", "l3"):
            for core in range(controller.config.cores):
                feed(level, core, controller.bank.acfv(level, core).as_int())
    if hierarchy is None and controller is None:
        feed("misses", sorted(system.miss_counts().items()))
    return hasher.hexdigest()


def rng_states(threads) -> List[Optional[Dict[str, Any]]]:
    """JSON-able bit-generator states of the per-core thread generators."""
    states: List[Optional[Dict[str, Any]]] = []
    for thread in threads:
        if thread is None:
            states.append(None)
        else:
            states.append(_plain(thread._rng.bit_generator.state))
    return states


def _plain(value: Any) -> Any:
    """Convert numpy scalars inside a state dict to plain Python types."""
    if isinstance(value, dict):
        return {k: _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def run_fingerprint(workload, config, scheme_name: str, seed: int,
                    n_epochs: int, n_accesses: int, warmup: int) -> Dict[str, Any]:
    """Identity of an experiment; two runs may share a checkpoint iff equal."""
    return {
        "workload": workload.name,
        "scheme": scheme_name,
        "seed": seed,
        "epochs": n_epochs,
        "accesses_per_core": n_accesses,
        "warmup_epochs": warmup,
        "machine": repr(config),
    }


# -- serialisation ---------------------------------------------------------

def epoch_to_json(epoch_result) -> Dict[str, Any]:
    return {
        "epoch": epoch_result.epoch,
        "ipcs": {str(core): ipc for core, ipc in epoch_result.ipcs.items()},
        "misses": {str(core): m for core, m in epoch_result.misses.items()},
        "topology_label": epoch_result.topology_label,
    }


def epoch_from_json(payload: Dict[str, Any]):
    from repro.sim.engine import EpochResult  # local: avoid import cycle
    return EpochResult(
        epoch=int(payload["epoch"]),
        ipcs={int(core): float(ipc) for core, ipc in payload["ipcs"].items()},
        misses={int(core): int(m) for core, m in payload["misses"].items()},
        topology_label=payload["topology_label"],
    )


def save_checkpoint(
    path,
    fingerprint: Dict[str, Any],
    next_epoch: int,
    epochs: List[Any],
    threads,
    system,
) -> None:
    """Atomically write a checkpoint after ``next_epoch`` simulated epochs."""
    payload = {
        "version": FORMAT_VERSION,
        "fingerprint": fingerprint,
        "next_epoch": next_epoch,
        "epochs": [epoch_to_json(e) for e in epochs],
        "rng_states": rng_states(threads),
        "state_digest": state_digest(system),
    }
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    try:
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc


def load_checkpoint(path, fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """Load and sanity-check a checkpoint for the given experiment.

    Raises:
        CheckpointError: missing file, unparseable JSON, format-version
            mismatch, or a fingerprint belonging to a different run.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"corrupt checkpoint {path}: {exc}") from exc
    for key in ("version", "fingerprint", "next_epoch", "epochs",
                "rng_states", "state_digest"):
        if key not in payload:
            raise CheckpointError(f"checkpoint {path} is missing {key!r}")
    if payload["version"] != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {payload['version']}, "
            f"this build reads {FORMAT_VERSION}")
    if payload["fingerprint"] != fingerprint:
        mismatched = [k for k in fingerprint
                      if payload["fingerprint"].get(k) != fingerprint[k]]
        raise CheckpointError(
            f"checkpoint {path} belongs to a different run "
            f"(mismatched: {', '.join(mismatched) or 'unknown fields'})")
    return payload


def verify_replay(payload: Dict[str, Any], threads, system, path) -> None:
    """After fast-forward replay, prove the rebuilt state matches.

    Raises:
        CheckpointError: replayed RNG states or the architectural-state
            digest differ from the checkpoint — the run being resumed is not
            the run that was checkpointed.
    """
    replayed = rng_states(threads)
    if replayed != payload["rng_states"]:
        raise CheckpointError(
            f"checkpoint {path}: replayed RNG state diverged — the workload "
            "or seed does not match the checkpointed run")
    digest = state_digest(system)
    if digest != payload["state_digest"]:
        raise CheckpointError(
            f"checkpoint {path}: replayed cache/ACFV state digest "
            f"{digest[:12]}… != checkpointed "
            f"{payload['state_digest'][:12]}…")
