"""Typed exception taxonomy for the reproduction.

Every error the simulator raises deliberately derives from
:class:`ReproError`, so callers (the CLI, the benchmark harness, CI) can
distinguish *what class of thing went wrong* without parsing messages:

- :class:`ConfigError` — an invalid machine/policy/fault configuration,
  detected at construction time with the offending field named;
- :class:`TopologyInvariantError` — a proposed L2/L3 slice grouping violates
  a structural invariant (partition exactness, inclusion, connectivity);
- :class:`FaultInjectedError` — an injected fault made forward progress
  impossible (e.g. a fault plan that disables every slice of a level);
- :class:`CheckpointError` — a checkpoint file is missing, corrupt, or was
  written by a different run than the one resuming from it (sweep journals
  reuse this class: a journal is the sweep-level checkpoint);
- :class:`WorkerCrashError` — a sweep worker *process* died (segfault,
  SIGKILL, the OOM killer, an unpicklable crash) instead of raising;
- :class:`SweepInterrupted` — a supervised sweep received SIGINT/SIGTERM,
  drained its in-flight runs, flushed its journal and stopped early;
- :class:`ServiceError` — the simulation service (``repro serve``) refused
  or failed a request: saturation (:class:`ServiceSaturatedError`),
  per-tenant quota (:class:`QuotaExceededError`), drain
  (:class:`ServiceDrainingError`), an unknown job
  (:class:`JobNotFoundError`), or a job killed by the service watchdog
  (:class:`JobTimeoutError`);
- :class:`PoolError` — the shared worker pool (``repro worker``) failed:
  a worker's lease on a job was reclaimed by a peer while it still held
  state (:class:`LeaseLostError` — the fencing check that makes zombie
  writes safe), or the pool directory itself is unusable
  (:class:`PoolCorruptError`).

Each class that *declares* an ``exit_code`` carries a distinct process exit
code used by ``python -m repro`` so CI failures are diagnosable from the
status alone; the service subclasses deliberately share
:class:`ServiceError`'s code and differ in ``http_status`` instead — over
HTTP the response status is the discriminator, and the process exits with
one well-known "service" code.  The taxonomy is documented (and tested
against) the exit-code tables in README.md and DESIGN.md.

This module is deliberately import-free so any layer of the package can
raise these without creating dependency cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all deliberate simulator errors."""

    exit_code = 2


class ConfigError(ReproError, ValueError):
    """An invalid configuration value, with the offending field named.

    Subclasses :class:`ValueError` so existing callers that guard
    construction with ``except ValueError`` keep working.
    """

    exit_code = 3

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field


class TopologyInvariantError(ReproError):
    """A slice grouping violates a structural topology invariant."""

    exit_code = 4

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant


class FaultInjectedError(ReproError):
    """An injected fault left the machine unable to make progress."""

    exit_code = 5


class CheckpointError(ReproError):
    """A checkpoint could not be loaded, verified, or resumed from."""

    exit_code = 6


class WorkerCrashError(ReproError):
    """A sweep worker process died without raising a Python exception.

    Wraps ``concurrent.futures.process.BrokenProcessPool`` (and worker
    ``MemoryError``) so a crashed/OOM-killed worker surfaces as a typed,
    retryable simulator error instead of a raw traceback.
    """

    exit_code = 7


class SweepInterrupted(ReproError):
    """A supervised sweep stopped early on SIGINT/SIGTERM.

    Raised only *after* the supervisor has drained in-flight runs and
    flushed the run journal, so everything completed before the signal is
    on disk and resumable.  ``report`` carries the partial
    :class:`~repro.sim.supervisor.SweepReport` when one exists.
    """

    exit_code = 8

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class ServiceError(ReproError):
    """The simulation service refused or failed a request.

    Every service-side failure mode is a subclass carrying the HTTP status
    the server answers with (``http_status``); all of them share this
    class's process exit code, because a *service process* that dies of one
    of these always dies for the same operational reason ("the service
    layer, not the simulator") — the HTTP status is the fine-grained
    discriminator for clients.
    """

    exit_code = 9
    http_status = 500


class ServiceSaturatedError(ServiceError):
    """Admission control shed the request: the global queue is full.

    Raised *before* anything is enqueued or persisted, so a saturated
    service holds queue memory constant no matter how fast submissions
    arrive — the explicit 429 is the whole backpressure mechanism.
    """

    http_status = 429


class QuotaExceededError(ServiceError):
    """One tenant hit its own queued-jobs bound (the rest are unaffected)."""

    http_status = 429


class ServiceDrainingError(ServiceError):
    """The service is starting up or draining and not admitting jobs."""

    http_status = 503


class JobNotFoundError(ServiceError):
    """The requested job id is not in the service's registry."""

    http_status = 404


class JobTimeoutError(ServiceError):
    """The service watchdog killed a job that exceeded its wall-clock cap.

    This is the *job*-level watchdog layered above the supervisor's
    per-run ``run_timeout``: even a sweep whose individual runs all beat
    their timeouts is bounded in total.
    """

    http_status = 504


class PoolError(ReproError):
    """The shared worker pool failed.

    Like :class:`ServiceError`, this is a *family* code: every pool-side
    failure shares exit code 10 ("the pool layer, not the simulator"),
    and the subclass is the fine-grained discriminator in logs and
    ``error.json``.
    """

    exit_code = 10


class LeaseLostError(PoolError):
    """This worker's lease on a job was reclaimed by a peer.

    Raised by the fencing check that guards every durable journal/status
    write: a zombie worker (paused, wedged, or partitioned past its lease
    TTL) discovers on its next write that a peer holds a higher fence and
    aborts instead of corrupting the adopted job's state.  The job itself
    is unharmed — the adopter resumed it bit-identically from the fsync'd
    journal — so the only safe move for the zombie is to die with this
    distinct code.
    """


class PoolCorruptError(PoolError):
    """The pool directory is structurally unusable (torn ``pool.json``,
    foreign layout, or an unwritable claim/heartbeat area)."""


__all__ = [
    "CheckpointError",
    "ConfigError",
    "FaultInjectedError",
    "JobNotFoundError",
    "JobTimeoutError",
    "LeaseLostError",
    "PoolCorruptError",
    "PoolError",
    "QuotaExceededError",
    "ReproError",
    "ServiceDrainingError",
    "ServiceError",
    "ServiceSaturatedError",
    "SweepInterrupted",
    "TopologyInvariantError",
    "WorkerCrashError",
]
