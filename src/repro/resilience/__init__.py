"""Resilience subsystem: faults, invariant guards, checkpoint/resume.

- :mod:`~repro.resilience.errors` — the typed exception taxonomy
  (:class:`ReproError` and its per-class CLI exit codes).
- :mod:`~repro.resilience.faults` — deterministic seeded fault plans and the
  injector that applies them (ACFV bit flips, slice failures, bus stalls,
  topology corruption).
- :mod:`~repro.resilience.guards` — machine-checked topology invariants and
  the degradation ladder (roll back → freeze → static fallback).
- :mod:`~repro.resilience.checkpoint` — replay-verified checkpoint/resume
  for long sweeps.
"""

from repro.resilience.errors import (
    CheckpointError,
    ConfigError,
    FaultInjectedError,
    LeaseLostError,
    PoolCorruptError,
    PoolError,
    ReproError,
    SweepInterrupted,
    TopologyInvariantError,
    WorkerCrashError,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
    parse_fault_spec,
)
from repro.resilience.guards import (
    GuardEvent,
    TopologyGuard,
    validate_topology,
)
from repro.resilience.checkpoint import (
    load_checkpoint,
    save_checkpoint,
    state_digest,
)

__all__ = [
    "ReproError",
    "ConfigError",
    "TopologyInvariantError",
    "FaultInjectedError",
    "CheckpointError",
    "WorkerCrashError",
    "SweepInterrupted",
    "PoolError",
    "LeaseLostError",
    "PoolCorruptError",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "parse_fault_spec",
    "TopologyGuard",
    "GuardEvent",
    "validate_topology",
    "state_digest",
    "save_checkpoint",
    "load_checkpoint",
]
