"""Topology invariant guards and the degradation ladder.

MorphCache's safety argument (Sections 2.2/2.3 of the paper) rests on every
topology transition preserving four structural invariants.  The guard layer
machine-checks them *before* a proposed grouping is pushed into the cache
hierarchy:

1. **partition exactness** — at each level every slice belongs to exactly
   one group (no orphaned or duplicated slice, so no core loses its cache);
2. **capacity conservation** — the groups jointly cover exactly the
   machine's slices, so merging/splitting never creates or destroys lines;
3. **inclusion** — every L2 group is contained in a single L3 group, so a
   merged L2 region cannot outgrow its backing L3 region;
4. **connectivity** — each group is a contiguous run on the floorplan (the
   segmented bus only joins neighbouring segments), unless the Section 5.5
   non-neighbour extension is enabled.

On a violation the :class:`TopologyGuard` does not crash the experiment: it
rolls the controller back to the last-known-good topology and climbs a
degradation ladder —

    retry next epoch  →  freeze topology  →  fall back to the static baseline

so a corrupted controller degrades to a correct (if less adaptive) machine
instead of aborting a long sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.errors import TopologyInvariantError

# NOTE: this module must not import repro.core/repro.caches at module level
# (repro.caches.hierarchy imports repro.resilience.errors, which initialises
# this package).  parse_config_label is imported lazily where needed;
# TopologyState is duck-typed.
Group = Tuple[int, ...]

#: Ladder modes, in degradation order.
NORMAL = "normal"
RETRY = "retry"
FROZEN = "frozen"
FALLBACK = "fallback"


def validate_topology(
    n_slices: int,
    l2_groups: Sequence[Group],
    l3_groups: Sequence[Group],
    allow_non_neighbors: bool = False,
) -> None:
    """Check the four structural invariants; raise on the first violation.

    Raises:
        TopologyInvariantError: with ``invariant`` naming the failed check
            (``partition``, ``capacity``, ``inclusion`` or ``connectivity``).
    """
    for level, groups in (("l2", l2_groups), ("l3", l3_groups)):
        seen: Dict[int, Group] = {}
        for group in groups:
            if not group:
                raise TopologyInvariantError(
                    "partition", f"{level} contains an empty group")
            for slice_id in group:
                if not 0 <= slice_id < n_slices:
                    raise TopologyInvariantError(
                        "partition",
                        f"{level} group {group} references slice {slice_id} "
                        f"outside 0..{n_slices - 1}")
                if slice_id in seen:
                    raise TopologyInvariantError(
                        "partition",
                        f"slice {slice_id} appears in {level} groups "
                        f"{seen[slice_id]} and {group}")
                seen[slice_id] = group
        orphans = set(range(n_slices)) - set(seen)
        if orphans:
            raise TopologyInvariantError(
                "partition",
                f"{level} orphans cores {sorted(orphans)}: no group serves them")
        covered = sum(len(g) for g in groups)
        if covered != n_slices:
            raise TopologyInvariantError(
                "capacity",
                f"{level} groups cover {covered} slices, machine has {n_slices}")
        if not allow_non_neighbors:
            for group in groups:
                ordered = tuple(sorted(group))
                if ordered != tuple(range(ordered[0], ordered[-1] + 1)):
                    raise TopologyInvariantError(
                        "connectivity",
                        f"{level} group {group} is not a contiguous run on "
                        "the floorplan (segmented bus cannot join it)")

    l3_of: Dict[int, Group] = {}
    for group in l3_groups:
        for slice_id in group:
            l3_of[slice_id] = group
    for group in l2_groups:
        covering = {l3_of[s] for s in group}
        if len(covering) != 1:
            raise TopologyInvariantError(
                "inclusion",
                f"L2 group {group} spans L3 groups {sorted(covering, key=min)}")


@dataclass(frozen=True)
class GuardEvent:
    """One guard intervention, for post-run reporting."""

    epoch: int
    action: str
    """``rolled-back``, ``froze`` or ``fallback``."""

    violation: str
    mode_after: str


@dataclass
class TopologyGuard:
    """Validates transitions and drives the degradation ladder.

    Args:
        n_slices: machine slice count per level.
        allow_non_neighbors: accept non-contiguous groups (Section 5.5).
        max_retries: consecutive rolled-back epochs before freezing.
        max_freeze_violations: violations *while frozen* before falling back
            to the static baseline topology.
        fallback_label: the ``(x:y:z)`` topology installed on fallback;
            defaults to ``(n:1:1)``, the all-shared static baseline the
            paper's comparisons normalise against.
    """

    n_slices: int
    allow_non_neighbors: bool = False
    max_retries: int = 2
    max_freeze_violations: int = 1
    fallback_label: Optional[str] = None

    mode: str = NORMAL
    events: List[GuardEvent] = field(default_factory=list)
    _consecutive: int = 0
    _frozen_violations: int = 0
    _last_good: Optional[Dict[str, List[Group]]] = None
    _epoch: int = 0

    def __post_init__(self) -> None:
        from repro.core.topology import parse_config_label
        if self.fallback_label is None:
            self.fallback_label = f"({self.n_slices}:1:1)"
        parse_config_label(self.fallback_label, self.n_slices)  # fail fast

    # -- bookkeeping -------------------------------------------------------

    @property
    def decisions_enabled(self) -> bool:
        """False once the ladder froze or fell back: stop reconfiguring."""
        return self.mode in (NORMAL, RETRY)

    def remember_good(self, topology) -> None:
        """Record the current (validated) grouping as last-known-good."""
        self._last_good = {
            level: list(topology.groups(level)) for level in ("l2", "l3")
        }

    # -- the per-epoch review ----------------------------------------------

    def review(self, topology) -> Optional[TopologyInvariantError]:
        """Validate the proposed topology; intervene on violation.

        Returns None when the grouping is valid (and records it as the new
        last-known-good).  On a violation, restores the last-known-good
        grouping into ``topology``, climbs the ladder, records a
        :class:`GuardEvent`, and returns the violation — the caller decides
        whether to re-raise (strict mode) or continue degraded.
        """
        self._epoch += 1
        try:
            validate_topology(self.n_slices, topology.groups("l2"),
                              topology.groups("l3"),
                              allow_non_neighbors=self.allow_non_neighbors)
        except TopologyInvariantError as violation:
            self._intervene(topology, violation)
            return violation
        self._consecutive = 0
        if self.mode == RETRY:
            self.mode = NORMAL
        self.remember_good(topology)
        return None

    def record_failure(self, topology, exc: Exception) -> None:
        """An exception escaped the decision pass: treat it as a violation."""
        violation = exc if isinstance(exc, TopologyInvariantError) else (
            TopologyInvariantError("decision", str(exc)))
        self._intervene(topology, violation)

    def _intervene(self, topology,
                   violation: TopologyInvariantError) -> None:
        self._restore(topology)
        self._consecutive += 1
        if self.mode == FALLBACK:
            action = "fallback"
        elif self.mode == FROZEN:
            self._frozen_violations += 1
            if self._frozen_violations > self.max_freeze_violations:
                self._fall_back(topology)
                action = "fallback"
            else:
                action = "rolled-back"
        elif self._consecutive > self.max_retries:
            self.mode = FROZEN
            action = "froze"
        else:
            self.mode = RETRY
            action = "rolled-back"
        self.events.append(GuardEvent(epoch=self._epoch, action=action,
                                      violation=str(violation),
                                      mode_after=self.mode))

    def _restore(self, topology) -> None:
        """Reinstate the last-known-good grouping (all-private if none)."""
        good = self._last_good or {
            "l2": [(i,) for i in range(self.n_slices)],
            "l3": [(i,) for i in range(self.n_slices)],
        }
        # Bypass set_groups: the *current* state may be arbitrarily corrupt,
        # and set_groups' own inclusion check compares against it.
        topology._groups["l3"] = list(good["l3"])
        topology._groups["l2"] = list(good["l2"])
        topology.check_inclusion()

    def _fall_back(self, topology) -> None:
        from repro.core.topology import parse_config_label
        self.mode = FALLBACK
        l2_groups, l3_groups = parse_config_label(self.fallback_label,
                                                  self.n_slices)
        topology._groups["l3"] = list(l3_groups)
        topology._groups["l2"] = list(l2_groups)
        self.remember_good(topology)

    # -- reporting ---------------------------------------------------------

    @property
    def interventions(self) -> int:
        return len(self.events)
