"""CPU-side substrate: analytic core timing and the CMP system assembly.

The paper simulates 4-way issue superscalar cores on a full-system
simulator; here each core is an analytic timing model (non-memory
instructions retire at the issue width, memory references expose their
hierarchy latency), which preserves exactly the quantity every experiment
reports — relative IPC under different cache topologies.
"""

from repro.cpu.core_model import CoreTimingModel
from repro.cpu.cmp import CmpSystem

__all__ = ["CoreTimingModel", "CmpSystem"]
