"""CMP system assembly: hierarchy + optional MorphCache controller.

:class:`CmpSystem` is the canonical "system under test" used by the
experiment harness for MorphCache and every static topology.  It exposes
the small protocol the simulation engine drives:

- ``access(core, line, write) -> latency``
- ``end_epoch() -> Optional[str]`` (a topology label for logging)
- ``miss_counts() -> Dict[int, int]`` (cumulative per-core memory accesses)

The PIPP and DSR baselines implement the same protocol with their own
cache organisations (see :mod:`repro.baselines`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.caches.hierarchy import CacheHierarchy
from repro.config import MachineConfig, MorphConfig
from repro.core.controller import MorphCacheController
from repro.core.topology import parse_config_label


class CmpSystem:
    """A 16-core CMP with either a fixed or a MorphCache-managed topology."""

    def __init__(
        self,
        config: MachineConfig,
        static_label: Optional[str] = None,
        morph: Optional[MorphConfig] = None,
        shared_address_space: bool = False,
    ) -> None:
        """Build the system.

        Args:
            config: machine description.
            static_label: a ``(x:y:z)`` label for a fixed topology; mutually
                exclusive with ``morph``.  Static topologies use flat local
                latencies (Section 4 methodology).
            morph: MorphCache policy; when given, the system starts private
                and reconfigures at every epoch boundary.
            shared_address_space: True for multithreaded workloads (enables
                the sharing merge condition and L1 write-invalidation
                matters).
        """
        if static_label is not None and morph is not None:
            raise ValueError("choose either a static topology or MorphCache")
        self.config = config
        self.controller: Optional[MorphCacheController] = None
        if static_label is not None:
            self.hierarchy = CacheHierarchy(config, charge_remote_latency=False)
            l2_groups, l3_groups = parse_config_label(static_label, config.cores)
            self.hierarchy.set_topology(l2_groups, l3_groups)
            self._label = static_label
        else:
            self.hierarchy = CacheHierarchy(config, charge_remote_latency=True)
            self.controller = MorphCacheController(
                config, morph or MorphConfig(),
                shared_address_space=shared_address_space,
            )
            self.controller.attach(self.hierarchy)
            self._label = "morphcache"

    @property
    def label(self) -> str:
        return self._label

    # -- engine protocol -----------------------------------------------------

    def access(self, core: int, line: int, write: bool) -> int:
        """One memory reference; returns its latency in CPU cycles."""
        return self.hierarchy.access(core, line, write).latency

    def end_epoch(self) -> Optional[str]:
        """Epoch boundary: reconfigure if MorphCache-managed."""
        if self.controller is not None:
            self.controller.end_epoch()
            return self.controller.current_label()
        return self._label

    def miss_counts(self) -> Dict[int, int]:
        """Cumulative per-core main-memory accesses."""
        return {
            core: stats.memory_accesses
            for core, stats in self.hierarchy.stats.cores.items()
        }
