"""Analytic timing model of one 4-way issue superscalar core.

Between two memory references a core retires the trace's instruction gap at
its issue width; the memory reference itself then exposes the latency the
cache hierarchy returned.  Off-chip misses additionally overlap: a 4-way
out-of-order core hides a substantial part of its memory latency behind
independent work and other outstanding misses (the paper's cores have 8
MSHRs), so only ``1 - memory_overlap`` of the main-memory portion of a
reference is charged.  Without this, a fully-exposed 300-cycle miss makes
per-core IPC so spread out that sum-of-IPC throughput is decided purely by
whichever scheme protects the hit-dominated cores — compressing the spread
to realistic levels is what lets capacity effects (the paper's subject)
show through.
"""

from __future__ import annotations

import numpy as np

#: Fraction of the off-chip latency hidden by out-of-order overlap and
#: miss-level parallelism.
DEFAULT_MEMORY_OVERLAP = 0.65

#: Finest binary fraction the exact-summation argument admits: ``_hidden``
#: must be a multiple of ``2**-_EXACT_FRAC_BITS`` for batched accounting to
#: be bit-identical to the per-access loop (see :meth:`CoreTimingModel.
#: batch_summation_exact`).
_EXACT_FRAC_BITS = 8


class CoreTimingModel:
    """Accumulates cycles and instructions for one core."""

    def __init__(self, issue_width: int, memory_latency: int = 300,
                 memory_overlap: float = DEFAULT_MEMORY_OVERLAP) -> None:
        if issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if not 0 <= memory_overlap < 1:
            raise ValueError("memory_overlap must be in [0, 1)")
        self.issue_width = issue_width
        self.memory_latency = memory_latency
        self.memory_overlap = memory_overlap
        self._hidden = memory_latency * memory_overlap
        self.cycles = 0.0
        self.instructions = 0

    def account(self, gap: int, latency: int) -> None:
        """Record one memory reference preceded by ``gap`` ALU instructions."""
        if latency >= self.memory_latency:
            latency = latency - self._hidden
        self.cycles += gap / self.issue_width + latency
        self.instructions += gap + 1

    # -- batched accounting (the batch engine's timing path) ---------------
    #
    # Per access the scalar loop computes ``cycles += gap/w + lat'`` where
    # ``lat' = lat - _hidden`` for off-chip references.  When every term is
    # a dyadic rational on a coarse enough grid — ``issue_width`` a power of
    # two and ``_hidden`` a multiple of 2**-8 — and the running total stays
    # far below 2**52 grid units, every partial sum is exactly representable
    # in a float64, so the accumulated value equals the true rational sum
    # *regardless of summation order or grouping*.  Batched accounting may
    # then compute ``sum(gaps)/w + (sum(lats) - n_offchip * _hidden)`` in
    # one reduction and land on bit-identical ``cycles``.  When the
    # conditions do not hold, :meth:`account_batch` falls back to the scalar
    # loop (per-core access order is preserved by the batch engine, so the
    # fallback reproduces the event engine's rounding sequence exactly).

    def batch_summation_exact(self, max_total_cycles: float) -> bool:
        """Whether batched (reordered) summation is bit-identical here.

        ``max_total_cycles`` is an upper bound on the cycles this timer will
        accumulate; the caller can over-estimate freely.
        """
        w = self.issue_width
        if w & (w - 1):
            return False
        scaled = self._hidden * (1 << _EXACT_FRAC_BITS)
        if scaled != int(scaled):
            return False
        # Grid spacing: 2**-(frac bits of 1/w + _EXACT_FRAC_BITS) at worst.
        grid_bits = _EXACT_FRAC_BITS + (w.bit_length() - 1)
        return max_total_cycles < float(2 ** (52 - grid_bits))

    def account_summary(self, n: int, gap_sum: int, latency_sum: int,
                        offchip_count: int) -> None:
        """Record ``n`` references from pre-reduced integer sums.

        ``latency_sum`` is the plain integer sum of the raw latencies and
        ``offchip_count`` the number of references whose raw latency was
        ``>= memory_latency`` (each of which the scalar path discounts by
        ``_hidden``).  Only valid when :meth:`batch_summation_exact` holds —
        the batch engine checks before choosing this path.
        """
        self.cycles += gap_sum / self.issue_width \
            + (latency_sum - offchip_count * self._hidden)
        self.instructions += gap_sum + n

    def account_batch(self, gaps, latencies) -> None:
        """Record many references in one reduction (batch engine hot path).

        Bit-identical to calling :meth:`account` per element in order: uses
        the exact-summation decomposition when
        :meth:`batch_summation_exact` admits it, else the scalar loop.
        """
        gaps = np.asarray(gaps)
        lats = np.asarray(latencies)
        n = len(lats)
        if n == 0:
            return
        gap_sum = int(gaps.sum())
        lat_sum = int(lats.sum())
        bound = self.cycles + gap_sum / self.issue_width + lat_sum
        if self.batch_summation_exact(bound):
            offchip = int((lats >= self.memory_latency).sum())
            self.account_summary(n, gap_sum, lat_sum, offchip)
            return
        account = self.account
        for gap, lat in zip(gaps.tolist(), lats.tolist()):
            account(gap, lat)

    @property
    def ipc(self) -> float:
        """Instructions per cycle so far (0 if the core never ran)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def reset(self) -> None:
        """Start a new measurement window."""
        self.cycles = 0.0
        self.instructions = 0
