"""Analytic timing model of one 4-way issue superscalar core.

Between two memory references a core retires the trace's instruction gap at
its issue width; the memory reference itself then exposes the latency the
cache hierarchy returned.  Off-chip misses additionally overlap: a 4-way
out-of-order core hides a substantial part of its memory latency behind
independent work and other outstanding misses (the paper's cores have 8
MSHRs), so only ``1 - memory_overlap`` of the main-memory portion of a
reference is charged.  Without this, a fully-exposed 300-cycle miss makes
per-core IPC so spread out that sum-of-IPC throughput is decided purely by
whichever scheme protects the hit-dominated cores — compressing the spread
to realistic levels is what lets capacity effects (the paper's subject)
show through.
"""

from __future__ import annotations

#: Fraction of the off-chip latency hidden by out-of-order overlap and
#: miss-level parallelism.
DEFAULT_MEMORY_OVERLAP = 0.65


class CoreTimingModel:
    """Accumulates cycles and instructions for one core."""

    def __init__(self, issue_width: int, memory_latency: int = 300,
                 memory_overlap: float = DEFAULT_MEMORY_OVERLAP) -> None:
        if issue_width <= 0:
            raise ValueError("issue_width must be positive")
        if not 0 <= memory_overlap < 1:
            raise ValueError("memory_overlap must be in [0, 1)")
        self.issue_width = issue_width
        self.memory_latency = memory_latency
        self.memory_overlap = memory_overlap
        self._hidden = memory_latency * memory_overlap
        self.cycles = 0.0
        self.instructions = 0

    def account(self, gap: int, latency: int) -> None:
        """Record one memory reference preceded by ``gap`` ALU instructions."""
        if latency >= self.memory_latency:
            latency = latency - self._hidden
        self.cycles += gap / self.issue_width + latency
        self.instructions += gap + 1

    @property
    def ipc(self) -> float:
        """Instructions per cycle so far (0 if the core never ran)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def reset(self) -> None:
        """Start a new measurement window."""
        self.cycles = 0.0
        self.instructions = 0
