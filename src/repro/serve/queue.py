"""Multi-tenant admission control and weighted-fair job scheduling.

The queue is the service's backpressure and fairness core, and it is
deliberately plain synchronous code (the service drives it from a single
asyncio loop, so there is nothing to lock) with three properties:

- **Bounded by construction.**  `submit` either accepts a job or raises a
  typed shed error *before* anything is stored: a global cap
  (:class:`~repro.resilience.errors.ServiceSaturatedError`, HTTP 429) and
  a per-tenant cap (:class:`~repro.resilience.errors.QuotaExceededError`,
  HTTP 429).  A saturating burst therefore costs O(max_queued) memory no
  matter how long it lasts — shedding *is* the memory bound.

- **Weighted-fair, starvation-free dispatch.**  Stride scheduling: each
  tenant carries a virtual-time ``pass``; dispatch picks the eligible
  tenant (queued work, below its running cap) with the smallest pass and
  charges it ``1/weight``.  Tenants with equal weights alternate perfectly
  (each gets >= 40% of any dispatch window, the acceptance bar); a 2x
  weight gets 2x the slots; and because every dispatch advances the
  chosen tenant's pass, a backlogged tenant can never be starved by a
  flood from another.  A tenant going idle forfeits its savings: on
  re-activation its pass is advanced to the current virtual time, so you
  cannot bank credit by staying quiet and then monopolize the service.

- **Deterministic.**  Ties break on (pass, head-of-queue seq), and within
  a tenant jobs dispatch FIFO by admission ``seq`` — the same submissions
  always dispatch in the same order, which is what lets the restart test
  assert that queue positions survive recovery.

Items are duck-typed: anything with ``id``, ``tenant`` and ``seq``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Mapping, Optional

from repro.resilience.errors import (
    ConfigError,
    QuotaExceededError,
    ServiceSaturatedError,
)


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's share of the service.  Validated at construction."""

    weight: float = 1.0
    """Relative dispatch share (stride = 1/weight)."""

    max_queued: int = 8
    """Pending jobs this tenant may hold before its submissions shed."""

    max_running: int = 1
    """This tenant's concurrently running jobs cap."""

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError("weight", f"must be > 0, got {self.weight}")
        if self.max_queued < 1:
            raise ConfigError("max_queued",
                              f"must be >= 1, got {self.max_queued}")
        if self.max_running < 1:
            raise ConfigError("max_running",
                              f"must be >= 1, got {self.max_running}")


class FairQueue:
    """Bounded multi-tenant queue with stride-scheduled dispatch."""

    def __init__(self, max_queued: int = 64,
                 default_quota: Optional[TenantQuota] = None,
                 quotas: Optional[Mapping[str, TenantQuota]] = None) -> None:
        if max_queued < 1:
            raise ConfigError("max_queued", f"must be >= 1, got {max_queued}")
        self.max_queued = max_queued
        self.default_quota = default_quota or TenantQuota()
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._queues: Dict[str, Deque[Any]] = {}
        self._running: Dict[str, int] = {}
        self._pass: Dict[str, float] = {}
        self._vtime = 0.0

    # -- introspection -------------------------------------------------------

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default_quota)

    @property
    def depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def tenant_depth(self, tenant: str) -> int:
        return len(self._queues.get(tenant, ()))

    def running(self, tenant: Optional[str] = None) -> int:
        if tenant is not None:
            return self._running.get(tenant, 0)
        return sum(self._running.values())

    def position(self, job_id: str) -> Optional[int]:
        """0-based position of a queued job within its tenant's FIFO."""
        for queue in self._queues.values():
            for index, job in enumerate(queue):
                if job.id == job_id:
                    return index
        return None

    def snapshot(self) -> Dict[str, Any]:
        """The ``GET /queue`` body: per-tenant FIFOs in dispatch order."""
        return {
            "depth": self.depth,
            "max_queued": self.max_queued,
            "running": dict(self._running),
            "tenants": {
                tenant: {
                    "queued": [job.id for job in queue],
                    "weight": self.quota(tenant).weight,
                    "pass": self._pass.get(tenant, 0.0),
                }
                for tenant, queue in self._queues.items() if queue
            },
        }

    # -- admission -----------------------------------------------------------

    def admission_check(self, tenant: str) -> None:
        """Raise the typed shed error a submission from ``tenant`` would
        get, without enqueueing anything.

        Split out of :meth:`submit` so callers that persist jobs somewhere
        *else* (the shared worker pool admits to its own directory, not to
        this queue) can still apply the same caps before writing anything.
        """
        if self.depth >= self.max_queued:
            raise ServiceSaturatedError(
                f"queue full ({self.depth}/{self.max_queued} jobs queued); "
                "retry after the backlog drains")
        quota = self.quota(tenant)
        if self.tenant_depth(tenant) >= quota.max_queued:
            raise QuotaExceededError(
                f"tenant {tenant!r} already has "
                f"{self.tenant_depth(tenant)} queued job(s) "
                f"(quota {quota.max_queued})")

    def submit(self, job: Any) -> None:
        """Admit a job, or shed it with a typed error (nothing stored)."""
        self.admission_check(job.tenant)
        self._enqueue(job)

    def restore(self, job: Any) -> None:
        """Re-admit a recovered job, bypassing the admission caps.

        Recovery replays jobs that were *already admitted* before the
        crash — bouncing them now would turn a restart into data loss.
        Restored in ``seq`` order by the caller, so positions survive.
        """
        self._enqueue(job)

    def requeue_front(self, job: Any) -> None:
        """Put an interrupted job back at the head of its tenant's FIFO."""
        self._activate(job.tenant)
        self._queues[job.tenant].appendleft(job)

    def _enqueue(self, job: Any) -> None:
        self._activate(job.tenant)
        self._queues[job.tenant].append(job)

    def _activate(self, tenant: str) -> None:
        if tenant not in self._queues:
            self._queues[tenant] = deque()
        if not self._queues[tenant]:
            # (Re-)activation: no banked credit from idle time.
            self._pass[tenant] = max(self._pass.get(tenant, 0.0), self._vtime)

    def cancel(self, job_id: str) -> Optional[Any]:
        """Remove a queued job by id; returns it, or None if not queued."""
        for queue in self._queues.values():
            for job in queue:
                if job.id == job_id:
                    queue.remove(job)
                    return job
        return None

    # -- dispatch ------------------------------------------------------------

    def next_runnable(self) -> Optional[Any]:
        """Pop the next job to run under stride scheduling, if any.

        The caller owns the returned job's running slot until it calls
        :meth:`release` for the tenant.
        """
        best: Optional[str] = None
        best_key = None
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            if self._running.get(tenant, 0) >= self.quota(tenant).max_running:
                continue
            key = (self._pass.get(tenant, 0.0), queue[0].seq)
            if best_key is None or key < best_key:
                best, best_key = tenant, key
        if best is None:
            return None
        job = self._queues[best].popleft()
        self._vtime = self._pass.get(best, 0.0)
        self._pass[best] = self._vtime + 1.0 / self.quota(best).weight
        self._running[best] = self._running.get(best, 0) + 1
        return job

    def release(self, tenant: str) -> None:
        """Give back a running slot (job finished, crashed, or was killed)."""
        count = self._running.get(tenant, 0)
        if count <= 1:
            self._running.pop(tenant, None)
        else:
            self._running[tenant] = count - 1


__all__ = ["FairQueue", "TenantQuota"]
