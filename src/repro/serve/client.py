"""A tiny stdlib client for the simulation service.

``http.client`` only — the same zero-dependency rule as the server.  Used
by the chaos/e2e tests, ``examples/service_tour.py`` and anyone scripting
against a local service.  Each call opens one connection (the server is
``Connection: close``), so a client object is just an address.

Retries are opt-in (:class:`RetryPolicy`): bounded exponential backoff
with *deterministic* jitter (seeded splitmix, not ``random``), applied to
429 sheds — honouring ``Retry-After`` when the server sends one — and to
connection resets on idempotent methods only.  A reset ``POST /jobs`` is
never retried: the job may or may not have been admitted, and blind
resubmission would duplicate it.
"""

from __future__ import annotations

import http.client
import json
import pathlib
import socket
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sim.parallel import derive_seed

#: Methods whose retry is always safe: repeating them cannot change state
#: twice (DELETE converges: cancelling a cancelled job is a no-op/404).
_IDEMPOTENT = ("GET", "DELETE")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry schedule for :class:`ServiceClient`.

    Deterministic jitter: attempt *i*'s delay is
    ``base * 2**i * (0.5 + frac(seed, i))`` capped at ``cap``, where
    ``frac`` comes from :func:`~repro.sim.parallel.derive_seed` — the same
    splitmix chain the simulator uses — so two runs of the same test
    produce the same schedule, while distinct seeds decorrelate clients
    (the thundering-herd fix jitter exists for).
    """

    retries: int = 3
    """Extra attempts after the first (0 disables retrying)."""

    base: float = 0.05
    """First backoff delay, seconds."""

    cap: float = 2.0
    """Upper bound on any single delay, ``Retry-After`` included."""

    seed: int = 0
    """Decorrelates concurrent clients; same seed, same schedule."""

    def delay(self, attempt: int,
              retry_after: Optional[float] = None) -> float:
        """Seconds to sleep before retry ``attempt`` (0-based).

        A server-sent ``Retry-After`` wins over the computed backoff —
        the server knows its backlog better than our exponent does — but
        is still capped, because tests (and impatient humans) should
        never sleep unboundedly on a hostile header.
        """
        if retry_after is not None and retry_after >= 0:
            return min(float(retry_after), self.cap)
        frac = derive_seed(self.seed, attempt) / float(2 ** 31)
        return min(self.base * (2 ** attempt) * (0.5 + frac), self.cap)


class ServiceHTTPError(RuntimeError):
    """A non-2xx response, with the server's typed error body attached."""

    def __init__(self, status: int, payload: Any,
                 headers: Optional[Dict[str, str]] = None) -> None:
        error = (payload or {}).get("error", {}) if isinstance(payload, dict) \
            else {}
        message = error.get("message", f"HTTP {status}")
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.headers = headers or {}
        self.error_type = error.get("type")
        self.exit_code = error.get("exit_code")


def _retry_after(exc: ServiceHTTPError) -> Optional[float]:
    """The response's ``Retry-After`` seconds, or ``None``.

    Only the delta-seconds form is parsed (the HTTP-date form is overkill
    for a localhost service); anything unparseable is ignored rather than
    trusted.
    """
    for name, value in exc.headers.items():
        if name.lower() == "retry-after":
            try:
                return float(value)
            except (TypeError, ValueError):
                return None
    return None


class ServiceClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        """Retry schedule, or ``None`` (the default) for fail-fast — the
        shed tests assert on first-response 429s, so retrying is opt-in."""

    @classmethod
    def from_state_dir(cls, state_dir, timeout: float = 30.0,
                       retry: Optional[RetryPolicy] = None
                       ) -> "ServiceClient":
        """Discover the address from the state dir's ``serve.json``."""
        info = json.loads(
            (pathlib.Path(state_dir) / "serve.json").read_text())
        return cls(info["host"], info["port"], timeout=timeout, retry=retry)

    # -- plumbing ------------------------------------------------------------

    def _request(self, method: str, path: str, body: Any = None,
                 ok: Tuple[int, ...] = (200, 201)) -> Any:
        retry = self.retry or RetryPolicy(retries=0)
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, body, ok)
            except ServiceHTTPError as exc:
                # 429 is the server saying "later" — retryable for every
                # method, because the request was *rejected*, not half-done.
                if exc.status != 429 or attempt >= retry.retries:
                    raise
                delay = retry.delay(attempt, _retry_after(exc))
            except (ConnectionError, socket.timeout, http.client.HTTPException,
                    OSError):
                # The connection died with the outcome unknown: only
                # idempotent methods are safe to repeat (a lost POST /jobs
                # may have been admitted; resubmitting would duplicate it).
                if method not in _IDEMPOTENT or attempt >= retry.retries:
                    raise
                delay = retry.delay(attempt)
            time.sleep(delay)
            attempt += 1

    def _request_once(self, method: str, path: str, body: Any,
                      ok: Tuple[int, ...]) -> Any:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            payload = (json.dumps(body).encode("utf-8")
                       if body is not None else None)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else None
            except ValueError:
                parsed = raw.decode("utf-8", "replace")
            if response.status not in ok:
                raise ServiceHTTPError(response.status, parsed,
                                       headers=dict(response.getheaders()))
            return parsed
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def readyz(self) -> Dict[str, Any]:
        """The readiness body; raises :class:`ServiceHTTPError` on 503."""
        return self._request("GET", "/readyz")

    def metrics_text(self) -> str:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read().decode("utf-8")
            if response.status != 200:
                raise ServiceHTTPError(response.status, raw)
            return raw
        finally:
            conn.close()

    def queue(self) -> Dict[str, Any]:
        return self._request("GET", "/queue")

    def submit(self, **spec: Any) -> Dict[str, Any]:
        """Submit a job spec; returns ``{"job": ..., "position": ...}``.

        Sheds surface as :class:`ServiceHTTPError` with ``status`` 429
        (saturated/quota) or 503 (draining) and the typed error body.
        """
        return self._request("POST", "/jobs", body=spec)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait_for_state(self, job_id: str, states: Tuple[str, ...],
                       timeout: float = 120.0,
                       poll: float = 0.1) -> Dict[str, Any]:
        """Poll until the job reaches one of ``states`` (or time out)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["state"] in states:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} after "
                    f"{timeout:g}s; wanted one of {states}")
            time.sleep(poll)

    def events(self, job_id: str, timeout: Optional[float] = None
               ) -> Iterator[Tuple[str, Any]]:
        """Stream a job's SSE feed as ``(event, payload)`` pairs.

        Yields until the server sends its ``end`` event (job terminal) or
        the connection drops.  Keepalive comments are filtered out.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=timeout if timeout is not None else self.timeout)
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ServiceHTTPError(response.status,
                                       response.read().decode("utf-8"))
            event: Optional[str] = None
            data: List[str] = []
            while True:
                raw = response.readline()
                if not raw:
                    return
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # keepalive
                if line.startswith("event:"):
                    event = line.split(":", 1)[1].strip()
                    continue
                if line.startswith("data:"):
                    data.append(line.split(":", 1)[1].strip())
                    continue
                if line == "" and event is not None:
                    payload: Any = "\n".join(data)
                    try:
                        payload = json.loads(payload)
                    except ValueError:
                        pass
                    yield event, payload
                    if event == "end":
                        return
                    event, data = None, []
        finally:
            conn.close()


__all__ = ["RetryPolicy", "ServiceClient", "ServiceHTTPError"]
