"""Job model for the simulation service.

A *job* is one supervised sweep submitted by a tenant: a validated
:class:`JobSpec` (parsed from the submission JSON, every field checked at
admission so a bad spec is a 400, never a crashed worker), a mutable
:class:`Job` tracking its life cycle inside the service process, and the
durable on-disk layout that makes all of it survive SIGKILL:

```
<state_dir>/jobs/<job_id>/
    spec.json       # fsync'd at admission: the job exists iff this does
    journal.jsonl   # the supervisor's crash-safe run journal (results!)
    trace_<i>.jsonl # per-run epoch traces (feed the SSE progress stream)
    status.json     # fsync'd at completion: terminal iff this exists
    error.json      # the typed error of a failed job, when one was raised
```

The journal doubles as the *result channel*: the job executes in a child
process (:func:`job_process_main`) whose only durable output is the
journal, so the service parent — and a restarted service after a crash —
reads results the exact same way: :func:`~repro.sim.supervisor.
SweepJournal.load_completed`.  There is no state that exists only in
memory, which is the whole recovery story.

Job life cycle (see DESIGN.md §10 for the full state machine)::

    queued -> running -> done | partial | failed
       ^          |
       |          v (crash / drain)
       +---- interrupted            (resumable: journal rescan on restart)

``queued`` jobs may also end ``cancelled`` (DELETE) or, at admission time,
never exist at all (shed with a typed 429 before anything is persisted).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import preset
from repro.resilience.errors import ConfigError, ReproError, SweepInterrupted

#: Files of the per-job directory (the durable contract with recovery).
SPEC_FILE = "spec.json"
JOURNAL_FILE = "journal.jsonl"
STATUS_FILE = "status.json"
ERROR_FILE = "error.json"

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,31}$")

#: Scheme names a submission may request (mirrors ``repro list``).
_DYNAMIC_SCHEMES = ("morphcache", "pipp", "dsr", "ucp")

#: Job states that are final — a ``status.json`` exists exactly for these.
TERMINAL_STATES = ("done", "partial", "failed", "cancelled")


def known_schemes() -> Tuple[str, ...]:
    from repro.baselines.static_topologies import STATIC_LABELS
    return tuple(STATIC_LABELS) + _DYNAMIC_SCHEMES


def write_json_durable(path, payload: Dict[str, Any]) -> None:
    """Write ``payload`` so it is either fully on disk or absent.

    Temp file + ``fsync`` + atomic rename (+ directory fsync), the same
    durability discipline as the sweep journal: a SIGKILL at any instant
    leaves either the old file or the new one, never a torn JSON.
    """
    path = pathlib.Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(str(path.parent), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_json(path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def read_json_tolerant(path) -> Optional[Dict[str, Any]]:
    """A dict from ``path``, or ``None`` for anything else.

    "Anything else" covers every way a status/spec read can go wrong at
    recovery time — missing file, unreadable file, truncated or
    half-written JSON, or a well-formed JSON value that is not an object
    (``null``, a list, a bare string).  Torn files *should* be impossible
    under :func:`write_json_durable`'s atomic rename, but recovery reads
    state dirs it did not write (hand-edited, foreign tooling, partial
    copies), so it never trusts that.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


@dataclass(frozen=True)
class JobSpec:
    """A validated sweep submission.  Construct via :meth:`from_payload`."""

    tenant: str
    workload: str
    schemes: Tuple[str, ...]
    preset: str = "tiny"
    epochs: Optional[int] = None
    seed: int = 1
    engine: str = "event"
    jobs: int = 1
    """Worker processes *inside* the sweep (the supervisor's pool)."""

    run_timeout: Optional[float] = None
    """Per-run wall-clock budget (the supervisor's hang detector)."""

    retries: int = 0
    max_seconds: Optional[float] = None
    """Whole-job watchdog enforced by the *service* (kill + fail)."""

    trace: bool = True
    """Record per-run epoch traces (they feed the SSE progress stream)."""

    _FIELDS = ("tenant", "workload", "scheme", "schemes", "preset", "epochs",
               "seed", "engine", "jobs", "run_timeout", "retries",
               "max_seconds", "trace")

    @classmethod
    def from_payload(cls, payload: Any) -> "JobSpec":
        """Parse and validate a submission, naming the offending field.

        Every :class:`~repro.resilience.errors.ConfigError` raised here is
        an HTTP 400 at the admission boundary — nothing invalid ever
        reaches a worker process or the state directory.
        """
        if not isinstance(payload, dict):
            raise ConfigError("job", "submission body must be a JSON object")
        unknown = sorted(set(payload) - set(cls._FIELDS))
        if unknown:
            raise ConfigError(unknown[0], "unknown job field")
        tenant = payload.get("tenant")
        if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
            raise ConfigError(
                "tenant", "required; 1-32 chars of [A-Za-z0-9_.-], "
                f"got {tenant!r}")
        workload = payload.get("workload")
        if not isinstance(workload, str) or not workload:
            raise ConfigError("workload", "required (e.g. 'MIX 01')")
        from repro.sim.workload import Workload
        Workload.from_name(workload)  # raises ConfigError on a bad name
        if "scheme" in payload and "schemes" in payload:
            raise ConfigError("schemes", "give 'scheme' or 'schemes', not both")
        raw_schemes = payload.get("schemes", payload.get("scheme", ["morphcache"]))
        if isinstance(raw_schemes, str):
            raw_schemes = [raw_schemes]
        if (not isinstance(raw_schemes, list) or not raw_schemes
                or not all(isinstance(s, str) for s in raw_schemes)):
            raise ConfigError("schemes", "must be a non-empty list of names")
        legal = known_schemes()
        for scheme in raw_schemes:
            if scheme not in legal:
                raise ConfigError(
                    "schemes", f"unknown scheme {scheme!r}; choose from "
                    f"{', '.join(legal)}")
        preset_name = payload.get("preset", "tiny")
        try:
            preset(preset_name)
        except ValueError as exc:
            raise ConfigError("preset", str(exc)) from None
        epochs = payload.get("epochs")
        if epochs is not None and (not isinstance(epochs, int) or epochs < 1):
            raise ConfigError("epochs", f"must be an integer >= 1, got {epochs!r}")
        seed = payload.get("seed", 1)
        if not isinstance(seed, int):
            raise ConfigError("seed", f"must be an integer, got {seed!r}")
        engine = payload.get("engine", "event")
        if engine not in ("event", "batch"):
            raise ConfigError("engine", f"must be 'event' or 'batch', got {engine!r}")
        jobs = payload.get("jobs", 1)
        if not isinstance(jobs, int) or jobs < 1:
            raise ConfigError("jobs", f"must be an integer >= 1, got {jobs!r}")
        retries = payload.get("retries", 0)
        if not isinstance(retries, int) or retries < 0:
            raise ConfigError("retries", f"must be an integer >= 0, got {retries!r}")
        run_timeout = payload.get("run_timeout")
        if run_timeout is not None and (
                not isinstance(run_timeout, (int, float)) or run_timeout <= 0):
            raise ConfigError("run_timeout", f"must be > 0, got {run_timeout!r}")
        max_seconds = payload.get("max_seconds")
        if max_seconds is not None and (
                not isinstance(max_seconds, (int, float)) or max_seconds <= 0):
            raise ConfigError("max_seconds", f"must be > 0, got {max_seconds!r}")
        trace = payload.get("trace", True)
        if not isinstance(trace, bool):
            raise ConfigError("trace", f"must be a boolean, got {trace!r}")
        return cls(tenant=tenant, workload=workload,
                   schemes=tuple(raw_schemes), preset=preset_name,
                   epochs=epochs, seed=seed, engine=engine, jobs=jobs,
                   run_timeout=(float(run_timeout) if run_timeout is not None
                                else None),
                   retries=retries,
                   max_seconds=(float(max_seconds) if max_seconds is not None
                                else None),
                   trace=trace)

    def payload(self) -> Dict[str, Any]:
        """The canonical JSON form (round-trips through `from_payload`)."""
        out: Dict[str, Any] = {
            "tenant": self.tenant, "workload": self.workload,
            "schemes": list(self.schemes), "preset": self.preset,
            "seed": self.seed, "engine": self.engine, "jobs": self.jobs,
            "retries": self.retries, "trace": self.trace,
        }
        if self.epochs is not None:
            out["epochs"] = self.epochs
        if self.run_timeout is not None:
            out["run_timeout"] = self.run_timeout
        if self.max_seconds is not None:
            out["max_seconds"] = self.max_seconds
        return out

    def to_runspecs(self, job_dir=None) -> List:
        """The sweep's :class:`~repro.sim.parallel.RunSpec` list.

        ``job_dir`` adds per-run trace paths (when :attr:`trace` is on);
        trace paths are deliberately *not* part of the journal's spec key,
        so the specs rebuilt at recovery time match the crashed run's
        journal whether or not tracing was enabled.
        """
        from repro.sim.parallel import RunSpec
        from repro.sim.workload import Workload

        machine = preset(self.preset)
        workload = Workload.from_name(self.workload)
        specs = []
        for index, scheme in enumerate(self.schemes):
            trace_path = None
            if self.trace and job_dir is not None:
                trace_path = str(pathlib.Path(job_dir) / f"trace_{index}.jsonl")
            specs.append(RunSpec(scheme=scheme, workload=workload,
                                 config=machine, seed=self.seed,
                                 epochs=self.epochs, engine=self.engine,
                                 trace_path=trace_path))
        return specs

    def journal_keys(self, job_dir=None) -> List[str]:
        from repro.sim.supervisor import spec_key
        return [spec_key(spec) for spec in self.to_runspecs(job_dir)]


@dataclass
class Job:
    """One job's in-service state (the durable truth lives in its dir)."""

    id: str
    seq: int
    spec: JobSpec
    job_dir: pathlib.Path
    state: str = "queued"
    resume: bool = False
    """Next execution should resume from the journal (set by recovery or
    after a mid-run crash)."""

    restarts: int = 0
    started_order: Optional[int] = None
    """Global dispatch ordinal — proves scheduling order in tests."""

    started_at: Optional[float] = None   # monotonic, service-local
    deadline: Optional[float] = None     # monotonic watchdog deadline
    watchdog_fired: bool = False
    exit_code: Optional[int] = None
    error: Optional[Dict[str, str]] = None
    latency: Optional[Dict[str, float]] = None
    completed_runs: int = 0
    quarantined_runs: int = 0
    lease: Optional[Dict[str, Any]] = None
    """The pool lease view of this job (owner/fence/ages), when it runs
    under ``repro worker`` rather than a service-spawned child."""

    process: Any = field(default=None, repr=False)

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def journal_path(self) -> pathlib.Path:
        return self.job_dir / JOURNAL_FILE

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_payload(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` body (and the ``status.json`` content)."""
        out: Dict[str, Any] = {
            "id": self.id, "seq": self.seq, "tenant": self.tenant,
            "state": self.state, "workload": self.spec.workload,
            "schemes": list(self.spec.schemes), "restarts": self.restarts,
            "resume": self.resume, "started_order": self.started_order,
            "completed_runs": self.completed_runs,
            "quarantined_runs": self.quarantined_runs,
        }
        if self.exit_code is not None:
            out["exit_code"] = self.exit_code
        if self.error is not None:
            out["error"] = self.error
        if self.latency is not None:
            out["latency"] = self.latency
        if self.lease is not None:
            out["lease"] = self.lease
        return out

    def write_status(self) -> None:
        write_json_durable(self.job_dir / STATUS_FILE, self.status_payload())


def job_id(seq: int, tenant: str) -> str:
    return f"{seq:06d}-{tenant}"


def spec_record(job: Job) -> Dict[str, Any]:
    """The ``spec.json`` content: everything recovery needs to rebuild."""
    return {"id": job.id, "seq": job.seq, "spec": job.spec.payload()}


# -- the job child process ---------------------------------------------------

def job_process_main(payload: Dict[str, Any], job_dir: str,
                     resume: bool) -> None:
    """Entry point of the spawned per-job process.

    Runs the sweep under the full supervision ladder with the job's
    journal; the exit code is the contract with the service parent:

    - ``0`` — every run completed (``report.ok``);
    - ``1`` — finished, but some runs were quarantined (partial results);
    - ``8`` — drained on SIGTERM (``SweepInterrupted``): resumable;
    - any other :class:`~repro.resilience.errors.ReproError` exit code —
      a typed failure, details in ``error.json``;
    - killed (negative) — crash or the service watchdog: the parent knows
      which, because the watchdog is the parent.
    """
    from repro.sim.supervisor import SweepPolicy, run_supervised

    job_path = pathlib.Path(job_dir)
    spec = JobSpec.from_payload(payload)
    specs = spec.to_runspecs(job_path)
    policy = SweepPolicy(run_timeout=spec.run_timeout, retries=spec.retries)
    try:
        report = run_supervised(specs, jobs=spec.jobs, policy=policy,
                                journal=job_path / JOURNAL_FILE,
                                resume=resume)
    except SweepInterrupted:
        sys.exit(SweepInterrupted.exit_code)
    except ReproError as exc:
        write_json_durable(job_path / ERROR_FILE,
                           {"type": type(exc).__name__, "message": str(exc)})
        sys.exit(exc.exit_code)
    sys.exit(0 if report.ok else 1)


__all__ = [
    "ERROR_FILE",
    "JOURNAL_FILE",
    "Job",
    "JobSpec",
    "SPEC_FILE",
    "STATUS_FILE",
    "TERMINAL_STATES",
    "job_id",
    "job_process_main",
    "known_schemes",
    "read_json",
    "read_json_tolerant",
    "spec_record",
    "write_json_durable",
]
