"""The crash-tolerant, multi-tenant simulation service (``repro serve``).

Layers (each its own module, each testable without the one above):

- :mod:`repro.serve.jobs` — the job model: validated submissions
  (:class:`JobSpec`), in-service state (:class:`Job`), the durable per-job
  directory contract, and the spawned job-process entry point.
- :mod:`repro.serve.queue` — bounded admission + stride-scheduled
  weighted-fair dispatch (:class:`FairQueue`, :class:`TenantQuota`).
- :mod:`repro.serve.recovery` — restart-time classification of the state
  dir (:func:`recover_state`): terminal / interrupted-resumable / queued.
- :mod:`repro.serve.app` — the asyncio HTTP service itself
  (:class:`SimulationService`, :func:`run_service`).
- :mod:`repro.serve.client` — a stdlib client (:class:`ServiceClient`)
  for tests, examples and scripts.

See DESIGN.md §10 for the architecture and README for a walkthrough.
"""

from repro.serve.app import (
    SERVE_INFO_FILE,
    ServiceConfig,
    SimulationService,
    run_service,
)
from repro.serve.client import ServiceClient, ServiceHTTPError
from repro.serve.jobs import Job, JobSpec, job_id, known_schemes
from repro.serve.queue import FairQueue, TenantQuota
from repro.serve.recovery import RecoveredJob, RecoveryReport, recover_state

__all__ = [
    "FairQueue",
    "Job",
    "JobSpec",
    "RecoveredJob",
    "RecoveryReport",
    "SERVE_INFO_FILE",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHTTPError",
    "SimulationService",
    "TenantQuota",
    "job_id",
    "known_schemes",
    "recover_state",
    "run_service",
]
