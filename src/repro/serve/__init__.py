"""The crash-tolerant, multi-tenant simulation service (``repro serve``).

Layers (each its own module, each testable without the one above):

- :mod:`repro.serve.jobs` — the job model: validated submissions
  (:class:`JobSpec`), in-service state (:class:`Job`), the durable per-job
  directory contract, and the spawned job-process entry point.
- :mod:`repro.serve.queue` — bounded admission + stride-scheduled
  weighted-fair dispatch (:class:`FairQueue`, :class:`TenantQuota`).
- :mod:`repro.serve.recovery` — restart-time classification of the state
  dir (:func:`recover_state`): terminal / interrupted-resumable / queued.
- :mod:`repro.serve.lease` — fenced lease files for the shared worker
  pool: CAS claims, heartbeats, zombie-write rejection.
- :mod:`repro.serve.pool` — the horizontal pool itself
  (:class:`SharedPool`, :func:`run_worker`): a filesystem-backed durable
  queue any number of ``repro worker`` processes drain cooperatively,
  adopting crashed peers' jobs bit-identically.
- :mod:`repro.serve.app` — the asyncio HTTP service itself
  (:class:`SimulationService`, :func:`run_service`), including
  ``--workers`` pool mode.
- :mod:`repro.serve.client` — a stdlib client (:class:`ServiceClient`)
  for tests, examples and scripts, with opt-in deterministic retry
  (:class:`RetryPolicy`).

See DESIGN.md §10-§11 for the architecture and README for walkthroughs.
"""

from repro.serve.app import (
    SERVE_INFO_FILE,
    ServiceConfig,
    SimulationService,
    run_service,
)
from repro.serve.client import RetryPolicy, ServiceClient, ServiceHTTPError
from repro.serve.jobs import Job, JobSpec, job_id, known_schemes
from repro.serve.lease import LeaseHandle, LeaseState, read_lease
from repro.serve.pool import (
    PoolConfig,
    SharedPool,
    pool_status,
    run_worker,
)
from repro.serve.queue import FairQueue, TenantQuota
from repro.serve.recovery import RecoveredJob, RecoveryReport, recover_state

__all__ = [
    "FairQueue",
    "Job",
    "JobSpec",
    "LeaseHandle",
    "LeaseState",
    "PoolConfig",
    "RecoveredJob",
    "RecoveryReport",
    "RetryPolicy",
    "SERVE_INFO_FILE",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHTTPError",
    "SharedPool",
    "SimulationService",
    "TenantQuota",
    "job_id",
    "known_schemes",
    "pool_status",
    "read_lease",
    "recover_state",
    "run_service",
    "run_worker",
]
