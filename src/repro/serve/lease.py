"""Lease files with fenced ownership for the shared worker pool.

A *lease* is how one worker of a horizontal pool claims exclusive execution
of one job, with nothing but the filesystem as the coordination substrate —
the same zero-dependency rule as the rest of the service.  The design has
to survive the two classic distributed failures on a shared directory:

- **Split brain on claim.**  Two workers see the same claimable job at the
  same instant.  The claim must be a real compare-and-swap, not a
  read-modify-write of a shared file (the last atomic rename would win
  silently).
- **The zombie holder.**  A worker misses its heartbeats — paused
  (``SIGSTOP``), wedged in a syscall, or cut off — a peer reclaims the
  job, and then the original worker *comes back* and keeps writing.  Its
  late writes must be detected and rejected, never silently merged.

Both are solved with one mechanism: **monotone fencing tokens recorded as
exclusively-created files**.  Inside each job directory::

    <job_dir>/lease/
        claim-000001          # fence 1: owner record, created O_CREAT|O_EXCL
        claim-000001.hb       # fence 1's heartbeat (atomic-replaced)
        claim-000001.released # fence 1 ended cleanly (optional)
        claim-000002          # fence 2: the reclaim, and so on

- ``claim-N`` is created with ``O_CREAT | O_EXCL`` — the filesystem's only
  true CAS.  Exactly one contender can create a given fence; losers see
  ``EEXIST`` and rescan.  The *highest* fence is the lease, always.
- Heartbeats go to the per-fence ``claim-N.hb`` file.  A zombie renewing
  fence N can never regress the pool's view of fence N+1, because it never
  touches fence N+1's files — monotonicity is structural, not checked.
- Expiry is wall-clock: a fence whose heartbeat is older than the pool TTL
  (``heartbeat_interval × allowed misses``) is dead, and any peer may
  claim the next fence.  A torn or empty claim file (its writer died
  mid-claim) is treated as an unrenewed lease aged by file mtime, so a
  crash at any instant of the protocol self-heals after one TTL.
- Every durable write the holder makes (journal records, ``status.json``)
  first calls :meth:`LeaseHandle.check`, which re-reads the highest fence
  and raises :class:`~repro.resilience.errors.LeaseLostError` on mismatch.
  The residual race (check passes, reclaim lands, write lands) is closed
  by determinism, not locking: a journal ``run`` record for spec key *k*
  has exactly one possible value, so a stale duplicate is byte-equivalent
  and resume/adoption reads are unaffected.  DESIGN.md §11 carries the
  full argument.

Timestamps are ``time.time()`` (wall clock): pool peers share a filesystem
and in practice a clock; the TTL is seconds, not milliseconds, precisely so
ordinary NTP-level skew cannot cause a false reclaim.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass
from typing import Optional

from repro.resilience.errors import LeaseLostError, PoolCorruptError

#: Subdirectory of a job dir holding its claim/heartbeat files.
LEASE_DIR = "lease"

_CLAIM_PREFIX = "claim-"
_HB_SUFFIX = ".hb"
_RELEASED_SUFFIX = ".released"


def _fsync_dir(path: pathlib.Path) -> None:
    try:
        dir_fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _write_durable(path: pathlib.Path, payload: dict) -> None:
    """Atomic-replace JSON write (same discipline as the job dir files)."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, separators=(",", ":"), sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _read_json(path: pathlib.Path) -> Optional[dict]:
    """A dict from ``path``, or ``None`` on any torn/missing/foreign file."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _claim_path(job_dir: pathlib.Path, fence: int) -> pathlib.Path:
    return job_dir / LEASE_DIR / f"{_CLAIM_PREFIX}{fence:06d}"


def lease_token(fence: int, owner: str) -> str:
    """The fencing token embedded in every journal/status write."""
    return f"{fence}:{owner}"


@dataclass(frozen=True)
class LeaseState:
    """The observable lease of one job: its highest fence, as read."""

    fence: int
    owner: str
    token: str
    acquired_at: float
    renewed_at: float
    beats: int
    """Heartbeat renewals recorded for this fence."""

    released: bool
    """The holder ended the lease deliberately (job terminal or drained)."""

    def age(self, now: Optional[float] = None) -> float:
        return max(0.0, (now if now is not None else time.time())
                   - self.acquired_at)

    def heartbeat_age(self, now: Optional[float] = None) -> float:
        return max(0.0, (now if now is not None else time.time())
                   - self.renewed_at)

    def expired(self, ttl: float, now: Optional[float] = None) -> bool:
        """Dead iff unreleased and past the TTL since the last heartbeat."""
        return not self.released and self.heartbeat_age(now) > ttl

    @property
    def reclaims(self) -> int:
        """Fences before this one — each was a crash/zombie takeover."""
        return self.fence - 1

    def to_json(self) -> dict:
        now = time.time()
        return {"fence": self.fence, "owner": self.owner,
                "token": self.token, "acquired_at": self.acquired_at,
                "renewed_at": self.renewed_at, "beats": self.beats,
                "released": self.released, "age": self.age(now),
                "heartbeat_age": self.heartbeat_age(now),
                "reclaims": self.reclaims}


def read_lease(job_dir) -> Optional[LeaseState]:
    """The job's current lease (its highest fence), or ``None`` if never
    claimed.  Tolerates torn claim/heartbeat files: an unreadable claim
    still fences (its *existence* is the CAS), with mtime standing in for
    its timestamps and ``"?"`` for its owner.
    """
    lease_dir = pathlib.Path(job_dir) / LEASE_DIR
    best = -1
    try:
        for name in os.listdir(lease_dir):
            if not name.startswith(_CLAIM_PREFIX) or "." in name:
                continue
            try:
                fence = int(name[len(_CLAIM_PREFIX):])
            except ValueError:
                continue
            best = max(best, fence)
    except OSError:
        return None
    if best < 0:
        return None
    claim_path = _claim_path(job_dir, best)
    claim = _read_json(claim_path) or {}
    try:
        mtime = claim_path.stat().st_mtime
    except OSError:
        mtime = 0.0
    owner = str(claim.get("owner", "?"))
    acquired_at = float(claim.get("acquired_at", mtime))
    heartbeat = _read_json(
        claim_path.with_suffix(_HB_SUFFIX)) or {}
    renewed_at = float(heartbeat.get("renewed_at", acquired_at))
    beats = int(heartbeat.get("beats", 0))
    released = claim_path.with_suffix(_RELEASED_SUFFIX).exists()
    return LeaseState(fence=best, owner=owner,
                      token=lease_token(best, owner),
                      acquired_at=acquired_at,
                      renewed_at=max(renewed_at, acquired_at),
                      beats=beats, released=released)


class LeaseHandle:
    """One worker's live claim on one job: fence, token, renew/check.

    Constructed only by :func:`acquire`.  All methods re-read the lease
    directory — the handle deliberately holds no cached authority beyond
    its fence number, so a reclaim by a peer is always *discovered*, never
    papered over.
    """

    def __init__(self, job_dir: pathlib.Path, fence: int, owner: str,
                 acquired_at: float) -> None:
        self.job_dir = pathlib.Path(job_dir)
        self.fence = fence
        self.owner = owner
        self.acquired_at = acquired_at
        self.token = lease_token(fence, owner)
        self._beats = 0

    def current(self) -> Optional[LeaseState]:
        return read_lease(self.job_dir)

    def check(self) -> None:
        """Raise :class:`LeaseLostError` unless this fence is still the
        highest — the guard in front of every durable write."""
        state = self.current()
        if state is None or state.fence != self.fence:
            held = "no lease on record" if state is None else (
                f"fence {state.fence} is held by {state.owner!r}")
            raise LeaseLostError(
                f"lease on {self.job_dir.name} lost: this worker "
                f"({self.owner!r}) holds fence {self.fence}, but {held} — "
                "a peer adopted the job; refusing the stale write")

    def renew(self) -> None:
        """Record a heartbeat for *this fence* (never a newer one).

        Raises :class:`LeaseLostError` when the fence has moved on, so the
        heartbeat loop doubles as the zombie's earliest detection point.
        """
        self.check()
        self._beats += 1
        _write_durable(
            _claim_path(self.job_dir, self.fence).with_suffix(_HB_SUFFIX),
            {"renewed_at": time.time(), "beats": self._beats,
             "owner": self.owner})

    def release(self) -> None:
        """End the lease deliberately; peers may claim immediately.

        Quietly does nothing if the fence already moved on (a released
        marker from a deposed holder would be a stale write).
        """
        state = self.current()
        if state is None or state.fence != self.fence:
            return
        marker = _claim_path(self.job_dir, self.fence).with_suffix(
            _RELEASED_SUFFIX)
        _write_durable(marker, {"owner": self.owner,
                                "released_at": time.time()})


def acquire(job_dir, owner: str, ttl: float) -> Optional[LeaseHandle]:
    """Try to claim the job's next fence; ``None`` when it is held or lost
    to a racing peer (callers just rescan).

    The claim sequence is: read the highest fence; if it is live, give up;
    otherwise CAS-create ``claim-(N+1)`` with ``O_EXCL``.  Exactly one
    contender wins each fence, and a winner that dies before writing its
    owner record still fences (the empty file's mtime starts its TTL).
    """
    if ttl <= 0:
        raise PoolCorruptError(f"lease ttl must be > 0, got {ttl}")
    job_dir = pathlib.Path(job_dir)
    lease_dir = job_dir / LEASE_DIR
    try:
        lease_dir.mkdir(exist_ok=True)
    except OSError as exc:
        raise PoolCorruptError(
            f"cannot create lease dir {lease_dir}: {exc}") from exc
    state = read_lease(job_dir)
    if state is not None and not state.released and not state.expired(ttl):
        return None
    fence = (state.fence + 1) if state is not None else 1
    claim_path = _claim_path(job_dir, fence)
    try:
        fd = os.open(str(claim_path),
                     os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return None  # lost the CAS; the winner's fence is now the lease
    except OSError as exc:
        raise PoolCorruptError(
            f"cannot create claim file {claim_path}: {exc}") from exc
    acquired_at = time.time()
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump({"owner": owner, "acquired_at": acquired_at,
                       "token": lease_token(fence, owner)},
                      fh, separators=(",", ":"), sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
    except OSError as exc:
        raise PoolCorruptError(
            f"cannot write claim file {claim_path}: {exc}") from exc
    _fsync_dir(lease_dir)
    handle = LeaseHandle(job_dir, fence, owner, acquired_at)
    handle.renew()
    return handle


__all__ = [
    "LEASE_DIR",
    "LeaseHandle",
    "LeaseState",
    "acquire",
    "lease_token",
    "read_lease",
]
