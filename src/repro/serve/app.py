"""The simulation service: a stdlib-only asyncio HTTP front end.

``repro serve`` turns the supervised-sweep machinery into a long-lived,
multi-tenant service.  One process, one event loop, zero new runtime
dependencies: the HTTP layer is a small hand-rolled parser over
``asyncio.start_server`` (bounded request sizes, one request per
connection), and every simulation executes in a *spawned child process* so
the service survives anything a job does — and a watchdog SIGKILL of a job
is just a process kill, never a wedged thread.

Robustness model (DESIGN.md §10 has the full state machine):

- **Admission control** — submissions are validated, then either admitted
  (spec fsync'd to the state dir *after* the queue accepts, so shedding
  never touches disk) or shed with an explicit typed 429/503.  Memory is
  bounded by the queue caps, period.
- **Weighted-fair scheduling** — :class:`~repro.serve.queue.FairQueue`
  stride scheduling across tenants; no tenant can starve another.
- **Watchdog** — each job gets a wall-clock cap layered above the
  supervisor's per-run timeouts; overdue jobs are SIGKILLed and failed.
- **Crash recovery** — on startup the state dir is rescanned
  (:mod:`repro.serve.recovery`); interrupted jobs resume from their
  fsync'd journals bit-identically, queued jobs keep their positions.
- **Graceful drain** — SIGTERM/SIGINT stops admissions (503), forwards
  SIGTERM to running jobs (their supervisors drain in-flight runs and
  flush journals, the existing exit-8 semantics), then exits: code 8 if
  interrupted-but-resumable work remains, else 0.
- **Observability** — ``/healthz``, ``/readyz``, ``/metrics`` (the
  existing :mod:`repro.obs` registry), and per-job SSE progress streams
  fed from a :class:`~repro.obs.trace.TraceRecorder` ring buffer that
  tails the job's trace/journal files.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import pathlib
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs import REGISTRY
from repro.obs.trace import TraceRecorder
from repro.resilience.errors import (
    CheckpointError,
    ConfigError,
    JobNotFoundError,
    JobTimeoutError,
    ReproError,
    ServiceDrainingError,
    ServiceError,
    ServiceSaturatedError,
    SweepInterrupted,
)
from repro.serve.jobs import (
    ERROR_FILE,
    JOURNAL_FILE,
    Job,
    JobSpec,
    SPEC_FILE,
    STATUS_FILE,
    job_id,
    job_process_main,
    read_json,
    read_json_tolerant,
    spec_record,
    write_json_durable,
)
from repro.serve.lease import acquire as acquire_lease, read_lease
from repro.serve.pool import SharedPool
from repro.serve.queue import FairQueue, TenantQuota
from repro.serve.recovery import recover_state
from repro.sim.supervisor import SweepJournal, result_from_json

#: Written next to the state dir's jobs/ once the socket is bound, so
#: clients (and tests) can discover the actual port of a ``--port 0`` bind.
SERVE_INFO_FILE = "serve.json"

_REASONS = {200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` is allowed to be configured with."""

    state_dir: str
    host: str = "127.0.0.1"
    port: int = 0
    """0 = OS-assigned; the bound port lands in ``serve.json``."""

    max_concurrent_jobs: int = 2
    max_queued: int = 64
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: Mapping[str, TenantQuota] = field(default_factory=dict)
    job_timeout: Optional[float] = None
    """Default per-job watchdog (seconds); a submission's ``max_seconds``
    overrides it.  ``None`` = unlimited unless the job asks."""

    max_job_restarts: int = 2
    """Crash-restarts granted to one job before it is failed for good."""

    poll_interval: float = 0.05
    max_body_bytes: int = 1 << 20
    ring_size: int = 4096
    """Per-job SSE ring buffer capacity (oldest records drop first)."""

    drain_grace: float = 10.0
    """Seconds a draining service waits for SIGTERM'd jobs to checkpoint
    and exit before escalating to SIGKILL (journals stay resumable)."""

    workers: int = 0
    """Horizontal pool mode: spawn this many ``repro worker`` processes
    against the state dir instead of running jobs in service-owned
    children.  The state dir doubles as the shared pool, so external
    workers (other hosts on the same filesystem) can join the same pool
    and the service keeps serving HTTP/SSE for every job either way."""

    worker_heartbeat: float = 1.0
    """Pool lease heartbeat interval (only used when creating the pool)."""

    worker_misses: int = 3
    """Missed heartbeats before a pool lease is reclaimable."""

    worker_restarts: int = 3
    """Respawns granted to each worker slot before it is left down."""

    def __post_init__(self) -> None:
        if not self.state_dir:
            raise ConfigError("state_dir", "required")
        if self.max_concurrent_jobs < 1:
            raise ConfigError("max_concurrent_jobs",
                              f"must be >= 1, got {self.max_concurrent_jobs}")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ConfigError("job_timeout",
                              f"must be > 0, got {self.job_timeout}")
        if self.drain_grace <= 0:
            raise ConfigError("drain_grace",
                              f"must be > 0, got {self.drain_grace}")
        if self.max_job_restarts < 0:
            raise ConfigError("max_job_restarts",
                              f"must be >= 0, got {self.max_job_restarts}")
        if self.poll_interval <= 0:
            raise ConfigError("poll_interval",
                              f"must be > 0, got {self.poll_interval}")
        if self.workers < 0:
            raise ConfigError("workers",
                              f"must be >= 0, got {self.workers}")
        if self.worker_heartbeat <= 0:
            raise ConfigError("worker_heartbeat",
                              f"must be > 0, got {self.worker_heartbeat}")
        if self.worker_misses < 1:
            raise ConfigError("worker_misses",
                              f"must be >= 1, got {self.worker_misses}")
        if self.worker_restarts < 0:
            raise ConfigError("worker_restarts",
                              f"must be >= 0, got {self.worker_restarts}")


class _Request:
    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: Dict[str, str],
                 body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _kill_job_tree(process) -> None:
    """SIGKILL a job process *and* any workers it spawned.

    A job child runs its sweep through a process pool, so killing only
    the child would orphan its workers — and an idle pool worker blocks
    in its call-queue read forever (it holds its own write end of that
    pipe, so EOF never comes).  Descendants are discovered via ``/proc``;
    the walk is racy by nature and every miss dies with its process
    group at service shutdown anyway.
    """
    children: Dict[int, List[int]] = {}
    try:
        for entry in os.listdir("/proc"):
            if not entry.isdigit():
                continue
            try:
                with open(f"/proc/{entry}/stat", "rb") as fh:
                    stat = fh.read()
                # Fields resume after the parenthesised comm: state, ppid.
                ppid = int(stat[stat.rindex(b")") + 2:].split()[1])
            except (OSError, ValueError, IndexError):
                continue
            children.setdefault(ppid, []).append(int(entry))
    except OSError:
        children = {}
    doomed, frontier = [], [process.pid]
    while frontier:
        for child in children.get(frontier.pop(), ()):
            doomed.append(child)
            frontier.append(child)
    for pid in doomed:
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            pass
    try:
        process.kill()
    except (OSError, ValueError):
        pass


async def _read_request(reader: asyncio.StreamReader,
                        max_body: int) -> Optional[_Request]:
    """Parse one bounded HTTP/1.x request; ``None`` on a closed socket."""
    line = await asyncio.wait_for(reader.readline(), timeout=30.0)
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise _HttpError(400, "malformed request line")
    headers: Dict[str, str] = {}
    while True:
        if len(headers) > 100:
            raise _HttpError(400, "too many headers")
        raw = await asyncio.wait_for(reader.readline(), timeout=30.0)
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(raw) > 8192:
            raise _HttpError(400, "header line too long")
        name, _, value = raw.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise _HttpError(400, "bad Content-Length")
    if length < 0:
        raise _HttpError(400, "bad Content-Length")
    if length > max_body:
        raise _HttpError(413, f"body exceeds {max_body} bytes")
    body = await asyncio.wait_for(reader.readexactly(length),
                                  timeout=60.0) if length else b""
    path = target.split("?", 1)[0]
    return _Request(method.upper(), path, headers, body)


def _response_bytes(status: int, payload: bytes, content_type: str,
                    extra: Tuple[Tuple[str, str], ...] = ()) -> bytes:
    lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(payload)}",
             "Connection: close"]
    lines.extend(f"{name}: {value}" for name, value in extra)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload


def _json_response(status: int, payload: Any,
                   extra: Tuple[Tuple[str, str], ...] = ()) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _response_bytes(status, body, "application/json", extra)


def _error_payload(exc: BaseException) -> Dict[str, Any]:
    out: Dict[str, Any] = {"error": {"type": type(exc).__name__,
                                     "message": str(exc)}}
    if isinstance(exc, ReproError):
        out["error"]["exit_code"] = exc.exit_code
    return out


class JobEventStream:
    """A job's live progress feed, fed from its trace/journal files.

    A tailer task polls the job directory's JSONL files (the per-run
    epoch traces and the sweep journal — both are appended durably by the
    *job process*, so this works across the process boundary and even
    across a service restart) and emits each new record into a
    :class:`~repro.obs.trace.TraceRecorder` ring buffer.  SSE handlers
    consume the ring through (:attr:`emitted`, :meth:`since`): a slow
    client skips ahead rather than growing memory.
    """

    def __init__(self, job: Job, ring_size: int,
                 poll_interval: float) -> None:
        self.job = job
        self.recorder = TraceRecorder(path=None, ring_size=ring_size)
        self.emitted = 0
        self.closed = False
        self.poll_interval = poll_interval
        self.wakeup = asyncio.Event()
        self._offsets: Dict[str, int] = {}
        self._task: Optional[asyncio.Task] = None

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._tail())

    def push(self, record: Dict[str, Any]) -> None:
        kind = record.pop("kind", "event")
        self.recorder.emit(kind, **record)
        self.emitted += 1
        self.wakeup.set()

    def since(self, cursor: int) -> Tuple[List[dict], int]:
        """Records after ``cursor``; skips any the ring already dropped."""
        available = list(self.recorder.ring)
        start = self.emitted - len(available)
        if cursor < start:
            cursor = start
        return available[cursor - start:], self.emitted

    def _scan_files(self) -> int:
        """Read newly appended complete lines; returns records pushed."""
        pushed = 0
        for path in sorted(self.job.job_dir.glob("*.jsonl")):
            offset = self._offsets.get(path.name, 0)
            try:
                size = path.stat().st_size
                if size <= offset:
                    continue
                with open(path, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                continue
            # Only consume whole lines; a torn tail is re-read next scan.
            complete, newline, _rest = chunk.rpartition(b"\n")
            if not newline:
                continue
            self._offsets[path.name] = offset + len(complete) + 1
            for line in complete.split(b"\n"):
                line = line.decode("utf-8", "replace").strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(record, dict):
                    continue
                record.setdefault("kind", "event")
                record["stream"] = path.stem
                # Full results are fetched via /jobs/<id>/result; the
                # progress stream only needs the run-finished envelope.
                record.pop("result", None)
                self.push(record)
                pushed += 1
        return pushed

    async def _tail(self) -> None:
        quiet_final_scans = 0
        while True:
            self._scan_files()
            if self.job.terminal or self.job.state == "interrupted":
                # One extra scan after the terminal transition so records
                # written during finalization are not lost.
                quiet_final_scans += 1
                if quiet_final_scans >= 2:
                    break
            await asyncio.sleep(self.poll_interval)
        self.push({"kind": "job-status", "state": self.job.state})
        self.closed = True
        self.wakeup.set()

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()


class SimulationService:
    """The service core: registry, queue, scheduler, HTTP handlers."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.state = "starting"  # -> ready -> draining -> stopped
        self.state_dir = pathlib.Path(config.state_dir)
        self.jobs: Dict[str, Job] = {}
        self.queue = FairQueue(max_queued=config.max_queued,
                               default_quota=config.default_quota,
                               quotas=config.quotas)
        self._running: Dict[str, Job] = {}
        self._streams: Dict[str, JobEventStream] = {}
        self._seq = 1
        self._dispatch_counter = 0
        self._drained_interrupted = False
        self._drain_started: Optional[float] = None
        self._mp = multiprocessing.get_context("spawn")
        self._server: Optional[asyncio.AbstractServer] = None
        self._scheduler_task: Optional[asyncio.Task] = None
        self._stopped: Optional[asyncio.Event] = None
        self._pool: Optional[SharedPool] = None
        self._worker_procs: List[Optional[subprocess.Popen]] = []
        self._worker_respawns: List[int] = []

    # -- metrics -------------------------------------------------------------

    def _metric_jobs(self):
        return REGISTRY.counter("repro_serve_jobs_total",
                                "Jobs reaching a final disposition, by status",
                                labels=("status",))

    def _metric_shed(self):
        return REGISTRY.counter("repro_serve_shed_total",
                                "Submissions shed by admission control",
                                labels=("reason",))

    def _update_gauges(self) -> None:
        REGISTRY.gauge("repro_serve_queue_depth",
                       "Jobs currently queued across all tenants"
                       ).set(self.queue.depth)
        running = (sum(1 for job in self.jobs.values()
                       if job.state == "running")
                   if self._pool is not None else len(self._running))
        REGISTRY.gauge("repro_serve_running_jobs",
                       "Job processes currently executing").set(running)
        if self._pool is not None:
            REGISTRY.gauge(
                "repro_serve_pool_workers",
                "Service-owned pool worker processes currently alive"
                ).set(sum(1 for proc in self._worker_procs
                          if proc is not None and proc.poll() is None))

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        if self.config.workers > 0:
            self._pool = SharedPool.ensure(
                self.state_dir, heartbeat=self.config.worker_heartbeat,
                misses=self.config.worker_misses)
        else:
            (self.state_dir / "jobs").mkdir(parents=True, exist_ok=True)
        REGISTRY.enable()
        # Register the full metric set up front so /metrics exposes every
        # series name from the first scrape, not only after first use.
        self._metric_jobs()
        self._metric_shed()
        REGISTRY.counter("repro_serve_submissions_total",
                         "Jobs admitted into the queue")
        REGISTRY.histogram("repro_serve_job_seconds",
                           "Wall clock of finished jobs")
        self._update_gauges()
        self._stopped = asyncio.Event()

        recovery = recover_state(self.state_dir)
        self._seq = recovery.next_seq
        for entry in recovery.jobs:  # seq order: queue positions survive
            job = entry.job
            self.jobs[job.id] = job
            if entry.phase in ("queued", "interrupted"):
                self.queue.restore(job)
        REGISTRY.counter("repro_serve_recovered_jobs_total",
                         "Jobs recovered from the state dir at startup, "
                         "by phase", labels=("phase",))
        for entry in recovery.jobs:
            REGISTRY.get("repro_serve_recovered_jobs_total") \
                    .labels(phase=entry.phase).inc()

        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port)
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]
        write_json_durable(self.state_dir / SERVE_INFO_FILE,
                           {"host": self.host, "port": self.port,
                            "pid": os.getpid()})
        if self._pool is not None:
            self._worker_procs = [None] * self.config.workers
            self._worker_respawns = [0] * self.config.workers
            for slot in range(self.config.workers):
                self._spawn_worker(slot)
        self._scheduler_task = asyncio.get_running_loop().create_task(
            self._scheduler())
        self.state = "ready"

    async def serve_forever(self) -> int:
        """Run until a drain completes; returns the process exit code."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.begin_drain, signal.Signals(signum).name)
            except (NotImplementedError, RuntimeError):
                pass
        await self._stopped.wait()
        await self._shutdown()
        return SweepInterrupted.exit_code if self._drained_interrupted else 0

    def begin_drain(self, reason: str = "signal") -> None:
        """Stop admitting, SIGTERM running jobs, exit when they land."""
        if self.state in ("draining", "stopped"):
            return
        self.state = "draining"
        if self._pool is not None:
            alive = [proc for proc in self._worker_procs
                     if proc is not None and proc.poll() is None]
            print(f"draining on {reason}: admissions stopped, "
                  f"{len(alive)} pool worker(s) signalled",
                  file=sys.stderr, flush=True)
            for proc in alive:
                try:
                    proc.terminate()
                except OSError:
                    pass
            return
        print(f"draining on {reason}: admissions stopped, "
              f"{len(self._running)} running job(s) signalled",
              file=sys.stderr, flush=True)
        for job in self._running.values():
            if job.process is not None and job.process.is_alive():
                job.process.terminate()

    async def _shutdown(self) -> None:
        for proc in self._worker_procs:
            if proc is None:
                continue
            if proc.poll() is None:
                _kill_job_tree(proc)
            try:
                proc.wait(timeout=5.0)
            except Exception:
                pass
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
        for stream in self._streams.values():
            stream.stop()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.state = "stopped"

    # -- the scheduler -------------------------------------------------------

    async def _scheduler(self) -> None:
        while True:
            try:
                if self._pool is not None:
                    self._poll_pool()
                    self._update_gauges()
                    if (self.state == "draining"
                            and self._pool_drained()):
                        self._stopped.set()
                        return
                else:
                    if self.state == "ready":
                        self._launch_ready()
                    self._poll_running()
                    self._update_gauges()
                    if self.state == "draining" and not self._running:
                        self._stopped.set()
                        return
            except Exception as exc:  # keep the scheduler alive, always
                print(f"scheduler error: {type(exc).__name__}: {exc}",
                      file=sys.stderr, flush=True)
            await asyncio.sleep(self.config.poll_interval)

    def _launch_ready(self) -> None:
        while len(self._running) < self.config.max_concurrent_jobs:
            job = self.queue.next_runnable()
            if job is None:
                return
            self._start_job(job)

    def _start_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.watchdog_fired = False
        self._dispatch_counter += 1
        job.started_order = self._dispatch_counter
        job.started_at = loop.time()
        cap = (job.spec.max_seconds if job.spec.max_seconds is not None
               else self.config.job_timeout)
        job.deadline = job.started_at + cap if cap is not None else None
        job.process = self._mp.Process(
            target=job_process_main,
            args=(job.spec.payload(), str(job.job_dir), job.resume))
        job.process.start()
        self._running[job.id] = job
        self._stream_for(job).start()

    def _poll_running(self) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        if self.state == "draining" and self._drain_started is None:
            self._drain_started = now
        for job in list(self._running.values()):
            process = job.process
            if process is not None and not process.is_alive():
                process.join()
                self._finalize(job, process.exitcode)
            elif (job.deadline is not None and now >= job.deadline
                  and not job.watchdog_fired):
                job.watchdog_fired = True
                _kill_job_tree(process)  # finalized on the next poll
            elif (self._drain_started is not None
                  and now >= self._drain_started + self.config.drain_grace):
                # The drain's SIGTERM went unanswered: escalate.  The
                # journal keeps every completed run, so the job is still
                # resumable — _finalize sees a killed child while
                # draining and records it as interrupted.
                _kill_job_tree(process)

    # -- pool mode: workers pull, the service observes -----------------------

    def _spawn_worker(self, slot: int) -> None:
        """Start the slot's ``repro worker`` subprocess.

        Deliberately *not* a new session/process group: tests (and
        operators) that signal the service's group reach the workers too,
        and an orphaned worker dies with its parent's group.
        """
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--pool", str(self.state_dir), "--worker-id", f"svc-{slot}"])
        self._worker_procs[slot] = proc

    def _respawn_workers(self) -> None:
        for slot, proc in enumerate(self._worker_procs):
            if proc is None or proc.poll() is None:
                continue
            if self._worker_respawns[slot] >= self.config.worker_restarts:
                continue  # slot exhausted; peers cover its jobs
            self._worker_respawns[slot] += 1
            print(f"pool worker svc-{slot} exited "
                  f"{proc.returncode}; respawning "
                  f"({self._worker_respawns[slot]}/"
                  f"{self.config.worker_restarts})",
                  file=sys.stderr, flush=True)
            self._spawn_worker(slot)

    def _poll_pool(self) -> None:
        """Reconcile the registry with the pool's durable truth.

        Workers own execution; the service's scheduler degenerates to an
        observer: a ``status.json`` appearing makes a job terminal, a live
        lease makes it ``running`` (and names the worker in its status
        body), a lapsed lease returns it to ``queued`` until a peer
        adopts.  The FairQueue keeps admission caps and queue positions
        meaningful, so jobs are removed from it exactly when a worker
        claims them.
        """
        for job in list(self.jobs.values()):
            if job.terminal:
                continue
            status = read_json_tolerant(job.job_dir / STATUS_FILE)
            if status is not None:
                self.queue.cancel(job.id)  # may still be in the fair queue
                job.state = str(status.get("state", "done"))
                job.exit_code = status.get("exit_code")
                job.error = status.get("error")
                job.latency = status.get("latency")
                if isinstance(status.get("completed_runs"), int):
                    job.completed_runs = status["completed_runs"]
                if isinstance(status.get("quarantined_runs"), int):
                    job.quarantined_runs = status["quarantined_runs"]
                lease_info: Dict[str, Any] = {}
                if "lease" in status:
                    lease_info["token"] = status["lease"]
                if "worker" in status:
                    lease_info["worker"] = status["worker"]
                job.lease = lease_info or None
                self._metric_jobs().labels(status=job.state).inc()
                continue
            state = read_lease(job.job_dir)
            live = (state is not None and not state.released
                    and not state.expired(self._pool.config.ttl))
            if live:
                if job.state != "running":
                    self.queue.cancel(job.id)
                    job.state = "running"
                    self._dispatch_counter += 1
                    job.started_order = self._dispatch_counter
                    self._stream_for(job).start()
                job.lease = state.to_json()
            elif job.state == "running":
                # The holder died mid-job; until a peer adopts, the job is
                # claimable again.  Its journal keeps everything done.
                job.state = "queued"
                job.lease = state.to_json() if state is not None else None
        if self.state == "ready":
            self._respawn_workers()

    def _pool_drained(self) -> bool:
        """Draining is done when every worker process has exited."""
        now = asyncio.get_running_loop().time()
        if self._drain_started is None:
            self._drain_started = now
        alive = [proc for proc in self._worker_procs
                 if proc is not None and proc.poll() is None]
        if alive and now >= self._drain_started + self.config.drain_grace:
            for proc in alive:  # SIGTERM went unanswered: escalate
                _kill_job_tree(proc)
            return False
        if alive:
            return False
        for job in self.jobs.values():
            # Started-but-unfinished work is resumable (exit 8), matching
            # the process-mode drain; never-started queued jobs keep their
            # positions and the service exits 0, also matching.
            if not job.terminal and (job.job_dir / JOURNAL_FILE).exists():
                job.state = "interrupted"
                self._drained_interrupted = True
        return True

    def _journal_resumable(self, job: Job) -> bool:
        try:
            from repro.sim.supervisor import inspect_journal
            inspect_journal(job.journal_path,
                            keys=job.spec.journal_keys(job.job_dir))
            return True
        except CheckpointError:
            return False

    def _finalize(self, job: Job, exitcode: Optional[int]) -> None:
        del self._running[job.id]
        self.queue.release(job.tenant)
        job.process = None
        job.exit_code = exitcode
        if job.watchdog_fired:
            cap = (job.spec.max_seconds if job.spec.max_seconds is not None
                   else self.config.job_timeout)
            exc = JobTimeoutError(
                f"job {job.id} exceeded its {cap:g}s wall-clock watchdog "
                "and was killed; its journal is kept for post-mortems")
            job.state = "failed"
            job.error = {"type": type(exc).__name__, "message": str(exc)}
            job.write_status()
            self._metric_jobs().labels(status="timeout").inc()
        elif exitcode in (0, 1):
            self._finalize_finished(job, exitcode)
        elif exitcode == SweepInterrupted.exit_code or (exitcode or 0) < 0:
            self._finalize_interrupted(job, exitcode)
        else:
            error_path = job.job_dir / ERROR_FILE
            if error_path.exists():
                try:
                    job.error = read_json(error_path)
                except ValueError:
                    pass
            if job.error is None:
                job.error = {"type": "ReproError",
                             "message": f"job process exited {exitcode}"}
            job.state = "failed"
            job.write_status()
            self._metric_jobs().labels(status="failed").inc()

    def _finalize_finished(self, job: Job, exitcode: int) -> None:
        from repro.sim.supervisor import inspect_journal
        try:
            summary = inspect_journal(job.journal_path,
                                      keys=job.spec.journal_keys(job.job_dir))
            job.completed_runs = len(summary.completed)
            job.quarantined_runs = len(summary.quarantined)
            latency: Dict[str, float] = dict(summary.latency or {})
            if summary.elapsed is not None:
                latency["total"] = summary.elapsed
            job.latency = latency or None
        except CheckpointError as exc:
            job.error = {"type": type(exc).__name__, "message": str(exc)}
        job.state = "done" if exitcode == 0 else "partial"
        job.write_status()
        self._metric_jobs().labels(status=job.state).inc()
        if job.latency and "total" in job.latency:
            REGISTRY.histogram("repro_serve_job_seconds",
                               "Wall clock of finished jobs"
                               ).observe(job.latency["total"])

    def _finalize_interrupted(self, job: Job,
                              exitcode: Optional[int]) -> None:
        job.resume = self._journal_resumable(job)
        if self.state == "draining":
            # Checkpointed by the drain: resumable at the next start.
            job.state = "interrupted"
            self._drained_interrupted = True
            self._metric_jobs().labels(status="interrupted").inc()
            return
        job.restarts += 1
        if job.restarts > self.config.max_job_restarts:
            job.state = "failed"
            job.error = {"type": "WorkerCrashError",
                         "message": f"job process died {job.restarts} times "
                                    f"(last exit {exitcode}); giving up"}
            job.write_status()
            self._metric_jobs().labels(status="crashed").inc()
            return
        job.state = "queued"
        self.queue.requeue_front(job)
        self._metric_jobs().labels(status="restarted").inc()

    # -- job admission and lookup -------------------------------------------

    def submit(self, payload: Any) -> Job:
        if self.state != "ready":
            self._metric_shed().labels(reason="draining").inc()
            raise ServiceDrainingError(
                f"service is {self.state}; not admitting jobs")
        spec = JobSpec.from_payload(payload)
        if self._pool is not None:
            return self._submit_pool(spec)
        seq = self._seq
        job = Job(id=job_id(seq, spec.tenant), seq=seq, spec=spec,
                  job_dir=self.state_dir / "jobs" / job_id(seq, spec.tenant))
        try:
            self.queue.submit(job)
        except ServiceSaturatedError:
            self._metric_shed().labels(reason="saturated").inc()
            raise
        except ServiceError:
            self._metric_shed().labels(reason="quota").inc()
            raise
        # Admitted: now (and only now) it becomes durable.
        self._seq = seq + 1
        try:
            job.job_dir.mkdir(parents=True, exist_ok=True)
            write_json_durable(job.job_dir / SPEC_FILE, spec_record(job))
        except OSError as exc:
            self.queue.cancel(job.id)
            raise ServiceError(
                f"cannot persist job {job.id}: {exc}") from exc
        self.jobs[job.id] = job
        REGISTRY.counter("repro_serve_submissions_total",
                         "Jobs admitted into the queue").inc()
        return job

    def _submit_pool(self, spec: JobSpec) -> Job:
        """Pool-mode admission: same caps, durable publish via the pool.

        The admission caps are checked against this service's view first
        (so sheds stay cheap and typed), then the pool's atomic
        staging+rename publishes the job — a worker may legitimately claim
        it before this method returns.
        """
        try:
            self.queue.admission_check(spec.tenant)
        except ServiceSaturatedError:
            self._metric_shed().labels(reason="saturated").inc()
            raise
        except ServiceError:
            self._metric_shed().labels(reason="quota").inc()
            raise
        job = self._pool.admit(spec)
        self.queue.restore(job)  # caps already checked; keep its position
        self.jobs[job.id] = job
        self._seq = max(self._seq, job.seq + 1)
        REGISTRY.counter("repro_serve_submissions_total",
                         "Jobs admitted into the queue").inc()
        return job

    def _get_job(self, job_id_str: str) -> Job:
        job = self.jobs.get(job_id_str)
        if job is None:
            raise JobNotFoundError(f"no job {job_id_str!r}")
        return job

    def _stream_for(self, job: Job) -> JobEventStream:
        stream = self._streams.get(job.id)
        if stream is None or stream.closed:
            stream = JobEventStream(job, self.config.ring_size,
                                    self.config.poll_interval * 2)
            self._streams[job.id] = stream
        return stream

    def _job_results(self, job: Job) -> Dict[str, Any]:
        runs: List[Dict[str, Any]] = []
        try:
            records = SweepJournal.load_completed(
                job.journal_path, job.spec.journal_keys(job.job_dir))
        except CheckpointError:
            records = {}
        for index in sorted(records):
            record = records[index]
            result = result_from_json(record["result"])
            runs.append({
                "index": index,
                "scheme": job.spec.schemes[index],
                "attempts": record.get("attempts"),
                "elapsed": record.get("elapsed"),
                "mean_throughput": result.mean_throughput,
                "result": record["result"],
            })
        return {"job": job.status_payload(), "runs": runs}

    # -- HTTP ----------------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await _read_request(reader,
                                              self.config.max_body_bytes)
            except _HttpError as exc:
                writer.write(_json_response(
                    exc.status, {"error": {"type": "HttpError",
                                           "message": str(exc)}}))
                await writer.drain()
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return
            if request is None:
                return
            await self._dispatch(request, writer)
        except (ConnectionError, asyncio.TimeoutError):
            pass
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # no request may kill the server
            try:
                writer.write(_json_response(500, _error_payload(exc)))
                await writer.drain()
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _dispatch(self, request: _Request,
                        writer: asyncio.StreamWriter) -> None:
        parts = [p for p in request.path.split("/") if p]
        try:
            response = await self._route(request, parts, writer)
        except ReproError as exc:
            status = getattr(exc, "http_status", None)
            if status is None:
                status = 400 if isinstance(exc, ConfigError) else 500
            extra = ((("Retry-After", "1"),) if status == 429 else ())
            response = _json_response(status, _error_payload(exc), extra)
        if response is not None:
            writer.write(response)
            await writer.drain()

    async def _route(self, request: _Request, parts: List[str],
                     writer: asyncio.StreamWriter) -> Optional[bytes]:
        method = request.method
        if not parts:
            return _json_response(200, {"service": "repro.serve",
                                        "state": self.state})
        if parts == ["healthz"]:
            return _json_response(200, {"status": "ok", "state": self.state})
        if parts == ["readyz"]:
            ready = self.state == "ready"
            return _json_response(200 if ready else 503,
                                  {"ready": ready, "state": self.state})
        if parts == ["metrics"]:
            return _response_bytes(200, REGISTRY.expose_text().encode(),
                                   "text/plain; version=0.0.4")
        if parts == ["queue"]:
            return _json_response(200, self.queue.snapshot())
        if parts == ["jobs"] and method == "POST":
            try:
                payload = json.loads(request.body.decode("utf-8") or "null")
            except ValueError:
                raise ConfigError("body", "submission must be valid JSON")
            job = self.submit(payload)
            return _json_response(
                201, {"job": job.status_payload(),
                      "position": self.queue.position(job.id)})
        if parts == ["jobs"] and method == "GET":
            return _json_response(200, {
                "jobs": [self.jobs[jid].status_payload()
                         for jid in sorted(self.jobs)]})
        if len(parts) == 2 and parts[0] == "jobs":
            job = self._get_job(parts[1])
            if method == "GET":
                payload = job.status_payload()
                position = self.queue.position(job.id)
                if position is not None:
                    payload["position"] = position
                return _json_response(200, payload)
            if method == "DELETE":
                return self._cancel(job)
        if len(parts) == 3 and parts[0] == "jobs" and method == "GET":
            job = self._get_job(parts[1])
            if parts[2] == "result":
                return _json_response(200, self._job_results(job))
            if parts[2] == "events":
                await self._serve_events(job, writer)
                return None
        return _json_response(404 if method in ("GET", "POST", "DELETE")
                              else 405,
                              {"error": {"type": "HttpError",
                                         "message": f"no route for {method} "
                                                    f"{request.path}"}})

    def _cancel(self, job: Job) -> bytes:
        if self._pool is not None:
            return self._cancel_pool(job)
        if job.state == "queued" and self.queue.cancel(job.id) is not None:
            job.state = "cancelled"
            job.write_status()
            self._metric_jobs().labels(status="cancelled").inc()
            return _json_response(200, job.status_payload())
        if job.state == "running":
            return _json_response(
                409, {"error": {"type": "ServiceError",
                                "message": "job is running; wait for it or "
                                           "drain the service"}})
        return _json_response(200, job.status_payload())

    def _cancel_pool(self, job: Job) -> bytes:
        """Cancel in pool mode: win the job's lease, then it cannot run.

        A cancelled pool job gets a fenced terminal ``status.json`` like
        any other outcome, so every worker's claim scan skips it for the
        same reason it skips completed jobs.  If the lease is held by a
        live worker the cancel is a 409, exactly like a running
        process-mode job.
        """
        if job.terminal:
            return _json_response(200, job.status_payload())
        handle = acquire_lease(job.job_dir, "service",
                               self._pool.config.ttl)
        if handle is None:
            return _json_response(
                409, {"error": {"type": "ServiceError",
                                "message": "job is leased by a worker; wait "
                                           "for it or drain the service"}})
        if read_json_tolerant(job.job_dir / STATUS_FILE) is not None:
            handle.release()  # finished in the claim window; report as-is
            return _json_response(200, job.status_payload())
        job.state = "cancelled"
        payload = job.status_payload()
        payload["lease"] = handle.token
        payload["worker"] = "service"
        write_json_durable(job.job_dir / STATUS_FILE, payload)
        handle.release()
        self.queue.cancel(job.id)
        self._metric_jobs().labels(status="cancelled").inc()
        return _json_response(200, job.status_payload())

    async def _serve_events(self, job: Job,
                            writer: asyncio.StreamWriter) -> None:
        """Stream a job's progress as Server-Sent Events until terminal."""
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin-1"))
        stream = self._stream_for(job)
        stream.start()
        writer.write(_sse_event("job-status", job.status_payload()))
        await writer.drain()
        cursor = max(0, stream.emitted - len(stream.recorder.ring))
        while True:
            records, cursor = stream.since(cursor)
            for record in records:
                kind = record.get("kind", "event")
                writer.write(_sse_event(kind, record))
            if records:
                await writer.drain()
            if stream.closed and cursor >= stream.emitted:
                writer.write(_sse_event("end",
                                        {"state": job.state}))
                await writer.drain()
                return
            stream.wakeup.clear()
            try:
                await asyncio.wait_for(stream.wakeup.wait(), timeout=15.0)
            except asyncio.TimeoutError:
                writer.write(b": keepalive\n\n")
                await writer.drain()


def _sse_event(event: str, payload: Any) -> bytes:
    data = json.dumps(payload, sort_keys=True)
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")


async def _amain(config: ServiceConfig) -> int:
    service = SimulationService(config)
    return await service.serve_forever()


def run_service(config: ServiceConfig) -> int:
    """Run the service until it drains; returns the process exit code."""
    return asyncio.run(_amain(config))


__all__ = [
    "SERVE_INFO_FILE",
    "ServiceConfig",
    "SimulationService",
    "JobEventStream",
    "run_service",
]
