"""Restart-time recovery: rebuild the service's world from its state dir.

The service's only durable state is the per-job directory contract from
:mod:`repro.serve.jobs` (fsync'd ``spec.json`` at admission, the
supervisor's crash-safe journal during execution, fsync'd ``status.json``
at completion).  Recovery is therefore a pure *classification* pass over
``<state_dir>/jobs/*`` — no replay log, no database:

- ``status.json`` parses        -> **terminal**: load it, don't run again.
- else journal valid for spec   -> **interrupted**: requeue, resume=True —
  ``run_supervised(resume=True)`` reruns only the missing runs, and the
  result is bit-identical to an uninterrupted job (DESIGN.md §8).
- else (no/unusable journal)    -> **queued**: requeue fresh.  A journal
  whose *header* never became durable proves no run record exists either
  (records are written strictly after the header), so restarting from
  scratch loses nothing.
- ``spec.json`` missing/torn    -> the job was never durably admitted (or
  the dir is foreign): reported as skipped, never guessed at.

Jobs are returned in admission (``seq``) order, so re-enqueueing them
preserves every tenant's queue position across the restart.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.resilience.errors import CheckpointError
from repro.serve.jobs import (
    JOURNAL_FILE,
    Job,
    JobSpec,
    SPEC_FILE,
    STATUS_FILE,
    read_json,
    read_json_tolerant,
)
from repro.sim.supervisor import JournalSummary, inspect_journal


@dataclass
class RecoveredJob:
    """One job dir's classification."""

    job: Job
    phase: str
    """``"terminal"``, ``"interrupted"`` or ``"queued"``."""

    status: Optional[Dict[str, Any]] = None
    """The parsed ``status.json`` of a terminal job."""

    summary: Optional[JournalSummary] = None
    """The journal summary of an interrupted job."""


@dataclass
class RecoveryReport:
    jobs: List[RecoveredJob] = field(default_factory=list)
    skipped: List[str] = field(default_factory=list)
    """Job dirs that could not be recovered (torn/missing spec.json)."""

    next_seq: int = 1

    @property
    def interrupted(self) -> List[RecoveredJob]:
        return [r for r in self.jobs if r.phase == "interrupted"]

    @property
    def queued(self) -> List[RecoveredJob]:
        return [r for r in self.jobs if r.phase == "queued"]

    @property
    def terminal(self) -> List[RecoveredJob]:
        return [r for r in self.jobs if r.phase == "terminal"]


def _as_int(value: Any, default: int) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def recover_job_dir(job_dir: pathlib.Path) -> Optional[RecoveredJob]:
    """Classify one job directory; ``None`` when it is not a valid job."""
    try:
        record = read_json(job_dir / SPEC_FILE)
        spec = JobSpec.from_payload(record["spec"])
        job = Job(id=str(record["id"]), seq=int(record["seq"]), spec=spec,
                  job_dir=job_dir)
    except Exception:
        return None

    status_path = job_dir / STATUS_FILE
    if status_path.exists():
        status = read_json_tolerant(status_path)
        if status is not None:
            job.state = str(status.get("state", "done"))
            job.exit_code = status.get("exit_code")
            job.error = status.get("error")
            job.latency = status.get("latency")
            job.restarts = _as_int(status.get("restarts"), 0)
            job.started_order = status.get("started_order")
            job.completed_runs = _as_int(status.get("completed_runs"), 0)
            job.quarantined_runs = _as_int(status.get("quarantined_runs"), 0)
            lease = status.get("lease")
            if isinstance(lease, str):
                # Pool workers stamp the raw fencing token plus a
                # separate "worker" field; normalise to the dict shape
                # the service keeps in memory.
                job.lease = {"token": lease, "worker": status.get("worker")}
            elif isinstance(lease, dict):
                job.lease = lease
            else:
                job.lease = None
            return RecoveredJob(job=job, phase="terminal", status=status)
        # A truncated, half-written, or non-object status.json means the
        # completion write never became durable (or the file was damaged
        # by hand): the job is *not* terminal.  Fall through to the
        # journal and classify it interrupted/queued — never surface the
        # parse failure as a crash.

    journal_path = job_dir / JOURNAL_FILE
    if journal_path.exists():
        try:
            summary = inspect_journal(journal_path,
                                      keys=spec.journal_keys(job_dir))
        except CheckpointError:
            # Unreadable header or a different sweep's journal: nothing in
            # it is trustworthy, and nothing durable can be lost by
            # starting over (run records only ever follow a valid header).
            job.resume = False
            job.state = "queued"
            return RecoveredJob(job=job, phase="queued")
        job.resume = True
        job.state = "queued"
        job.completed_runs = len(summary.completed)
        return RecoveredJob(job=job, phase="interrupted", summary=summary)

    job.state = "queued"
    return RecoveredJob(job=job, phase="queued")


def recover_state(state_dir) -> RecoveryReport:
    """Scan ``<state_dir>/jobs`` and classify every job, in seq order."""
    report = RecoveryReport()
    jobs_root = pathlib.Path(state_dir) / "jobs"
    if not jobs_root.is_dir():
        return report
    recovered: List[RecoveredJob] = []
    for job_dir in sorted(jobs_root.iterdir()):
        if not job_dir.is_dir():
            continue
        entry = recover_job_dir(job_dir)
        if entry is None:
            report.skipped.append(job_dir.name)
            continue
        recovered.append(entry)
    recovered.sort(key=lambda entry: entry.job.seq)
    report.jobs = recovered
    report.next_seq = max((entry.job.seq for entry in recovered),
                          default=0) + 1
    return report


__all__ = ["RecoveredJob", "RecoveryReport", "recover_job_dir",
           "recover_state"]
