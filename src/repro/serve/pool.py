"""The shared worker pool: a filesystem-backed durable queue that any
number of ``repro worker`` processes drain cooperatively.

Where :mod:`repro.serve.app` runs jobs in children *it* spawns, the pool
inverts control: jobs are admitted into a shared directory, and workers —
started by the service (``repro serve --workers N``), by hand, or on
different machines sharing a filesystem — *pull* work by claiming leases
(:mod:`repro.serve.lease`).  The layout::

    <pool_dir>/
        pool.json             # heartbeat cadence + allowed misses (the TTL)
        jobs/<job_id>/        # the standard job-dir contract (jobs.py)
            spec.json         #   ... plus lease/ (lease.py)
        staging/              # admission scratch: jobs appear atomically
        workers/<id>.json     # per-worker liveness heartbeats

Three properties carry the design:

- **Atomic admission.**  A job is staged (``spec.json`` fsync'd in
  ``staging/``) and then ``os.rename``\\ d into ``jobs/`` — a scanning
  worker sees either no job or a complete one, never a half-admitted dir.
  Sequence numbers are reserved with ``O_EXCL`` markers so concurrent
  admitters cannot mint duplicate ``seq`` values.
- **Lease-fenced execution.**  A worker claims a job by winning the next
  fence (:func:`repro.serve.lease.acquire`), heartbeats it from a daemon
  thread, and stamps the fencing token into every journal record and the
  final ``status.json``.  After ``misses`` missed heartbeats any peer may
  claim the next fence and *adopt* the job.
- **Bit-identical adoption.**  The adopter resumes from the fsync'd
  journal exactly like a service restart would
  (:func:`~repro.serve.recovery.recover_job_dir` classifies, the
  supervisor reruns only the missing runs), so a job that bounced between
  workers produces byte-identical per-epoch results to one that never
  crashed.  DESIGN.md §11 carries the full argument.

Every read of foreign state (status files, worker heartbeats, claim
records) is tolerant — a torn file is treated as absent, never a crash —
because the whole point of the pool is that peers die at arbitrary
instants.
"""

from __future__ import annotations

import os
import pathlib
import shutil
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY
from repro.resilience.errors import (
    LeaseLostError,
    PoolCorruptError,
    PoolError,
    ReproError,
    SweepInterrupted,
)
from repro.serve.jobs import (
    ERROR_FILE,
    JOURNAL_FILE,
    Job,
    JobSpec,
    SPEC_FILE,
    STATUS_FILE,
    job_id,
    read_json_tolerant,
    spec_record,
    write_json_durable,
)
from repro.serve.lease import LeaseHandle, acquire, read_lease
from repro.serve.recovery import recover_job_dir

#: The pool's durable configuration file (written once at creation).
POOL_FILE = "pool.json"
POOL_VERSION = 1

JOBS_DIR = "jobs"
STAGING_DIR = "staging"
WORKERS_DIR = "workers"

_SEQ_PREFIX = ".seq-"


@dataclass(frozen=True)
class PoolConfig:
    """The pool's shared timing contract — identical for every worker,
    because lease expiry must mean the same thing to all of them."""

    heartbeat: float = 1.0
    """Seconds between lease renewals by a live holder."""

    misses: int = 3
    """Missed heartbeats before a lease is reclaimable."""

    @property
    def ttl(self) -> float:
        """Heartbeat age past which a lease is dead (``heartbeat×misses``)."""
        return self.heartbeat * self.misses

    def __post_init__(self) -> None:
        if not (self.heartbeat > 0):
            raise PoolCorruptError(
                f"pool heartbeat must be > 0, got {self.heartbeat!r}")
        if self.misses < 1:
            raise PoolCorruptError(
                f"pool misses must be >= 1, got {self.misses!r}")


class SharedPool:
    """One pool directory: admission, claiming, and status introspection."""

    def __init__(self, root, config: PoolConfig) -> None:
        self.root = pathlib.Path(root)
        self.config = config

    @property
    def jobs_root(self) -> pathlib.Path:
        return self.root / JOBS_DIR

    # -- creation ------------------------------------------------------------

    @classmethod
    def ensure(cls, root, heartbeat: float = 1.0,
               misses: int = 3) -> "SharedPool":
        """Open the pool at ``root``, creating it if needed.

        An existing ``pool.json`` always wins — the timing contract is set
        once, by whoever created the pool, and later workers inherit it no
        matter what flags they were started with (mixed TTLs would make
        "expired" worker-dependent, which is exactly the split-brain the
        lease protocol exists to prevent).
        """
        root = pathlib.Path(root)
        try:
            root.mkdir(parents=True, exist_ok=True)
            for sub in (JOBS_DIR, STAGING_DIR, WORKERS_DIR):
                (root / sub).mkdir(exist_ok=True)
        except OSError as exc:
            raise PoolCorruptError(
                f"cannot create pool directory {root}: {exc}") from exc
        pool_file = root / POOL_FILE
        if pool_file.exists():
            return cls(root, _load_config(pool_file))
        config = PoolConfig(heartbeat=float(heartbeat), misses=int(misses))
        write_json_durable(pool_file, {
            "version": POOL_VERSION, "heartbeat": config.heartbeat,
            "misses": config.misses})
        # A racing ensure() may have replaced the file between our exists()
        # check and the write; re-read so every opener agrees.
        return cls(root, _load_config(pool_file))

    @classmethod
    def open(cls, root) -> "SharedPool":
        """Open an existing pool; :class:`PoolCorruptError` if absent."""
        root = pathlib.Path(root)
        pool_file = root / POOL_FILE
        if not pool_file.exists():
            raise PoolCorruptError(
                f"{root} is not a pool directory (no {POOL_FILE}); "
                "create one with 'repro serve --workers' or SharedPool.ensure")
        return cls(root, _load_config(pool_file))

    # -- admission -----------------------------------------------------------

    def _scan_seq(self) -> int:
        best = 0
        for parent, prefix in ((self.jobs_root, ""),
                               (self.root / STAGING_DIR, _SEQ_PREFIX)):
            try:
                names = os.listdir(parent)
            except OSError:
                continue
            for name in names:
                if prefix and not name.startswith(prefix):
                    continue
                head = name[len(prefix):].split("-", 1)[0]
                try:
                    best = max(best, int(head))
                except ValueError:
                    continue
        return best

    def admit(self, spec: JobSpec) -> Job:
        """Durably admit a job; it is claimable the instant this returns.

        The sequence number is reserved with an ``O_EXCL`` marker in
        ``staging/`` (so concurrent admitters — the service plus a CLI
        submit, say — never mint the same ``seq``), the job dir is staged
        with its fsync'd ``spec.json``, and one ``os.rename`` publishes
        it.  A crash mid-admission leaves either a stale staging entry
        (burning one seq number, harmless) or the complete job.
        """
        staging = self.root / STAGING_DIR
        while True:
            seq = self._scan_seq() + 1
            marker = staging / f"{_SEQ_PREFIX}{seq:06d}"
            try:
                os.close(os.open(str(marker),
                                 os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                continue  # a peer reserved this seq; rescan
            except OSError as exc:
                raise PoolCorruptError(
                    f"cannot reserve admission seq in {staging}: {exc}"
                    ) from exc
            jid = job_id(seq, spec.tenant)
            job = Job(id=jid, seq=seq, spec=spec,
                      job_dir=self.jobs_root / jid)
            stage = staging / f"{jid}.stage-{os.getpid()}"
            try:
                stage.mkdir()
                write_json_durable(stage / SPEC_FILE, spec_record(job))
                os.rename(stage, job.job_dir)
            except OSError as exc:
                shutil.rmtree(stage, ignore_errors=True)
                raise PoolCorruptError(
                    f"cannot admit job {jid} into {self.jobs_root}: {exc}"
                    ) from exc
            finally:
                try:
                    os.unlink(marker)
                except OSError:
                    pass
            _fsync_dir(self.jobs_root)
            if REGISTRY.enabled:
                REGISTRY.counter(
                    "repro_pool_admissions_total",
                    "Jobs admitted into the shared pool",
                    labels=("tenant",)).labels(tenant=spec.tenant).inc()
            return job

    # -- claiming ------------------------------------------------------------

    def job_dirs(self) -> List[pathlib.Path]:
        """Job directories in admission (``seq``) order."""
        try:
            names = sorted(os.listdir(self.jobs_root))
        except OSError:
            return []
        return [self.jobs_root / name for name in names
                if (self.jobs_root / name).is_dir()]

    def claim_next(self, owner: str) -> Optional[
            Tuple[Job, LeaseHandle, bool]]:
        """Claim the lowest-seq claimable job for ``owner``.

        Returns ``(job, lease handle, resume?)`` or ``None`` when nothing
        is claimable right now.  A job is claimable when it is not
        terminal and its lease (if any) is released or expired; ``resume``
        is True when a valid journal exists, i.e. this claim *adopts* a
        peer's interrupted work.
        """
        for job_dir in self.job_dirs():
            if read_json_tolerant(job_dir / STATUS_FILE) is not None:
                continue  # terminal
            state = read_lease(job_dir)
            if (state is not None and not state.released
                    and not state.expired(self.config.ttl)):
                continue  # live holder
            entry = recover_job_dir(job_dir)
            if entry is None or entry.phase == "terminal":
                continue  # torn spec (not ours to guess at) or lost race
            handle = acquire(job_dir, owner, self.config.ttl)
            if handle is None:
                continue  # lost the fence CAS to a peer
            if read_json_tolerant(job_dir / STATUS_FILE) is not None:
                # Completed (or cancelled) between our scan and the claim.
                handle.release()
                continue
            resume = entry.phase == "interrupted"
            if REGISTRY.enabled:
                REGISTRY.counter(
                    "repro_pool_claims_total",
                    "Job leases claimed, fresh or adopted from a dead peer",
                    labels=("worker", "kind")).labels(
                        worker=owner,
                        kind="adopt" if handle.fence > 1 else "fresh").inc()
            return entry.job, handle, resume
        return None

    # -- introspection -------------------------------------------------------

    def all_terminal(self) -> bool:
        """Every admitted job has a durable ``status.json``."""
        return all(read_json_tolerant(d / STATUS_FILE) is not None
                   for d in self.job_dirs())

    def write_worker_heartbeat(self, worker_id: str, jobs_done: int,
                               running: Optional[str]) -> None:
        write_json_durable(self.root / WORKERS_DIR / f"{worker_id}.json", {
            "worker": worker_id, "pid": os.getpid(),
            "updated_at": time.time(), "jobs_done": jobs_done,
            "running": running})


def _load_config(pool_file: pathlib.Path) -> PoolConfig:
    payload = read_json_tolerant(pool_file)
    if payload is None:
        raise PoolCorruptError(
            f"pool file {pool_file} is torn or not a JSON object")
    if payload.get("version") != POOL_VERSION:
        raise PoolCorruptError(
            f"pool file {pool_file} has version {payload.get('version')!r}, "
            f"this build speaks version {POOL_VERSION}")
    try:
        return PoolConfig(heartbeat=float(payload["heartbeat"]),
                          misses=int(payload["misses"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise PoolCorruptError(
            f"pool file {pool_file} is missing or mistypes its timing "
            f"fields: {exc}") from exc


def _fsync_dir(path: pathlib.Path) -> None:
    try:
        dir_fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


# -- execution ---------------------------------------------------------------

def execute_claim(pool: SharedPool, job: Job, handle: LeaseHandle,
                  worker_id: str, resume: bool,
                  jobs_done: int = 0) -> Job:
    """Run one claimed job to a terminal state, fenced end to end.

    The lease is renewed from a daemon thread every ``heartbeat`` seconds;
    every journal write carries the fencing token and re-checks the fence
    first (``journal_guard``), and the final ``status.json`` is written
    only after a last fence check.  Outcomes:

    - completes (``done``/``partial``/typed failure) — fenced status
      written, lease released, the updated :class:`Job` returned;
    - :class:`SweepInterrupted` (SIGTERM drain) — lease released so a peer
      can adopt immediately, then re-raised;
    - :class:`LeaseLostError` — this worker became the zombie: nothing
      further is written, the error propagates (exit code 10).
    """
    job_dir = job.job_dir
    spec = job.spec
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(pool.config.heartbeat):
            try:
                handle.renew()
            except PoolError:
                return  # the next journal write will raise LeaseLostError
            try:
                pool.write_worker_heartbeat(worker_id, jobs_done, job.id)
            except OSError:
                pass

    beater = threading.Thread(target=beat, daemon=True,
                              name=f"lease-heartbeat-{job.id}")
    beater.start()
    from repro.sim.supervisor import SweepPolicy, run_supervised
    try:
        report = run_supervised(
            spec.to_runspecs(job_dir), jobs=spec.jobs,
            policy=SweepPolicy(run_timeout=spec.run_timeout,
                               retries=spec.retries),
            journal=job_dir / JOURNAL_FILE, resume=resume,
            journal_extra={"lease": handle.token, "worker": worker_id},
            journal_guard=handle.check)
    except SweepInterrupted:
        _stop_beat(stop, beater)
        handle.release()  # everything durable is journaled; peers may adopt
        raise
    except LeaseLostError:
        _stop_beat(stop, beater)
        raise
    except ReproError as exc:
        _stop_beat(stop, beater)
        handle.check()
        write_json_durable(job_dir / ERROR_FILE, {
            "type": type(exc).__name__, "message": str(exc)})
        job.state = "failed"
        job.exit_code = exc.exit_code
        job.error = {"type": type(exc).__name__, "message": str(exc)}
        _finalize(pool, job, handle, worker_id)
        return job
    _stop_beat(stop, beater)
    job.state = "done" if report.ok else "partial"
    job.exit_code = 0 if report.ok else 1
    job.completed_runs = len(report.succeeded)
    job.quarantined_runs = len(report.quarantined)
    job.latency = report.latency()
    _finalize(pool, job, handle, worker_id)
    return job


def _finalize(pool: SharedPool, job: Job, handle: LeaseHandle,
              worker_id: str) -> None:
    """Fence-checked terminal status write, then release.

    The check→write window is not atomic; the residual race is benign for
    the same reason journal duplicates are: both possible writers derive
    the status from the same deterministic journal, so the late write is
    equivalent in everything but the ``worker``/``lease`` provenance
    fields (and a reclaim implies the first writer was about to die).
    """
    handle.check()
    payload = job.status_payload()
    payload["lease"] = handle.token
    payload["worker"] = worker_id
    write_json_durable(job.job_dir / STATUS_FILE, payload)
    handle.release()
    if REGISTRY.enabled:
        REGISTRY.counter(
            "repro_pool_jobs_total",
            "Jobs driven to a terminal state by pool workers",
            labels=("worker", "state")).labels(
                worker=worker_id, state=job.state).inc()


def _stop_beat(stop: threading.Event, beater: threading.Thread) -> None:
    stop.set()
    beater.join(timeout=5.0)


def run_worker(pool_dir, worker_id: str, drain: bool = False,
               poll_interval: float = 0.2,
               max_jobs: Optional[int] = None) -> int:
    """The ``repro worker`` main loop: claim, execute, repeat.

    With ``drain=True`` the worker exits once every admitted job is
    terminal (waiting out live peers' leases — their jobs become either
    terminal or adoptable); otherwise it polls forever.  ``max_jobs``
    bounds the number of jobs this worker executes (mostly for tests).
    Returns the number of jobs this worker drove to a terminal state.

    SIGTERM during a sweep drains it (journal flushed, lease released)
    and raises :class:`SweepInterrupted` — exit code 8, same as the
    supervisor.  A lost lease raises :class:`LeaseLostError` — exit 10.
    """
    pool = SharedPool.open(pool_dir)
    done = 0
    while True:
        claim = pool.claim_next(worker_id)
        if claim is None:
            try:
                pool.write_worker_heartbeat(worker_id, done, None)
            except OSError:
                pass
            if max_jobs is not None and done >= max_jobs:
                return done
            if drain and pool.all_terminal():
                return done
            time.sleep(poll_interval)
            continue
        job, handle, resume = claim
        execute_claim(pool, job, handle, worker_id, resume, jobs_done=done)
        done += 1
        try:
            pool.write_worker_heartbeat(worker_id, done, None)
        except OSError:
            pass
        if max_jobs is not None and done >= max_jobs:
            return done


# -- status ------------------------------------------------------------------

def pool_status(pool_dir) -> Dict[str, Any]:
    """The ``repro pool status`` body: config, jobs with their leases,
    worker heartbeats, and aggregate counts."""
    pool = SharedPool.open(pool_dir)
    now = time.time()
    jobs: List[Dict[str, Any]] = []
    counts: Dict[str, int] = {}
    reclaims = 0
    for job_dir in pool.job_dirs():
        record = read_json_tolerant(job_dir / SPEC_FILE)
        if record is None:
            continue
        status = read_json_tolerant(job_dir / STATUS_FILE)
        lease_state = read_lease(job_dir)
        lease_live = (lease_state is not None and not lease_state.released
                      and not lease_state.expired(pool.config.ttl, now))
        if status is not None:
            state = str(status.get("state", "done"))
        elif lease_live:
            state = "running"
        elif (job_dir / JOURNAL_FILE).exists():
            state = "interrupted"
        else:
            state = "queued"
        entry: Dict[str, Any] = {
            "id": str(record.get("id", job_dir.name)),
            "seq": record.get("seq"),
            "tenant": (record.get("spec") or {}).get("tenant"),
            "state": state,
            "lease": lease_state.to_json() if lease_state else None,
        }
        if status is not None and "worker" in status:
            entry["worker"] = status["worker"]
        elif lease_live:
            entry["worker"] = lease_state.owner
        if lease_state is not None:
            reclaims += lease_state.reclaims
        counts[state] = counts.get(state, 0) + 1
        jobs.append(entry)
    workers = []
    workers_dir = pool.root / WORKERS_DIR
    try:
        names = sorted(os.listdir(workers_dir))
    except OSError:
        names = []
    for name in names:
        if not name.endswith(".json"):
            continue
        payload = read_json_tolerant(workers_dir / name)
        if payload is None:
            continue
        age = now - float(payload.get("updated_at", now))
        payload["age"] = max(0.0, age)
        workers.append(payload)
    if REGISTRY.enabled:
        REGISTRY.gauge(
            "repro_pool_reclaims",
            "Total lease reclaims recorded across the pool's jobs"
            ).set(float(reclaims))
        for state, count in counts.items():
            REGISTRY.gauge(
                "repro_pool_jobs", "Pool jobs by state",
                labels=("state",)).labels(state=state).set(float(count))
    return {
        "pool": str(pool.root),
        "config": {"heartbeat": pool.config.heartbeat,
                   "misses": pool.config.misses, "ttl": pool.config.ttl},
        "counts": counts,
        "reclaims": reclaims,
        "jobs": jobs,
        "workers": workers,
    }


__all__ = [
    "POOL_FILE",
    "PoolConfig",
    "SharedPool",
    "execute_claim",
    "pool_status",
    "run_worker",
]
