"""SPEC CPU 2006 benchmark models (left half of the paper's Table 4).

Each benchmark is represented by a :class:`FootprintModel` calibrated to the
paper's measured per-benchmark L2/L3 active cache footprints and temporal
standard deviations, collected on a single core with a private 256 KB L2
slice and a private 1 MB L3 slice.  The class in parentheses in Table 4
(0-3) encodes whether the L2 and L3 footprints are low or high; the paper's
mixes (Table 5) are constructed from those classes.

Class semantics (inferred from the data and the paper's description):

====== ============ ============
class  L2 footprint L3 footprint
====== ============ ============
0      low          low
1      low          high
2      high         low
3      high         high
====== ============ ============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.workloads.synthetic import FootprintModel


@dataclass(frozen=True)
class SpecBenchmark:
    """One SPEC CPU 2006 benchmark: Table 4 row plus its class label."""

    model: FootprintModel
    spec_class: int

    @property
    def name(self) -> str:
        return self.model.name

    def __post_init__(self) -> None:
        if self.spec_class not in (0, 1, 2, 3):
            raise ValueError(f"class must be 0-3, got {self.spec_class}")


#: Streaming intensity per benchmark: the fraction of references that are
#: never-reused (cold) lines.  The paper does not tabulate this, but it is
#: what makes shared LRU caches lose to private/partitioned ones (the
#: motivation behind PIPP/TADIP, which the paper cites); the values below
#: follow the benchmarks' published memory behaviour — libquantum, lbm,
#: GemsFDTD and bwaves are heavy streamers, the integer benchmarks barely
#: stream.  See EXPERIMENTS.md for the calibration note.
_COLD_FRACTION = {
    "GemsFDTD": 0.32, "astar": 0.08, "bwaves": 0.28, "bzip2": 0.10,
    "cactusADM": 0.10, "calculix": 0.05, "dealII": 0.08, "gamess": 0.03,
    "gcc": 0.10, "gobmk": 0.05, "gromacs": 0.08, "h264ref": 0.05,
    "hmmer": 0.05, "lbm": 0.40, "leslie3d": 0.20, "libquantum": 0.45,
    "mcf": 0.25, "milc": 0.22, "namd": 0.05, "omnetpp": 0.10,
    "perlbench": 0.05, "povray": 0.03, "sjeng": 0.04, "soplex": 0.15,
    "sphinx": 0.12, "tonto": 0.06, "wrf": 0.12, "xalancbmk": 0.10,
    "zeusmp": 0.15,
}


def _spec(name: str, cls: int, l2: float, s2: float, l3: float, s3: float) -> SpecBenchmark:
    return SpecBenchmark(
        model=FootprintModel(
            name=name, l2_acf=l2, l2_sigma_t=s2, l3_acf=l3, l3_sigma_t=s3,
            cold_fraction=_COLD_FRACTION[name],
        ),
        spec_class=cls,
    )


#: All 29 SPEC CPU 2006 benchmarks of Table 4, keyed by name.  The short
#: aliases used in Table 5 (``Gems``, ``perl``, ``libq``, ``libm``, ...) are
#: resolved by :func:`spec_benchmark`.
SPEC_BENCHMARKS: Dict[str, SpecBenchmark] = {
    bench.name: bench
    for bench in [
        _spec("GemsFDTD", 0, 0.34, 0.14, 0.46, 0.25),
        _spec("astar", 1, 0.42, 0.06, 0.56, 0.02),
        _spec("bwaves", 2, 0.56, 0.05, 0.43, 0.17),
        _spec("bzip2", 2, 0.59, 0.18, 0.46, 0.22),
        _spec("cactusADM", 2, 0.74, 0.16, 0.48, 0.04),
        _spec("calculix", 3, 0.62, 0.02, 0.56, 0.02),
        _spec("dealII", 3, 0.58, 0.07, 0.71, 0.19),
        _spec("gamess", 0, 0.41, 0.09, 0.38, 0.11),
        _spec("gcc", 3, 0.59, 0.18, 0.66, 0.13),
        _spec("gobmk", 2, 0.73, 0.13, 0.45, 0.01),
        _spec("gromacs", 1, 0.39, 0.14, 0.77, 0.20),
        _spec("h264ref", 3, 0.65, 0.02, 0.55, 0.04),
        _spec("hmmer", 1, 0.31, 0.19, 0.69, 0.11),
        _spec("lbm", 0, 0.44, 0.19, 0.42, 0.08),
        _spec("leslie3d", 2, 0.56, 0.04, 0.34, 0.12),
        _spec("libquantum", 0, 0.26, 0.14, 0.18, 0.11),
        _spec("mcf", 1, 0.38, 0.16, 0.51, 0.04),
        _spec("milc", 1, 0.42, 0.02, 0.59, 0.05),
        _spec("namd", 2, 0.55, 0.04, 0.48, 0.12),
        _spec("omnetpp", 1, 0.47, 0.03, 0.58, 0.08),
        _spec("perlbench", 0, 0.31, 0.08, 0.42, 0.01),
        _spec("povray", 2, 0.58, 0.11, 0.41, 0.07),
        _spec("sjeng", 2, 0.56, 0.02, 0.41, 0.06),
        _spec("soplex", 2, 0.53, 0.07, 0.47, 0.07),
        _spec("sphinx", 1, 0.49, 0.04, 0.63, 0.11),
        _spec("tonto", 3, 0.63, 0.12, 0.57, 0.06),
        _spec("wrf", 1, 0.46, 0.07, 0.73, 0.14),
        _spec("xalancbmk", 3, 0.58, 0.03, 0.57, 0.03),
        _spec("zeusmp", 2, 0.54, 0.05, 0.44, 0.17),
    ]
}

#: Short names as they appear in Table 5's mix definitions.
_ALIASES: Dict[str, str] = {
    "Gems": "GemsFDTD",
    "gems": "GemsFDTD",
    "cactus": "cactusADM",
    "leslie": "leslie3d",
    "h264": "h264ref",
    "libq": "libquantum",
    "libm": "lbm",
    "perl": "perlbench",
    "xalanc": "xalancbmk",
    "gomacs": "gromacs",  # Table 5 typo in the paper
    "sphinx3": "sphinx",
}


def spec_benchmark(name: str) -> SpecBenchmark:
    """Look up a SPEC benchmark by its full name or Table 5 alias."""
    canonical = _ALIASES.get(name, name)
    try:
        return SPEC_BENCHMARKS[canonical]
    except KeyError:
        raise ValueError(f"unknown SPEC benchmark {name!r}") from None


def class_counts(names: Tuple[str, ...]) -> Tuple[int, int, int, int]:
    """Count how many of the given benchmarks fall in each class (Table 5 type)."""
    counts = [0, 0, 0, 0]
    for name in names:
        counts[spec_benchmark(name).spec_class] += 1
    return tuple(counts)
