"""PARSEC benchmark models (right half of the paper's Table 4).

Each PARSEC benchmark runs as 16 threads sharing one address space.  Table 4
reports, per benchmark, the mean per-thread ACF in L2 and L3 slices, the
temporal standard deviation (sigma_t, averaged over threads) and the spatial
standard deviation (sigma_s, across threads in the same epoch).  The paper's
observations this package must reproduce:

- facesim and ferret have high sigma_s in L2; freqmine and x264 have high
  sigma_s in L3 — these four derive the largest MorphCache benefit (Fig 16);
- dedup prefers the (4:4:1) topology while freqmine prefers (1:16:1)
  (Fig 2(b)).

The data-sharing fraction per benchmark is not reported in the paper; it is
a calibration parameter here, chosen from the benchmarks' published
characterisation (pipeline benchmarks such as dedup/ferret share heavily,
data-parallel ones such as blackscholes/swaptions barely share) and listed in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.workloads.synthetic import FootprintModel


@dataclass(frozen=True)
class ParsecBenchmark:
    """One PARSEC benchmark: Table 4 row, kept with both spatial sigmas."""

    model: FootprintModel
    l2_sigma_s: float
    l3_sigma_s: float

    @property
    def name(self) -> str:
        return self.model.name

    def __post_init__(self) -> None:
        if self.l2_sigma_s < 0 or self.l3_sigma_s < 0:
            raise ValueError(f"{self.name}: spatial sigmas must be non-negative")


#: Streaming intensity (cold-reference fraction) per benchmark; same
#: calibration role as in :mod:`repro.workloads.spec`.
_COLD_FRACTION = {
    "blackscholes": 0.05, "bodytrack": 0.06, "canneal": 0.15, "dedup": 0.12,
    "facesim": 0.12, "ferret": 0.10, "fluidanimate": 0.10, "freqmine": 0.08,
    "streamcluster": 0.25, "swaptions": 0.03, "vips": 0.10, "x264": 0.10,
}


def _parsec(
    name: str,
    l2: float,
    s2t: float,
    s2s: float,
    l3: float,
    s3t: float,
    s3s: float,
    shared: float,
) -> ParsecBenchmark:
    model = FootprintModel(
        name=name,
        l2_acf=l2,
        l2_sigma_t=s2t,
        l3_acf=l3,
        l3_sigma_t=s3t,
        shared_fraction=shared,
        spatial_sigma=(s2s + s3s) / 2.0,
        cold_fraction=_COLD_FRACTION[name],
    )
    return ParsecBenchmark(model=model, l2_sigma_s=s2s, l3_sigma_s=s3s)


#: All 12 PARSEC benchmarks of Table 4, keyed by name.
#: Column order mirrors the table: L2 (ACF, sigma_t, sigma_s) then L3.
PARSEC_BENCHMARKS: Dict[str, ParsecBenchmark] = {
    bench.name: bench
    for bench in [
        _parsec("blackscholes", 0.23, 0.04, 0.07, 0.18, 0.02, 0.05, shared=0.05),
        _parsec("bodytrack", 0.38, 0.07, 0.03, 0.22, 0.04, 0.02, shared=0.10),
        _parsec("canneal", 0.65, 0.13, 0.18, 0.58, 0.07, 0.14, shared=0.25),
        _parsec("dedup", 0.47, 0.05, 0.08, 0.74, 0.16, 0.12, shared=0.30),
        _parsec("facesim", 0.41, 0.11, 0.14, 0.64, 0.17, 0.08, shared=0.20),
        _parsec("ferret", 0.59, 0.14, 0.18, 0.58, 0.06, 0.08, shared=0.25),
        _parsec("fluidanimate", 0.47, 0.04, 0.11, 0.41, 0.03, 0.19, shared=0.15),
        _parsec("freqmine", 0.61, 0.13, 0.13, 0.71, 0.14, 0.20, shared=0.25),
        _parsec("streamcluster", 0.79, 0.28, 0.12, 0.61, 0.16, 0.07, shared=0.20),
        _parsec("swaptions", 0.43, 0.05, 0.11, 0.37, 0.04, 0.02, shared=0.05),
        _parsec("vips", 0.62, 0.09, 0.15, 0.57, 0.06, 0.12, shared=0.15),
        _parsec("x264", 0.55, 0.07, 0.10, 0.52, 0.13, 0.18, shared=0.20),
    ]
}


def parsec_benchmark(name: str) -> ParsecBenchmark:
    """Look up a PARSEC benchmark by name."""
    try:
        return PARSEC_BENCHMARKS[name]
    except KeyError:
        raise ValueError(f"unknown PARSEC benchmark {name!r}") from None
