"""Synthetic address-stream generator with controllable cache footprints.

The generator realises the paper's workload characterisation (Table 4)
directly: every benchmark is described by its mean active cache footprint
(ACF) in an L2 and an L3 slice plus the temporal standard deviation of those
footprints, and — for multithreaded benchmarks — a data-sharing fraction and
a spatial (across-thread) standard deviation.

The reuse model is a three-tier hot/warm/cold hierarchy:

- a *hot* set sized to the target L2 footprint: a contiguous region (mapping
  uniformly over cache sets) accessed uniformly at random, so it stays
  L2-resident and is repeatedly reused;
- a *warm* set sized so hot + warm matches the target L3 footprint.  Warm
  lines must be L3-resident yet *not* L2-resident (otherwise any footprint
  smaller than an L2 slice would collapse the L2/L3 distinction of
  Table 4).  They are therefore laid out in *conflict classes*: each class
  holds lines strided by the L2 set count, so the whole class maps to a
  single L2 set (bounded by its associativity) but spreads over
  ``l3_sets / l2_sets`` L3 sets.  Sweeping each class cyclically with more
  lines than L2 ways guarantees L2 misses on reuse, while the class size is
  chosen to fit the class's L3 way capacity, keeping reuses L3 hits;
- a *cold* stream of fresh lines that miss everywhere (streaming data).

Each epoch resamples the footprint sizes from ``Normal(mean, sigma_t)`` and
drifts the hot-region base, producing the temporal footprint variation that
MorphCache's reconfiguration logic feeds on.  Epochs where the sampled hot
set exceeds the L2 slice (or a class overflows its L3 ways) thrash exactly
like an over-capacity working set would — those are the epochs merging
neighbouring slices pays off.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, replace

import numpy as np

from repro.config import CacheGeometry
from repro.workloads.trace import EpochTrace

#: Private address-space stride between threads, in line addresses.  Large
#: enough that private regions of different threads can never collide.
THREAD_STRIDE = 1 << 40

#: Base of the region shared by all threads of a multithreaded benchmark.
SHARED_BASE = 1 << 56

#: Offset of the warm region inside a thread's private range.
_WARM_OFFSET = 1 << 30

#: Offset of the cold stream inside a thread's private range.
_COLD_OFFSET = 1 << 35

#: Fraction of hot/warm references that revisit a random line of their set
#: instead of following the loop (see SyntheticThread._warm_lines).
REUSE_SPRINKLE = 0.15


@dataclass(frozen=True)
class FootprintModel:
    """Target footprint statistics of one benchmark (one row of Table 4).

    The ACF values are fractions of one cache slice's capacity, exactly as
    the paper reports them (1.0 = 100 % of a 256 KB L2 / 1 MB L3 slice).
    """

    name: str
    l2_acf: float
    l2_sigma_t: float
    l3_acf: float
    l3_sigma_t: float
    shared_fraction: float = 0.0
    """Fraction of references that target the thread-shared region."""

    spatial_sigma: float = 0.0
    """Across-thread standard deviation of the footprint (PARSEC only)."""

    write_ratio: float = 0.3
    mean_gap: float = 2.0
    """Mean non-memory instructions between references."""

    cold_fraction: float = 0.04
    """Fraction of references that are streaming (never reused)."""

    drift: float = 0.15
    """Per-epoch drift of the hot region base, as a fraction of its size."""

    def __post_init__(self) -> None:
        for attr in ("l2_acf", "l3_acf"):
            value = getattr(self, attr)
            if not 0 < value <= 1.5:
                raise ValueError(f"{self.name}: {attr}={value} out of range (0, 1.5]")
        for attr in ("l2_sigma_t", "l3_sigma_t", "spatial_sigma"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{self.name}: {attr} must be non-negative")
        if not 0 <= self.shared_fraction < 1:
            raise ValueError(f"{self.name}: shared_fraction must be in [0, 1)")
        if not 0 <= self.write_ratio <= 1:
            raise ValueError(f"{self.name}: write_ratio must be in [0, 1]")
        if not 0 <= self.cold_fraction < 0.5:
            raise ValueError(f"{self.name}: cold_fraction must be in [0, 0.5)")
        if self.mean_gap < 0:
            raise ValueError(f"{self.name}: mean_gap must be non-negative")

    def with_sharing(self, shared_fraction: float, spatial_sigma: float) -> "FootprintModel":
        """Return a multithreaded variant of this model."""
        return replace(self, shared_fraction=shared_fraction, spatial_sigma=spatial_sigma)


class SyntheticThread:
    """Stateful per-thread trace generator driven by a :class:`FootprintModel`.

    Args:
        model: footprint targets for this thread's benchmark.
        thread_id: global thread index; determines the private address range.
        l2: geometry of one L2 slice (sets the hot-set scale and the warm
            conflict classes).
        l3: geometry of one L3 slice (sets the warm-set scale).
        seed: RNG seed; the same (seed, thread_id, model) replays
            identically, which the tests rely on.
        spatial_scale: per-thread multiplier on the footprint means, drawn
            by :func:`make_threads` to realise across-thread variance.
    """

    def __init__(
        self,
        model: FootprintModel,
        thread_id: int,
        l2: CacheGeometry,
        l3: CacheGeometry,
        seed: int = 0,
        spatial_scale: float = 1.0,
    ) -> None:
        if spatial_scale <= 0:
            raise ValueError("spatial_scale must be positive")
        self.model = model
        self.thread_id = thread_id
        self.l2 = l2
        self.l3 = l3
        self.spatial_scale = spatial_scale
        self._rng = np.random.default_rng(
            (seed, thread_id, zlib.crc32(model.name.encode()))
        )
        # The per-thread odd offset de-aligns address spaces so different
        # threads' regions start in different cache sets — as real virtual
        # address spaces do.  Without it every thread's warm conflict
        # classes would collide on the same sets and pooled capacity could
        # never absorb them.
        self._private_base = (thread_id + 1) * THREAD_STRIDE + thread_id * 977
        self._epoch = 0
        self._cold_cursor = self._private_base + _COLD_OFFSET
        self._warm_cursor = 0
        self._hot_cursor = 0
        self._size_phase = 0.0
        self._cold_phase = 1.0

        # Warm conflict classes (see module docstring).  The class sweep
        # length targets ~3/4 of the class's L3 way capacity and at least
        # 1.5x the L2 ways so reuse always misses L2 at the mean footprint.
        l3_sets_per_l2_set = max(1, l3.sets // l2.sets)
        class_l3_capacity = l3.ways * l3_sets_per_l2_set
        self._class_target = max(int(1.5 * l2.ways),
                                 int(0.75 * class_l3_capacity))

    # -- epoch sampling ------------------------------------------------------
    #
    # Programs execute in *phases*: a benchmark dwells in a behaviour for a
    # few hundred million cycles, then switches — its footprint surges or
    # collapses, its streaming traffic bursts or pauses.  Phases are what
    # make the best cache topology change over time (the paper's Figure
    # 2(a)); independent per-epoch noise alone averages out across 16 cores
    # and never changes the topology ranking.  The phase offsets are scaled
    # by the benchmark's own Table 4 temporal sigma, so the stationary
    # variation of the measured footprint still matches the table.

    _SIZE_PHASES = (-1.5, 0.0, 1.5)
    _COLD_PHASES = (0.3, 1.0, 2.2)
    _PHASE_SWITCH_PROBABILITY = 1.0 / 3.0

    def _advance_phase(self) -> None:
        rng = self._rng
        if rng.random() < self._PHASE_SWITCH_PROBABILITY:
            self._size_phase = self._SIZE_PHASES[
                rng.choice(3, p=[0.25, 0.5, 0.25])
            ]
        if rng.random() < self._PHASE_SWITCH_PROBABILITY:
            self._cold_phase = self._COLD_PHASES[
                rng.choice(3, p=[0.25, 0.5, 0.25])
            ]

    def _sample_footprints(self) -> tuple:
        """Draw this epoch's (hot_lines, warm_lines) from the model.

        Table 4's ACF values are *measured utilisations*, which saturate as
        true demand approaches and exceeds capacity (a vector of n bits
        tracking d active lines shows ``u = 1 - exp(-d/n)`` of its bits
        set).  The generator therefore inverts that curve: an ACF of 0.74
        means the benchmark actively uses about ``-ln(1 - 0.74) = 1.35``
        slices' worth of lines.  This is what gives high-ACF benchmarks
        genuine over-capacity demand — the demand that merging slices
        relieves — while low-ACF benchmarks really do fit.
        """
        model, rng = self.model, self._rng
        f2 = (model.l2_acf * self.spatial_scale
              + self._size_phase * model.l2_sigma_t
              + rng.normal(0.0, 0.3 * model.l2_sigma_t))
        f3 = (model.l3_acf * self.spatial_scale
              + self._size_phase * model.l3_sigma_t
              + rng.normal(0.0, 0.3 * model.l3_sigma_t))
        demand2 = -math.log(1.0 - float(np.clip(f2, 0.02, 0.93)))
        demand3 = -math.log(1.0 - float(np.clip(f3, 0.02, 0.93)))
        hot = max(4, int(round(demand2 * self.l2.lines)))
        total = max(hot + 4, int(round(demand3 * self.l3.lines)))
        warm = total - hot
        return hot, warm

    def _warm_lines(self, n_warm: int, warm_size: int) -> np.ndarray:
        """Conflict-class loop over the warm set (see module docstring).

        Each class is swept cyclically — the loop-like pattern that gives
        real working sets their capacity *cliff*: a class that fits its L3
        ways hits on every revisit, a class that overflows misses on every
        revisit (the LRU worst case).  A small random sprinkle
        (``REUSE_SPRINKLE``) revisits arbitrary warm lines out of order;
        under overflow those touches still find the currently-resident
        subset, which is what keeps the ACFV demand signal alive when the
        loop itself never hits.
        """
        n_classes = max(1, round(warm_size / self._class_target))
        n_classes = min(n_classes, self.l2.sets)
        per_class = max(1, warm_size // n_classes)
        base = self._private_base + _WARM_OFFSET
        k = self._warm_cursor + np.arange(n_warm)
        self._warm_cursor += n_warm
        class_index = k % n_classes
        sweep_index = (k // n_classes) % per_class
        sprinkle = self._rng.random(n_warm) < REUSE_SPRINKLE
        n_sprinkle = int(sprinkle.sum())
        if n_sprinkle:
            sweep_index = sweep_index.copy()
            sweep_index[sprinkle] = self._rng.integers(0, per_class,
                                                       size=n_sprinkle)
        # Lines of class c: base + c + j * l2.sets — one L2 set per class,
        # spread over l3.sets / l2.sets L3 sets.
        return base + class_index + sweep_index * self.l2.sets

    # -- trace generation ------------------------------------------------------

    def generate(self, accesses: int) -> EpochTrace:
        """Produce the next epoch's trace of ``accesses`` references."""
        if accesses <= 0:
            raise ValueError("accesses must be positive")
        model, rng = self.model, self._rng
        self._advance_phase()
        hot_size, warm_size = self._sample_footprints()

        # Probability of a warm reference: enough to sweep the warm set
        # about twice per epoch so every warm line is reused (registering in
        # the L3 footprint), bounded so the hot set still dominates.
        p_cold = min(0.48, model.cold_fraction * self._cold_phase)
        p_shared = model.shared_fraction
        p_warm = min(0.5, max(0.10, 2.0 * warm_size / accesses)) if warm_size else 0.0
        p_hot = max(0.0, 1.0 - p_cold - p_shared - p_warm)

        categories = rng.choice(
            4, size=accesses, p=_normalised([p_hot, p_warm, p_cold, p_shared])
        )
        lines = np.empty(accesses, dtype=np.int64)

        drift_lines = int(self._epoch * model.drift * hot_size)
        hot_base = self._private_base + drift_lines

        hot_mask = categories == 0
        n_hot = int(hot_mask.sum())
        if n_hot:
            # Loop over the hot set (capacity cliff at the L2 slice size)
            # with a random sprinkle that keeps reuse visible to the ACFVs
            # even when the loop overflows and stops hitting.
            positions = (self._hot_cursor + np.arange(n_hot)) % hot_size
            self._hot_cursor += n_hot
            sprinkle = rng.random(n_hot) < REUSE_SPRINKLE
            n_sprinkle = int(sprinkle.sum())
            if n_sprinkle:
                positions[sprinkle] = rng.integers(0, hot_size, size=n_sprinkle)
            lines[hot_mask] = hot_base + positions

        warm_mask = categories == 1
        n_warm = int(warm_mask.sum())
        if n_warm:
            lines[warm_mask] = self._warm_lines(n_warm, warm_size)

        cold_mask = categories == 2
        n_cold = int(cold_mask.sum())
        if n_cold:
            lines[cold_mask] = self._cold_cursor + np.arange(n_cold)
            self._cold_cursor += n_cold

        shared_mask = categories == 3
        n_shared = int(shared_mask.sum())
        if n_shared:
            shared_size = max(4, int(round(self.model.l2_acf * self.l2.lines)))
            lines[shared_mask] = SHARED_BASE + rng.integers(0, shared_size, size=n_shared)

        writes = rng.random(accesses) < model.write_ratio
        if model.mean_gap > 0:
            gaps = (rng.geometric(1.0 / (1.0 + model.mean_gap), size=accesses)
                    - 1).astype(np.int32)
        else:
            # Same dtype as the geometric branch: downstream consumers (the
            # batch engine's vector sums, checkpoint digests of traces) must
            # not see the gap dtype flip with the workload model.
            gaps = np.zeros(accesses, dtype=np.int32)
        self._epoch += 1
        return EpochTrace(lines=lines, writes=writes, gaps=gaps)


def make_threads(
    model: FootprintModel,
    n_threads: int,
    l2: CacheGeometry,
    l3: CacheGeometry,
    seed: int = 0,
) -> list:
    """Build the thread set of a multithreaded benchmark.

    Per-thread footprint scales are drawn so that the across-thread standard
    deviation of the (mean) footprints matches ``model.spatial_sigma``, the
    quantity the paper reports as sigma_s in Table 4.
    """
    if n_threads <= 0:
        raise ValueError("n_threads must be positive")
    rng = np.random.default_rng((seed, zlib.crc32(model.name.encode())))
    mean_acf = (model.l2_acf + model.l3_acf) / 2.0
    rel_sigma = model.spatial_sigma / mean_acf if mean_acf else 0.0
    scales = np.clip(rng.normal(1.0, rel_sigma, size=n_threads), 0.25, 2.5)
    return [
        SyntheticThread(model, tid, l2, l3, seed=seed, spatial_scale=float(s))
        for tid, s in enumerate(scales)
    ]


def _normalised(probabilities: list) -> list:
    total = sum(probabilities)
    if total <= 0:
        raise ValueError("at least one category must have positive probability")
    return [p / total for p in probabilities]
