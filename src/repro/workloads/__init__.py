"""Workload substrate: synthetic SPEC CPU 2006 / PARSEC reference streams.

The paper drives a full-system simulator with SPEC CPU 2006 (reference
inputs) and PARSEC (simlarge).  Those binaries and traces are unavailable, so
this package provides parameterised synthetic address-stream models whose
active cache footprints (ACFs) are calibrated to the per-benchmark values of
the paper's Table 4 — see DESIGN.md for why that substitution preserves the
behaviour MorphCache depends on.

Public API:

- :class:`~repro.workloads.trace.EpochTrace` — one epoch of line-granular
  memory references for one thread.
- :class:`~repro.workloads.synthetic.FootprintModel` /
  :class:`~repro.workloads.synthetic.SyntheticThread` — the reuse model.
- :mod:`~repro.workloads.spec` — the 29 SPEC benchmark models (Table 4 left).
- :mod:`~repro.workloads.parsec` — the 12 PARSEC models (Table 4 right).
- :mod:`~repro.workloads.mixes` — the 12 multiprogrammed mixes (Table 5).
"""

from repro.workloads.trace import EpochTrace, interleave_round_robin
from repro.workloads.synthetic import FootprintModel, SyntheticThread
from repro.workloads.spec import SPEC_BENCHMARKS, SpecBenchmark, spec_benchmark
from repro.workloads.parsec import PARSEC_BENCHMARKS, ParsecBenchmark, parsec_benchmark
from repro.workloads.mixes import MIXES, Mix, mix_by_name
from repro.workloads.tracefile import (
    RecordedThread,
    load_traces,
    record_workload,
    recorded_threads,
    save_traces,
)

__all__ = [
    "EpochTrace",
    "interleave_round_robin",
    "FootprintModel",
    "SyntheticThread",
    "SPEC_BENCHMARKS",
    "SpecBenchmark",
    "spec_benchmark",
    "PARSEC_BENCHMARKS",
    "ParsecBenchmark",
    "parsec_benchmark",
    "MIXES",
    "Mix",
    "mix_by_name",
    "RecordedThread",
    "save_traces",
    "load_traces",
    "record_workload",
    "recorded_threads",
]
