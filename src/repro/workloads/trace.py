"""Trace representation for the epoch-driven simulator.

A trace is the unit the CMP engine consumes: for each thread and epoch, a
sequence of line-granular memory references together with the number of
non-memory instructions issued since the previous reference (the "gap").
Traces are stored as parallel numpy arrays because the generators produce
hundreds of thousands of references per epoch and per-element Python objects
would dominate memory and time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np


@dataclass
class EpochTrace:
    """One epoch of memory references for a single thread.

    Attributes:
        lines: int64 array of line addresses (byte address >> 6).
        writes: bool array; True where the reference is a store.
        gaps: int32 array of non-memory instructions preceding each
            reference.  Instructions executed in the epoch are
            ``gaps.sum() + len(lines)``.
    """

    lines: np.ndarray
    writes: np.ndarray
    gaps: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.lines) == len(self.writes) == len(self.gaps)):
            raise ValueError("trace arrays must have equal length")

    def __len__(self) -> int:
        return len(self.lines)

    @property
    def instructions(self) -> int:
        """Total instructions represented by this trace."""
        return int(self.gaps.sum()) + len(self.lines)

    @property
    def unique_lines(self) -> int:
        """Number of distinct lines referenced (the oracle epoch footprint)."""
        return len(np.unique(self.lines))

    def __iter__(self) -> Iterator[Tuple[int, bool, int]]:
        lines, writes, gaps = self.lines, self.writes, self.gaps
        for i in range(len(lines)):
            yield int(lines[i]), bool(writes[i]), int(gaps[i])

    @staticmethod
    def concatenate(traces: Sequence["EpochTrace"]) -> "EpochTrace":
        """Join several traces of the same thread end to end."""
        if not traces:
            raise ValueError("need at least one trace")
        return EpochTrace(
            lines=np.concatenate([t.lines for t in traces]),
            writes=np.concatenate([t.writes for t in traces]),
            gaps=np.concatenate([t.gaps for t in traces]),
        )


def interleave_round_robin(traces: Sequence[EpochTrace]) -> List[Tuple[int, int, bool, int]]:
    """Merge per-thread traces into one global order.

    Returns a list of ``(thread_id, line, is_write, gap)`` tuples obtained by
    taking one reference from each thread in turn.  This approximates the
    cores progressing at equal rates, which is how the shared cache levels
    see interleaved request streams in the paper's simulator.  Threads with
    shorter traces simply finish early.
    """
    order: List[Tuple[int, int, bool, int]] = []
    longest = max((len(t) for t in traces), default=0)
    for i in range(longest):
        for tid, trace in enumerate(traces):
            if i < len(trace):
                order.append(
                    (tid, int(trace.lines[i]), bool(trace.writes[i]), int(trace.gaps[i]))
                )
    return order
