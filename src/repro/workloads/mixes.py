"""The 12 multiprogrammed workload mixes of the paper's Table 5.

Each mix binds 16 single-threaded SPEC CPU 2006 benchmarks one-to-one onto
the 16 cores.  The ``(c0, c1, c2, c3)`` type annotation counts how many
benchmarks of each ACF class the mix contains (see
:mod:`repro.workloads.spec` for the class semantics); the counts are
validated against the benchmark table at import time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.spec import SpecBenchmark, class_counts, spec_benchmark


@dataclass(frozen=True)
class Mix:
    """One Table 5 workload mix: a name, its class-type vector, 16 benchmarks."""

    name: str
    type_counts: Tuple[int, int, int, int]
    benchmark_names: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.benchmark_names) != 16:
            raise ValueError(f"{self.name}: a mix must have 16 benchmarks")
        actual = class_counts(self.benchmark_names)
        if actual != self.type_counts:
            raise ValueError(
                f"{self.name}: class counts {actual} do not match declared "
                f"type {self.type_counts}"
            )

    @property
    def benchmarks(self) -> List[SpecBenchmark]:
        """The resolved benchmark objects, in core order."""
        return [spec_benchmark(name) for name in self.benchmark_names]


def _mix(name: str, counts: Tuple[int, int, int, int], names: str) -> Mix:
    return Mix(
        name=name,
        type_counts=counts,
        benchmark_names=tuple(n.strip() for n in names.split(",")),
    )


#: Table 5, verbatim (using the paper's short benchmark aliases).
MIXES: List[Mix] = [
    _mix("MIX 01", (0, 0, 10, 6),
         "calculix,bwaves,leslie,namd,sjeng,bzip2,povray,soplex,"
         "cactus,tonto,xalanc,zeusmp,dealII,gcc,gobmk,h264"),
    _mix("MIX 02", (0, 4, 6, 6),
         "dealII,gcc,leslie,namd,sjeng,zeusmp,bzip2,calculix,"
         "gobmk,h264,gomacs,hmmer,wrf,milc,tonto,xalanc"),
    _mix("MIX 03", (0, 8, 4, 4),
         "gromacs,hmmer,mcf,sphinx,wrf,astar,milc,omnetpp,"
         "namd,cactus,gobmk,soplex,gcc,calculix,h264,tonto"),
    _mix("MIX 04", (0, 8, 8, 0),
         "gromacs,hmmer,mcf,sphinx,wrf,astar,milc,omnetpp,"
         "bwaves,namd,leslie,sjeng,zeusmp,bzip2,povray,soplex"),
    _mix("MIX 05", (2, 2, 6, 6),
         "gamess,libm,sphinx,astar,bwaves,namd,sjeng,gobmk,"
         "povray,soplex,dealII,gcc,calculix,h264,tonto,xalanc"),
    _mix("MIX 06", (2, 6, 2, 6),
         "dealII,libq,perl,gromacs,hmmer,mcf,wrf,astar,"
         "milc,sjeng,gobmk,gcc,calculix,h264,tonto,xalanc"),
    _mix("MIX 07", (4, 0, 6, 6),
         "gcc,libm,libq,perl,cactus,zeusmp,bzip2,gobmk,"
         "povray,soplex,dealII,gamess,calculix,h264,tonto,xalanc"),
    _mix("MIX 08", (4, 4, 4, 4),
         "hmmer,mcf,libq,wrf,omnetpp,Gems,bwaves,bzip2,"
         "gobmk,perl,povray,gcc,calculix,libm,h264,xalanc"),
    _mix("MIX 09", (4, 4, 8, 0),
         "Gems,gamess,libm,libq,astar,gromacs,hmmer,milc,"
         "bwaves,leslie,sjeng,povray,gobmk,soplex,bzip2,zeusmp"),
    _mix("MIX 10", (4, 6, 0, 6),
         "perl,hmmer,mcf,wrf,astar,milc,Gems,omnetpp,"
         "dealII,libm,gcc,calculix,h264,gamess,tonto,xalanc"),
    _mix("MIX 11", (4, 8, 0, 4),
         "libm,libq,gromacs,hmmer,mcf,sphinx,wrf,gamess,"
         "astar,milc,omnetpp,gcc,Gems,h264,tonto,xalanc"),
    _mix("MIX 12", (4, 8, 4, 0),
         "gamess,libm,libq,perl,gromacs,hmmer,mcf,sphinx,"
         "wrf,astar,milc,omnetpp,sjeng,zeusmp,gobmk,soplex"),
]

_BY_NAME: Dict[str, Mix] = {mix.name: mix for mix in MIXES}


def mix_by_name(name: str) -> Mix:
    """Look up a mix by its Table 5 name, e.g. ``"MIX 01"`` (or ``"01"``)."""
    if name in _BY_NAME:
        return _BY_NAME[name]
    padded = f"MIX {name.strip().zfill(2)}"
    if padded in _BY_NAME:
        return _BY_NAME[padded]
    raise ValueError(f"unknown mix {name!r}; choose from {sorted(_BY_NAME)}")
