"""Trace file I/O: record and replay memory reference traces.

The simulator is trace-driven; nothing ties it to the synthetic generators.
This module provides a compact on-disk format (compressed ``.npz``, one
array triple per thread and epoch) so users can

- capture the synthetic workloads for exact replay or external analysis, or
- feed *real* traces (e.g. from Pin/DynamoRIO tooling, converted to line
  addresses) through the MorphCache substrate.

A trace file stores, per (thread, epoch): ``lines`` (int64), ``writes``
(bool) and ``gaps`` (int32), exactly the :class:`EpochTrace` arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.workloads.trace import EpochTrace

_FORMAT_KEY = "__tracefile_format__"
_FORMAT_VERSION = 1


def save_traces(path, traces: Dict[int, Sequence[EpochTrace]]) -> None:
    """Write per-thread epoch traces to ``path`` (.npz, compressed).

    Args:
        path: destination file.
        traces: thread id -> list of that thread's epoch traces.
    """
    arrays = {_FORMAT_KEY: np.array([_FORMAT_VERSION])}
    for thread_id, epochs in traces.items():
        for epoch_index, trace in enumerate(epochs):
            prefix = f"t{thread_id}_e{epoch_index}"
            arrays[f"{prefix}_lines"] = trace.lines
            arrays[f"{prefix}_writes"] = trace.writes
            arrays[f"{prefix}_gaps"] = trace.gaps
    np.savez_compressed(path, **arrays)


def load_traces(path) -> Dict[int, List[EpochTrace]]:
    """Read a trace file back into per-thread epoch traces."""
    with np.load(path) as data:
        if _FORMAT_KEY not in data or int(data[_FORMAT_KEY][0]) != _FORMAT_VERSION:
            raise ValueError(f"{path} is not a version-{_FORMAT_VERSION} trace file")
        keys = [key for key in data.files if key.endswith("_lines")]
        result: Dict[int, List[EpochTrace]] = {}
        for key in keys:
            prefix = key[: -len("_lines")]
            thread_part, epoch_part = prefix.split("_")
            thread_id, epoch_index = int(thread_part[1:]), int(epoch_part[1:])
            result.setdefault(thread_id, [])
            epochs = result[thread_id]
            while len(epochs) <= epoch_index:
                epochs.append(None)  # type: ignore[arg-type]
            epochs[epoch_index] = EpochTrace(
                lines=data[f"{prefix}_lines"],
                writes=data[f"{prefix}_writes"],
                gaps=data[f"{prefix}_gaps"],
            )
    for thread_id, epochs in result.items():
        if any(trace is None for trace in epochs):
            raise ValueError(f"thread {thread_id} has missing epochs in {path}")
    return result


class RecordedThread:
    """Replays a recorded thread through the engine's generator protocol.

    Drop-in for :class:`~repro.workloads.synthetic.SyntheticThread`: each
    ``generate(n)`` call returns the next recorded epoch.  ``n`` must not
    exceed the recorded epoch length; shorter requests replay a prefix
    (useful for quick looks at long captures).  When the recording runs
    out, it wraps around to the first epoch.
    """

    def __init__(self, thread_id: int, epochs: Sequence[EpochTrace]) -> None:
        if not epochs:
            raise ValueError("a recorded thread needs at least one epoch")
        self.thread_id = thread_id
        self.epochs = list(epochs)
        self._cursor = 0

    def generate(self, accesses: int) -> EpochTrace:
        trace = self.epochs[self._cursor % len(self.epochs)]
        self._cursor += 1
        if accesses > len(trace):
            raise ValueError(
                f"requested {accesses} accesses but epoch holds {len(trace)}"
            )
        if accesses == len(trace):
            return trace
        return EpochTrace(
            lines=trace.lines[:accesses],
            writes=trace.writes[:accesses],
            gaps=trace.gaps[:accesses],
        )


def record_workload(workload, config, epochs: int, path,
                    seed: int = 0,
                    accesses_per_core: Optional[int] = None) -> None:
    """Capture a workload's synthetic traces to a file for replay."""
    accesses = accesses_per_core or config.accesses_per_core_per_epoch
    threads = workload.build_threads(config, seed=seed)
    captured: Dict[int, List[EpochTrace]] = {}
    for core, thread in enumerate(threads):
        if thread is None:
            continue
        captured[core] = [thread.generate(accesses) for _ in range(epochs)]
    save_traces(path, captured)


def recorded_threads(path, cores: int) -> List[Optional[RecordedThread]]:
    """Build the engine's thread list from a trace file."""
    traces = load_traces(path)
    return [
        RecordedThread(core, traces[core]) if core in traces else None
        for core in range(cores)
    ]
