"""Throughput, weighted speedup and fair speedup (Section 5.1).

- *Throughput* is the sum of per-core IPC (can be unfairly maximised by
  accelerating a small subset of applications, as the paper notes).
- *Weighted speedup* gives each application equal weight:
  ``WS = sum_i IPC_i^scheme / IPC_i^alone``.
- *Fair speedup* is the harmonic mean of the per-application speedups
  (Smith [25] in the paper), balancing fairness and performance:
  ``FS = N / sum_i (IPC_i^alone / IPC_i^scheme)``.
"""

from __future__ import annotations

from typing import Sequence


def throughput(ipcs: Sequence[float]) -> float:
    """Sum of per-core IPC."""
    return float(sum(ipcs))


def weighted_speedup(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Sum of per-application speedups relative to running alone."""
    _check(ipcs, alone_ipcs)
    return float(sum(ipc / alone for ipc, alone in zip(ipcs, alone_ipcs)))


def fair_speedup(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> float:
    """Harmonic mean of per-application speedups."""
    _check(ipcs, alone_ipcs)
    inverse_sum = sum(alone / ipc for ipc, alone in zip(ipcs, alone_ipcs))
    return len(ipcs) / inverse_sum


def _check(ipcs: Sequence[float], alone_ipcs: Sequence[float]) -> None:
    if len(ipcs) != len(alone_ipcs):
        raise ValueError("need one alone-IPC per application")
    if not ipcs:
        raise ValueError("need at least one application")
    if any(value <= 0 for value in ipcs) or any(value <= 0 for value in alone_ipcs):
        raise ValueError("IPC values must be positive")
