"""Pearson correlation, used for the Figure 5 ACFV fidelity study."""

from __future__ import annotations

import math
from typing import Sequence


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equally-long series.

    Returns 0.0 for degenerate series (constant input), which is how a
    saturated ACFV estimator shows up in the Figure 5 experiment.
    """
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two samples")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    # sqrt each variance before multiplying: the product var_x * var_y can
    # underflow to 0.0 for tiny (but nonzero) variances, which would divide
    # by zero here.  The quotient can still drift marginally outside the
    # mathematical bound when a variance sits at the denormal edge (the
    # mean-subtraction cancels catastrophically), so clamp to [-1, 1].
    r = cov / (math.sqrt(var_x) * math.sqrt(var_y))
    return max(-1.0, min(1.0, r))
