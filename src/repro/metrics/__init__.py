"""Performance metrics used throughout the paper's evaluation."""

from repro.metrics.speedups import (
    fair_speedup,
    throughput,
    weighted_speedup,
)
from repro.metrics.correlation import pearson

__all__ = ["throughput", "weighted_speedup", "fair_speedup", "pearson"]
