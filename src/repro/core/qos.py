"""QoS-aware MSAT throttling (Section 5.3).

The merge-aggressive policy can hurt individual applications while helping
the aggregate.  The paper's remedy: track each application's miss count
before and after every merging reconfiguration (two 4-byte registers per
slice).  If misses increased after a merge, throttle the MSAT *up* (raise
the high bound, lower the low bound) — moving the system toward the private
configuration that guarantees each application its fair share.  If misses
stayed flat or improved, throttle *down*, recovering aggressiveness.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable

from repro.config import MsatConfig


class MsatThrottler:
    """Holds the live MSAT bounds and adjusts them from miss feedback."""

    def __init__(self, base: MsatConfig, enabled: bool = True) -> None:
        self.base = base
        self.enabled = enabled
        self.high = base.high
        self.low = base.low
        self.throttle_ups = 0
        self.throttle_downs = 0

    @property
    def msat(self) -> MsatConfig:
        """The MSAT currently in force."""
        return replace(self.base, high=self.high, low=self.low)

    def observe_merge_outcome(
        self,
        merged_cores: Iterable[int],
        misses_before: Dict[int, int],
        misses_after: Dict[int, int],
    ) -> None:
        """Feed back one epoch of miss counts around a merge step.

        ``misses_before``/``misses_after`` map core id to the miss count of
        the epoch preceding and following the merge, for the cores whose
        slices were merged.
        """
        if not self.enabled:
            return
        cores = list(merged_cores)
        if not cores:
            return
        increased = any(
            misses_after.get(core, 0) > misses_before.get(core, 0)
            for core in cores
        )
        if increased:
            self.throttle_up()
        else:
            self.throttle_down()

    def throttle_up(self) -> None:
        """Become more conservative (toward the private configuration)."""
        step = self.base.throttle_step
        self.high = min(self.base.high_max, self.high + step)
        self.low = max(self.base.low_min, self.low - step)
        self.throttle_ups += 1

    def throttle_down(self) -> None:
        """Recover merge aggressiveness (toward the base MSAT)."""
        step = self.base.throttle_step
        self.high = max(self.base.high, self.high - step)
        self.low = min(self.base.low, self.low + step)
        self.throttle_downs += 1
