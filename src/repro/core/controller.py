"""The MorphCache controller: epoch-boundary reconfiguration.

One controller owns the ACFV bank (attached to the hierarchy as its
observer), the topology state, the decision engine and the QoS throttler.
The simulation engine calls :meth:`MorphCacheController.end_epoch` at every
reconfiguration interval; the controller

1. feeds the QoS throttler the miss deltas around last epoch's merges
   (Section 5.3, when enabled),
2. runs the decision engine against the current MSAT,
3. pushes the resulting topology into the hierarchy, and
4. resets all ACFVs (Section 2.1's staleness rule).

Every merge/split is recorded as a :class:`ReconfigEvent`; the Section 2.4
statistics (total reconfiguration count, fraction landing in asymmetric
configurations) are derived from this log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.caches.hierarchy import CacheHierarchy
from repro.config import MachineConfig, MorphConfig
from repro.core.acfv import AcfvBank
from repro.obs import metrics as obs_metrics
from repro.core.decisions import DecisionEngine
from repro.core.qos import MsatThrottler
from repro.core.topology import Group, TopologyState
from repro.resilience.guards import TopologyGuard


@dataclass(frozen=True)
class ReconfigEvent:
    """One merge or split performed at an epoch boundary."""

    epoch: int
    kind: str  # "merge" | "split"
    level: str  # "l2" | "l3"
    groups: Tuple[Group, ...]
    reason: str
    resulting_label: Optional[str]
    """The (x:y:z) label after the action, or None if asymmetric."""

    @property
    def asymmetric(self) -> bool:
        return self.resulting_label is None


class MorphCacheController:
    """Drives MorphCache reconfiguration for one CMP."""

    def __init__(
        self,
        config: MachineConfig,
        morph: Optional[MorphConfig] = None,
        shared_address_space: bool = False,
    ) -> None:
        self.config = config
        self.morph = morph or MorphConfig()
        self.shared_address_space = shared_address_space
        l2_lines = config.l2_slice.lines
        l3_lines = config.l3_slice.lines
        l2_bits = self.morph.acfv_bits or max(32, l2_lines // 2)
        l3_bits = self.morph.acfv_bits or max(32, l3_lines // 2)
        self.bank = AcfvBank(config.cores, l2_bits, l3_bits, self.morph.hash_name)
        self.topology = TopologyState(config.cores)
        self.engine = DecisionEngine(
            self.morph, l2_lines, l3_lines, shared_address_space
        )
        self.throttler = MsatThrottler(self.morph.msat, enabled=self.morph.qos)
        self.guard = TopologyGuard(
            n_slices=config.cores,
            allow_non_neighbors=self.morph.allow_non_neighbors,
        )
        self.guard.remember_good(self.topology)
        self.events: List[ReconfigEvent] = []
        self.hierarchy: Optional[CacheHierarchy] = None
        self.tracer = None
        """Optional :class:`~repro.obs.trace.TraceRecorder` installed by the
        simulation engine for the duration of a traced run.  The controller
        is the only component that must emit from *inside* the epoch
        boundary: the ACFV decision inputs are destroyed by ``reset_all``
        before the engine regains control."""
        self._epoch = 0
        self._last_misses: Dict[int, int] = {}
        self._last_merged_cores: Set[int] = set()
        self._cumulative_misses: Dict[int, int] = {c: 0 for c in range(config.cores)}

    # -- wiring ---------------------------------------------------------------

    def attach(self, hierarchy: CacheHierarchy) -> None:
        """Connect to a hierarchy: observe its events, drive its topology."""
        if hierarchy.config.cores != self.config.cores:
            raise ValueError("hierarchy and controller disagree on core count")
        self.hierarchy = hierarchy
        hierarchy.observer = self.bank
        hierarchy.set_topology(
            self.topology.groups("l2"), self.topology.groups("l3")
        )

    # -- the epoch boundary -----------------------------------------------------

    def end_epoch(self) -> List[ReconfigEvent]:
        """Reconfigure at an epoch boundary; returns this epoch's events."""
        if self.hierarchy is None:
            raise RuntimeError("controller not attached to a hierarchy")
        guard_events_before = len(self.guard.events)
        epoch_misses = self._epoch_misses()

        # QoS feedback on last epoch's merges (Section 5.3).
        if self.morph.qos and self._last_merged_cores:
            self.throttler.observe_merge_outcome(
                self._last_merged_cores, self._last_misses, epoch_misses
            )

        self.engine.set_miss_feedback(epoch_misses)

        # Guard pass 1: the *current* topology may have been corrupted since
        # the last boundary (fault injection, state corruption).  A violation
        # here rolls back to last-known-good before any decision runs.
        corrupted = self.guard.review(self.topology) is not None

        actions: List = []
        if not corrupted and self.guard.decisions_enabled:
            try:
                actions = self.engine.decide(
                    self.topology, self.bank, self.throttler.msat
                )
            except Exception as exc:  # noqa: BLE001 - routed to the ladder
                self.guard.record_failure(self.topology, exc)
                actions = []
            else:
                # Guard pass 2: reject the transition the decision pass just
                # produced if it broke an invariant, and discard its actions.
                if self.guard.review(self.topology) is not None:
                    actions = []

        new_events: List[ReconfigEvent] = []
        merged_cores: Set[int] = set()
        for kind, proposal in actions:
            if kind == "merge":
                groups: Tuple[Group, ...] = (proposal.a, proposal.b)
                merged_cores.update(proposal.a)
                merged_cores.update(proposal.b)
            else:
                groups = (proposal.group,)
            new_events.append(
                ReconfigEvent(
                    epoch=self._epoch,
                    kind=kind,
                    level=proposal.level,
                    groups=groups,
                    reason=proposal.reason,
                    resulting_label=self.topology.config_label(),
                )
            )
        # The recorded label should reflect the state after *all* of this
        # epoch's actions — recompute it once and reuse.
        final_label = self.topology.config_label()
        new_events = [
            ReconfigEvent(e.epoch, e.kind, e.level, e.groups, e.reason, final_label)
            for e in new_events
        ]
        self.events.extend(new_events)

        # The trace must capture the *triggering* decision inputs, and the
        # ACFVs are about to be reset — snapshot them here, not later.
        if self.tracer is not None and new_events:
            l2_lines = self.config.l2_slice.lines
            l3_lines = self.config.l3_slice.lines
            for event in new_events:
                cores = sorted({c for g in event.groups for c in g})
                lines = l2_lines if event.level == "l2" else l3_lines
                self.tracer.emit(
                    "reconfig",
                    epoch=event.epoch,
                    action=event.kind,
                    level=event.level,
                    groups=[sorted(g) for g in event.groups],
                    reason=event.reason,
                    label=event.resulting_label,
                    acfv_ones={str(c): self.bank.acfv(event.level, c).ones
                               for c in cores},
                    utilization={str(c): round(self.bank.group_utilization(
                        event.level, (c,), lines), 3) for c in cores},
                    epoch_misses={str(c): epoch_misses.get(c, 0)
                                  for c in cores},
                )
        reg = obs_metrics.REGISTRY
        if reg.enabled:
            for event in new_events:
                reg.counter("repro_reconfig_events_total",
                            "Merge/split decisions taken",
                            labels=("action", "level")).labels(
                    action=event.kind, level=event.level).inc()
            for guard_event in self.guard.events[guard_events_before:]:
                reg.counter("repro_guard_interventions_total",
                            "Topology-guard rollbacks/freezes/fallbacks",
                            labels=("action",)).labels(
                    action=guard_event.action).inc()

        self.hierarchy.set_topology(
            self.topology.groups("l2"), self.topology.groups("l3")
        )
        self._last_misses = epoch_misses
        self._last_merged_cores = merged_cores
        self.bank.reset_all()
        self._epoch += 1
        return new_events

    def _epoch_misses(self) -> Dict[int, int]:
        """Per-core misses accumulated since the previous epoch boundary."""
        assert self.hierarchy is not None
        current = {
            core: stats.memory_accesses
            for core, stats in self.hierarchy.stats.cores.items()
        }
        window = {
            core: current[core] - self._cumulative_misses.get(core, 0)
            for core in current
        }
        self._cumulative_misses = current
        return window

    # -- reporting ---------------------------------------------------------------

    @property
    def reconfigurations(self) -> int:
        """Total merges + splits performed (the Section 2.4 statistic)."""
        return len(self.events)

    @property
    def asymmetric_fraction(self) -> float:
        """Fraction of reconfigurations that produced an asymmetric topology."""
        if not self.events:
            return 0.0
        return sum(1 for e in self.events if e.asymmetric) / len(self.events)

    def current_label(self) -> str:
        """Human-readable topology: the (x:y:z) label or the raw groups."""
        label = self.topology.config_label()
        if label is not None:
            return label
        return (f"asymmetric L2={self.topology.groups('l2')} "
                f"L3={self.topology.groups('l3')}")
