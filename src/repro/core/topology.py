"""Cache topology state: groupings of L2 and L3 slices (Sections 2.2-2.3).

The default MorphCache policy restricts groups to aligned power-of-two runs
of neighbouring slices (private / dual / quad / oct / all-shared — the five
modes of Section 2), forming a buddy structure: a group of size ``s``
starting at base ``b`` (with ``b % s == 0``) merges only with its buddy
``(b ^ s, s)`` and splits only into its two halves.

Invariant maintained at all times: every L2 group is contained in a single
L3 group, so a merged L2 region can never exceed its backing L3 region and
inclusion is preserved (the correctness conditions of Sections 2.2/2.3).

The Section 5.5 relaxations are also supported:

- ``arbitrary sizes``: contiguous groups of any size (merging two adjacent
  groups of unequal sizes);
- ``non-neighbour groups``: arbitrary slice sets; the physical fabric then
  spans the superset of the group and remote accesses pay a distance-scaled
  latency, modelled by :meth:`TopologyState.max_span`.

The paper's ``(x:y:z)`` notation is produced by :meth:`config_label` for
symmetric topologies, and parsed by :func:`parse_config_label` to build the
static baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Group = Tuple[int, ...]


def aligned_power_of_two(group: Group) -> bool:
    """True if the group is an aligned contiguous power-of-two run."""
    size = len(group)
    if size & (size - 1):
        return False
    base = min(group)
    return base % size == 0 and tuple(sorted(group)) == tuple(range(base, base + size))


class TopologyState:
    """Mutable grouping of ``n`` slices at L2 and L3 with inclusion checks."""

    def __init__(self, n_slices: int = 16) -> None:
        if n_slices < 2 or n_slices & (n_slices - 1):
            raise ValueError(f"n_slices must be a power of two >= 2, got {n_slices}")
        self.n_slices = n_slices
        self._groups: Dict[str, List[Group]] = {
            "l2": [(i,) for i in range(n_slices)],
            "l3": [(i,) for i in range(n_slices)],
        }

    # -- queries -------------------------------------------------------------

    def groups(self, level: str) -> List[Group]:
        """The current partition at ``level``, sorted by base slice."""
        return sorted(self._groups[level], key=min)

    def group_of(self, level: str, slice_id: int) -> Group:
        for group in self._groups[level]:
            if slice_id in group:
                return group
        raise ValueError(f"slice {slice_id} not in any {level} group")

    def is_symmetric(self) -> bool:
        """True if all groups at each level have equal size."""
        return all(
            len({len(g) for g in self._groups[level]}) == 1
            for level in ("l2", "l3")
        )

    def config_label(self) -> Optional[str]:
        """The paper's ``(x:y:z)`` label, or None if asymmetric.

        ``x`` cores share an L2 slice group, ``y`` L2 groups share an L3
        group, ``z`` is the number of L3 groups.
        """
        if not self.is_symmetric():
            return None
        x = len(self._groups["l2"][0])
        l3_size = len(self._groups["l3"][0])
        y = l3_size // x
        z = len(self._groups["l3"])
        return f"({x}:{y}:{z})"

    def max_span(self, level: str) -> int:
        """Largest distance between two slices in any group (latency model
        input for the Section 5.5 non-neighbour extension)."""
        return max(max(g) - min(g) for g in self._groups[level])

    def check_inclusion(self) -> None:
        """Raise ValueError if some L2 group is not inside one L3 group."""
        l3_of: Dict[int, Group] = {}
        for group in self._groups["l3"]:
            for slice_id in group:
                l3_of[slice_id] = group
        for group in self._groups["l2"]:
            covering = {l3_of[s] for s in group}
            if len(covering) != 1:
                raise ValueError(
                    f"L2 group {group} spans L3 groups {covering}"
                )

    # -- feasibility ----------------------------------------------------------

    def are_buddies(self, a: Group, b: Group) -> bool:
        """True if ``a`` and ``b`` are buddy groups (mergeable by default)."""
        if len(a) != len(b) or not aligned_power_of_two(a) or not aligned_power_of_two(b):
            return False
        size = len(a)
        return (min(a) ^ size) == min(b)

    def are_adjacent(self, a: Group, b: Group) -> bool:
        """True if the groups are contiguous runs that touch (Section 5.5)."""
        lo_a, hi_a = min(a), max(a)
        lo_b, hi_b = min(b), max(b)
        contiguous_a = tuple(sorted(a)) == tuple(range(lo_a, hi_a + 1))
        contiguous_b = tuple(sorted(b)) == tuple(range(lo_b, hi_b + 1))
        return contiguous_a and contiguous_b and (hi_a + 1 == lo_b or hi_b + 1 == lo_a)

    def can_merge(self, level: str, a: Group, b: Group,
                  allow_arbitrary_sizes: bool = False,
                  allow_non_neighbors: bool = False) -> bool:
        """Check structural feasibility of merging two current groups.

        For L2 merges the caller must additionally guarantee the covering
        L3 groups are (or become) merged — see the controller.
        """
        groups = self._groups[level]
        if a not in groups or b not in groups or a == b:
            return False
        if self.are_buddies(a, b):
            return True
        if allow_arbitrary_sizes and self.are_adjacent(a, b):
            return True
        return bool(allow_non_neighbors)

    def can_split(self, level: str, group: Group) -> bool:
        """A group can split iff it has at least two slices."""
        return group in self._groups[level] and len(group) >= 2

    # -- mutation -------------------------------------------------------------

    def merge(self, level: str, a: Group, b: Group,
              allow_arbitrary_sizes: bool = False,
              allow_non_neighbors: bool = False) -> Group:
        """Merge two groups at ``level``; returns the new group.

        Raises ValueError if the merge is structurally infeasible or would
        break inclusion (an L2 group escaping its L3 group).
        """
        if not self.can_merge(level, a, b, allow_arbitrary_sizes, allow_non_neighbors):
            raise ValueError(f"cannot merge {a} and {b} at {level}")
        merged = tuple(sorted(a + b))
        groups = self._groups[level]
        groups.remove(a)
        groups.remove(b)
        groups.append(merged)
        try:
            self.check_inclusion()
        except ValueError:
            groups.remove(merged)
            groups.extend([a, b])
            raise
        return merged

    def split(self, level: str, group: Group) -> Tuple[Group, Group]:
        """Split a group into its two halves; returns them.

        Power-of-two groups split into buddy halves; other contiguous
        groups split down the middle.  Raises ValueError if splitting would
        break inclusion (splitting an L3 group under a merged L2 group).
        """
        if not self.can_split(level, group):
            raise ValueError(f"cannot split {group} at {level}")
        ordered = tuple(sorted(group))
        half = len(ordered) // 2
        left, right = ordered[:half], ordered[half:]
        groups = self._groups[level]
        groups.remove(group)
        groups.extend([left, right])
        try:
            self.check_inclusion()
        except ValueError:
            groups.remove(left)
            groups.remove(right)
            groups.append(group)
            raise
        return left, right

    def set_groups(self, level: str, groups: Sequence[Group]) -> None:
        """Install an arbitrary partition at ``level`` (static baselines)."""
        seen = sorted(s for g in groups for s in g)
        if seen != list(range(self.n_slices)):
            raise ValueError(f"groups {groups} do not partition the slices")
        previous = self._groups[level]
        self._groups[level] = [tuple(sorted(g)) for g in groups]
        try:
            self.check_inclusion()
        except ValueError:
            self._groups[level] = previous
            raise


def parse_config_label(label: str, n_slices: int = 16) -> Tuple[List[Group], List[Group]]:
    """Build (l2_groups, l3_groups) from the paper's ``(x:y:z)`` notation.

    ``x`` = cores per L2 group, ``y`` = L2 groups per L3 group, ``z`` = number
    of L3 groups; ``x * y * z`` must equal the slice count.  Examples for 16
    slices: ``(16:1:1)`` all shared, ``(1:1:16)`` all private, ``(1:16:1)``
    private L2 with one shared L3.
    """
    cleaned = label.strip().lstrip("(").rstrip(")")
    parts = cleaned.split(":")
    if len(parts) != 3:
        raise ValueError(f"bad config label {label!r}")
    x, y, z = (int(p) for p in parts)
    if x <= 0 or y <= 0 or z <= 0 or x * y * z != n_slices:
        raise ValueError(
            f"label {label!r} implies {x * y * z} slices, machine has {n_slices}"
        )
    l2_groups = [tuple(range(i * x, (i + 1) * x)) for i in range(y * z)]
    l3_size = x * y
    l3_groups = [tuple(range(i * l3_size, (i + 1) * l3_size)) for i in range(z)]
    return l2_groups, l3_groups
