"""Active Cache Footprint Vectors (Section 2.1).

An ACFV is a small bit vector summarising the active footprint of a thread
in one cache slice's worth of capacity.  Bits are set when a tag is brought
in or reused and cleared when the hashed victim tag is replaced; all vectors
are reset at each reconfiguration interval so stale data stops counting.

The paper states "there is an ACFV per-core, per cache slice".  In the
private base topology those coincide; this implementation keeps one ACFV per
*core* per level, updated by that core's fills/hits and its lines' evictions
regardless of which physical slice of a merged group the line lands in.
That realises both properties the paper relies on:

(i) ``|ACFV|`` tracks the core's active utilisation in slice-capacity
    units, and
(ii) the common 1's of two cores' ACFVs measure their data sharing.

For decision-making the raw population count is *linearised*: with ``F``
active lines hashed into ``n`` bits the expected population is
``n * (1 - (1 - 1/n)^F)``, which saturates for ``F >> n``.  Inverting that
curve (``F_est = -n * ln(1 - ones/n)``) recovers a scale-independent
footprint estimate, so the MSAT thresholds keep their "percent of slice
capacity" meaning at every simulator scale.  Figure 5's correlation study
uses the raw count, exactly as the hardware would.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.caches.hierarchy import HierarchyObserver
from repro.core.hashing import make_hash


class Acfv:
    """One active-cache-footprint bit vector."""

    def __init__(self, bits: int, hash_name: str = "xor") -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        self.hash = make_hash(hash_name, bits)
        self._vector = 0

    def set(self, tag: int) -> None:
        """Mark the hashed tag active (new or reused data)."""
        self._vector |= 1 << self.hash(tag)

    def clear(self, tag: int) -> None:
        """Mark the hashed tag inactive (data replaced)."""
        self._vector &= ~(1 << self.hash(tag))

    def reset(self) -> None:
        """Zero the vector (start of a reconfiguration interval)."""
        self._vector = 0

    def flip(self, bit: int) -> None:
        """Invert one bit in place (fault injection: a soft error in the
        footprint-tracking SRAM)."""
        if not 0 <= bit < self.bits:
            raise ValueError(f"bit {bit} out of range for {self.bits}-bit vector")
        self._vector ^= 1 << bit

    @property
    def ones(self) -> int:
        """``|ACFV|`` — the population count."""
        return self._vector.bit_count()

    @property
    def fraction(self) -> float:
        """Fraction of bits set."""
        return self.ones / self.bits

    def estimated_lines(self) -> float:
        """Linearised footprint estimate in cache lines.

        Inverts the expected-population curve; saturated vectors (all ones)
        estimate 3x the vector length, the point where the curve becomes
        uninformative.
        """
        if self.ones >= self.bits:
            return 3.0 * self.bits
        return -self.bits * math.log(1.0 - self.ones / self.bits)

    def overlap_ones(self, other: "Acfv") -> int:
        """Number of common 1's with another vector (data-sharing signal)."""
        return (self._vector & other._vector).bit_count()

    def overlap_fraction(self, other: "Acfv") -> float:
        """Data-sharing evidence: excess common 1's over chance, as a
        fraction of the smaller population.

        Two *independent* footprints hashed into n bits still share
        ``ones_a * ones_b / n`` bits in expectation; small vectors would
        otherwise read random collisions as data sharing.  Only the excess
        above that baseline counts.
        """
        smaller = min(self.ones, other.ones)
        if smaller == 0:
            return 0.0
        expected_random = self.ones * other.ones / self.bits
        max_excess = smaller - expected_random
        if max_excess <= 0:
            return 0.0  # saturated vectors carry no sharing information
        excess = self.overlap_ones(other) - expected_random
        return max(0.0, excess / max_excess)

    def as_int(self) -> int:
        """The raw bit vector (test helper)."""
        return self._vector


class AcfvBank(HierarchyObserver):
    """Per-core, per-level ACFVs attached to a cache hierarchy.

    The bank implements the hierarchy's observer interface: fills and hits
    set bits in the acting core's vector, evictions clear bits in the
    evicted line's owner's vector.
    """

    def __init__(self, n_cores: int, l2_bits: int, l3_bits: int,
                 hash_name: str = "xor",
                 clear_levels: Optional[Sequence[str]] = ()) -> None:
        if n_cores <= 0:
            raise ValueError("n_cores must be positive")
        self.n_cores = n_cores
        self.l2_bits = l2_bits
        self.l3_bits = l3_bits
        self.clear_levels = frozenset(clear_levels or ())
        self.vectors: Dict[str, List[Acfv]] = {
            "l2": [Acfv(l2_bits, hash_name) for _ in range(n_cores)],
            "l3": [Acfv(l3_bits, hash_name) for _ in range(n_cores)],
        }

    # -- HierarchyObserver hooks -------------------------------------------
    #
    # The paper defines the ACF as "the set of unique cache lines
    # referenced by the thread in that epoch", i.e. its active working set,
    # and resets the vectors every reconfiguration interval so stale data
    # stops counting.  This bank realises that definition directly:
    #
    # - a *hit* sets the referenced tag's bit — reuse is the evidence a
    #   line belongs to the active footprint.  An L2 hit also marks the L3
    #   vector: by inclusion the L3 copy is part of the thread's L3-level
    #   footprint (this is what makes Table 4's L3 ACFs include the
    #   L2-resident hot set);
    # - a plain fill does not count until the line proves reuse —
    #   streaming data is occupancy, not footprint (the paper's "mere
    #   presence of a cache block ... does not guarantee active usage");
    # - bits accumulate over the epoch, so a thread whose working set
    #   exceeds its slice registers its *full* demand as resident lines
    #   rotate — which is precisely what makes capacity starvation read as
    #   high utilisation for the condition (i) donor/recipient contrast.
    #   Staleness is handled by the epoch reset.  The paper's continuous
    #   eviction-time clear (available via ``clear_levels``) would instead
    #   track the *resident* reused subset; with decisions taken only at
    #   epoch boundaries, the accumulated epoch working set is the demand
    #   signal the merge conditions need — clearing erases the evidence of
    #   over-capacity demand exactly for the threads merging would help.

    def on_hit(self, level: str, slice_id: int, core: int, tag: int) -> None:
        self.vectors[level][core].set(tag)
        if level == "l2":
            self.vectors["l3"][core].set(tag)

    def on_fill(self, level: str, slice_id: int, core: int, tag: int) -> None:
        """Fills do not count until the line proves reuse with a hit."""

    def on_evict(self, level: str, slice_id: int, tag: int,
                 owner: Optional[int] = None) -> None:
        if level not in self.clear_levels:
            return
        target = owner if owner is not None else slice_id
        if 0 <= target < self.n_cores:
            self.vectors[level][target].clear(tag)

    # -- queries used by the decision engine --------------------------------

    def acfv(self, level: str, core: int) -> Acfv:
        return self.vectors[level][core]

    def group_utilization(self, level: str, cores: Sequence[int],
                          slice_lines: int) -> float:
        """Active utilisation of a slice group, in percent.

        Juxtaposes the member cores' (linearised) footprint estimates over
        the group's summed capacity (the Section 2.2 rule for merged
        slices), then maps the demand back through the saturation curve
        ``u = 1 - exp(-demand / capacity)`` — the fraction of bits a
        one-bit-per-line vector would show.  This is the scale on which the
        paper's MSAT of (60, 30) operates and on which Table 4 reports its
        ACFs: 60 % utilisation corresponds to a demand of ~0.92 slices,
        100 % is unreachable (demand has saturated the slice).
        """
        if not cores:
            raise ValueError("group must contain at least one core")
        estimated = sum(self.vectors[level][c].estimated_lines() for c in cores)
        capacity = len(cores) * slice_lines
        return 100.0 * (1.0 - math.exp(-estimated / capacity))

    def overlap(self, level: str, cores_a: Sequence[int],
                cores_b: Sequence[int]) -> float:
        """Peak pairwise overlap fraction between two groups' cores."""
        best = 0.0
        vectors = self.vectors[level]
        for a in cores_a:
            for b in cores_b:
                best = max(best, vectors[a].overlap_fraction(vectors[b]))
        return best

    def reset_all(self) -> None:
        """Reset every vector (epoch boundary, Section 2.1)."""
        for level_vectors in self.vectors.values():
            for vector in level_vectors:
                vector.reset()
