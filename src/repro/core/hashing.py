"""Hardware hash functions for indexing ACFVs (Section 2.1, Figure 5).

The paper evaluates two efficient hardware hashes of the cache tag:

- an XOR hash — modelled here as XOR-folding: the tag is cut into
  ``log2(bits)``-wide chunks that are XOR-ed together, a standard
  gate-cheap mixing network (Ramakrishna et al. [22] in the paper);
- a modulo hash — the tag modulo the vector length, i.e. simply the
  low-order tag bits when the length is a power of two.

Figure 5 shows XOR tracking an oracle footprint estimator noticeably better
than modulo at small vector sizes, because modulo of sequentially-strided
tags aliases whole regions onto few bits.
"""

from __future__ import annotations


class XorFoldHash:
    """XOR-fold a tag into an index in ``[0, bits)``."""

    name = "xor"

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits
        # Fold width: enough bits to cover the range; non-power-of-two
        # vector lengths fold at the next power of two and reduce modulo.
        self._width = max(1, (bits - 1).bit_length())
        self._mask = (1 << self._width) - 1

    def __call__(self, tag: int) -> int:
        value = tag
        folded = 0
        while value:
            folded ^= value & self._mask
            value >>= self._width
        return folded % self.bits


class ModuloHash:
    """Index a tag by ``tag % bits`` (low-order bits for powers of two)."""

    name = "modulo"

    def __init__(self, bits: int) -> None:
        if bits <= 0:
            raise ValueError("bits must be positive")
        self.bits = bits

    def __call__(self, tag: int) -> int:
        return tag % self.bits


def make_hash(name: str, bits: int):
    """Instantiate a hash function by configuration name."""
    if name == "xor":
        return XorFoldHash(bits)
    if name == "modulo":
        return ModuloHash(bits)
    raise ValueError(f"unknown hash {name!r}")
