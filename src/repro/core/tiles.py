"""Tile-based scaling beyond 16 cores (Section 5.5).

The paper: "higher core counts in a CMP can effectively exploit the
advantages of MorphCache by using a tile-based architecture, where each
tile of at most 16 cores would use a cache hierarchy managed as a
MorphCache, while the tiles themselves would be connected using a more
scalable interconnection network.  Threads that share code or data would be
scheduled on the cores within a tile."

:class:`TiledMorphCache` realises exactly that: ``n_tiles`` independent
16-core MorphCache CMPs, each with its own hierarchy, ACFV bank and
controller.  A workload of ``n_tiles * 16`` threads is partitioned across
tiles by a scheduler hook (contiguous blocks by default — the paper's
"schedule sharers together" policy for multithreaded workloads falls out of
block assignment because sharers are adjacent thread ids).  Cross-tile
traffic is not cached on-chip at all in this model: a tile miss goes to
memory, which is conservative (tiles never steal each other's capacity —
the design point the paper argues for).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.caches.hierarchy import CacheHierarchy
from repro.config import MachineConfig, MorphConfig
from repro.core.controller import MorphCacheController


class TiledMorphCache:
    """Several MorphCache tiles behind one engine-protocol facade.

    Global core ids ``0 .. n_tiles * tile_config.cores - 1`` map onto
    (tile, local core) pairs via the scheduler function; each tile is a
    fully independent MorphCache system.
    """

    label = "tiled-morphcache"

    def __init__(
        self,
        tile_config: MachineConfig,
        n_tiles: int,
        morph: Optional[MorphConfig] = None,
        shared_address_space: bool = False,
        scheduler: Optional[Callable[[int], int]] = None,
    ) -> None:
        if n_tiles <= 0:
            raise ValueError("n_tiles must be positive")
        if tile_config.cores > 16:
            raise ValueError(
                "a MorphCache tile holds at most 16 cores (Section 5.5); "
                f"got {tile_config.cores}"
            )
        self.tile_config = tile_config
        self.n_tiles = n_tiles
        self.total_cores = n_tiles * tile_config.cores
        scheduler = scheduler or (lambda core: core // tile_config.cores)
        self.hierarchies: List[CacheHierarchy] = []
        self.controllers: List[MorphCacheController] = []
        for _ in range(n_tiles):
            hierarchy = CacheHierarchy(tile_config)
            controller = MorphCacheController(
                tile_config, morph or MorphConfig(),
                shared_address_space=shared_address_space,
            )
            controller.attach(hierarchy)
            self.hierarchies.append(hierarchy)
            self.controllers.append(controller)
        # Resolve the scheduler to a fixed placement up front: each global
        # core gets the next free local slot of its tile, and overfull
        # tiles are rejected immediately rather than mid-simulation.
        next_slot = [0] * n_tiles
        self._placement: Dict[int, tuple] = {}
        for core in range(self.total_cores):
            tile = scheduler(core)
            if not 0 <= tile < n_tiles:
                raise ValueError(f"scheduler sent core {core} to bad tile {tile}")
            if next_slot[tile] >= tile_config.cores:
                raise ValueError(f"scheduler overfilled tile {tile}")
            self._placement[core] = (tile, next_slot[tile])
            next_slot[tile] += 1

    def placement(self, core: int) -> tuple:
        """(tile index, local core index) of a global core id."""
        try:
            return self._placement[core]
        except KeyError:
            raise ValueError(
                f"core {core} out of range 0..{self.total_cores - 1}"
            ) from None

    # -- engine protocol ------------------------------------------------------

    def access(self, core: int, line: int, write: bool) -> int:
        tile, local = self.placement(core)
        return self.hierarchies[tile].access(local, line, write).latency

    def end_epoch(self) -> str:
        labels = [controller.end_epoch() or "" for controller in self.controllers]
        tile_labels = [controller.current_label()
                       for controller in self.controllers]
        return " | ".join(tile_labels)

    def miss_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for core in range(self.total_cores):
            tile, local = self.placement(core)
            stats = self.hierarchies[tile].stats.cores[local]
            counts[core] = stats.memory_accesses
        return counts

    # -- reporting -------------------------------------------------------------

    @property
    def reconfigurations(self) -> int:
        """Total reconfigurations across all tiles."""
        return sum(controller.reconfigurations
                   for controller in self.controllers)

    def tile_labels(self) -> List[str]:
        return [controller.current_label() for controller in self.controllers]

    def check_inclusion(self) -> None:
        for hierarchy in self.hierarchies:
            hierarchy.check_inclusion()
