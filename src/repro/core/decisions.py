"""Merge/split decision engine (Sections 2.2-2.4).

Once per epoch the engine inspects the per-core ACFVs and rewrites the
topology:

Merge conditions for two neighbouring groups A, B (Section 2.2):

(i)  *capacity*: one group is highly utilised (> MSAT high) while the other
     is under-utilised (< MSAT low) — merging lets the starved group borrow
     the idle capacity without spill/receive overheads;
(ii) *sharing*: both groups are actively utilised, their threads share an
     address space, and their ACFVs overlap significantly beyond hash-
     collision chance — merging removes replication and repeated
     transfers.

Split condition for a merged group (Section 2.3): neither merge condition
holds any longer between its two halves.

Correctness couplings (Sections 2.2/2.3): an L2 merge requires the covering
L3 groups to be merged (merging L3 is always safe, so the engine merges
them alongside); an L3 split requires every covered L2 group to fit inside
the halves — L2 groups spanning the new boundary are split first when their
own split condition holds, otherwise the L3 split is abandoned.

Conflict policy (Section 2.4): when a group satisfies its split condition
but is also a candidate in a profitable merge (Figure 6), the default
*merge-aggressive* policy evaluates merges first and the merged groups are
no longer split candidates; the alternative *split-aggressive* policy does
the opposite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import MorphConfig, MsatConfig
from repro.core.acfv import AcfvBank
from repro.core.topology import Group, TopologyState


@dataclass(frozen=True)
class MergeProposal:
    """A merge the engine decided to apply."""

    level: str
    a: Group
    b: Group
    reason: str
    """``capacity`` (condition i), ``sharing`` (condition ii) or
    ``inclusion`` (an L3 merge forced by an L2 merge)."""


@dataclass(frozen=True)
class SplitProposal:
    """A split the engine decided to apply."""

    level: str
    group: Group
    reason: str = "diverged"


Action = Tuple[str, object]  # ("merge", MergeProposal) | ("split", SplitProposal)


class DecisionEngine:
    """Evaluates MSAT conditions and rewrites a :class:`TopologyState`."""

    def __init__(
        self,
        morph: MorphConfig,
        l2_slice_lines: int,
        l3_slice_lines: int,
        shared_address_space: bool,
    ) -> None:
        self.morph = morph
        self.l2_slice_lines = l2_slice_lines
        self.l3_slice_lines = l3_slice_lines
        self.shared_address_space = shared_address_space
        self.polluters: frozenset = frozenset()
        # Hysteresis state: reconfigurations cost repair evictions and
        # refetches, so a freshly merged group must live a minimum number
        # of epochs before it may split, and a freshly split pair may not
        # immediately re-merge.
        self.min_group_age = 2 if morph.hysteresis else 0
        self.remerge_cooldown = 2 if morph.hysteresis else 0
        self._epoch = 0
        self._group_birth: dict = {}
        self._split_epoch: dict = {}

    def set_miss_feedback(self, epoch_misses: Optional[dict]) -> None:
        """Feed per-core miss counts of the closing epoch.

        A core whose misses are far above the chip average *and* whose
        ACFV reads under-utilised is a polluter — a streaming thread whose
        traffic would trash any slice it is pooled with.  Such cores are
        disqualified as merge donors: their apparently idle capacity is an
        artifact of data that never gets reused.  (This is the flip side
        of the paper's observation that MorphCache "insulates any
        cache-thrashing applications as it learns the ACFs".)
        """
        if not epoch_misses or not self.morph.polluter_veto:
            self.polluters = frozenset()
            return
        counts = [m for m in epoch_misses.values() if m > 0]
        if not counts:
            self.polluters = frozenset()
            return
        mean = sum(counts) / len(counts)
        self.polluters = frozenset(
            core for core, misses in epoch_misses.items()
            if misses > 1.5 * mean
        )

    def _lines(self, level: str) -> int:
        return self.l2_slice_lines if level == "l2" else self.l3_slice_lines

    # -- conditions ----------------------------------------------------------

    def merge_reason(self, level: str, a: Group, b: Group, bank: AcfvBank,
                     msat: MsatConfig) -> Optional[str]:
        """Why groups a and b should merge, or None.

        Condition (i), capacity: one group above MSAT-high (capacity
        starved), the other below MSAT-low (a donor with genuinely little
        to lose).  The strict donor bound matters: merging with a
        *moderately* utilised partner redistributes the starved group's
        misses onto the partner (LRU shares by pressure, not fairness) and
        loses more throughput on the victim than it gains on the
        recipient.  Donors that are polluters (high miss traffic with no
        reuse — see :meth:`set_miss_feedback`) are disqualified.

        Condition (ii), sharing: both groups actively utilised (above
        MSAT-low), same address space, and collision-corrected ACFV
        overlap above the sharing threshold.
        """
        lines = self._lines(level)
        util_a = bank.group_utilization(level, a, lines)
        util_b = bank.group_utilization(level, b, lines)
        high, low = msat.high, msat.low
        donor = a if util_a <= util_b else b
        donor_pollutes = any(core in self.polluters for core in donor)
        if not donor_pollutes:
            if (util_a > high and util_b < low) or (util_b > high and util_a < low):
                return "capacity"
        # Condition (ii): the paper asks for "both highly utilised" plus
        # significant common 1's.  On this substrate per-thread utilisation
        # of a multithreaded application is moderate (each thread's slice
        # holds its private share plus a replicated copy of the shared
        # region), so the activity bound is MSAT-low: the merge targets
        # *replication*, which exists whenever both sides actively use
        # overlapping data — idle slices are still excluded.
        if (
            self.shared_address_space
            and util_a > low
            and util_b > low
            and bank.overlap(level, a, b) * 100.0 > msat.overlap
        ):
            return "sharing"
        return None

    def should_split(self, level: str, group: Group, bank: AcfvBank,
                     msat: MsatConfig) -> bool:
        """True when the merge justification between the halves is gone."""
        if len(group) < 2:
            return False
        ordered = tuple(sorted(group))
        half = len(ordered) // 2
        left, right = ordered[:half], ordered[half:]
        return self.merge_reason(level, left, right, bank, msat) is None

    # -- the per-epoch decision pass ------------------------------------------

    def decide(self, topology: TopologyState, bank: AcfvBank,
               msat: MsatConfig) -> List[Action]:
        """Apply one reconfiguration step; returns the actions performed."""
        self._epoch += 1
        actions: List[Action] = []
        if self.morph.conflict_policy == "merge":
            actions += self._merge_pass(topology, bank, msat)
            actions += self._split_pass(topology, bank, msat, frozen=_touched(actions))
        else:
            actions += self._split_pass(topology, bank, msat, frozen=set())
            actions += self._merge_pass(topology, bank, msat,
                                        frozen=_touched(actions))
        return actions

    def _merge_pass(self, topology: TopologyState, bank: AcfvBank,
                    msat: MsatConfig, frozen: Optional[set] = None) -> List[Action]:
        frozen = frozen or set()
        actions: List[Action] = []
        arbitrary = self.morph.allow_arbitrary_sizes
        non_neighbors = self.morph.allow_non_neighbors

        # L3 merges stand on their own (always safe).
        for a, b in self._candidate_pairs(topology, "l3"):
            if a in frozen or b in frozen or self._cooling(a, b):
                continue
            reason = self.merge_reason("l3", a, b, bank, msat)
            if reason and topology.can_merge("l3", a, b, arbitrary, non_neighbors):
                merged = topology.merge("l3", a, b, arbitrary, non_neighbors)
                self._group_birth[("l3", merged)] = self._epoch
                actions.append(("merge", MergeProposal("l3", a, b, reason)))

        # L2 merges may require merging the covering L3 groups first.
        for a, b in self._candidate_pairs(topology, "l2"):
            if a in frozen or b in frozen or self._cooling(a, b):
                continue
            reason = self.merge_reason("l2", a, b, bank, msat)
            if not reason or not topology.can_merge("l2", a, b, arbitrary,
                                                    non_neighbors):
                continue
            l3_a = topology.group_of("l3", min(a))
            l3_b = topology.group_of("l3", min(b))
            if l3_a != l3_b:
                if not topology.can_merge("l3", l3_a, l3_b, arbitrary,
                                          non_neighbors):
                    continue
                merged_l3 = topology.merge("l3", l3_a, l3_b, arbitrary,
                                           non_neighbors)
                self._group_birth[("l3", merged_l3)] = self._epoch
                actions.append(("merge", MergeProposal("l3", l3_a, l3_b,
                                                       "inclusion")))
            merged_l2 = topology.merge("l2", a, b, arbitrary, non_neighbors)
            self._group_birth[("l2", merged_l2)] = self._epoch
            actions.append(("merge", MergeProposal("l2", a, b, reason)))
        return actions

    def _cooling(self, a: Group, b: Group) -> bool:
        """True while a freshly split pair must wait before re-merging."""
        key = frozenset(tuple(a) + tuple(b))
        split_at = self._split_epoch.get(key)
        return split_at is not None and self._epoch - split_at < self.remerge_cooldown

    def _too_young(self, level: str, group: Group) -> bool:
        """True while a freshly merged group must live before splitting."""
        birth = self._group_birth.get((level, group))
        return birth is not None and self._epoch - birth < self.min_group_age

    def _split_pass(self, topology: TopologyState, bank: AcfvBank,
                    msat: MsatConfig, frozen: set) -> List[Action]:
        actions: List[Action] = []

        # L2 splits are always safe.
        for group in list(topology.groups("l2")):
            if group in frozen or len(group) < 2 or self._too_young("l2", group):
                continue
            if self.should_split("l2", group, bank, msat):
                left, right = topology.split("l2", group)
                self._split_epoch[frozenset(group)] = self._epoch
                actions.append(("split", SplitProposal("l2", group)))

        # L3 splits require the covered L2 groups not to span the boundary.
        for group in list(topology.groups("l3")):
            if group in frozen or len(group) < 2 or self._too_young("l3", group):
                continue
            if not self.should_split("l3", group, bank, msat):
                continue
            ordered = tuple(sorted(group))
            half = len(ordered) // 2
            boundary = set(ordered[:half])
            spanning = [
                l2_group
                for l2_group in topology.groups("l2")
                if min(l2_group) in [s for s in group]
                and any(s in boundary for s in l2_group)
                and any(s not in boundary for s in l2_group)
            ]
            feasible = True
            for l2_group in spanning:
                if l2_group in frozen or not self.should_split(
                    "l2", l2_group, bank, msat
                ):
                    feasible = False
                    break
            if not feasible:
                continue
            for l2_group in spanning:
                topology.split("l2", l2_group)
                actions.append(("split", SplitProposal("l2", l2_group,
                                                       reason="inclusion")))
            topology.split("l3", group)
            self._split_epoch[frozenset(group)] = self._epoch
            actions.append(("split", SplitProposal("l3", group)))
        return actions

    def _candidate_pairs(self, topology: TopologyState,
                         level: str) -> List[Tuple[Group, Group]]:
        """Mergeable group pairs at ``level`` under the current policy."""
        groups = topology.groups(level)
        pairs: List[Tuple[Group, Group]] = []
        used: set = set()
        for i, a in enumerate(groups):
            if a in used:
                continue
            for b in groups[i + 1:]:
                if b in used:
                    continue
                if topology.are_buddies(a, b) or (
                    self.morph.allow_arbitrary_sizes and topology.are_adjacent(a, b)
                ) or self.morph.allow_non_neighbors:
                    pairs.append((a, b))
                    used.add(a)
                    used.add(b)
                    break
        return pairs


def _touched(actions: List[Action]) -> set:
    """Groups consumed or produced by earlier actions this epoch."""
    touched: set = set()
    for kind, proposal in actions:
        if kind == "merge":
            touched.add(proposal.a)
            touched.add(proposal.b)
            touched.add(tuple(sorted(proposal.a + proposal.b)))
        else:
            ordered = tuple(sorted(proposal.group))
            half = len(ordered) // 2
            touched.add(proposal.group)
            touched.add(ordered[:half])
            touched.add(ordered[half:])
    return touched
