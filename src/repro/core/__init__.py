"""MorphCache: the paper's primary contribution.

- :mod:`~repro.core.hashing` — the hardware hash functions that index ACFVs
  (XOR-fold and modulo, the two curves of Figure 5).
- :mod:`~repro.core.acfv` — Active Cache Footprint Vectors (Section 2.1) and
  the per-core ACFV bank that observes the cache hierarchy.
- :mod:`~repro.core.topology` — the buddy-structured slice grouping state
  with the L2-inside-L3 inclusion invariant (Sections 2.2/2.3) and the
  Section 5.5 relaxations.
- :mod:`~repro.core.decisions` — the merge/split decision engine with both
  conflict policies (Section 2.4).
- :mod:`~repro.core.qos` — MSAT throttling for QoS (Section 5.3).
- :mod:`~repro.core.controller` — ties it all together: one controller per
  CMP that reconfigures the hierarchy at epoch boundaries.
"""

from repro.core.hashing import ModuloHash, XorFoldHash, make_hash
from repro.core.acfv import Acfv, AcfvBank
from repro.core.topology import TopologyState, parse_config_label
from repro.core.decisions import DecisionEngine, MergeProposal, SplitProposal
from repro.core.qos import MsatThrottler
from repro.core.controller import MorphCacheController, ReconfigEvent
from repro.core.tiles import TiledMorphCache

__all__ = [
    "XorFoldHash",
    "ModuloHash",
    "make_hash",
    "Acfv",
    "AcfvBank",
    "TopologyState",
    "parse_config_label",
    "DecisionEngine",
    "MergeProposal",
    "SplitProposal",
    "MsatThrottler",
    "MorphCacheController",
    "ReconfigEvent",
    "TiledMorphCache",
]
