"""Workload binding: which benchmark model runs on which core.

Three shapes, matching the paper's Section 4:

- *multiprogrammed*: 16 single-threaded SPEC benchmarks, one per core, each
  in its own address space (the Table 5 mixes);
- *multithreaded*: one PARSEC benchmark as 16 threads sharing an address
  space, with across-thread footprint variance;
- *alone*: a single benchmark on core 0 with the rest of the machine idle
  (the normalisation runs for weighted/fair speedup).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.config import MachineConfig
from repro.workloads.mixes import Mix
from repro.workloads.parsec import ParsecBenchmark, parsec_benchmark
from repro.workloads.spec import spec_benchmark
from repro.workloads.synthetic import FootprintModel, SyntheticThread, make_threads


@dataclass(frozen=True)
class Workload:
    """A named binding of footprint models to cores."""

    name: str
    models: tuple
    """One :class:`FootprintModel` per core; ``None`` marks an idle core."""

    shared_address_space: bool = False

    def __post_init__(self) -> None:
        if not any(model is not None for model in self.models):
            raise ValueError("workload must have at least one active core")

    @property
    def active_cores(self) -> List[int]:
        return [core for core, model in enumerate(self.models) if model is not None]

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def from_mix(mix: Mix) -> "Workload":
        """A Table 5 multiprogrammed mix (16 independent address spaces)."""
        return Workload(
            name=mix.name,
            models=tuple(bench.model for bench in mix.benchmarks),
            shared_address_space=False,
        )

    @staticmethod
    def from_parsec(benchmark, n_threads: int = 16) -> "Workload":
        """A PARSEC benchmark as ``n_threads`` threads sharing memory."""
        if isinstance(benchmark, str):
            benchmark = parsec_benchmark(benchmark)
        if not isinstance(benchmark, ParsecBenchmark):
            raise TypeError(f"expected a ParsecBenchmark, got {benchmark!r}")
        return Workload(
            name=benchmark.name,
            models=tuple([benchmark.model] * n_threads),
            shared_address_space=True,
        )

    @staticmethod
    def from_name(name: str, cores: int = 16) -> "Workload":
        """Parse a workload name the way the CLI and the service accept it.

        ``"MIX 01"`` (case/spacing-insensitive) → a Table 5 mix, a PARSEC
        benchmark name → the multithreaded binding, ``"alone:<spec>"`` →
        one SPEC benchmark on core 0.  Raises
        :class:`~repro.resilience.errors.ConfigError` (field ``workload``)
        for anything else, so both front ends reject bad submissions with
        the same typed error.
        """
        from repro.resilience.errors import ConfigError
        from repro.workloads import PARSEC_BENCHMARKS, mix_by_name

        if name.lower().startswith("mix"):
            normalized = (name.upper().replace("MIX", "MIX ")
                          .replace("MIX  ", "MIX ").strip())
            try:
                return Workload.from_mix(mix_by_name(normalized))
            except ValueError as exc:
                raise ConfigError("workload", str(exc)) from None
        if name.startswith("alone:"):
            try:
                return Workload.alone(name.split(":", 1)[1], cores=cores)
            except (KeyError, ValueError) as exc:
                raise ConfigError("workload", str(exc)) from None
        if name in PARSEC_BENCHMARKS:
            return Workload.from_parsec(name)
        raise ConfigError(
            "workload",
            f"unknown workload {name!r}: use 'MIX 01'..'MIX 12', a PARSEC "
            f"name ({', '.join(sorted(PARSEC_BENCHMARKS))}) or "
            "'alone:<spec>'")

    @staticmethod
    def alone(benchmark_name: str, cores: int = 16) -> "Workload":
        """One SPEC benchmark on core 0, all other cores idle."""
        model = spec_benchmark(benchmark_name).model
        models: List[Optional[FootprintModel]] = [None] * cores
        models[0] = model
        return Workload(
            name=f"{model.name} (alone)",
            models=tuple(models),
            shared_address_space=False,
        )

    # -- thread construction ------------------------------------------------------

    def build_threads(self, config: MachineConfig, seed: int = 0) -> List[Optional[SyntheticThread]]:
        """Instantiate per-core generators (None for idle cores)."""
        if len(self.models) > config.cores:
            raise ValueError(
                f"workload has {len(self.models)} threads, machine only "
                f"{config.cores} cores"
            )
        if self.shared_address_space:
            # All threads share one model; realise the spatial variance.
            model = self.models[0]
            return list(make_threads(
                model, len(self.models), config.l2_slice, config.l3_slice, seed=seed
            ))
        threads: List[Optional[SyntheticThread]] = []
        for core, model in enumerate(self.models):
            if model is None:
                threads.append(None)
            else:
                threads.append(SyntheticThread(
                    model, core, config.l2_slice, config.l3_slice, seed=seed
                ))
        return threads
