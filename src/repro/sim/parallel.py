"""Process-parallel sweep runner.

Every figure/table of the paper is a sweep over (scheme × workload) pairs,
and every run in a sweep is independent: the simulator is deterministic
given (scheme, workload, config, seed), so the runs can execute in any
order, on any worker, and still produce exactly the results a serial sweep
would.  :func:`run_many` exploits that with a
:class:`~concurrent.futures.ProcessPoolExecutor`:

- **Deterministic seeds** — each :class:`RunSpec` carries its own seed;
  :func:`derive_seed` provides a stable per-index derivation for callers
  that want ``n`` distinct seeded runs from one base seed.  Nothing about
  seeding depends on worker scheduling.
- **Ordered collection** — results return in input order (``executor.map``
  semantics), so ``run_many(specs)[i]`` always belongs to ``specs[i]``.
- **Failures surface** — a worker exception propagates to the caller when
  its result is collected; the pool is shut down rather than left hanging.
- ``jobs=1`` (or a single spec) runs serially in-process: bit-identical to
  the pool path and friendlier to debuggers and coverage tools.

The number of workers comes from the ``jobs`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial).  Anything spawned in
a worker inherits only the spec — no shared mutable state — which is what
makes the results independent of parallelism.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import MachineConfig, MorphConfig
from repro.sim.engine import RunResult
from repro.sim.workload import Workload

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class RunSpec:
    """One (scheme, workload) run of a sweep — everything a worker needs.

    The spec is picklable by construction (frozen dataclasses of plain
    values), which is the contract that lets it cross a process boundary.
    """

    scheme: str
    workload: Workload
    config: MachineConfig
    seed: int = 0
    epochs: Optional[int] = None
    accesses_per_core: Optional[int] = None
    warmup_epochs: int = 1
    morph: Optional[MorphConfig] = None
    engine: str = "event"


def derive_seed(base_seed: int, index: int) -> int:
    """A stable, collision-free per-run seed for run ``index`` of a sweep.

    Uses splitmix64 so neighbouring indices give uncorrelated seeds (plain
    ``base + index`` makes run *i* of seed *s* collide with run *i-1* of
    seed *s+1* across sweeps).
    """
    z = (base_seed * 0x9E3779B97F4A7C15 + index + 1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0x7FFFFFFF


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The worker count to use: argument, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        jobs = int(os.environ.get(JOBS_ENV, "1") or "1")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_spec(spec: RunSpec) -> RunResult:
    """Worker entry point: one deterministic simulation run."""
    from repro.sim.experiment import run_scheme  # local: keep import cheap

    return run_scheme(
        spec.scheme,
        spec.workload,
        spec.config,
        seed=spec.seed,
        epochs=spec.epochs,
        accesses_per_core=spec.accesses_per_core,
        warmup_epochs=spec.warmup_epochs,
        morph=spec.morph,
        engine=spec.engine,
    )


def run_many(specs: Sequence[RunSpec], jobs: Optional[int] = None) -> List[RunResult]:
    """Run a sweep, parallel across processes, results in input order.

    Args:
        specs: the runs to perform.
        jobs: worker processes; defaults to ``REPRO_JOBS`` (else serial).
            The pool never exceeds the number of specs.

    Returns:
        One :class:`RunResult` per spec, in the order given — identical,
        run for run, to executing the specs serially.

    Raises:
        Whatever a worker raised (e.g. ``ValueError`` for an unknown
        scheme); the pool is torn down, no run is silently dropped.
    """
    specs = list(specs)
    jobs = min(resolve_jobs(jobs), max(len(specs), 1))
    if jobs <= 1:
        return [_run_spec(spec) for spec in specs]
    # Explicit chunksize: executor.map defaults to 1, which serialises a
    # spec per IPC round trip.  Runs are coarse (whole simulations) so the
    # pickling overhead is minor, but batching specs per worker still trims
    # dispatch latency on large sweeps — and collection order (and thus the
    # results) is unaffected.
    chunksize = max(1, len(specs) // (jobs * 4))
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_run_spec, specs, chunksize=chunksize))


# -- alone-run IPC priming --------------------------------------------------

def _alone_ipc_spec(name: str, config: MachineConfig, seed: int,
                    epochs: int) -> RunSpec:
    return RunSpec(
        scheme="(16:1:1)",
        workload=Workload.alone(name, cores=config.cores),
        config=config,
        seed=seed,
        epochs=epochs,
    )


def prime_alone_ipcs(
    benchmark_names: Sequence[str],
    config: MachineConfig,
    seed: int = 0,
    epochs: int = 2,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Compute (and cache) the alone-run IPCs for many benchmarks at once.

    The weighted/fair speedup metrics normalise every mix against each
    benchmark's alone run; serially those runs dominate sweep start-up.
    This computes the *missing* ones in the worker pool and seeds
    :mod:`repro.sim.experiment`'s cache with the results, so subsequent
    :func:`~repro.sim.experiment.alone_ipc` calls are hits — the cache is
    populated from worker *results* in the parent, never mutated from
    inside a worker (worker processes see copies).
    """
    from repro.sim import experiment

    names: List[str] = []
    for name in benchmark_names:  # preserve order, drop duplicates
        if name not in names:
            names.append(name)
    missing = [n for n in names
               if not experiment.alone_ipc_cached(n, config, seed, epochs)]
    results = run_many(
        [_alone_ipc_spec(n, config, seed, epochs) for n in missing], jobs=jobs)
    for name, result in zip(missing, results):
        experiment.seed_alone_cache(name, config, seed, epochs,
                                    result.mean_ipcs()[0])
    return {n: experiment.alone_ipc(n, config, seed=seed, epochs=epochs)
            for n in names}


__all__ = [
    "RunSpec",
    "run_many",
    "derive_seed",
    "resolve_jobs",
    "prime_alone_ipcs",
    "JOBS_ENV",
]
