"""Process-parallel sweep runner.

Every figure/table of the paper is a sweep over (scheme × workload) pairs,
and every run in a sweep is independent: the simulator is deterministic
given (scheme, workload, config, seed), so the runs can execute in any
order, on any worker, and still produce exactly the results a serial sweep
would.  :func:`run_many` exploits that with a
:class:`~concurrent.futures.ProcessPoolExecutor`:

- **Deterministic seeds** — each :class:`RunSpec` carries its own seed;
  :func:`derive_seed` provides a stable per-index derivation for callers
  that want ``n`` distinct seeded runs from one base seed.  Nothing about
  seeding depends on worker scheduling.
- **Ordered collection** — results return in input order (``executor.map``
  semantics), so ``run_many(specs)[i]`` always belongs to ``specs[i]``.
- **Failures surface** — a worker exception propagates to the caller when
  its result is collected; the pool is shut down rather than left hanging.
- ``jobs=1`` (or a single spec) runs serially in-process: bit-identical to
  the pool path and friendlier to debuggers and coverage tools.

The multi-process path delegates to :mod:`repro.sim.supervisor` in strict
mode, which preserves the raise-on-first-failure contract above while
adding crash containment (a dead worker surfaces as a typed
:class:`~repro.resilience.errors.WorkerCrashError` instead of a raw
``BrokenProcessPool`` traceback) and, when asked, timeouts, retries,
quarantine and a resumable run journal — see :func:`run_many`'s
supervision parameters and :func:`repro.sim.supervisor.run_supervised`.

The number of workers comes from the ``jobs`` argument, else the
``REPRO_JOBS`` environment variable, else 1 (serial).  Anything spawned in
a worker inherits only the spec — no shared mutable state — which is what
makes the results independent of parallelism.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.config import MachineConfig, MorphConfig
from repro.resilience.errors import ConfigError
from repro.resilience.faults import FaultPlan
from repro.sim.engine import RunResult
from repro.sim.workload import Workload

#: Environment variable consulted when ``jobs`` is not given explicitly.
JOBS_ENV = "REPRO_JOBS"


@dataclass(frozen=True)
class RunSpec:
    """One (scheme, workload) run of a sweep — everything a worker needs.

    The spec is picklable by construction (frozen dataclasses of plain
    values), which is the contract that lets it cross a process boundary.
    """

    scheme: str
    workload: Workload
    config: MachineConfig
    seed: int = 0
    epochs: Optional[int] = None
    accesses_per_core: Optional[int] = None
    warmup_epochs: int = 1
    morph: Optional[MorphConfig] = None
    engine: str = "event"
    fault_plan: Optional[FaultPlan] = None
    trace_path: Optional[str] = None
    """JSONL trace output for this run (observability side channel; it does
    not affect results and is deliberately excluded from the journal's
    :func:`~repro.sim.supervisor.spec_key`, so tracing a sweep does not
    invalidate its resumable journal)."""


def derive_seed(base_seed: int, index: int) -> int:
    """A stable, collision-free per-run seed for run ``index`` of a sweep.

    Uses splitmix64 so neighbouring indices give uncorrelated seeds (plain
    ``base + index`` makes run *i* of seed *s* collide with run *i-1* of
    seed *s+1* across sweeps).
    """
    z = (base_seed * 0x9E3779B97F4A7C15 + index + 1) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return (z ^ (z >> 31)) & 0x7FFFFFFF


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The worker count to use: argument, else ``REPRO_JOBS``, else 1.

    Raises:
        ConfigError: ``jobs < 1``, or ``REPRO_JOBS`` is malformed/out of
            range — named after the offending source so ``REPRO_JOBS=0
            repro compare`` exits with the config exit code and a message
            pointing at the variable.  (``ConfigError`` is a ``ValueError``
            subclass, so existing ``except ValueError`` guards still work.)
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "1") or "1"
        try:
            jobs = int(raw)
        except ValueError:
            raise ConfigError(JOBS_ENV, f"must be an integer, got {raw!r}") from None
        if jobs < 1:
            raise ConfigError(JOBS_ENV, f"must be >= 1, got {jobs}")
    elif jobs < 1:
        raise ConfigError("jobs", f"must be >= 1, got {jobs}")
    return jobs


def _run_spec(spec: RunSpec) -> RunResult:
    """Worker entry point: one deterministic simulation run."""
    from repro.sim.experiment import run_scheme  # local: keep import cheap

    return run_scheme(
        spec.scheme,
        spec.workload,
        spec.config,
        seed=spec.seed,
        epochs=spec.epochs,
        accesses_per_core=spec.accesses_per_core,
        warmup_epochs=spec.warmup_epochs,
        morph=spec.morph,
        engine=spec.engine,
        fault_plan=spec.fault_plan,
        trace_path=spec.trace_path,
    )


def run_many(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    policy=None,
    journal=None,
    resume: bool = False,
) -> List[RunResult]:
    """Run a sweep, parallel across processes, results in input order.

    Args:
        specs: the runs to perform.
        jobs: worker processes; defaults to ``REPRO_JOBS`` (else serial).
            The pool never exceeds the number of specs.
        policy: optional :class:`~repro.sim.supervisor.SweepPolicy` adding
            per-run timeouts and retries (retried runs reuse their original
            seed, so results stay bit-identical to a serial sweep).
        journal: optional path of a crash-safe JSONL run journal; with
            ``resume=True`` completed runs are loaded from it and only the
            missing ones execute.

    Returns:
        One :class:`RunResult` per spec, in the order given — identical,
        run for run, to executing the specs serially.

    Raises:
        Whatever a worker raised (e.g. ``ValueError`` for an unknown
        scheme); the pool is torn down, no run is silently dropped.  A
        worker that *dies* raises
        :class:`~repro.resilience.errors.WorkerCrashError` instead of a raw
        ``BrokenProcessPool``.  For quarantine-and-continue semantics call
        :func:`repro.sim.supervisor.run_supervised` directly.
    """
    specs = list(specs)
    jobs = min(resolve_jobs(jobs), max(len(specs), 1))
    if jobs <= 1 and policy is None and journal is None:
        return [_run_spec(spec) for spec in specs]
    from repro.sim.supervisor import run_supervised  # local: avoid cycle

    report = run_supervised(specs, jobs=jobs, policy=policy, journal=journal,
                            resume=resume, strict=True)
    return report.results


# -- alone-run IPC priming --------------------------------------------------

def _alone_ipc_spec(name: str, config: MachineConfig, seed: int,
                    epochs: int) -> RunSpec:
    return RunSpec(
        scheme="(16:1:1)",
        workload=Workload.alone(name, cores=config.cores),
        config=config,
        seed=seed,
        epochs=epochs,
    )


def prime_alone_ipcs(
    benchmark_names: Sequence[str],
    config: MachineConfig,
    seed: int = 0,
    epochs: int = 2,
    jobs: Optional[int] = None,
) -> Dict[str, float]:
    """Compute (and cache) the alone-run IPCs for many benchmarks at once.

    The weighted/fair speedup metrics normalise every mix against each
    benchmark's alone run; serially those runs dominate sweep start-up.
    This computes the *missing* ones in the worker pool and seeds
    :mod:`repro.sim.experiment`'s cache with the results, so subsequent
    :func:`~repro.sim.experiment.alone_ipc` calls are hits — the cache is
    populated from worker *results* in the parent, never mutated from
    inside a worker (worker processes see copies).

    Failures do not discard siblings: every alone run that *did* complete
    seeds the cache before the first failure is re-raised, so a retried
    priming pass recomputes only the benchmark(s) that actually failed.
    """
    from repro.sim import experiment
    from repro.sim.supervisor import run_supervised  # local: avoid cycle

    names: List[str] = []
    for name in benchmark_names:  # preserve order, drop duplicates
        if name not in names:
            names.append(name)
    missing = [n for n in names
               if not experiment.alone_ipc_cached(n, config, seed, epochs)]
    report = run_supervised(
        [_alone_ipc_spec(n, config, seed, epochs) for n in missing],
        jobs=jobs) if missing else None
    if report is not None:
        for name, result in zip(missing, report.results):
            if result is not None:
                experiment.seed_alone_cache(name, config, seed, epochs,
                                            result.mean_ipcs()[0])
        report.raise_first()  # after salvage, surface the first failure
    return {n: experiment.alone_ipc(n, config, seed=seed, epochs=epochs)
            for n in names}


__all__ = [
    "RunSpec",
    "run_many",
    "derive_seed",
    "resolve_jobs",
    "prime_alone_ipcs",
    "JOBS_ENV",
]
