"""Oracle active-cache-footprint estimator (the Figure 5 reference).

The paper's oracle is a one-to-one mapping bit vector — one bit per cache
line, no hash collisions.  This observer implements exactly that with a set
of line addresses per (core, level): a line enters the oracle footprint when
it is *reused* (hit) and leaves when evicted, and the sets are cleared at
each measurement interval, mirroring the ACFV's epoch reset.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.caches.hierarchy import HierarchyObserver


class OracleFootprint(HierarchyObserver):
    """Exact per-core active footprints at L2 and L3."""

    def __init__(self, n_cores: int) -> None:
        self.n_cores = n_cores
        self._active: Dict[Tuple[str, int], Set[int]] = {
            (level, core): set()
            for level in ("l2", "l3")
            for core in range(n_cores)
        }

    def on_hit(self, level: str, slice_id: int, core: int, tag: int) -> None:
        self._active[(level, core)].add(tag)
        if level == "l2":
            self._active[("l3", core)].add(tag)

    def on_evict(self, level: str, slice_id: int, tag: int,
                 owner: int = -1) -> None:
        if 0 <= owner < self.n_cores:
            self._active[(level, owner)].discard(tag)

    # -- queries -----------------------------------------------------------

    def footprint(self, level: str, core: int) -> int:
        """Exact active footprint in lines."""
        return len(self._active[(level, core)])

    def reset(self) -> None:
        """Clear all footprints (measurement-interval boundary)."""
        for active in self._active.values():
            active.clear()


class FanoutObserver(HierarchyObserver):
    """Broadcast hierarchy events to several observers (ACFV + oracle)."""

    def __init__(self, *observers: HierarchyObserver) -> None:
        self.observers = list(observers)

    def on_hit(self, level: str, slice_id: int, core: int, tag: int) -> None:
        for observer in self.observers:
            observer.on_hit(level, slice_id, core, tag)

    def on_fill(self, level: str, slice_id: int, core: int, tag: int) -> None:
        for observer in self.observers:
            observer.on_fill(level, slice_id, core, tag)

    def on_evict(self, level: str, slice_id: int, tag: int,
                 owner: int = -1) -> None:
        for observer in self.observers:
            observer.on_evict(level, slice_id, tag, owner)
