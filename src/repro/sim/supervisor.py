"""Supervised, crash-safe sweep execution.

Every figure and table of the paper is a sweep over (scheme × workload)
pairs, and the long campaigns that make cache studies trustworthy are
exactly the ones that hit real failures: a worker segfaults or is OOM
killed, one run hangs, the parent catches Ctrl-C, the whole box dies.  The
plain pool runner (:func:`repro.sim.parallel.run_many`) treats any of those
as "throw away the entire sweep"; this module supervises the sweep instead.

:func:`run_supervised` executes a list of
:class:`~repro.sim.parallel.RunSpec` with ``submit``/``wait`` plus ordered
reassembly (results land by spec index, never by completion order) and
climbs a supervision ladder per run:

1. **Timeout** — each attempt gets a wall-clock budget
   (:attr:`SweepPolicy.run_timeout`).  Because at most one attempt is in
   flight per worker, an overdue future means a *hung worker*: the pool's
   processes are killed and replaced, the timed-out run is charged a
   failure, and innocent in-flight runs are requeued without charge.
2. **Retry** — a failed attempt is retried up to :attr:`SweepPolicy.retries`
   times with deterministic exponential backoff: the delay jitter is seeded
   from :func:`~repro.sim.parallel.derive_seed` ``(spec.seed, attempt)``,
   and the retry reuses the spec's *original* seed, so a sweep with retries
   produces results bit-identical to a serial sweep — backoff perturbs only
   the schedule, never the simulation.
3. **Quarantine** — after ``retries + 1`` failures a spec is declared
   poison: it is recorded (journal + report) and the sweep *continues* with
   the remaining specs instead of aborting.
4. **Salvage** — the returned :class:`SweepReport` carries every completed
   :class:`~repro.sim.engine.RunResult` plus a per-run
   :class:`RunOutcome` (status, attempts, elapsed, error), so callers keep
   partial results even when some runs are lost.

A worker that *dies* (``BrokenProcessPool``) or raises ``MemoryError``
surfaces as a typed :class:`~repro.resilience.errors.WorkerCrashError`.  A
broken pool cannot attribute the crash to one run, so every in-flight run
is charged one failure and the pool is rebuilt; innocent runs succeed on
retry while a genuinely poisonous spec keeps crashing until quarantined.

**Journal.**  With ``journal=PATH`` every completed run is appended to a
crash-safe JSONL journal: one self-contained line per record, written with
a single buffered write, flushed and ``fsync``'d before the supervisor
moves on — SIGKILL at any instant loses at most the in-flight runs, and a
half-written final line is tolerated on load.  ``resume=True`` validates
the journal's header (a digest per spec, so a journal can never silently
resume a *different* sweep), preloads the completed results, and reruns
only the missing ones; a resumed sweep's results are bit-identical to an
uninterrupted one because each run is deterministic given its spec and the
journal stores full-precision floats (JSON round-trips Python floats
exactly).

**Signals.**  SIGINT/SIGTERM stop new submissions, drain the in-flight
runs, record them, flush the journal and raise
:class:`~repro.resilience.errors.SweepInterrupted` (CLI exit code 8) with
the partial report attached.  A second signal falls through to the default
disposition for anyone who really means it.

``strict=True`` preserves the historical ``run_many`` contract: the first
run to exhaust its attempts re-raises its original exception (the pool is
torn down, nothing is silently dropped).  Non-strict callers get the
:class:`SweepReport` and decide for themselves.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import metrics as obs_metrics
from repro.resilience.checkpoint import epoch_from_json, epoch_to_json
from repro.resilience.errors import (
    CheckpointError,
    ConfigError,
    SweepInterrupted,
    WorkerCrashError,
)
from repro.sim.engine import RunResult
from repro.sim.parallel import RunSpec, _run_spec, derive_seed, resolve_jobs

#: Journal format version; bumped on any incompatible record change.
JOURNAL_VERSION = 1


# -- policy -----------------------------------------------------------------

@dataclass(frozen=True)
class SweepPolicy:
    """Supervision knobs for one sweep.  All validated at construction."""

    run_timeout: Optional[float] = None
    """Wall-clock seconds per attempt; ``None`` disables hang detection."""

    retries: int = 0
    """Extra attempts after the first failure before quarantine."""

    backoff_base: float = 0.5
    """First retry delay in seconds (doubles per attempt); 0 = no sleep."""

    backoff_cap: float = 30.0
    """Upper bound on any single backoff delay."""

    poll_interval: float = 0.05
    """Supervisor wake-up cadence for deadlines/signals/backoff releases."""

    def __post_init__(self) -> None:
        if self.run_timeout is not None and self.run_timeout <= 0:
            raise ConfigError("run_timeout",
                              f"must be > 0 seconds, got {self.run_timeout}")
        if self.retries < 0:
            raise ConfigError("retries", f"must be >= 0, got {self.retries}")
        if self.backoff_base < 0:
            raise ConfigError("backoff_base",
                              f"must be >= 0, got {self.backoff_base}")
        if self.backoff_cap < 0:
            raise ConfigError("backoff_cap",
                              f"must be >= 0, got {self.backoff_cap}")
        if self.poll_interval <= 0:
            raise ConfigError("poll_interval",
                              f"must be > 0, got {self.poll_interval}")

    def backoff_delay(self, run_seed: int, attempt: int) -> float:
        """Deterministic exponential backoff before retry ``attempt``.

        The jitter is seeded from ``(run_seed, attempt)`` via
        :func:`derive_seed` — two supervisors replaying the same sweep
        sleep identically, and nothing here touches the run's own seed.
        """
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))
        jitter = derive_seed(run_seed, attempt) / float(2 ** 31)  # [0, 1)
        return delay * (0.5 + jitter / 2)


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (deterministic, no interp)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(1, -(-int(q * 100) * len(ordered) // 100))  # ceil(q*n)
    return ordered[min(rank, len(ordered)) - 1]


# -- outcomes and the report ------------------------------------------------

@dataclass
class RunOutcome:
    """What happened to one spec of the sweep."""

    index: int
    key: str
    """Spec digest (see :func:`spec_key`); ties journal records to specs."""

    status: str = "pending"
    """``"ok"``, ``"quarantined"``, or ``"pending"`` (interrupted sweep)."""

    attempts: int = 0
    elapsed: float = 0.0
    """Wall-clock seconds summed over all attempts."""

    from_journal: bool = False
    """True when the result was loaded from a resumed journal."""

    error: Optional[str] = None
    """``"Type: message"`` of the last failure, if any."""

    exception: Optional[BaseException] = field(default=None, repr=False)
    """The last failure itself (never serialised; for strict re-raise)."""


@dataclass
class SweepReport:
    """Everything a supervised sweep produced, successes and casualties.

    ``results[i]`` belongs to ``specs[i]`` (ordered reassembly); it is
    ``None`` exactly when ``outcomes[i]`` is not ``"ok"``.
    """

    results: List[Optional[RunResult]]
    outcomes: List[RunOutcome]
    elapsed: float = 0.0
    interrupted: bool = False

    @property
    def succeeded(self) -> List[int]:
        return [o.index for o in self.outcomes if o.status == "ok"]

    @property
    def quarantined(self) -> List[int]:
        return [o.index for o in self.outcomes if o.status == "quarantined"]

    @property
    def retried(self) -> List[int]:
        return [o.index for o in self.outcomes
                if o.status == "ok" and o.attempts > 1]

    @property
    def resumed(self) -> List[int]:
        return [o.index for o in self.outcomes if o.from_journal]

    @property
    def ok(self) -> bool:
        return not self.interrupted and all(o.status == "ok"
                                            for o in self.outcomes)

    def raise_first(self) -> None:
        """Re-raise the first (by spec index) quarantined run's exception."""
        for outcome in self.outcomes:
            if outcome.status == "quarantined":
                if outcome.exception is not None:
                    raise outcome.exception
                raise WorkerCrashError(
                    f"run {outcome.index} failed: {outcome.error}")

    def latency(self) -> Dict[str, float]:
        """Wall-clock shape of the sweep: total plus per-run percentiles.

        ``total`` is this sweep invocation's wall clock; the percentiles
        (nearest-rank ``p50``/``p90``/``max``) are over the per-run elapsed
        of every completed run, journal-resumed ones included, so a service
        can report job latency without re-parsing journals.
        """
        elapsed = [o.elapsed for o in self.outcomes if o.status == "ok"]
        return {
            "total": self.elapsed,
            "runs": float(len(elapsed)),
            "p50": _percentile(elapsed, 0.50),
            "p90": _percentile(elapsed, 0.90),
            "max": max(elapsed) if elapsed else 0.0,
        }

    def summary(self) -> str:
        parts = [f"{len(self.succeeded)}/{len(self.outcomes)} runs ok"]
        if self.retried:
            parts.append(f"{len(self.retried)} retried")
        if self.quarantined:
            parts.append(f"{len(self.quarantined)} quarantined")
        if self.resumed:
            parts.append(f"{len(self.resumed)} resumed from journal")
        parts.append(f"{self.elapsed:.1f}s")
        lat = self.latency()
        if lat["runs"]:
            parts.append(f"run p50/p90/max "
                         f"{lat['p50']:.1f}/{lat['p90']:.1f}/{lat['max']:.1f}s")
        return ", ".join(parts)


# -- spec and result serialisation ------------------------------------------

def spec_key(spec: RunSpec) -> str:
    """Stable digest of everything that determines a run's results.

    Two specs share a key iff a completed result for one is a valid result
    for the other — this is what lets a journal refuse to resume a
    different sweep.
    """
    ident = (spec.scheme, spec.workload.name, repr(spec.config), spec.seed,
             spec.epochs, spec.accesses_per_core, spec.warmup_epochs,
             repr(spec.morph), spec.engine, repr(spec.fault_plan))
    return hashlib.sha256(repr(ident).encode()).hexdigest()[:16]


def result_to_json(result: RunResult) -> Dict[str, Any]:
    return {
        "workload": result.workload_name,
        "scheme": result.scheme_name,
        "epochs": [epoch_to_json(e) for e in result.epochs],
    }


def result_from_json(payload: Dict[str, Any]) -> RunResult:
    return RunResult(
        workload_name=payload["workload"],
        scheme_name=payload["scheme"],
        epochs=[epoch_from_json(e) for e in payload["epochs"]],
    )


# -- the journal ------------------------------------------------------------

class SweepJournal:
    """Append-only JSONL journal of completed sweep runs.

    Line kinds: ``header`` (once, identifies the sweep by its spec keys),
    ``run`` (a completed result), ``quarantine`` (a spec given up on), and
    ``resume`` (a marker appended each time a sweep resumes).  Every line
    is written with one buffered write, then flushed and ``fsync``'d, so a
    record is either fully on disk or (if the process dies mid-write) a
    truncated final line that :meth:`load_completed` skips.

    **Fencing.**  When the sweep runs under a worker-pool lease
    (:mod:`repro.serve.lease`), ``extra`` stamps the lease token onto every
    record and ``guard`` is invoked before each durable write — it raises
    :class:`~repro.resilience.errors.LeaseLostError` when a peer has
    reclaimed the job, so a zombie holder aborts instead of appending
    stale state.  Loaders ignore both fields, which keeps pool journals
    byte-compatible with single-worker ones (extra keys on otherwise
    identical records).
    """

    def __init__(self, path, handle, extra: Optional[Dict[str, Any]] = None,
                 guard: Optional[Callable[[], None]] = None) -> None:
        self.path = pathlib.Path(path)
        self._handle = handle
        self._extra = dict(extra) if extra else None
        self._guard = guard

    # -- creation / loading -------------------------------------------------

    @classmethod
    def create(cls, path, keys: Sequence[str],
               extra: Optional[Dict[str, Any]] = None,
               guard: Optional[Callable[[], None]] = None) -> "SweepJournal":
        """Start a fresh journal (truncating any previous file)."""
        path = pathlib.Path(path)
        try:
            handle = open(path, "w", encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot open sweep journal {path}: {exc}") from exc
        journal = cls(path, handle, extra=extra, guard=guard)
        journal._write({"kind": "header", "version": JOURNAL_VERSION,
                        "runs": len(keys), "keys": list(keys)})
        return journal

    @classmethod
    def load_completed(cls, path, keys: Sequence[str]) -> Dict[int, Dict[str, Any]]:
        """Parse a journal: ``{index: run-record}`` for completed runs.

        Tolerates a truncated final line (the signature of a mid-write
        kill).  Raises :class:`CheckpointError` when the file is missing,
        the header is unreadable, or the header's keys do not match
        ``keys`` — the journal belongs to a different sweep.
        """
        path = pathlib.Path(path)
        if not path.exists():
            raise CheckpointError(f"no sweep journal at {path}")
        records: Dict[int, Dict[str, Any]] = {}
        header = None
        try:
            lines = path.read_text(encoding="utf-8").split("\n")
        except OSError as exc:
            raise CheckpointError(f"cannot read sweep journal {path}: {exc}") from exc
        for line in lines:
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated mid-write; the record was never durable
            kind = payload.get("kind")
            if kind == "header":
                if header is None:
                    header = payload
                continue
            if kind != "run":
                continue  # quarantine/resume markers don't complete a run
            index = payload.get("index")
            if (isinstance(index, int) and 0 <= index < len(keys)
                    and payload.get("key") == keys[index]):
                records[index] = payload
            else:
                raise CheckpointError(
                    f"sweep journal {path} records run {index!r} with key "
                    f"{payload.get('key')!r}, which is not part of this "
                    "sweep — refusing to resume a different experiment")
        if header is None:
            raise CheckpointError(
                f"sweep journal {path} has no readable header")
        if header.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"sweep journal {path} has format version "
                f"{header.get('version')}, this build reads {JOURNAL_VERSION}")
        if list(header.get("keys", [])) != list(keys):
            raise CheckpointError(
                f"sweep journal {path} belongs to a different sweep "
                f"({len(header.get('keys', []))} runs vs {len(keys)} expected, "
                "or mismatched specs)")
        return records

    @classmethod
    def reopen(cls, path, completed: int,
               extra: Optional[Dict[str, Any]] = None,
               guard: Optional[Callable[[], None]] = None) -> "SweepJournal":
        """Open an existing (validated) journal for appending.

        The ``resume`` marker goes through the fencing ``guard`` like any
        other record, so a resume (or adoption) that lost its lease while
        loading the journal is rejected before it writes anything.
        """
        path = pathlib.Path(path)
        try:
            handle = open(path, "a", encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(f"cannot append to sweep journal {path}: {exc}") from exc
        journal = cls(path, handle, extra=extra, guard=guard)
        journal._write({"kind": "resume", "completed": completed})
        return journal

    # -- records ------------------------------------------------------------

    def record_run(self, index: int, key: str, attempts: int, elapsed: float,
                   result: RunResult) -> None:
        self._write({"kind": "run", "index": index, "key": key,
                     "attempts": attempts, "elapsed": elapsed,
                     "result": result_to_json(result)})

    def record_quarantine(self, index: int, key: str, attempts: int,
                          error: str) -> None:
        self._write({"kind": "quarantine", "index": index, "key": key,
                     "attempts": attempts, "error": error})

    def record_summary(self, report: "SweepReport") -> None:
        """Append the sweep's latency summary (total + per-run percentiles).

        Written when a supervised sweep finishes (or drains on a signal),
        so journal consumers — the service, ``repro journal`` — can report
        job latency without re-parsing every run record.  Not a ``run``
        record, so resume logic ignores it.
        """
        payload = {"kind": "summary", "completed": len(report.succeeded)}
        payload.update(report.latency())
        self._write(payload)

    def _write(self, payload: Dict[str, Any]) -> None:
        if self._guard is not None:
            self._guard()  # fencing: may raise LeaseLostError
        if self._extra:
            payload = {**payload, **self._extra}
        line = json.dumps(payload, separators=(",", ":"))
        try:
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise CheckpointError(
                f"cannot write sweep journal {self.path}: {exc}") from exc

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass


# -- journal inspection ------------------------------------------------------

@dataclass
class JournalSummary:
    """What a sweep journal says happened, without loading any results.

    Produced by :func:`inspect_journal`; shared by the service's restart
    recovery (deciding whether a journal is resumable) and the ``repro
    journal`` CLI (humans debugging a crashed sweep).
    """

    path: str
    version: int
    total: int
    """Run count the header promises."""

    completed: List[int]
    """Indices with a durable ``run`` record."""

    quarantined: List[int]
    """Indices quarantined and never subsequently completed."""

    retried: List[int]
    """Completed indices whose final record took more than one attempt."""

    resumes: int
    """How many times a sweep resumed from this journal."""

    truncated_tail: bool
    """The file ends in a half-written line — the signature of a SIGKILL
    (or power loss) mid-write; the torn record was never durable."""

    bad_lines: int
    """Unparseable lines, truncated tail included."""

    elapsed: Optional[float] = None
    """Sweep wall clock from the latest ``summary`` record, if any."""

    latency: Optional[Dict[str, float]] = None
    """Per-run percentiles (``p50``/``p90``/``max``) — from the latest
    ``summary`` record when present, else recomputed from run records."""

    leases: List[str] = field(default_factory=list)
    """Lease tokens (``fence:owner``) seen on records, in first-appearance
    order.  More than one token means the job changed hands — a service
    restart resumed it, or a pool peer adopted it after a crash."""

    @property
    def adoptions(self) -> int:
        """Ownership changes recorded in the journal itself."""
        return max(0, len(self.leases) - 1)

    @property
    def missing(self) -> int:
        return self.total - len(self.completed)

    @property
    def complete(self) -> bool:
        return self.missing == 0 and not self.quarantined

    def render(self) -> str:
        """Human-readable multi-line summary (the ``repro journal`` body)."""
        lines = [f"journal: {self.path} (format v{self.version})",
                 f"runs: {len(self.completed)}/{self.total} completed"
                 + (f", {len(self.quarantined)} quarantined"
                    if self.quarantined else "")
                 + (f", {len(self.retried)} retried" if self.retried else "")]
        if self.resumes:
            lines.append(f"resumes: {self.resumes}")
        if self.leases:
            chain = " -> ".join(self.leases)
            suffix = (f" ({self.adoptions} handover(s))"
                      if self.adoptions else "")
            lines.append(f"leases: {chain}{suffix}")
        if self.truncated_tail:
            lines.append("truncated tail: yes — the final line is torn "
                         "(mid-write kill); that record was never durable")
        elif self.bad_lines:
            lines.append(f"unreadable lines: {self.bad_lines}")
        if self.latency is not None:
            total = (f"total {self.elapsed:.1f}s, "
                     if self.elapsed is not None else "")
            lines.append(f"wall-clock: {total}per-run p50/p90/max "
                         f"{self.latency['p50']:.1f}/"
                         f"{self.latency['p90']:.1f}/"
                         f"{self.latency['max']:.1f}s")
        if self.complete:
            lines.append("status: complete")
        else:
            parts = []
            if self.missing:
                parts.append(f"{self.missing} run(s) missing")
            if self.quarantined:
                parts.append(f"{len(self.quarantined)} quarantined "
                             "(fresh attempt budget on resume)")
            lines.append(f"status: resumable — {', '.join(parts)}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path, "version": self.version, "total": self.total,
            "completed": self.completed, "quarantined": self.quarantined,
            "retried": self.retried, "resumes": self.resumes,
            "truncated_tail": self.truncated_tail,
            "bad_lines": self.bad_lines, "elapsed": self.elapsed,
            "latency": self.latency, "missing": self.missing,
            "complete": self.complete, "leases": self.leases,
            "adoptions": self.adoptions,
        }


def inspect_journal(path, keys: Optional[Sequence[str]] = None) -> JournalSummary:
    """Validate and summarize a sweep journal without loading results.

    With ``keys`` the journal is held to the same standard as a resume:
    the header must match this sweep's spec digests and every run record
    must carry the right key, else :class:`CheckpointError`.  Without
    ``keys`` the journal is summarized as found (mismatched run records
    still raise — they mean the file is internally inconsistent).

    Raises:
        CheckpointError: missing file, unreadable header, version drift,
            or (with ``keys``) a journal belonging to a different sweep.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise CheckpointError(f"no sweep journal at {path}")
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(f"cannot read sweep journal {path}: {exc}") from exc
    lines = [line for line in text.split("\n") if line.strip()]
    header: Optional[Dict[str, Any]] = None
    runs: Dict[int, Dict[str, Any]] = {}
    quarantined: Dict[int, int] = {}
    resumes = 0
    bad_lines = 0
    truncated_tail = False
    summary_record: Optional[Dict[str, Any]] = None
    leases: List[str] = []
    for lineno, line in enumerate(lines):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            bad_lines += 1
            truncated_tail = lineno == len(lines) - 1
            continue
        kind = payload.get("kind")
        token = payload.get("lease")
        if isinstance(token, str) and (not leases or leases[-1] != token):
            leases.append(token)
        if kind == "header":
            if header is None:
                header = payload
        elif kind == "run":
            index = payload.get("index")
            if not isinstance(index, int):
                raise CheckpointError(
                    f"sweep journal {path} has a run record without a "
                    "valid index")
            if keys is not None and not (
                    0 <= index < len(keys)
                    and payload.get("key") == keys[index]):
                raise CheckpointError(
                    f"sweep journal {path} records run {index!r} with key "
                    f"{payload.get('key')!r}, which is not part of this "
                    "sweep — refusing to resume a different experiment")
            runs[index] = payload
            quarantined.pop(index, None)
        elif kind == "quarantine":
            index = payload.get("index")
            if isinstance(index, int) and index not in runs:
                quarantined[index] = quarantined.get(index, 0) + 1
        elif kind == "resume":
            resumes += 1
        elif kind == "summary":
            summary_record = payload
    if header is None:
        raise CheckpointError(f"sweep journal {path} has no readable header")
    if header.get("version") != JOURNAL_VERSION:
        raise CheckpointError(
            f"sweep journal {path} has format version "
            f"{header.get('version')}, this build reads {JOURNAL_VERSION}")
    if keys is not None and list(header.get("keys", [])) != list(keys):
        raise CheckpointError(
            f"sweep journal {path} belongs to a different sweep "
            f"({len(header.get('keys', []))} runs vs {len(keys)} expected, "
            "or mismatched specs)")
    total = int(header.get("runs", len(header.get("keys", []))))
    if summary_record is not None:
        elapsed = summary_record.get("total")
        latency = {k: float(summary_record.get(k, 0.0))
                   for k in ("p50", "p90", "max")}
    else:
        per_run = [float(r.get("elapsed", 0.0)) for r in runs.values()]
        elapsed = None
        latency = ({"p50": _percentile(per_run, 0.50),
                    "p90": _percentile(per_run, 0.90),
                    "max": max(per_run)} if per_run else None)
    return JournalSummary(
        path=str(path), version=int(header["version"]), total=total,
        completed=sorted(runs),
        quarantined=sorted(quarantined),
        retried=sorted(i for i, r in runs.items()
                       if int(r.get("attempts", 1)) > 1),
        resumes=resumes, truncated_tail=truncated_tail,
        bad_lines=bad_lines, elapsed=elapsed, latency=latency,
        leases=leases)


# -- signal draining --------------------------------------------------------

class _SignalDrain:
    """Flip a flag on the first SIGINT/SIGTERM; restore default for the next.

    Installed only from the main thread (signal handlers cannot be set from
    anywhere else); in worker threads the drain is a no-op and the signal
    keeps its default disposition.
    """

    SIGNALS = (signal.SIGINT, signal.SIGTERM)

    def __init__(self) -> None:
        self.received: Optional[int] = None
        self._previous: Dict[int, Any] = {}

    def __enter__(self) -> "_SignalDrain":
        if threading.current_thread() is threading.main_thread():
            for signum in self.SIGNALS:
                self._previous[signum] = signal.signal(signum, self._handle)
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()

    def _handle(self, signum, frame) -> None:
        self.received = signum
        # A second signal means "now": fall back to the default disposition.
        signal.signal(signum, self._previous.get(signum, signal.SIG_DFL))

    @property
    def name(self) -> str:
        return signal.Signals(self.received).name if self.received else ""


# -- the supervisor ---------------------------------------------------------

def _bind_worker_to_parent() -> None:
    """Pool-worker initializer: die when the supervising process does.

    A SIGKILLed supervisor gets no chance to tear its executor down, and
    CPython's pool workers then block forever in their call-queue read —
    each child holds its own write end of that pipe, so EOF never comes.
    The worker-pool failover drills SIGKILL supervisors on purpose, and
    every orphan is a leaked interpreter pinning a CPU slot.  On Linux,
    ask the kernel to deliver SIGKILL on parent death instead; elsewhere
    this is a no-op and the orphan is bounded by the drill, not by
    production operation.
    """
    try:
        import ctypes

        libc = ctypes.CDLL(None, use_errno=True)
        PR_SET_PDEATHSIG = 1
        libc.prctl(PR_SET_PDEATHSIG, int(signal.SIGKILL))
        # The parent may have died between fork and prctl: check, and go.
        if os.getppid() == 1:
            os.kill(os.getpid(), signal.SIGKILL)
    except Exception:
        pass  # non-Linux / restricted libc: keep the old behaviour


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Forcibly replace a pool whose worker(s) hung: kill, then discard.

    ``shutdown`` alone would block behind the hung task forever;
    ``Process.kill`` is the only lever that actually reclaims the worker.
    (``_processes`` is private but stable across CPython 3.8–3.13.)
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    for process in processes:
        try:
            process.kill()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _retire_pool(pool: ProcessPoolExecutor, grace: float = 5.0) -> None:
    """Shut a pool down so the caller's *process exit* can never hang.

    ``shutdown(wait=False)`` defers the real teardown to interpreter-exit
    hooks, which join the (non-daemonic) workers.  CPython's executor
    shutdown has a rare race in which a worker misses its exit sentinel
    and stays blocked in its call-queue read forever — it holds its own
    write end of that pipe, so EOF never arrives, and the joining process
    wedges at exit.  Give the polite path a short grace, then SIGKILL the
    stragglers: by the time we are here every result we care about has
    already travelled back through its future (or been cancelled), so an
    idle worker holds nothing worth draining.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    deadline = time.monotonic() + grace
    for process in processes:
        process.join(max(deadline - time.monotonic(), 0.0))
    for process in processes:
        if process.is_alive():
            try:
                process.kill()
            except OSError:
                pass


def run_supervised(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    policy: Optional[SweepPolicy] = None,
    journal=None,
    resume: bool = False,
    strict: bool = False,
    worker: Optional[Callable[[RunSpec], RunResult]] = None,
    journal_extra: Optional[Dict[str, Any]] = None,
    journal_guard: Optional[Callable[[], None]] = None,
) -> SweepReport:
    """Run a sweep under the full supervision ladder.  See module docstring.

    Args:
        specs: the runs to perform.
        jobs: worker processes (argument, else ``REPRO_JOBS``, else 1).
            Unlike :func:`~repro.sim.parallel.run_many`, ``jobs=1`` still
            uses one worker *process* — crash isolation and hang detection
            need the process boundary.
        policy: timeouts/retries/backoff; defaults to :class:`SweepPolicy`.
        journal: JSONL journal path; completed runs are appended as they
            finish.  Without ``resume`` an existing file is overwritten.
        resume: preload completed runs from ``journal`` (which must match
            this sweep's specs) and execute only the missing ones.
        strict: re-raise the first run's final failure instead of
            quarantining — the historical ``run_many`` contract.
        worker: the per-spec callable executed in the worker process
            (default: the real simulation).  Must be picklable; exposed for
            fault-injection harnesses and tests.
        journal_extra: fields stamped onto every journal record — the
            worker pool passes its lease token here so journal lines carry
            provable ownership.
        journal_guard: called before every durable journal write; raises
            (typically :class:`~repro.resilience.errors.LeaseLostError`)
            to reject writes from a holder whose lease was reclaimed.

    Returns:
        A :class:`SweepReport` with ordered results and per-run outcomes.

    Raises:
        SweepInterrupted: SIGINT/SIGTERM arrived; in-flight runs were
            drained and journaled, the partial report rides on the
            exception.
        CheckpointError: the journal could not be written, or does not
            belong to this sweep on resume.
        Exception: in strict mode, whatever the first failing run raised
            (worker deaths as :class:`WorkerCrashError`).
    """
    specs = list(specs)
    policy = policy or SweepPolicy()
    run = worker if worker is not None else _run_spec
    jobs = min(resolve_jobs(jobs), max(len(specs), 1))
    keys = [spec_key(spec) for spec in specs]
    outcomes = [RunOutcome(index=i, key=key) for i, key in enumerate(keys)]
    results: List[Optional[RunResult]] = [None] * len(specs)

    jrnl: Optional[SweepJournal] = None
    if journal is not None:
        if resume:
            loaded = SweepJournal.load_completed(journal, keys)
            for index, record in loaded.items():
                results[index] = result_from_json(record["result"])
                outcome = outcomes[index]
                outcome.status = "ok"
                outcome.attempts = int(record.get("attempts", 1))
                outcome.elapsed = float(record.get("elapsed", 0.0))
                outcome.from_journal = True
            jrnl = SweepJournal.reopen(journal, completed=len(loaded),
                                       extra=journal_extra,
                                       guard=journal_guard)
        else:
            jrnl = SweepJournal.create(journal, keys, extra=journal_extra,
                                       guard=journal_guard)
    elif resume:
        raise CheckpointError("resume requested without a journal path")

    pending = deque(o.index for o in outcomes if o.status == "pending")
    release: Dict[int, float] = {}  # index -> monotonic backoff release time
    inflight: Dict[Any, tuple] = {}  # future -> (index, started, deadline)
    pool: Optional[ProcessPoolExecutor] = None
    t_start = time.monotonic()

    def fail(index: int, exc: BaseException, elapsed: float) -> None:
        """Charge one failed attempt; retry with backoff or quarantine."""
        outcome = outcomes[index]
        outcome.attempts += 1
        outcome.elapsed += elapsed
        outcome.error = f"{type(exc).__name__}: {exc}"
        outcome.exception = exc
        reg = obs_metrics.REGISTRY
        if outcome.attempts > policy.retries:
            outcome.status = "quarantined"
            if reg.enabled:
                reg.counter("repro_sweep_runs_total",
                            "Sweep runs finished, by final status",
                            labels=("status",)).labels(
                    status="quarantined").inc()
            if jrnl is not None:
                jrnl.record_quarantine(index, keys[index], outcome.attempts,
                                       outcome.error)
            if strict:
                raise exc
        else:
            if reg.enabled:
                reg.counter("repro_sweep_retries_total",
                            "Failed sweep attempts re-queued for retry").inc()
            release[index] = (time.monotonic()
                              + policy.backoff_delay(specs[index].seed,
                                                     outcome.attempts))
            pending.append(index)

    def succeed(index: int, result: RunResult, elapsed: float) -> None:
        outcome = outcomes[index]
        outcome.attempts += 1
        outcome.elapsed += elapsed
        outcome.status = "ok"
        outcome.error = None
        outcome.exception = None
        results[index] = result
        reg = obs_metrics.REGISTRY
        if reg.enabled:
            reg.counter("repro_sweep_runs_total",
                        "Sweep runs finished, by final status",
                        labels=("status",)).labels(status="ok").inc()
            reg.histogram("repro_sweep_run_seconds",
                          "Per-attempt wall clock of successful sweep runs"
                          ).observe(elapsed)
        if jrnl is not None:
            jrnl.record_run(index, keys[index], outcome.attempts,
                            outcome.elapsed, result)

    try:
        with _SignalDrain() as drain:
            while pending or inflight:
                if drain.received is not None and not inflight:
                    break  # drained; whatever is still queued stays pending
                now = time.monotonic()
                # Submit, at most one attempt per worker slot: every
                # submitted future is genuinely *executing*, which is what
                # makes its wall-clock deadline meaningful.
                while (drain.received is None and pending
                       and len(inflight) < jobs):
                    index = _pop_eligible(pending, release, now)
                    if index is None:
                        break
                    if pool is None:
                        pool = ProcessPoolExecutor(
                            max_workers=jobs,
                            initializer=_bind_worker_to_parent)
                    future = pool.submit(run, specs[index])
                    deadline = (now + policy.run_timeout
                                if policy.run_timeout else None)
                    inflight[future] = (index, now, deadline)
                if not inflight:
                    if drain.received is not None:
                        break
                    # Everything runnable is backing off; sleep to the
                    # earliest release (bounded by the poll interval).
                    until = min(release.get(i, now) for i in pending)
                    time.sleep(min(max(until - now, 0.0) + 1e-4,
                                   policy.poll_interval * 4))
                    continue

                done, _ = wait(set(inflight), timeout=policy.poll_interval,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                pool_broken = False
                for future in done:
                    index, started, _ = inflight.pop(future)
                    elapsed = now - started
                    exc = future.exception()
                    if exc is None:
                        succeed(index, future.result(), elapsed)
                        continue
                    if isinstance(exc, BrokenProcessPool):
                        # The dead worker cannot be attributed to one run:
                        # every in-flight run is charged, the poison one
                        # keeps crashing until quarantined, innocents
                        # recover on retry.
                        pool_broken = True
                        spec = specs[index]
                        exc = WorkerCrashError(
                            f"worker process died while running "
                            f"{spec.scheme} on {spec.workload.name} "
                            f"(run {index}): {type(exc).__name__}")
                    elif isinstance(exc, MemoryError):
                        exc = WorkerCrashError(
                            f"worker ran out of memory on run {index} "
                            f"({specs[index].scheme} on "
                            f"{specs[index].workload.name})")
                    fail(index, exc, elapsed)
                if pool_broken and pool is not None:
                    _kill_pool(pool)
                    pool = None

                # Hang detection: an overdue, still-running future means
                # its worker is wedged.  Kill the pool, charge the overdue
                # runs, and requeue the innocent in-flight ones without
                # charging an attempt (salvaging any that finished in the
                # race window between wait() and here).
                overdue = [(future, entry) for future, entry in
                           inflight.items()
                           if entry[2] is not None and now >= entry[2]
                           and not future.done()]
                if overdue:
                    for future, _ in overdue:
                        del inflight[future]
                    preempted = list(inflight.items())
                    inflight.clear()
                    if pool is not None:
                        _kill_pool(pool)
                        pool = None
                    if obs_metrics.REGISTRY.enabled:
                        obs_metrics.REGISTRY.counter(
                            "repro_sweep_timeouts_total",
                            "Runs killed for exceeding the wall-clock "
                            "timeout").inc(len(overdue))
                    for future, (index, started, deadline) in overdue:
                        fail(index, WorkerCrashError(
                            f"run {index} ({specs[index].scheme} on "
                            f"{specs[index].workload.name}) exceeded the "
                            f"{policy.run_timeout:g}s wall-clock timeout; "
                            "worker killed"), now - started)
                    for future, (index, started, deadline) in preempted:
                        if future.done() and future.exception() is None:
                            succeed(index, future.result(), now - started)
                        else:
                            pending.appendleft(index)  # innocent: no charge
            interrupted = drain.received is not None
            interrupted_by = drain.name
        report = SweepReport(results=results, outcomes=outcomes,
                             elapsed=time.monotonic() - t_start,
                             interrupted=interrupted)
        if jrnl is not None:
            jrnl.record_summary(report)
    finally:
        if pool is not None:
            _retire_pool(pool)
        if jrnl is not None:
            jrnl.close()

    if interrupted:
        raise SweepInterrupted(
            f"sweep interrupted by {interrupted_by} after draining in-flight "
            f"runs ({report.summary()})"
            + (f"; journal {jrnl.path} is resumable" if jrnl else ""),
            report=report)
    return report


def _pop_eligible(pending: deque, release: Dict[int, float],
                  now: float) -> Optional[int]:
    """First pending index whose backoff has elapsed (stable order)."""
    for _ in range(len(pending)):
        index = pending.popleft()
        if release.get(index, 0.0) <= now:
            return index
        pending.append(index)
    return None


__all__ = [
    "SweepPolicy",
    "RunOutcome",
    "SweepReport",
    "SweepJournal",
    "JournalSummary",
    "inspect_journal",
    "run_supervised",
    "spec_key",
    "result_to_json",
    "result_from_json",
    "JOURNAL_VERSION",
]
