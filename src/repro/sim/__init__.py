"""Simulation harness: workloads onto systems, epoch by epoch.

- :mod:`~repro.sim.workload` — bind benchmarks to cores (multiprogrammed
  mixes, 16-thread PARSEC runs, single-benchmark alone runs).
- :mod:`~repro.sim.engine` — the epoch-driven trace simulation loop.
- :mod:`~repro.sim.oracle` — the one-to-one footprint estimator of Figure 5.
- :mod:`~repro.sim.experiment` — scheme registry, run orchestration and the
  alone-IPC cache used by the speedup metrics.
- :mod:`~repro.sim.parallel` — the process-parallel sweep runner.
- :mod:`~repro.sim.supervisor` — supervised, crash-safe sweep execution:
  timeouts, retries, quarantine, and resumable run journals.
"""

from repro.sim.workload import Workload
from repro.sim.engine import EpochResult, RunResult, simulate
from repro.sim.oracle import OracleFootprint
from repro.sim.experiment import (
    SCHEME_BUILDERS,
    alone_ipcs,
    build_system,
    run_scheme,
)
from repro.sim.parallel import RunSpec, run_many
from repro.sim.supervisor import (
    SweepPolicy,
    SweepReport,
    run_supervised,
)

__all__ = [
    "Workload",
    "EpochResult",
    "RunResult",
    "simulate",
    "OracleFootprint",
    "SCHEME_BUILDERS",
    "build_system",
    "run_scheme",
    "alone_ipcs",
    "RunSpec",
    "run_many",
    "SweepPolicy",
    "SweepReport",
    "run_supervised",
]
