"""The epoch-driven simulation loop.

Per epoch: each active core generates its trace, the traces interleave
round-robin into the shared hierarchy, per-core timing accumulates, and the
system's ``end_epoch`` hook fires (for MorphCache this is the
reconfiguration point).  Results are collected per epoch so the time-series
figures (Fig 2(a), Fig 15's per-epoch oracle) fall out directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import MachineConfig
from repro.cpu.core_model import CoreTimingModel
from repro.sim.workload import Workload


@dataclass(frozen=True)
class EpochResult:
    """Measurements of one epoch."""

    epoch: int
    ipcs: Dict[int, float]
    """Per-active-core IPC."""

    misses: Dict[int, int]
    """Per-active-core main-memory accesses during the epoch."""

    topology_label: Optional[str]
    """Topology in force after the epoch's reconfiguration (if reported)."""

    @property
    def throughput(self) -> float:
        return sum(self.ipcs.values())


@dataclass
class RunResult:
    """All epochs of one (scheme, workload) run."""

    workload_name: str
    scheme_name: str
    epochs: List[EpochResult] = field(default_factory=list)

    @property
    def mean_throughput(self) -> float:
        if not self.epochs:
            return 0.0
        return sum(e.throughput for e in self.epochs) / len(self.epochs)

    def mean_ipcs(self) -> Dict[int, float]:
        """Per-core IPC averaged over epochs."""
        if not self.epochs:
            return {}
        cores = self.epochs[0].ipcs.keys()
        return {
            core: sum(e.ipcs[core] for e in self.epochs) / len(self.epochs)
            for core in cores
        }

    def throughput_series(self) -> List[float]:
        return [e.throughput for e in self.epochs]


def simulate(
    system,
    workload: Workload,
    config: MachineConfig,
    seed: int = 0,
    epochs: Optional[int] = None,
    accesses_per_core: Optional[int] = None,
    warmup_epochs: int = 1,
) -> RunResult:
    """Run ``workload`` on ``system`` for the configured number of epochs.

    ``system`` implements the CmpSystem protocol (``access``, ``end_epoch``,
    ``miss_counts``).  The first ``warmup_epochs`` epochs warm the caches
    (and let MorphCache take its first reconfiguration steps); they are
    simulated but not recorded, mirroring the paper's warmed-up region of
    interest.
    """
    n_epochs = epochs if epochs is not None else config.epochs
    n_accesses = (accesses_per_core if accesses_per_core is not None
                  else config.accesses_per_core_per_epoch)
    threads = workload.build_threads(config, seed=seed)
    active = [core for core, thread in enumerate(threads) if thread is not None]
    result = RunResult(workload_name=workload.name,
                       scheme_name=getattr(system, "label", type(system).__name__))
    previous_misses = system.miss_counts()

    for epoch in range(warmup_epochs + n_epochs):
        timers = {
            core: CoreTimingModel(config.issue_width,
                                  memory_latency=config.latency.memory)
            for core in active
        }
        traces = {core: threads[core].generate(n_accesses) for core in active}

        # Round-robin interleave without materialising a merged list.
        arrays = {
            core: (trace.lines, trace.writes, trace.gaps)
            for core, trace in traces.items()
        }
        access = system.access
        for i in range(n_accesses):
            for core in active:
                lines, writes, gaps = arrays[core]
                latency = access(core, int(lines[i]), bool(writes[i]))
                timers[core].account(int(gaps[i]), latency)

        label = system.end_epoch()
        current_misses = system.miss_counts()
        if epoch >= warmup_epochs:
            result.epochs.append(EpochResult(
                epoch=epoch - warmup_epochs,
                ipcs={core: timers[core].ipc for core in active},
                misses={
                    core: current_misses.get(core, 0) - previous_misses.get(core, 0)
                    for core in active
                },
                topology_label=label,
            ))
        previous_misses = current_misses
    return result
